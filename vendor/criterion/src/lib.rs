//! Offline stand-in for `criterion`.
//!
//! Mirrors the API shape the genpar benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! median-of-samples timer that prints one line per benchmark. No
//! statistical analysis, plots, or baseline storage.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: fmt::Display>(function_id: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        let id = id.into();
        run_one(&id.id, samples, None, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples: samples.max(1),
        durations: Vec::new(),
    };
    f(&mut bencher);
    let mut per_iter: Vec<Duration> = bencher.durations;
    if per_iter.is_empty() {
        println!("{name:<56} (no measurement)");
        return;
    }
    per_iter.sort();
    let median = per_iter[per_iter.len() / 2];
    let rate = throughput
        .map(|t| match t {
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                format!("  {:>10.1} MiB/s", mib_per_sec(n, median))
            }
            Throughput::Elements(n) => {
                format!("  {:>10.0} elem/s", per_sec(n, median))
            }
        })
        .unwrap_or_default();
    println!("{name:<56} median {}{}", fmt_duration(median), rate);
}

fn per_sec(n: u64, d: Duration) -> f64 {
    if d.as_nanos() == 0 {
        return f64::INFINITY;
    }
    n as f64 / d.as_secs_f64()
}

fn mib_per_sec(bytes: u64, d: Duration) -> f64 {
    per_sec(bytes, d) / (1024.0 * 1024.0)
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call, then `samples` timed calls.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.durations.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
