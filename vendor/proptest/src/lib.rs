//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x surface that the genpar test
//! suite uses: the `proptest!`/`prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`/`prop_oneof!` macros, `Strategy` with `prop_map`,
//! `prop_recursive` and `boxed`, range and tuple strategies,
//! `collection::{vec, btree_set}`, `any::<bool>()`, `bool::ANY`, and a tiny
//! `[c-c]{m,n}` string-pattern strategy.
//!
//! Cases are sampled deterministically (seed = case index) and there is **no
//! shrinking** — a failure reports the case number so it can be replayed, and
//! the generated inputs are printed via `Debug` where available at the
//! assertion site.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Errors a property body can signal without panicking.
pub mod test_runner {
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is skipped, not failed.
        Reject(String),
        /// `prop_assert!`-style failure.
        Fail(String),
    }

    /// Per-block configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A value generator. Unlike real proptest there is no shrink tree; a
/// strategy is just a deterministic sampler.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }

    /// Bounded recursion: `depth` levels of `expand` over the leaf strategy.
    /// `_desired_size`/`_expected_branch_size` are accepted for signature
    /// compatibility but unused.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = expand(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies; backs `prop_oneof!`.
#[derive(Clone)]
pub struct Union<V> {
    branches: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof!: no branches");
        Union { branches }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.branches.len());
        self.branches[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

/// Minimal `[lo-hi]{m,n}` pattern strategy (the only regex form used
/// in-repo); any other pattern is generated as its literal text.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some((lo, hi, min, max)) = parse_class_repeat(self) {
            let n = rng.gen_range(min..=max);
            (0..n)
                .map(|_| rng.gen_range(lo as u32..=hi as u32) as u8 as char)
                .collect()
        } else {
            (*self).to_string()
        }
    }
}

fn parse_class_repeat(pat: &str) -> Option<(char, char, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
    if dash != '-' || chars.next().is_some() || !lo.is_ascii() || !hi.is_ascii() {
        return None;
    }
    let rest = rest.strip_prefix('{')?;
    let body = rest.strip_suffix('}')?;
    let (m, n) = body.split_once(',')?;
    Some((lo, hi, m.trim().parse().ok()?, n.trim().parse().ok()?))
}

/// `any::<T>()` support for the types the suite needs.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

#[derive(Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod bool {
    /// `proptest::bool::ANY`.
    pub const ANY: super::AnyBool = super::AnyBool;
}

pub mod collection {
    use super::{BTreeSet, Range, Strategy, TestRng};
    use rand::Rng;

    /// Collection size: a range or an exact count.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.min < self.max_exclusive, "empty collection size range");
            rng.gen_range(self.min..self.max_exclusive)
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; draw extra to approach the target.
            for _ in 0..n.saturating_mul(4) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.elem.generate(rng));
            }
            out
        }
    }

    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Seed a per-case RNG. Public for the `proptest!` macro expansion.
pub fn case_rng(case: u32) -> TestRng {
    TestRng::seed_from_u64(0x9e3779b9_u64.wrapping_mul(case as u64 + 1))
}

pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(__case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", __case, msg);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_collections_sample_in_bounds() {
        let mut rng = crate::case_rng(0);
        for _ in 0..100 {
            let v = Strategy::generate(&(0i64..5), &mut rng);
            assert!((0..5).contains(&v));
            let xs = Strategy::generate(&crate::collection::vec(0u8..4, 1..6), &mut rng);
            assert!((1..6).contains(&xs.len()));
            for x in xs {
                assert!(x < 4);
            }
        }
    }

    #[test]
    fn string_pattern_strategy() {
        let mut rng = crate::case_rng(1);
        for _ in 0..50 {
            let s = Strategy::generate(&"[a-z]{0,5}", &mut rng);
            assert!(s.len() <= 5);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(x in 0u32..10, ys in crate::collection::vec(0i64..4, 0..4)) {
            prop_assume!(x != 9);
            prop_assert!(x < 9);
            #[allow(clippy::iter_count)]
            let n = ys.iter().count();
            prop_assert_eq!(ys.len(), n);
        }
    }
}
