//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the *subset* of `rand` 0.8 that genpar actually uses:
//! `StdRng`, the `SeedableRng`/`RngCore`/`Rng` traits, integer `gen_range`
//! over `Range`/`RangeInclusive`, and `gen_bool`. Streams are deterministic
//! per seed (xoshiro256++ seeded via SplitMix64) but are *not* bit-compatible
//! with upstream `rand`; everything in-repo that consumes randomness treats
//! it as an arbitrary seeded source, so only determinism matters.

/// Core entropy source: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators; only `seed_from_u64` is used in-repo.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — small, fast, and good enough for test workloads.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Stand-in for `rand::rngs::SmallRng` (same core generator here).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
