#![warn(missing_docs)]
//! # genpar — executable reproduction of *On Genericity and Parametricity*
//!
//! Umbrella crate re-exporting the whole workspace. See `README.md` for a
//! tour and `DESIGN.md` for the paper-to-module map.
//!
//! ```
//! use genpar::prelude::*;
//! use genpar::mapping::extend::{relates, ExtensionMode};
//! use genpar::mapping::MappingFamily;
//! use genpar::genericity::infer_requirements;
//! use genpar_algebra::catalog;
//! use genpar_value::parse::parse_value;
//!
//! // Example 2.2's homomorphism h relates r1 to r2 in both modes…
//! let h = MappingFamily::atoms(&[(4, 0), (8, 0), (5, 1), (9, 1), (6, 2)]);
//! let r1 = parse_value("{(e, f), (i, f), (e, j), (i, j), (f, g), (j, g)}").unwrap();
//! let r2 = parse_value("{(a, b), (b, c)}").unwrap();
//! let ty = CvType::relation(BaseType::Domain(genpar_value::DomainId(0)), 2);
//! assert!(relates(&h, &ty, ExtensionMode::Strong, &r1, &r2));
//!
//! // …and the classifier knows Q4 = σ_{$1=$2}(R) needs equality.
//! let inferred = infer_requirements(&catalog::q4());
//! assert!(inferred.rel.injective);
//! assert!(inferred.strong.injective);
//! ```

pub use genpar_algebra as algebra;
pub use genpar_core as genericity;
pub use genpar_engine as engine;
pub use genpar_lambda as lambda;
pub use genpar_mapping as mapping;
pub use genpar_optimizer as optimizer;
pub use genpar_parametricity as parametricity;
pub use genpar_value as value;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use genpar_value::{BaseType, CvType, TypeExpr, Value};
}
