//! The roll-up identity, executable: for random query mixes at 4
//! workers, running every query inside its own obs [`Scope`] and letting
//! the scopes drop leaves the **root** registry with exactly the
//! counters that today's unscoped recording would have produced,
//! counter by counter. This is the invariant that lets the serve layer
//! scope every request without changing what `stats` reports:
//! `sum(child snapshots at drop) + root-direct = root total`.
//!
//! Only counters are compared: span nanoseconds and histogram samples
//! are wall-clock (never identical between passes), and steal events are
//! scheduling-dependent. Counters (`engine.rows_scanned`,
//! `exec.executions`, route/fallback counts, …) are deterministic
//! functions of the query and the data.

use genpar_algebra::{Pred, Query};
use genpar_engine::schema::{Catalog, Schema};
use genpar_engine::table::Table;
use genpar_exec::ExecConfig;
use genpar_obs::Scope;
use genpar_value::{CvType, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Serializes the two recording passes: both record into the process
/// global, so another test interleaving records would corrupt the
/// deltas.
static GLOBAL_OBS: Mutex<()> = Mutex::new(());

fn catalog() -> Catalog {
    let mut r = Table::new("R", Schema::uniform(CvType::int(), 2));
    for i in 0..60 {
        r.insert(vec![Value::Int(i), Value::Int(i % 7)]);
    }
    let mut s = Table::new("S", Schema::uniform(CvType::int(), 2));
    for i in 30..90 {
        s.insert(vec![Value::Int(i), Value::Int(i % 7)]);
    }
    let mut e = Table::new("E", Schema::uniform(CvType::int(), 2));
    for i in 0..12 {
        e.insert(vec![Value::Int(i), Value::Int(i + 1)]);
    }
    Catalog::new().with(r).with(s).with(e)
}

/// The mix candidates: every parallel route (plain partitioned shapes,
/// a combiner aggregate, a per-round fixpoint) plus a fallback query.
fn queries() -> Vec<Query> {
    let tc = Query::fixpoint(
        "X",
        Query::rel("E"),
        Query::rel("X")
            .join_on(Query::rel("E"), [(1, 0)])
            .project([0, 3]),
    );
    vec![
        Query::rel("R").project([0]),
        Query::rel("R").select(Pred::eq_cols(0, 1)),
        Query::rel("R").union(Query::rel("S")),
        Query::rel("R").difference(Query::rel("S")),
        Query::rel("R")
            .join_on(Query::rel("S"), [(1, 1)])
            .project([0, 3]),
        Query::rel("R").count(),
        tc,
    ]
}

fn counters() -> BTreeMap<String, u64> {
    genpar_obs::snapshot().counters
}

/// `after - before`, keeping only counters that moved. `exec.steals` is
/// excluded: how many tasks crossed deques depends on thread scheduling,
/// not on the query — every *deterministic* counter must match exactly.
fn delta(before: &BTreeMap<String, u64>, after: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    let mut d = BTreeMap::new();
    for (k, v) in after {
        let moved = v - before.get(k).copied().unwrap_or(0);
        if moved > 0 && k != "exec.steals" {
            d.insert(k.clone(), moved);
        }
    }
    d
}

fn run_mix(catalog: &Catalog, qs: &[Query], mix: &[usize], cfg: &ExecConfig, scoped: bool) {
    for (n, &i) in mix.iter().enumerate() {
        let q = &qs[i % qs.len()];
        if scoped {
            let scope = Scope::for_request(1000 + n as u64, None);
            let guard = scope.enter();
            genpar_exec::eval_query(q, catalog, cfg).expect("scoped eval ok");
            drop(guard);
            drop(scope); // roll up into the root
        } else {
            genpar_exec::eval_query(q, catalog, cfg).expect("unscoped eval ok");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn rollup_identity_holds_for_random_mixes(
        mix in proptest::collection::vec(0usize..7, 1..6),
    ) {
        let _g = match GLOBAL_OBS.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let catalog = catalog();
        let qs = queries();
        // pin the morsel size: the auto-tuner adapts on wall-clock
        // feedback, and a size change between passes would change
        // exec.morsels for reasons unrelated to scoping
        let cfg = ExecConfig::default().with_workers(4).with_morsel_rows(16);

        let before = counters();
        run_mix(&catalog, &qs, &mix, &cfg, false);
        let mid = counters();
        run_mix(&catalog, &qs, &mix, &cfg, true);
        let after = counters();

        let unscoped = delta(&before, &mid);
        let scoped = delta(&mid, &after);
        prop_assert_eq!(
            &unscoped, &scoped,
            "root counters after all scopes dropped must equal unscoped recording (mix {:?})",
            mix
        );
        prop_assert!(!unscoped.is_empty(), "the mix must have recorded something");
    }
}

/// Nested scopes roll up transitively: grandchild → child → root, and a
/// sibling scope's records never leak into another scope's snapshot.
#[test]
fn nested_and_sibling_scopes_stay_disjoint_then_roll_up() {
    let _g = match GLOBAL_OBS.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    let catalog = catalog();
    let cfg = ExecConfig::default().with_workers(4).with_morsel_rows(16);
    let q = Query::rel("R").union(Query::rel("S"));

    let before = counters();
    let a = Scope::for_request(1, None);
    let b = Scope::for_request(2, None);
    {
        let _ga = a.enter();
        genpar_exec::eval_query(&q, &catalog, &cfg).expect("scope-a eval ok");
    }
    {
        let _gb = b.enter();
        genpar_exec::eval_query(&q, &catalog, &cfg).expect("scope-b eval ok");
    }
    let strip = |mut c: BTreeMap<String, u64>| {
        c.remove("exec.steals");
        c
    };
    let counters_a = strip(a.snapshot().counters);
    let counters_b = strip(b.snapshot().counters);
    assert_eq!(
        counters_a, counters_b,
        "identical queries in sibling scopes record identical counters"
    );
    assert!(
        counters_a.contains_key("exec.executions"),
        "the scope saw the executor's counters: {counters_a:?}"
    );
    // nothing reached the root while the scopes are alive
    assert_eq!(
        delta(&before, &counters()),
        BTreeMap::new(),
        "scoped records must not leak to the root before drop"
    );
    drop(a);
    drop(b);
    let rolled = delta(&before, &counters());
    let mut expected = counters_a.clone();
    for (k, v) in &counters_b {
        *expected.entry(k.clone()).or_insert(0) += v;
    }
    assert_eq!(
        rolled, expected,
        "root total after drop = sum of child snapshots at drop"
    );
}
