//! Fault injection and budget governance on the parallel path.
//!
//! Fault arming is process-global, so every test here serializes on one
//! mutex and disarms before releasing it — they cannot interleave with
//! each other, and they live in their own test binary so they cannot
//! poison the parity tests either.

use genpar_algebra::{Pred, Query};
use genpar_engine::plan::{lower, ExecError};
use genpar_engine::schema::{Catalog, Schema};
use genpar_engine::table::Table;
use genpar_exec::{EvalParallel, ExecConfig};
use genpar_value::{CvType, Value};
use std::sync::Mutex;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn catalog() -> Catalog {
    let mut r = Table::new("R", Schema::uniform(CvType::int(), 2));
    for i in 0..100 {
        r.insert(vec![Value::Int(i), Value::Int(i % 7)]);
    }
    let mut s = Table::new("S", Schema::uniform(CvType::int(), 2));
    for i in 50..150 {
        s.insert(vec![Value::Int(i), Value::Int(i % 7)]);
    }
    Catalog::new().with(r).with(s)
}

fn join_query() -> Query {
    Query::rel("R")
        .join_on(Query::rel("S"), [(0, 0)])
        .select(Pred::eq_cols(1, 3))
        .project([0, 1])
}

/// Run with a fault armed, returning the result; always disarms.
fn with_fault<T>(spec: &str, f: impl FnOnce() -> T) -> T {
    let _g = match FAULT_LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    genpar_guard::arm_faults(spec).expect("valid fault spec");
    let out = f();
    genpar_guard::disarm_faults();
    out
}

#[test]
fn single_morsel_fault_recovers_in_place() {
    // the ladder's first rung: one injected morsel fault is retried on
    // the same worker and the plan-level run succeeds with the exact
    // fault-free answer — no error, no fallback needed
    let c = catalog();
    let plan = lower(&join_query()).unwrap();
    let cfg = ExecConfig::serial().with_workers(4).with_morsel_rows(16);
    // serial truth: the engine path passes no exec.* site, so it is
    // immune to this binary's fault arms
    let (truth, _) = plan.execute(&c).expect("serial truth");
    let (rows, snap) = with_fault("exec.morsel:1", || {
        genpar_obs::reset();
        let (rows, _) = plan.eval_parallel(&c, &cfg).expect("retried");
        (rows, genpar_obs::snapshot())
    });
    assert_eq!(rows, truth, "retried answer must equal the serial answer");
    assert!(
        snap.events.iter().any(|e| e.kind == "exec.retry"),
        "an exec.retry event must record the in-place re-run"
    );
    assert!(
        !snap.events.iter().any(|e| e.kind == "exec.fallback"),
        "recovery must happen on the parallel path, not via fallback"
    );
}

#[test]
fn persistent_morsel_fault_surfaces_as_structured_error() {
    // `exec.morsel:*` faults every passage: retries, requeue and the
    // completion sweep all fail, so the plan-level API reports the
    // structured fault (the query-level route degrades it to serial)
    let c = catalog();
    let plan = lower(&join_query()).unwrap();
    let cfg = ExecConfig::serial().with_workers(4).with_morsel_rows(16);
    let err = with_fault("exec.morsel:*", || plan.eval_parallel(&c, &cfg)).unwrap_err();
    match err {
        ExecError::Fault(msg) => assert!(msg.contains("exec.morsel"), "{msg}"),
        other => panic!("expected Fault, got {other:?}"),
    }
    // disarmed: the same plan now succeeds
    assert!(plan.eval_parallel(&c, &cfg).is_ok());
}

#[test]
fn persistent_merge_fault_surfaces_as_structured_error() {
    let c = catalog();
    let plan = lower(&join_query()).unwrap();
    let cfg = ExecConfig::serial().with_workers(4).with_morsel_rows(16);
    let err = with_fault("exec.merge:*", || plan.eval_parallel(&c, &cfg)).unwrap_err();
    match err {
        ExecError::Fault(msg) => assert!(msg.contains("exec.merge"), "{msg}"),
        other => panic!("expected Fault, got {other:?}"),
    }
}

#[test]
fn nth_hit_fault_recovers_and_earlier_morsels_pass() {
    let c = catalog();
    let plan = lower(&Query::rel("R").select(Pred::True)).unwrap();
    let cfg = ExecConfig::serial().with_workers(2).with_morsel_rows(10);
    let (truth, _) = plan.execute(&c).expect("serial truth");
    // 100 rows at 10/morsel = 10 morsels; the 7th passage faults once
    // and is retried — the run completes with the clean answer
    let (rows, _) = with_fault("exec.morsel:7", || plan.eval_parallel(&c, &cfg)).expect("retried");
    assert_eq!(rows, truth);
}

#[test]
fn fixpoint_round_fault_retries_then_exhaustion_degrades_to_serial() {
    let mut e = Table::new("E", Schema::uniform(CvType::int(), 2));
    for i in 0..20 {
        e.insert(vec![Value::Int(i), Value::Int(i + 1)]);
    }
    let c = Catalog::new().with(e);
    let step = Query::rel("X")
        .join_on(Query::rel("E"), [(1, 0)])
        .project([0, 3]);
    let q = Query::fixpoint("X", Query::rel("E"), step);
    let cfg = ExecConfig::serial().with_workers(4).with_morsel_rows(8);
    // the serial truth, computed with no fault armed
    let (truth, _, _) =
        genpar_exec::eval_query(&q, &c, &ExecConfig::serial()).expect("serial eval ok");
    // nth-hit faults: the round is re-run in place and the query stays
    // on the parallel route with the exact answer
    for nth in [1, 3] {
        let spec = format!("exec.fixpoint_round:{nth}");
        let (v, route, snap) = with_fault(&spec, || {
            genpar_obs::reset();
            let (v, _, route) =
                genpar_exec::eval_query(&q, &c, &cfg).expect("round retry must recover");
            (v, route, genpar_obs::snapshot())
        });
        assert!(
            matches!(route, genpar_exec::ExecRoute::Parallel { .. }),
            "expected in-place round retry at {spec}, got {route:?}"
        );
        assert_eq!(v, truth, "retried answer must equal serial at {spec}");
        assert!(
            snap.events.iter().any(|e| e.kind == "exec.retry"),
            "exec.retry event recorded at {spec}"
        );
    }
    // a persistent fault exhausts the retries — the last rung degrades
    // the whole query to the serial interpreter, never a wrong answer
    let (v, route, snap) = with_fault("exec.fixpoint_round:*", || {
        genpar_obs::reset();
        let (v, _, route) =
            genpar_exec::eval_query(&q, &c, &cfg).expect("exhaustion must degrade, not error");
        (v, route, genpar_obs::snapshot())
    });
    assert!(
        matches!(route, genpar_exec::ExecRoute::Fallback { op: "fix", .. }),
        "expected serial degradation on persistent fault, got {route:?}"
    );
    assert_eq!(v, truth, "degraded answer must equal serial");
    assert!(snap.events.iter().any(|e| e.kind == "exec.fallback"));
    assert!(
        snap.events.iter().any(|e| e.kind == "exec.degrade_step"),
        "the ladder records which rung fired"
    );
    // disarmed: the same query takes the parallel route again
    let (v, _, route) = genpar_exec::eval_query(&q, &c, &cfg).expect("ok");
    assert!(matches!(route, genpar_exec::ExecRoute::Parallel { .. }));
    assert_eq!(v, truth);
}

#[test]
fn combine_fault_degrades_to_serial_with_correct_answer() {
    let c = catalog();
    let cfg = ExecConfig::serial().with_workers(4).with_morsel_rows(16);
    for q in [
        Query::Even(Box::new(Query::rel("R"))),
        Query::rel("R").count(),
        Query::rel("R").sum(1),
    ] {
        let (truth, _, _) =
            genpar_exec::eval_query(&q, &c, &ExecConfig::serial()).expect("serial eval ok");
        genpar_obs::reset();
        let (v, _, route) = with_fault("exec.combine:1", || genpar_exec::eval_query(&q, &c, &cfg))
            .expect("fault must degrade, not error");
        assert!(
            matches!(route, genpar_exec::ExecRoute::Fallback { .. }),
            "expected serial degradation for {q}, got {route:?}"
        );
        assert_eq!(v, truth, "degraded answer must equal serial for {q}");
        let snap = genpar_obs::snapshot();
        assert!(
            snap.events.iter().any(|e| e.kind == "exec.fallback"),
            "exec.fallback event recorded for {q}"
        );
        // disarmed: combiner route resumes and agrees
        let (v2, _, route2) = genpar_exec::eval_query(&q, &c, &cfg).expect("ok");
        assert!(matches!(route2, genpar_exec::ExecRoute::Parallel { .. }));
        assert_eq!(v2, truth);
    }
}

#[test]
fn morsel_fault_inside_combiner_or_fixpoint_degrades_not_errors() {
    // exec.morsel faults inside the dedicated routes climb the same
    // ladder: an nth-hit fault is retried in place (route stays
    // Parallel); a persistent fault degrades to serial — the
    // whole-query answer is never wrong and never an error
    let c = catalog();
    let cfg = ExecConfig::serial().with_workers(4).with_morsel_rows(16);
    let q = Query::rel("R").count();
    let (truth, _, _) =
        genpar_exec::eval_query(&q, &c, &ExecConfig::serial()).expect("serial eval ok");
    let (v, route) = with_fault("exec.morsel:2", || {
        let (v, _, route) = genpar_exec::eval_query(&q, &c, &cfg).expect("retry must recover");
        (v, route)
    });
    assert!(matches!(route, genpar_exec::ExecRoute::Parallel { .. }));
    assert_eq!(v, truth);
    let (v, route) = with_fault("exec.morsel:*", || {
        let (v, _, route) =
            genpar_exec::eval_query(&q, &c, &cfg).expect("exhaustion must degrade, not error");
        (v, route)
    });
    assert!(matches!(route, genpar_exec::ExecRoute::Fallback { .. }));
    assert_eq!(v, truth);
}

#[test]
fn shared_budget_caps_parallel_run() {
    let _g = match FAULT_LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    let c = catalog();
    // the product of 100 × 100 rows blows a 2k-step budget across all
    // workers together — the shared meter is one pool, not per-worker
    let plan = lower(&Query::rel("R").product(Query::rel("S"))).unwrap();
    let cfg = ExecConfig::serial().with_workers(4).with_morsel_rows(8);
    let scope = genpar_guard::ExecBudget::default()
        .with_max_steps(2_000)
        .enter();
    let err = plan.eval_parallel(&c, &cfg).unwrap_err();
    drop(scope);
    assert!(err.is_budget(), "expected budget breach, got {err:?}");
    match err {
        ExecError::Budget { resource, .. } => {
            assert_eq!(resource, genpar_guard::Resource::Steps);
        }
        other => panic!("expected Budget, got {other:?}"),
    }
    // without the budget the same plan completes
    assert!(plan.eval_parallel(&c, &cfg).is_ok());
}

#[test]
fn rows_cap_fires_on_parallel_output() {
    let _g = match FAULT_LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    let c = catalog();
    let plan = lower(&Query::rel("R")).unwrap();
    let cfg = ExecConfig::serial().with_workers(4).with_morsel_rows(8);
    let scope = genpar_guard::ExecBudget::default()
        .with_max_rows(10)
        .enter();
    let err = plan.eval_parallel(&c, &cfg).unwrap_err();
    drop(scope);
    assert!(err.is_budget(), "{err:?}");
    assert!(err.to_string().contains("rows limit 10"), "{err}");
}
