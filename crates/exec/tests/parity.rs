//! Serial-vs-parallel parity: on every workload in the relational
//! fragment, the parallel executor's result is `Value`-identical to the
//! serial engine's and to the algebra evaluator's — across worker counts
//! and morsel sizes, including degenerate ones. This is the executable
//! form of the partition-safety argument: deterministic hash routing +
//! canonical merge ⇒ the same set, in the same canonical order.

use genpar_algebra::{Pred, Query, ValueFn};
use genpar_engine::plan::lower;
use genpar_engine::schema::{Catalog, Schema};
use genpar_engine::table::Table;
use genpar_engine::workload::{generate_keyed_pair, generate_table, WorkloadSpec};
use genpar_exec::{EvalParallel, ExecConfig, ExecRoute};
use genpar_value::{rows_to_value, CvType, Value};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn small_catalog() -> Catalog {
    let mut r = Table::new("R", Schema::uniform(CvType::int(), 2));
    for i in 0..40 {
        r.insert(vec![Value::Int(i), Value::Int(i % 5)]);
    }
    let mut s = Table::new("S", Schema::uniform(CvType::int(), 2));
    for i in 20..60 {
        s.insert(vec![Value::Int(i), Value::Int(i % 5)]);
    }
    Catalog::new().with(r).with(s)
}

fn workload_catalog() -> Catalog {
    let mut rng = StdRng::seed_from_u64(42);
    let (r, s) = generate_keyed_pair(&mut rng, 500, 3, 0.4);
    let t = generate_table(
        &mut rng,
        "T",
        WorkloadSpec {
            rows: 300,
            arity: 2,
            value_range: 50,
            key_on_first: false,
        },
    );
    Catalog::new().with(r).with(s).with(t)
}

fn tier1_queries() -> Vec<Query> {
    vec![
        // every lowerable operator, alone and composed
        Query::rel("R"),
        Query::rel("R").select(Pred::eq_const(1, Value::Int(0))),
        Query::rel("R").project([1]),
        Query::rel("R").map(ValueFn::Cols(vec![1, 0])),
        Query::rel("R").union(Query::rel("S")),
        Query::rel("R").intersect(Query::rel("S")),
        Query::rel("R").difference(Query::rel("S")),
        Query::rel("R").product(Query::rel("S")),
        Query::rel("R").join_on(Query::rel("S"), [(0, 0)]),
        Query::rel("R").join_on(Query::rel("S"), [(0, 0), (1, 1)]),
        Query::rel("R")
            .select(Pred::eq_cols(1, 1))
            .union(Query::rel("S"))
            .project([0]),
        Query::rel("R")
            .join_on(Query::rel("S"), [(1, 1)])
            .project([0, 2])
            .select(Pred::eq_cols(0, 0)),
        Query::rel("R")
            .difference(Query::rel("S"))
            .map(ValueFn::Cols(vec![0]))
            .union(Query::rel("S").project([0])),
    ]
}

fn assert_parity(catalog: &Catalog, q: &Query, cfg: &ExecConfig) {
    let plan = lower(q).expect("tier-1 queries lower");
    let (serial_rows, _) = plan.execute(catalog).expect("serial ok");
    let (par_rows, _) = plan.eval_parallel(catalog, cfg).expect("parallel ok");
    let serial_v = rows_to_value(serial_rows);
    let par_v = rows_to_value(par_rows.clone());
    assert_eq!(
        serial_v, par_v,
        "parallel != serial for {q} at workers={} morsel_rows={}",
        cfg.workers, cfg.morsel_rows
    );
    // and rows come out already canonically ordered
    let recanon = genpar_value::canonical_rows(par_rows.clone());
    assert_eq!(par_rows, recanon, "parallel rows not canonical for {q}");
}

#[test]
fn parallel_matches_serial_on_tier1_queries() {
    let small = small_catalog();
    let big = workload_catalog();
    for q in tier1_queries() {
        for workers in [2, 4, 8] {
            for morsel_rows in [1, 7, 1024] {
                let cfg = ExecConfig::serial()
                    .with_workers(workers)
                    .with_morsel_rows(morsel_rows);
                assert_parity(&small, &q, &cfg);
            }
        }
        // workload-scale, default morsels
        assert_parity(&big, &q, &ExecConfig::serial().with_workers(4));
    }
}

#[test]
fn workload_join_parity_at_scale() {
    let c = workload_catalog();
    let q = Query::rel("R")
        .join_on(Query::rel("S"), [(0, 0)])
        .select(Pred::eq_cols(1, 1))
        .project([0, 1, 4]);
    for workers in [2, 4] {
        assert_parity(
            &c,
            &q,
            &ExecConfig::serial()
                .with_workers(workers)
                .with_morsel_rows(64),
        );
    }
}

#[test]
fn eval_query_routes_parallel_with_certificate() {
    let c = small_catalog();
    let q = Query::rel("R")
        .join_on(Query::rel("S"), [(0, 0)])
        .project([0]);
    let (v, _, route) = eval_query(&c, &q, 4);
    match route {
        ExecRoute::Parallel {
            workers,
            certificate,
        } => {
            assert_eq!(workers, 4);
            assert!(certificate.contains("certified"), "{certificate}");
        }
        other => panic!("expected Parallel route, got {other:?}"),
    }
    let (sv, _, sroute) = eval_query(&c, &q, 1);
    assert_eq!(sroute, ExecRoute::Serial);
    assert_eq!(v, sv);
}

// thin wrapper so route tests read naturally
fn eval_query(
    c: &Catalog,
    q: &Query,
    workers: usize,
) -> (Value, genpar_engine::plan::ExecStats, ExecRoute) {
    genpar_exec::eval_query(q, c, &ExecConfig::serial().with_workers(workers))
        .expect("eval_query ok")
}

#[test]
fn non_partition_safe_queries_fall_back_with_event() {
    let c = small_catalog();
    genpar_obs::reset();
    let q = Query::Adom(Box::new(Query::rel("R")));
    let (v, _, route) = eval_query(&c, &q, 4);
    match route {
        ExecRoute::Fallback { op, reason } => {
            assert_eq!(op, "adom");
            assert!(reason.contains("whole-input"), "{reason}");
        }
        other => panic!("expected Fallback route, got {other:?}"),
    }
    // the fallback computed the right answer (adom of R is non-empty)
    assert!(v.as_set().is_some_and(|s| !s.is_empty()));
    // ... and announced itself to the obs registry
    let snap = genpar_obs::snapshot();
    assert!(snap.counters.get("exec.fallbacks").copied().unwrap_or(0) >= 1);
    let ev = snap
        .events
        .iter()
        .find(|e| e.kind == "exec.fallback")
        .expect("exec.fallback event recorded");
    let op_field = ev
        .fields
        .iter()
        .find(|(k, _)| k == "op")
        .expect("fallback event has op field");
    assert_eq!(op_field.1.to_string(), "adom");
}

#[test]
fn even_and_count_take_the_combiner_route_not_fallback() {
    let c = small_catalog();
    genpar_obs::reset();
    for (q, expect) in [
        (
            Query::Even(Box::new(Query::rel("R"))),
            Value::Bool(true), // |R| = 40
        ),
        (Query::rel("R").count(), Value::Int(40)),
        (
            Query::rel("R").project([1]).count(),
            Value::Int(5), // i % 5 has five residues
        ),
        (
            Query::rel("R").sum(1),
            Value::Int((0..40).map(|i| i % 5).sum()),
        ),
    ] {
        let (v, _, route) = eval_query(&c, &q, 4);
        match route {
            ExecRoute::Parallel { certificate, .. } => {
                assert!(certificate.contains("combiner"), "{certificate}");
                assert!(certificate.contains("serial combine"), "{certificate}");
            }
            other => panic!("expected combiner Parallel route for {q}, got {other:?}"),
        }
        assert_eq!(v, expect, "wrong aggregate for {q}");
        // serial route agrees
        let (sv, _, _) = eval_query(&c, &q, 1);
        assert_eq!(v, sv, "serial/parallel disagree for {q}");
    }
    let snap = genpar_obs::snapshot();
    assert_eq!(
        snap.counters.get("exec.fallbacks").copied().unwrap_or(0),
        0,
        "certified aggregates must not fall back"
    );
    assert!(
        snap.histograms
            .get("exec.combine_us")
            .is_some_and(|h| h.count > 0),
        "combine step recorded in exec.combine_us"
    );
}

/// Satellite 2: the xor-of-partition-parities pitfall, pinned
/// (Lemma 2.12: `even(R₁∪R₂)` is not a function of `even(R₁)` and
/// `even(R₂)`). A crafted 3-partition input whose partitions have even
/// sizes (2, 2, 2): xor of the per-partition parity bits is 0, which the
/// naive scheme reads as "even parity → even(R) = true"... and on
/// (2, 2) it is also 0 — but on (1, 1) it is likewise 0 while |R| = 2 IS
/// even, and on (1, 1, 1) it is 1 while |R| = 3 is odd, so no fixed
/// reading of the xor bit is right in both cases. The combiner route
/// sums partition COUNTS instead and must return the true parity on all
/// of them.
#[test]
fn even_regression_xor_of_partition_parities_is_not_parity() {
    let q = Query::Even(Box::new(Query::rel("R")));
    // (rows, morsel_rows, workers): partitions sizes and the two naive
    // xor readings — parity-bit xor and even-flag xor — each wrong on
    // one of these inputs, while the true answer is |rows| mod 2 == 0.
    for (rows, morsel_rows, workers) in [(3usize, 1usize, 3usize), (6, 2, 3), (4, 2, 2), (2, 1, 2)]
    {
        let mut r = Table::new("R", Schema::uniform(CvType::int(), 1));
        for i in 0..rows {
            r.insert(vec![Value::Int(i as i64)]);
        }
        let c = Catalog::new().with(r);
        let cfg = ExecConfig::serial()
            .with_workers(workers)
            .with_morsel_rows(morsel_rows);
        let truth = rows % 2 == 0;
        // naive per-partition flags for this exact chunking
        let nparts = rows.div_ceil(morsel_rows);
        let even_flags: Vec<bool> = (0..nparts)
            .map(|p| (morsel_rows.min(rows - p * morsel_rows)) % 2 == 0)
            .collect();
        let xor_of_even_flags = even_flags.iter().fold(false, |a, &b| a ^ b);
        let (v, _, route) = genpar_exec::eval_query(&q, &c, &cfg).expect("eval ok");
        assert!(
            matches!(route, ExecRoute::Parallel { .. }),
            "combiner route expected for even(R)"
        );
        assert_eq!(v, Value::Bool(truth), "wrong parity for |R|={rows}");
        if rows == 4 {
            // the pinned counterexample: two even partitions, xor of
            // even-flags = false, truth = true
            assert_ne!(
                truth, xor_of_even_flags,
                "xor of partition even-flags must disagree on (2,2)"
            );
        }
    }
}

#[test]
fn fixpoint_routes_parallel_and_matches_serial() {
    // transitive closure of a chain + a cycle, via fix[X](E, π(X⋈E))
    let mut e = Table::new("E", Schema::uniform(CvType::int(), 2));
    for i in 0..30 {
        e.insert(vec![Value::Int(i), Value::Int(i + 1)]);
    }
    e.insert(vec![Value::Int(30), Value::Int(0)]); // close the cycle
    let c = Catalog::new().with(e);
    let step = Query::rel("X")
        .join_on(Query::rel("E"), [(1, 0)])
        .project([0, 3]);
    let q = Query::fixpoint("X", Query::rel("E"), step);
    genpar_obs::reset();
    let (v, _, route) = eval_query(&c, &q, 4);
    match route {
        ExecRoute::Parallel {
            workers,
            certificate,
        } => {
            assert_eq!(workers, 4);
            assert!(
                certificate.contains("per-round body certified"),
                "{certificate}"
            );
            assert!(
                certificate.contains("semi-naive deltas: yes"),
                "{certificate}"
            );
        }
        other => panic!("expected Parallel route, got {other:?}"),
    }
    let (sv, _, sroute) = eval_query(&c, &q, 1);
    assert_eq!(sroute, ExecRoute::Serial);
    assert_eq!(v, sv, "parallel fixpoint != serial fixpoint");
    // a closed 31-cycle's closure is complete: 31 × 31 pairs
    assert_eq!(v.as_set().map(|s| s.len()), Some(31 * 31));
    let snap = genpar_obs::snapshot();
    assert!(
        snap.counters
            .get("exec.fixpoint_rounds")
            .copied()
            .unwrap_or(0)
            >= 2
    );
    assert!(
        snap.histograms
            .get("exec.fixpoint_round_us")
            .is_some_and(|h| h.count > 0),
        "per-round latency recorded"
    );
    fn has_span(nodes: &[genpar_obs::SpanNode], name: &str) -> bool {
        nodes
            .iter()
            .any(|n| n.name == name || has_span(&n.children, name))
    }
    assert!(
        has_span(&snap.spans, "exec.fixpoint"),
        "exec.fixpoint span recorded"
    );
    assert!(
        has_span(&snap.spans, "exec.fixpoint_round"),
        "per-round spans recorded"
    );
}

#[test]
fn nonlinear_fixpoint_body_runs_full_accumulator_rounds() {
    // X ⋈ X mentions the loop variable twice: not semi-naive eligible,
    // but still round-safe — each round re-evaluates on the full
    // accumulator and must agree with serial evaluation.
    let mut e = Table::new("E", Schema::uniform(CvType::int(), 2));
    for i in 0..12 {
        e.insert(vec![Value::Int(i), Value::Int(i + 1)]);
    }
    let c = Catalog::new().with(e);
    let step = Query::rel("X")
        .join_on(Query::rel("X"), [(1, 0)])
        .project([0, 3]);
    let q = Query::fixpoint("X", Query::rel("E"), step);
    let (v, _, route) = eval_query(&c, &q, 4);
    match route {
        ExecRoute::Parallel { certificate, .. } => {
            assert!(
                certificate.contains("semi-naive deltas: no"),
                "{certificate}"
            );
        }
        other => panic!("expected Parallel route, got {other:?}"),
    }
    let (sv, _, _) = eval_query(&c, &q, 1);
    assert_eq!(v, sv, "nonlinear fixpoint parallel != serial");
    // TC of a 13-node path: n(n-1)/2 ordered reachable pairs
    assert_eq!(v.as_set().map(|s| s.len()), Some(13 * 12 / 2));
}

#[test]
fn fixpoint_depth_budget_propagates_in_parallel_route() {
    // divergent-ish body bounded by an armed depth budget: the parallel
    // route reports the same Depth breach the serial loop would
    let mut e = Table::new("E", Schema::uniform(CvType::int(), 2));
    for i in 0..64 {
        e.insert(vec![Value::Int(i), Value::Int(i + 1)]);
    }
    let c = Catalog::new().with(e);
    let step = Query::rel("X")
        .join_on(Query::rel("E"), [(1, 0)])
        .project([0, 3]);
    let q = Query::fixpoint("X", Query::rel("E"), step);
    let budget = genpar_guard::ExecBudget::unlimited().with_max_depth(3);
    let _scope = budget.enter();
    let err = genpar_exec::eval_query(&q, &c, &ExecConfig::serial().with_workers(4)).unwrap_err();
    match err {
        genpar_engine::plan::ExecError::Budget { resource, .. } => {
            assert_eq!(resource, genpar_guard::Resource::Depth);
        }
        other => panic!("expected a Depth budget error, got {other:?}"),
    }
}

#[test]
fn powerset_falls_back_and_matches_algebra() {
    let mut r = Table::new("R", Schema::uniform(CvType::int(), 1));
    for i in 0..4 {
        r.insert(vec![Value::Int(i)]);
    }
    let c = Catalog::new().with(r);
    let q = Query::Powerset(Box::new(Query::rel("R")));
    let (v, _, route) = eval_query(&c, &q, 4);
    assert!(matches!(route, ExecRoute::Fallback { op: "powerset", .. }));
    assert_eq!(v.as_set().map(|s| s.len()), Some(16)); // 2^4 subsets
}

#[test]
fn opaque_map_closure_falls_back() {
    let c = small_catalog();
    let q = Query::rel("R").map(ValueFn::custom(|v| v.clone()));
    let (_, _, route) = eval_query(&c, &q, 4);
    assert!(
        matches!(route, ExecRoute::Fallback { op: "map", .. }),
        "uncertified closures must not run parallel: {route:?}"
    );
}

#[test]
fn unknown_table_errors_in_parallel_too() {
    let c = small_catalog();
    let plan = lower(&Query::rel("ZZZ")).unwrap();
    let err = plan
        .eval_parallel(&c, &ExecConfig::serial().with_workers(4))
        .unwrap_err();
    assert!(matches!(
        err,
        genpar_engine::plan::ExecError::UnknownTable(_)
    ));
}

#[test]
fn worker_spans_and_morsel_counters_recorded() {
    let c = workload_catalog();
    genpar_obs::reset();
    let plan = lower(&Query::rel("R").select(Pred::eq_cols(0, 0))).unwrap();
    let cfg = ExecConfig::serial().with_workers(4).with_morsel_rows(32);
    plan.eval_parallel(&c, &cfg).unwrap();
    let snap = genpar_obs::snapshot();
    assert!(snap.counters.get("exec.morsels").copied().unwrap_or(0) >= 2);
    assert!(snap.counters.get("exec.executions") == Some(&1));
    assert!(
        snap.spans.iter().any(|s| s.name == "exec.worker"),
        "worker spans recorded as top-level spans"
    );
    assert!(
        snap.spans.iter().any(|s| s.name == "exec.parallel"),
        "exec.parallel span recorded"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite 1's equality property: random relational-fragment
    /// queries over random tables evaluate `Value`-identically on the
    /// serial engine and the parallel executor, at every tested worker
    /// count and morsel size.
    #[test]
    fn prop_parallel_value_equals_serial(
        rows_r in proptest::collection::vec((0i64..30, 0i64..6), 0..60),
        rows_s in proptest::collection::vec((0i64..30, 0i64..6), 0..60),
        workers in 2usize..6,
        morsel_rows in 1usize..40,
        pick in 0usize..9,
    ) {
        let mut r = Table::new("R", Schema::uniform(CvType::int(), 2));
        for (a, b) in rows_r {
            r.insert(vec![Value::Int(a), Value::Int(b)]);
        }
        let mut s = Table::new("S", Schema::uniform(CvType::int(), 2));
        for (a, b) in rows_s {
            s.insert(vec![Value::Int(a), Value::Int(b)]);
        }
        let c = Catalog::new().with(r).with(s);
        let qs = tier1_queries();
        let q = &qs[pick % qs.len()];
        let plan = lower(q).expect("lowerable");
        let cfg = ExecConfig::serial().with_workers(workers).with_morsel_rows(morsel_rows);
        let (serial_rows, _) = plan.execute(&c).expect("serial ok");
        let (par_rows, _) = plan.eval_parallel(&c, &cfg).expect("parallel ok");
        prop_assert_eq!(rows_to_value(serial_rows), rows_to_value(par_rows));
    }
}
