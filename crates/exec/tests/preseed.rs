//! The persisted-morsel-size preseed must win first touch of the global
//! tuner — and lose to an explicit `GENPAR_MORSEL`.
//!
//! This file holds exactly one test so it owns its test binary: nothing
//! else can initialize the process-global tuner before it runs.

#[test]
fn preseed_seeds_the_global_tuner_before_first_use() {
    if std::env::var(genpar_exec::tune::MORSEL_ENV).is_ok() {
        // the environment always outranks a persisted seed — under a
        // pinned run there is nothing to assert about first touch
        assert!(!genpar_exec::tune::preseed(2048));
        return;
    }
    // first touch: the persisted size (clamped to the tuner bounds) wins
    assert!(genpar_exec::tune::preseed(2048));
    assert_eq!(genpar_exec::tune::tuner().rows(), 2048);
    // a second seed is a no-op: the tuner is already initialized
    assert!(!genpar_exec::tune::preseed(4096));
    assert_eq!(genpar_exec::tune::tuner().rows(), 2048);
}
