//! Morsels and deterministic hash partitioning.
//!
//! Base inputs are cut into fixed-size row chunks ("morsels") that become
//! the unit of scheduling on the worker pool. Operators that need equal
//! rows (or equal join keys) to meet — set operations, hash join — are
//! instead *hash-partitioned*: every row is routed by an FNV-1a hash of
//! the relevant columns, so equal values land in the same partition on
//! every run and on every worker count. Determinism of the routing (plus
//! the canonical merge in `kernels`) is what makes parallel results
//! `Value`-identical to serial ones.

use genpar_value::Value;
use std::hash::{Hash, Hasher};

/// Default number of rows per morsel.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// A fixed-seed FNV-1a hasher: deterministic across processes and worker
/// counts (unlike `std`'s `RandomState`), cheap, and good enough for
/// partition routing.
struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

/// Deterministic hash of one value.
pub fn value_hash(v: &Value) -> u64 {
    let mut h = Fnv64::new();
    v.hash(&mut h);
    h.finish()
}

/// Partition index for a whole row (used by ∪/∩/−: equal rows must meet).
pub fn row_partition(row: &[Value], parts: usize) -> usize {
    let mut h = Fnv64::new();
    row.hash(&mut h);
    (h.finish() % parts.max(1) as u64) as usize
}

/// Partition index for a join key column (equal keys must meet).
/// Out-of-range columns route to partition 0; the kernel's own column
/// access reports the error.
pub fn key_partition(row: &[Value], col: usize, parts: usize) -> usize {
    match row.get(col) {
        Some(v) => (value_hash(v) % parts.max(1) as u64) as usize,
        None => 0,
    }
}

/// Cut rows into morsels of at most `morsel_rows` rows each.
pub fn chunk_rows(rows: Vec<Vec<Value>>, morsel_rows: usize) -> Vec<Vec<Vec<Value>>> {
    let m = morsel_rows.max(1);
    let mut out = Vec::with_capacity(rows.len() / m + 1);
    let mut cur: Vec<Vec<Value>> = Vec::with_capacity(m.min(rows.len()));
    for r in rows {
        cur.push(r);
        if cur.len() == m {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Route rows into `parts` buckets by `route`.
pub fn partition_rows(
    rows: Vec<Vec<Value>>,
    parts: usize,
    route: impl Fn(&[Value]) -> usize,
) -> Vec<Vec<Vec<Value>>> {
    let parts = parts.max(1);
    let mut out: Vec<Vec<Vec<Value>>> = (0..parts).map(|_| Vec::new()).collect();
    for r in rows {
        let p = route(&r) % parts;
        out[p].push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: i64) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| vec![Value::Int(i), Value::Int(i % 3)])
            .collect()
    }

    #[test]
    fn chunking_covers_all_rows() {
        let chunks = chunk_rows(rows(10), 3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.iter().map(Vec::len).sum::<usize>(), 10);
        assert_eq!(chunks[3].len(), 1);
        assert!(chunk_rows(Vec::new(), 3).is_empty());
        // morsel_rows == 0 must not loop or panic
        assert_eq!(chunk_rows(rows(2), 0).len(), 2);
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let a = row_partition(&[Value::Int(7), Value::Int(1)], 8);
        let b = row_partition(&[Value::Int(7), Value::Int(1)], 8);
        assert_eq!(a, b);
        assert!(a < 8);
        // equal key values meet regardless of the rest of the row
        let p1 = key_partition(&[Value::Int(5), Value::Int(0)], 0, 8);
        let p2 = key_partition(&[Value::Int(5), Value::Int(99)], 0, 8);
        assert_eq!(p1, p2);
    }

    #[test]
    fn partitioning_is_a_permutation() {
        let input = rows(50);
        let parts = partition_rows(input.clone(), 4, |r| row_partition(r, 4));
        let mut flat: Vec<_> = parts.into_iter().flatten().collect();
        flat.sort();
        let mut want = input;
        want.sort();
        assert_eq!(flat, want);
    }
}
