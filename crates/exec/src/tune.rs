//! Observation-driven morsel sizing.
//!
//! The static `morsel_rows = 1024` default is a guess; the right size is
//! whatever makes one morsel cost roughly [`TARGET_MORSEL_US`] of work —
//! big enough to amortize task dispatch, small enough to keep the
//! work-stealing pool load-balanced. A [`MorselTuner`] closes the loop:
//! after each kernel batch the executor reports the batch's per-morsel
//! latency samples (the same values recorded into the `exec.morsel_us`
//! histogram), the tuner computes the batch's **p95**, and steps the
//! global morsel size by **powers of two** toward the target, bounded to
//! `[`[`MIN_MORSEL_ROWS`]`, `[`MAX_MORSEL_ROWS`]`]`.
//!
//! ## Why p95, not the mean
//!
//! The mean under-weights the straggler tail: one morsel ten times the
//! target drags pool load balance far more than ten slightly-slow
//! morsels, yet barely moves the batch mean. Steering on the tail keeps
//! the *slowest* morsels near the target, which is what bounds the
//! end-of-batch barrier wait. The batch p95 is computed exactly here
//! (sorted copy, ceil-rank) rather than read back from the log-bucketed
//! histogram, whose upper-bound quantiles carry up to 12.5% bucket error.
//!
//! ## Convergence
//!
//! Steps fire only when the p95 leaves the factor-two stable band
//! `[TARGET/2, 2·TARGET]`. Under any workload where per-morsel latency
//! grows monotonically with morsel size (true of every per-row kernel),
//! doubling from below the band or halving from above moves the p95
//! toward the band by roughly a factor of two per batch, and once inside
//! the band no step fires — so the size settles, within one power-of-two
//! step of the latency-optimal size, after O(log) batches, and cannot
//! oscillate: a size whose p95 is in-band is a fixed point.
//!
//! ## Control
//!
//! `GENPAR_MORSEL=fixed:N` pins the size (auto-tuning off), plain
//! `GENPAR_MORSEL=N` sets the starting size but lets tuning run, and
//! [`ExecConfig::with_morsel_rows`](crate::ExecConfig::with_morsel_rows)
//! pins per-config. Every applied step emits an `exec.retune` obs event
//! with the old and new sizes and the batch p95 that triggered it.

use crate::morsel::DEFAULT_MORSEL_ROWS;
use genpar_obs::FieldValue;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable controlling the morsel tuner: `fixed:N` pins the
/// morsel size at `N`; a plain integer `N` sets the initial size.
pub const MORSEL_ENV: &str = "GENPAR_MORSEL";

/// Per-morsel latency the tuner steers toward, in microseconds.
pub const TARGET_MORSEL_US: u64 = 100;
/// Smallest morsel the tuner will select.
pub const MIN_MORSEL_ROWS: usize = 64;
/// Largest morsel the tuner will select.
pub const MAX_MORSEL_ROWS: usize = 65_536;

/// Exact p95 of a latency batch: the smallest sample such that at least
/// 95% of the batch is ≤ it (ceil-rank on a sorted copy). `None` for an
/// empty batch.
fn batch_p95(samples: &[u64]) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (sorted.len() * 95).div_ceil(100).max(1);
    Some(sorted[rank - 1])
}

/// A feedback controller for the global morsel size. Shared by all
/// kernel batches; lock-free (one atomic holds the current size).
#[derive(Debug)]
pub struct MorselTuner {
    rows: AtomicUsize,
    pinned: bool,
}

impl MorselTuner {
    /// A tuner starting at `initial` rows (clamped to the bounds unless
    /// pinned — a pin is honoured exactly).
    pub fn new(initial: usize, pinned: bool) -> MorselTuner {
        let rows = if pinned {
            initial.max(1)
        } else {
            initial.clamp(MIN_MORSEL_ROWS, MAX_MORSEL_ROWS)
        };
        MorselTuner {
            rows: AtomicUsize::new(rows),
            pinned,
        }
    }

    /// A tuner configured from [`MORSEL_ENV`]. Unset (or unparsable)
    /// means: start at [`DEFAULT_MORSEL_ROWS`], tuning on.
    pub fn from_env() -> MorselTuner {
        match std::env::var(MORSEL_ENV) {
            Ok(v) => Self::parse_env(&v),
            Err(_) => MorselTuner::new(DEFAULT_MORSEL_ROWS, false),
        }
    }

    fn parse_env(v: &str) -> MorselTuner {
        let v = v.trim();
        if let Some(n) = v.strip_prefix("fixed:") {
            match n.trim().parse::<usize>() {
                Ok(n) if n > 0 => return MorselTuner::new(n, true),
                _ => return MorselTuner::new(DEFAULT_MORSEL_ROWS, true),
            }
        }
        match v.parse::<usize>() {
            Ok(n) if n > 0 => MorselTuner::new(n, false),
            _ => MorselTuner::new(DEFAULT_MORSEL_ROWS, false),
        }
    }

    /// The morsel size kernels should chunk with right now.
    pub fn rows(&self) -> usize {
        self.rows.load(Ordering::Relaxed)
    }

    /// Is the size pinned (`fixed:N`)?
    pub fn pinned(&self) -> bool {
        self.pinned
    }

    /// Feed back one kernel batch: `samples` holds each morsel's latency
    /// in microseconds. If the batch's exact p95 is outside the stable
    /// band `[TARGET/2, 2·TARGET]`, step the size one power of two toward
    /// the target (within bounds) and emit an `exec.retune` event.
    /// Returns `Some((old, new))` when a step was applied; empty batches
    /// are ignored.
    ///
    /// Concurrency: the step is a compare-exchange on the size observed
    /// at entry, so two batches finishing together apply at most one step
    /// — a stale batch (computed against a size that already moved)
    /// simply loses the race and changes nothing.
    pub fn observe_batch(&self, samples: &[u64]) -> Option<(usize, usize)> {
        if self.pinned {
            return None;
        }
        let p95_us = batch_p95(samples)?;
        let cur = self.rows.load(Ordering::Relaxed);
        let next = if p95_us < TARGET_MORSEL_US / 2 {
            (cur.saturating_mul(2)).min(MAX_MORSEL_ROWS)
        } else if p95_us > TARGET_MORSEL_US * 2 {
            (cur / 2).max(MIN_MORSEL_ROWS)
        } else {
            return None;
        };
        if next == cur
            || self
                .rows
                .compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            return None;
        }
        genpar_obs::event(
            "exec.retune",
            [
                ("old", FieldValue::U64(cur as u64)),
                ("new", FieldValue::U64(next as u64)),
                ("p95_us", FieldValue::U64(p95_us)),
                ("target_us", FieldValue::U64(TARGET_MORSEL_US)),
            ],
        );
        Some((cur, next))
    }
}

static GLOBAL_TUNER: OnceLock<MorselTuner> = OnceLock::new();

/// The process-wide tuner, configured from [`MORSEL_ENV`] on first use.
pub fn tuner() -> &'static MorselTuner {
    GLOBAL_TUNER.get_or_init(MorselTuner::from_env)
}

/// Seed the global tuner with a persisted morsel size (e.g. the
/// converged `morsel_rows` a previous `profile` run wrote into
/// `CALIBRATION.json`) **before** first use. The [`MORSEL_ENV`]
/// variable always wins: when it is set, the seed is ignored so an
/// explicit `fixed:N` pin or initial size keeps its meaning. Returns
/// whether the seed took effect (false when the tuner was already
/// initialized or the environment overrode it).
pub fn preseed(rows: usize) -> bool {
    if std::env::var(MORSEL_ENV).is_ok_and(|s| !s.trim().is_empty()) {
        return false;
    }
    let clamped = rows.clamp(MIN_MORSEL_ROWS, MAX_MORSEL_ROWS);
    GLOBAL_TUNER.set(MorselTuner::new(clamped, false)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic workload: each row costs 0.1µs, so a morsel of `rows`
    /// takes `rows / 10` µs and the 100µs-optimal size is 1000 rows —
    /// between the power-of-two steps 512 and 1024. Uniform per-morsel
    /// latencies: the batch p95 equals the per-morsel cost exactly.
    fn synthetic_batch(tuner: &MorselTuner, morsels: usize) -> Vec<u64> {
        let rows = tuner.rows() as u64;
        vec![rows / 10; morsels]
    }

    #[test]
    fn converges_from_below_within_one_step_of_optimum() {
        let t = MorselTuner::new(MIN_MORSEL_ROWS, false);
        let mut steps = Vec::new();
        for _ in 0..20 {
            if let Some(s) = t.observe_batch(&synthetic_batch(&t, 8)) {
                steps.push(s);
            }
        }
        // 64 → 128 → 256 → 512, then 51µs is inside [50, 200]: stable
        assert_eq!(t.rows(), 512, "steps: {steps:?}");
        assert!(steps.len() <= 4, "must settle, not oscillate: {steps:?}");
        // optimum is 1000 rows ⇒ within ±1 power-of-two step
        assert!((512..=2048).contains(&t.rows()));
    }

    #[test]
    fn converges_from_above_within_one_step_of_optimum() {
        let t = MorselTuner::new(MAX_MORSEL_ROWS, false);
        for _ in 0..20 {
            t.observe_batch(&synthetic_batch(&t, 8));
        }
        // 65536 → … → 2048 (204µs > 200) → 1024 (102µs): stable
        assert_eq!(t.rows(), 1024);
        assert!((512..=2048).contains(&t.rows()));
    }

    #[test]
    fn stable_band_is_a_fixed_point() {
        let t = MorselTuner::new(1024, false);
        // p95 exactly at target: no movement, no event
        assert_eq!(t.observe_batch(&[TARGET_MORSEL_US; 4]), None);
        assert_eq!(t.rows(), 1024);
        // band edges: 50µs and 200µs both stable
        assert_eq!(t.observe_batch(&[TARGET_MORSEL_US / 2]), None);
        assert_eq!(t.observe_batch(&[TARGET_MORSEL_US * 2]), None);
    }

    #[test]
    fn p95_steers_on_the_tail_not_the_mean() {
        // 9 fast morsels and one straggler: the mean is 49.5µs (a
        // mean-driven tuner would double the size) but the p95 sees the
        // 450µs tail and halves it instead.
        let t = MorselTuner::new(1024, false);
        let mut batch = vec![5u64; 9];
        batch.push(450);
        assert_eq!(t.observe_batch(&batch), Some((1024, 512)));
        assert_eq!(t.rows(), 512);
    }

    #[test]
    fn exact_p95_uses_ceil_rank() {
        assert_eq!(batch_p95(&[]), None);
        assert_eq!(batch_p95(&[42]), Some(42));
        // 20 samples: rank ceil(0.95·20)=19 → the 19th smallest
        let v: Vec<u64> = (1..=20).collect();
        assert_eq!(batch_p95(&v), Some(19));
        // 10 samples: rank ceil(9.5)=10 → the max
        let v: Vec<u64> = (1..=10).collect();
        assert_eq!(batch_p95(&v), Some(10));
    }

    #[test]
    fn steps_respect_bounds() {
        let t = MorselTuner::new(MIN_MORSEL_ROWS, false);
        // far too slow: wants to halve but is already at the floor
        assert_eq!(t.observe_batch(&[10_000]), None);
        assert_eq!(t.rows(), MIN_MORSEL_ROWS);
        let t = MorselTuner::new(MAX_MORSEL_ROWS, false);
        // instant morsels: wants to double but is at the ceiling
        assert_eq!(t.observe_batch(&vec![0; 1000]), None);
        assert_eq!(t.rows(), MAX_MORSEL_ROWS);
    }

    #[test]
    fn pinned_tuner_never_moves() {
        let t = MorselTuner::new(777, true);
        assert_eq!(t.rows(), 777, "a pin is honoured exactly, unclamped");
        assert_eq!(t.observe_batch(&[0; 10]), None);
        assert_eq!(t.observe_batch(&[100_000; 10]), None);
        assert_eq!(t.rows(), 777);
    }

    #[test]
    fn env_parsing() {
        let t = MorselTuner::parse_env("fixed:2000");
        assert!(t.pinned() && t.rows() == 2000);
        let t = MorselTuner::parse_env("256");
        assert!(!t.pinned() && t.rows() == 256);
        let t = MorselTuner::parse_env("garbage");
        assert!(!t.pinned() && t.rows() == DEFAULT_MORSEL_ROWS);
        let t = MorselTuner::parse_env("fixed:zero");
        assert!(t.pinned() && t.rows() == DEFAULT_MORSEL_ROWS);
    }

    #[test]
    fn empty_batch_is_ignored() {
        let t = MorselTuner::new(1024, false);
        assert_eq!(t.observe_batch(&[]), None);
        assert_eq!(t.rows(), 1024);
    }
}
