//! Observation-driven morsel sizing.
//!
//! The static `morsel_rows = 1024` default is a guess; the right size is
//! whatever makes one morsel cost roughly [`TARGET_MORSEL_US`] of work —
//! big enough to amortize task dispatch, small enough to keep the
//! work-stealing pool load-balanced. A [`MorselTuner`] closes the loop:
//! after each kernel batch the executor reports the batch's mean
//! per-morsel latency (measured into the `exec.morsel_us` histogram),
//! and the tuner steps the global morsel size by **powers of two** toward
//! the target, bounded to `[`[`MIN_MORSEL_ROWS`]`, `[`MAX_MORSEL_ROWS`]`]`.
//!
//! ## Convergence
//!
//! Steps fire only when the mean leaves the factor-two stable band
//! `[TARGET/2, 2·TARGET]`. Under any workload where per-morsel latency
//! grows monotonically with morsel size (true of every per-row kernel),
//! doubling from below the band or halving from above moves the mean
//! toward the band by roughly a factor of two per batch, and once inside
//! the band no step fires — so the size settles, within one power-of-two
//! step of the latency-optimal size, after O(log) batches, and cannot
//! oscillate: a size whose mean is in-band is a fixed point.
//!
//! ## Control
//!
//! `GENPAR_MORSEL=fixed:N` pins the size (auto-tuning off), plain
//! `GENPAR_MORSEL=N` sets the starting size but lets tuning run, and
//! [`ExecConfig::with_morsel_rows`](crate::ExecConfig::with_morsel_rows)
//! pins per-config. Every applied step emits an `exec.retune` obs event
//! with the old and new sizes.

use crate::morsel::DEFAULT_MORSEL_ROWS;
use genpar_obs::FieldValue;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable controlling the morsel tuner: `fixed:N` pins the
/// morsel size at `N`; a plain integer `N` sets the initial size.
pub const MORSEL_ENV: &str = "GENPAR_MORSEL";

/// Per-morsel latency the tuner steers toward, in microseconds.
pub const TARGET_MORSEL_US: u64 = 100;
/// Smallest morsel the tuner will select.
pub const MIN_MORSEL_ROWS: usize = 64;
/// Largest morsel the tuner will select.
pub const MAX_MORSEL_ROWS: usize = 65_536;

/// A feedback controller for the global morsel size. Shared by all
/// kernel batches; lock-free (one atomic holds the current size).
#[derive(Debug)]
pub struct MorselTuner {
    rows: AtomicUsize,
    pinned: bool,
}

impl MorselTuner {
    /// A tuner starting at `initial` rows (clamped to the bounds unless
    /// pinned — a pin is honoured exactly).
    pub fn new(initial: usize, pinned: bool) -> MorselTuner {
        let rows = if pinned {
            initial.max(1)
        } else {
            initial.clamp(MIN_MORSEL_ROWS, MAX_MORSEL_ROWS)
        };
        MorselTuner {
            rows: AtomicUsize::new(rows),
            pinned,
        }
    }

    /// A tuner configured from [`MORSEL_ENV`]. Unset (or unparsable)
    /// means: start at [`DEFAULT_MORSEL_ROWS`], tuning on.
    pub fn from_env() -> MorselTuner {
        match std::env::var(MORSEL_ENV) {
            Ok(v) => Self::parse_env(&v),
            Err(_) => MorselTuner::new(DEFAULT_MORSEL_ROWS, false),
        }
    }

    fn parse_env(v: &str) -> MorselTuner {
        let v = v.trim();
        if let Some(n) = v.strip_prefix("fixed:") {
            match n.trim().parse::<usize>() {
                Ok(n) if n > 0 => return MorselTuner::new(n, true),
                _ => return MorselTuner::new(DEFAULT_MORSEL_ROWS, true),
            }
        }
        match v.parse::<usize>() {
            Ok(n) if n > 0 => MorselTuner::new(n, false),
            _ => MorselTuner::new(DEFAULT_MORSEL_ROWS, false),
        }
    }

    /// The morsel size kernels should chunk with right now.
    pub fn rows(&self) -> usize {
        self.rows.load(Ordering::Relaxed)
    }

    /// Is the size pinned (`fixed:N`)?
    pub fn pinned(&self) -> bool {
        self.pinned
    }

    /// Feed back one kernel batch: `morsels` tasks took `total_us`
    /// microseconds altogether. If the mean per-morsel latency is outside
    /// the stable band `[TARGET/2, 2·TARGET]`, step the size one power of
    /// two toward the target (within bounds) and emit an `exec.retune`
    /// event. Returns `Some((old, new))` when a step was applied.
    ///
    /// Concurrency: the step is a compare-exchange on the size observed
    /// at entry, so two batches finishing together apply at most one step
    /// — a stale batch (computed against a size that already moved)
    /// simply loses the race and changes nothing.
    pub fn observe_batch(&self, morsels: u64, total_us: u64) -> Option<(usize, usize)> {
        if self.pinned || morsels == 0 {
            return None;
        }
        let mean_us = total_us / morsels;
        let cur = self.rows.load(Ordering::Relaxed);
        let next = if mean_us < TARGET_MORSEL_US / 2 {
            (cur.saturating_mul(2)).min(MAX_MORSEL_ROWS)
        } else if mean_us > TARGET_MORSEL_US * 2 {
            (cur / 2).max(MIN_MORSEL_ROWS)
        } else {
            return None;
        };
        if next == cur
            || self
                .rows
                .compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            return None;
        }
        genpar_obs::event(
            "exec.retune",
            [
                ("old", FieldValue::U64(cur as u64)),
                ("new", FieldValue::U64(next as u64)),
                ("mean_us", FieldValue::U64(mean_us)),
                ("target_us", FieldValue::U64(TARGET_MORSEL_US)),
            ],
        );
        Some((cur, next))
    }
}

static GLOBAL_TUNER: OnceLock<MorselTuner> = OnceLock::new();

/// The process-wide tuner, configured from [`MORSEL_ENV`] on first use.
pub fn tuner() -> &'static MorselTuner {
    GLOBAL_TUNER.get_or_init(MorselTuner::from_env)
}

/// Seed the global tuner with a persisted morsel size (e.g. the
/// converged `morsel_rows` a previous `profile` run wrote into
/// `CALIBRATION.json`) **before** first use. The [`MORSEL_ENV`]
/// variable always wins: when it is set, the seed is ignored so an
/// explicit `fixed:N` pin or initial size keeps its meaning. Returns
/// whether the seed took effect (false when the tuner was already
/// initialized or the environment overrode it).
pub fn preseed(rows: usize) -> bool {
    if std::env::var(MORSEL_ENV).is_ok_and(|s| !s.trim().is_empty()) {
        return false;
    }
    let clamped = rows.clamp(MIN_MORSEL_ROWS, MAX_MORSEL_ROWS);
    GLOBAL_TUNER.set(MorselTuner::new(clamped, false)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic workload: each row costs 0.1µs, so a morsel of `rows`
    /// takes `rows / 10` µs and the 100µs-optimal size is 1000 rows —
    /// between the power-of-two steps 512 and 1024.
    fn synthetic_batch(tuner: &MorselTuner, morsels: u64) -> u64 {
        let rows = tuner.rows() as u64;
        morsels * (rows / 10)
    }

    #[test]
    fn converges_from_below_within_one_step_of_optimum() {
        let t = MorselTuner::new(MIN_MORSEL_ROWS, false);
        let mut steps = Vec::new();
        for _ in 0..20 {
            if let Some(s) = t.observe_batch(8, synthetic_batch(&t, 8)) {
                steps.push(s);
            }
        }
        // 64 → 128 → 256 → 512, then 51µs is inside [50, 200]: stable
        assert_eq!(t.rows(), 512, "steps: {steps:?}");
        assert!(steps.len() <= 4, "must settle, not oscillate: {steps:?}");
        // optimum is 1000 rows ⇒ within ±1 power-of-two step
        assert!((512..=2048).contains(&t.rows()));
    }

    #[test]
    fn converges_from_above_within_one_step_of_optimum() {
        let t = MorselTuner::new(MAX_MORSEL_ROWS, false);
        for _ in 0..20 {
            t.observe_batch(8, synthetic_batch(&t, 8));
        }
        // 65536 → … → 2048 (204µs > 200) → 1024 (102µs): stable
        assert_eq!(t.rows(), 1024);
        assert!((512..=2048).contains(&t.rows()));
    }

    #[test]
    fn stable_band_is_a_fixed_point() {
        let t = MorselTuner::new(1024, false);
        // mean exactly at target: no movement, no event
        assert_eq!(t.observe_batch(4, 4 * TARGET_MORSEL_US), None);
        assert_eq!(t.rows(), 1024);
        // band edges: 50µs and 200µs both stable
        assert_eq!(t.observe_batch(1, TARGET_MORSEL_US / 2), None);
        assert_eq!(t.observe_batch(1, TARGET_MORSEL_US * 2), None);
    }

    #[test]
    fn steps_respect_bounds() {
        let t = MorselTuner::new(MIN_MORSEL_ROWS, false);
        // far too slow: wants to halve but is already at the floor
        assert_eq!(t.observe_batch(1, 10_000), None);
        assert_eq!(t.rows(), MIN_MORSEL_ROWS);
        let t = MorselTuner::new(MAX_MORSEL_ROWS, false);
        // instant morsels: wants to double but is at the ceiling
        assert_eq!(t.observe_batch(1000, 0), None);
        assert_eq!(t.rows(), MAX_MORSEL_ROWS);
    }

    #[test]
    fn pinned_tuner_never_moves() {
        let t = MorselTuner::new(777, true);
        assert_eq!(t.rows(), 777, "a pin is honoured exactly, unclamped");
        assert_eq!(t.observe_batch(10, 0), None);
        assert_eq!(t.observe_batch(10, 1_000_000), None);
        assert_eq!(t.rows(), 777);
    }

    #[test]
    fn env_parsing() {
        let t = MorselTuner::parse_env("fixed:2000");
        assert!(t.pinned() && t.rows() == 2000);
        let t = MorselTuner::parse_env("256");
        assert!(!t.pinned() && t.rows() == 256);
        let t = MorselTuner::parse_env("garbage");
        assert!(!t.pinned() && t.rows() == DEFAULT_MORSEL_ROWS);
        let t = MorselTuner::parse_env("fixed:zero");
        assert!(t.pinned() && t.rows() == DEFAULT_MORSEL_ROWS);
    }

    #[test]
    fn empty_batch_is_ignored() {
        let t = MorselTuner::new(1024, false);
        assert_eq!(t.observe_batch(0, 0), None);
        assert_eq!(t.rows(), 1024);
    }
}
