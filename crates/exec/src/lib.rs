#![warn(missing_docs)]
// Execution paths must fail structurally, never unwrap (tests exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # genpar-exec — the genericity-aware parallel partitioned executor
//!
//! Morsel-driven parallel evaluation of physical plans, **gated by the
//! genericity checker**. The paper's central observation — generic
//! queries cannot distinguish relabelled inputs — has a physical
//! corollary: queries built from operators that distribute over
//! partition union can be evaluated per partition and canonically
//! merged, with results `Value`-identical to serial evaluation. The gate
//! ([`genpar_core::partition_safety`]) certifies exactly that fragment;
//! whole-set operators (`even`, `powerset`, active-domain tests …) and
//! uncertified opaque closures take the serial path, recorded as an
//! `exec.fallback` obs event.
//!
//! Pipeline per operator: chunk or hash-partition the input
//! ([`morsel`]), fan tasks out on a work-stealing worker pool
//! ([`pool`]), run the parallel kernel ([`kernels`]), canonically merge.
//! The run charges one shared atomic budget meter
//! ([`genpar_guard::SharedMeter`]) bridged from whatever
//! [`genpar_guard::ExecBudget`] is armed on the calling thread, passes
//! the deterministic fault sites `exec.morsel` and `exec.merge`, and
//! records `exec.*` spans and counters in the `genpar-obs` registry.
//!
//! Entry points:
//!
//! * [`EvalParallel::eval_parallel`] — extension method on
//!   [`PhysicalPlan`]: parallel evaluation of an already-lowered plan.
//! * [`eval_query`] — query-level entry: consult the gate, lower and run
//!   parallel when certified, fall back to the serial algebra evaluator
//!   otherwise. Returns the route taken alongside the result.
//!
//! Worker count comes from [`ExecConfig`]: explicit, or the
//! `GENPAR_PARALLEL` environment variable via [`ExecConfig::from_env`].

pub mod kernels;
pub mod morsel;
pub mod pool;
pub mod tune;

use genpar_algebra::{eval::eval, Db, Query, ValueFn};
use genpar_core::{partition_safety, PartitionSafety, SafetyCert};
use genpar_engine::plan::{lower, ExecError, ExecStats, PhysicalPlan};
use genpar_engine::schema::Catalog;
use genpar_guard::SharedMeter;
use genpar_obs::FieldValue;
use genpar_value::Value;
use kernels::{Ctx, Rows, SetOp};
use std::collections::BTreeSet;

pub use kernels::CombineKind;

pub use morsel::DEFAULT_MORSEL_ROWS;

/// Environment variable naming the default worker count.
pub const PARALLEL_ENV: &str = "GENPAR_PARALLEL";

/// In-place retries per failed task, when the recovery ladder should arm
/// for this run; `None` keeps the plain first-error-cancels pool (and
/// its zero-copy task hand-off).
///
/// Recovery requires holding every morsel recoverable (a clone per
/// task), so it arms only when re-running a failed task can actually
/// happen or help: fault injection is armed (every `Fault` is a
/// deterministic per-hit blip that a re-run rides out), or the operator
/// set `GENPAR_RETRY` explicitly — an opt-in to panic resilience at
/// clone cost on the clean path. `GENPAR_RETRY=0` disables the in-place
/// rung entirely, restoring the pre-ladder all-or-nothing behaviour.
fn recovery_retries() -> Option<u32> {
    let policy = genpar_guard::RetryPolicy::from_env_lossy();
    if policy.max_retries == 0 {
        return None;
    }
    let explicit = std::env::var(genpar_guard::RETRY_ENV).is_ok();
    if genpar_guard::fault::faults_armed() || explicit {
        Some(policy.max_retries)
    } else {
        None
    }
}

/// The gate every in-place re-run passes: the `exec.retry` fault site
/// (so chaos storms can fail the recovery machinery itself), plus the
/// obs trail — `exec.degrade_step.retry` counter, `exec.retry` event and
/// timeline instant. The re-run then re-enters the morsel from the top,
/// charging the shared meter again for the repeated work.
pub(crate) fn retry_gate(task: usize, attempt: u32) -> Result<(), ExecError> {
    genpar_guard::faultpoint("exec.retry").map_err(|f| ExecError::Fault(f.to_string()))?;
    genpar_obs::counter("exec.degrade_step.retry", 1);
    genpar_obs::event(
        "exec.retry",
        [
            ("task", FieldValue::U64(task as u64)),
            ("attempt", FieldValue::U64(u64::from(attempt))),
        ],
    );
    genpar_obs::timeline::record_instant("exec.retry", std::time::Instant::now());
    Ok(())
}

/// Record a rung of the degradation ladder firing: the
/// `exec.degrade_step.<step>` counter, an `exec.degrade_step` event and
/// a timeline instant. Steps: `retry` (recorded via [`retry_gate`]),
/// `quarantine` (recorded by the pool), `serial` (recorded here when a
/// route exhausts recovery and falls back whole-serial).
pub(crate) fn note_degrade(step: &'static str) {
    genpar_obs::counter(&format!("exec.degrade_step.{step}"), 1);
    genpar_obs::event("exec.degrade_step", [("step", FieldValue::from(step))]);
    genpar_obs::timeline::record_instant("exec.degrade_step", std::time::Instant::now());
}

/// Executor configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads. `<= 1` means serial (no threads spawned).
    pub workers: usize,
    /// Rows per morsel for embarrassingly-parallel operators. Only the
    /// effective size when `auto_tune` is off; otherwise the global
    /// [`tune::MorselTuner`] supplies the (observation-driven) size.
    pub morsel_rows: usize,
    /// Let the global morsel tuner pick the effective morsel size (the
    /// default). [`ExecConfig::with_morsel_rows`] turns this off, as does
    /// `GENPAR_MORSEL=fixed:N` (via the tuner itself).
    pub auto_tune: bool,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            workers: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            auto_tune: true,
        }
    }
}

impl ExecConfig {
    /// Serial configuration (one worker).
    pub fn serial() -> ExecConfig {
        ExecConfig::default()
    }

    /// Set the worker count (builder style). Zero is clamped to one.
    pub fn with_workers(mut self, workers: usize) -> ExecConfig {
        self.workers = workers.max(1);
        self
    }

    /// Set the morsel size (builder style) and **pin** it — an explicit
    /// size turns the auto-tuner off for this config. Zero is clamped to
    /// one.
    pub fn with_morsel_rows(mut self, rows: usize) -> ExecConfig {
        self.morsel_rows = rows.max(1);
        self.auto_tune = false;
        self
    }

    /// The morsel size kernels actually chunk with right now: the global
    /// tuner's current size when auto-tuning, the configured size
    /// otherwise.
    pub fn effective_morsel_rows(&self) -> usize {
        if self.auto_tune {
            tune::tuner().rows()
        } else {
            self.morsel_rows
        }
    }

    /// Configuration from the environment: `GENPAR_PARALLEL=N` sets the
    /// worker count (unset, empty or unparsable means serial).
    pub fn from_env() -> ExecConfig {
        let workers = std::env::var(PARALLEL_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(1);
        ExecConfig::default().with_workers(workers)
    }
}

/// Which path [`eval_query`] took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecRoute {
    /// The gate certified the query; it ran on the parallel executor.
    Parallel {
        /// Worker threads used.
        workers: usize,
        /// Rendering of the genericity certificate.
        certificate: String,
    },
    /// The gate refused; the serial algebra evaluator ran instead
    /// (recorded as an `exec.fallback` obs event).
    Fallback {
        /// The offending operator.
        op: &'static str,
        /// Why it cannot be partitioned.
        reason: &'static str,
    },
    /// Serial execution was requested (`workers <= 1`); the gate was
    /// never consulted.
    Serial,
}

/// Parallel evaluation of physical plans — an extension trait because
/// `genpar-exec` sits above `genpar-engine` in the crate graph.
pub trait EvalParallel {
    /// Evaluate against a catalog on `cfg.workers` threads, producing
    /// canonically-ordered deduplicated rows and summed work counters.
    /// `Value`-identical to [`PhysicalPlan::execute`] by construction:
    /// deterministic hash partitioning + canonical merge.
    fn eval_parallel(
        &self,
        catalog: &Catalog,
        cfg: &ExecConfig,
    ) -> Result<(Vec<Vec<Value>>, ExecStats), ExecError>;
}

impl EvalParallel for PhysicalPlan {
    fn eval_parallel(
        &self,
        catalog: &Catalog,
        cfg: &ExecConfig,
    ) -> Result<(Vec<Vec<Value>>, ExecStats), ExecError> {
        eval_plan_parallel(self, catalog, cfg, None)
    }
}

/// [`EvalParallel::eval_parallel`] with the gate's certificate rendering
/// when the caller ran the gate ([`eval_query`] does) — the kernels
/// attach it to every compiled expression program.
fn eval_plan_parallel(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    cfg: &ExecConfig,
    cert: Option<&str>,
) -> Result<(Vec<Vec<Value>>, ExecStats), ExecError> {
    if cfg.workers <= 1 {
        // serial request: the engine's own path (thread-local budget
        // charging, engine.* spans) is already exactly right
        return plan.execute(catalog);
    }
    // a parallel run is a fresh query on the timeline; pool workers
    // stamp the same id on every span they record for it. When an
    // obs scope is active (a served request), reuse its query id so
    // timeline records and the scope stay keyed together instead of
    // forking the numbering.
    match genpar_obs::scope::current().map(|s| s.query_id()) {
        Some(id) if id != 0 => genpar_obs::timeline::set_current_query(id),
        _ => {
            let _ = genpar_obs::timeline::begin_query();
        }
    }
    let mut sp = genpar_obs::span("exec.parallel");
    sp.field("workers", cfg.workers as u64);
    sp.field("morsel_rows", cfg.effective_morsel_rows() as u64);
    let meter = SharedMeter::from_armed();
    let ctx = Ctx {
        cfg,
        meter: meter.as_deref(),
        cert,
    };
    let mut stats = ExecStats::default();
    let rows = genpar_guard::catch_panics(|| run_plan(plan, catalog, &ctx, &mut stats))
        .map_err(ExecError::Internal)??;
    stats.rows_out = rows.len() as u64;
    genpar_obs::counter("exec.executions", 1);
    genpar_obs::counter("exec.rows_out", stats.rows_out);
    genpar_obs::counter("exec.rows_processed", stats.rows_processed);
    sp.field("rows_out", stats.rows_out);
    Ok((rows, stats))
}

fn run_plan(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    ctx: &Ctx,
    stats: &mut ExecStats,
) -> Result<Rows, ExecError> {
    let op = plan.op_name();
    let mut sp = genpar_obs::span(op);
    let mut rows_in = 0u64;
    let out: Rows = match plan {
        PhysicalPlan::Scan(name) => {
            let t = catalog
                .get(name)
                .ok_or_else(|| ExecError::UnknownTable(name.clone()))?;
            stats.rows_scanned += t.len() as u64;
            rows_in = t.len() as u64;
            sp.field("rows_in", rows_in);
            charge_source(ctx, t.len() as u64, op, stats)?;
            t.rows().cloned().collect()
        }
        PhysicalPlan::Values(rows) => {
            stats.rows_scanned += rows.len() as u64;
            rows_in = rows.len() as u64;
            sp.field("rows_in", rows_in);
            charge_source(ctx, rows.len() as u64, op, stats)?;
            genpar_value::canonical_rows(rows.iter().cloned())
        }
        PhysicalPlan::Filter(p, a) => {
            let input = run_plan(a, catalog, ctx, stats)?;
            rows_in = input.len() as u64;
            sp.field("rows_in", rows_in);
            let (rows, s) = kernels::par_filter(input, p, ctx)?;
            kernels::add_stats(stats, &s);
            rows
        }
        PhysicalPlan::Project(cols, a) => {
            let input = run_plan(a, catalog, ctx, stats)?;
            rows_in = input.len() as u64;
            sp.field("rows_in", rows_in);
            let (rows, s) = kernels::par_project(input, cols, ctx)?;
            kernels::add_stats(stats, &s);
            rows
        }
        PhysicalPlan::MapRows(f, a) => {
            let input = run_plan(a, catalog, ctx, stats)?;
            rows_in = input.len() as u64;
            sp.field("rows_in", rows_in);
            let (rows, s) = kernels::par_map(input, f, ctx)?;
            kernels::add_stats(stats, &s);
            rows
        }
        PhysicalPlan::HashJoin(on, a, b) => {
            let l = run_plan(a, catalog, ctx, stats)?;
            let r = run_plan(b, catalog, ctx, stats)?;
            rows_in = (l.len() + r.len()) as u64;
            sp.field("rows_in", rows_in);
            let (rows, s) = kernels::par_join(l, r, on, ctx)?;
            kernels::add_stats(stats, &s);
            rows
        }
        PhysicalPlan::Product(a, b) => {
            let l = run_plan(a, catalog, ctx, stats)?;
            let r = run_plan(b, catalog, ctx, stats)?;
            rows_in = (l.len() + r.len()) as u64;
            sp.field("rows_in", rows_in);
            let (rows, s) = kernels::par_product(l, r, ctx, "plan.Product")?;
            kernels::add_stats(stats, &s);
            rows
        }
        PhysicalPlan::Union(..) => setop_node(
            plan,
            SetOp::Union,
            catalog,
            ctx,
            stats,
            &mut sp,
            &mut rows_in,
        )?,
        PhysicalPlan::Intersect(..) => setop_node(
            plan,
            SetOp::Intersect,
            catalog,
            ctx,
            stats,
            &mut sp,
            &mut rows_in,
        )?,
        PhysicalPlan::Difference(..) => setop_node(
            plan,
            SetOp::Difference,
            catalog,
            ctx,
            stats,
            &mut sp,
            &mut rows_in,
        )?,
    };
    sp.field("rows_out", out.len() as u64);
    // the same observed-statistics feed the serial engine emits: one
    // event per node execution keyed by the structural fingerprint (the
    // routes agree on row counts by construction, so either path can
    // train the optimizer's store)
    if genpar_obs::enabled() {
        genpar_obs::event(
            "plan.node_stats",
            [
                ("fp", FieldValue::U64(plan.fingerprint())),
                ("op", FieldValue::Str(op.to_string())),
                ("rows_in", FieldValue::U64(rows_in)),
                ("rows_out", FieldValue::U64(out.len() as u64)),
            ],
        );
    }
    Ok(out)
}

fn setop_node(
    plan: &PhysicalPlan,
    op: SetOp,
    catalog: &Catalog,
    ctx: &Ctx,
    stats: &mut ExecStats,
    sp: &mut genpar_obs::SpanGuard,
    rows_in: &mut u64,
) -> Result<Rows, ExecError> {
    let (a, b) = match plan {
        PhysicalPlan::Union(a, b)
        | PhysicalPlan::Intersect(a, b)
        | PhysicalPlan::Difference(a, b) => (a, b),
        other => {
            return Err(ExecError::Internal(format!(
                "setop_node on non-set operator {}",
                other.op_name()
            )))
        }
    };
    let l = run_plan(a, catalog, ctx, stats)?;
    let r = run_plan(b, catalog, ctx, stats)?;
    *rows_in = (l.len() + r.len()) as u64;
    sp.field("rows_in", *rows_in);
    let (rows, s) = kernels::par_setop(l, r, op, ctx)?;
    kernels::add_stats(stats, &s);
    Ok(rows)
}

/// Source-node budget charges (scans and constant relations produce rows
/// without passing through a kernel merge).
fn charge_source(
    ctx: &Ctx,
    rows: u64,
    op: &'static str,
    stats: &ExecStats,
) -> Result<(), ExecError> {
    if let Some(m) = ctx.meter {
        m.charge_steps(1, op).map_err(|b| ExecError::Budget {
            resource: b.resource,
            limit: b.limit,
            used: b.used,
            op: b.op,
            partial: *stats,
        })?;
        m.charge_rows(rows, op).map_err(|b| ExecError::Budget {
            resource: b.resource,
            limit: b.limit,
            used: b.used,
            op: b.op,
            partial: *stats,
        })?;
    }
    Ok(())
}

/// Build an algebra database mirroring a catalog (for the serial
/// fallback path), with the standard integer signature.
pub fn db_from_catalog(catalog: &Catalog) -> Db {
    let mut db = Db::with_standard_int();
    for t in catalog.tables() {
        db.set(t.name.clone(), t.to_value());
    }
    db
}

fn eval_to_exec(e: genpar_algebra::EvalError) -> ExecError {
    match e {
        genpar_algebra::EvalError::BudgetExceeded {
            resource,
            limit,
            used,
            op,
            ..
        } => ExecError::Budget {
            resource,
            limit,
            used,
            op,
            partial: ExecStats::default(),
        },
        genpar_algebra::EvalError::Fault(msg) => ExecError::Fault(msg),
        other => ExecError::Eval(other.to_string()),
    }
}

/// Evaluate a query with the partition-safety gate in the loop.
///
/// * `cfg.workers <= 1` — serial: the engine path when the query lowers,
///   the algebra evaluator otherwise ([`ExecRoute::Serial`]).
/// * Gate says **safe** — lower and run on the parallel executor; the
///   genericity certificate rides along in [`ExecRoute::Parallel`].
/// * Gate says **unsafe** (or the plan will not lower) — run the serial
///   algebra evaluator, bump the `exec.fallbacks` counter and record an
///   `exec.fallback` obs event naming the operator and reason.
///
/// In every route the result is the same [`Value`].
pub fn eval_query(
    q: &Query,
    catalog: &Catalog,
    cfg: &ExecConfig,
) -> Result<(Value, ExecStats, ExecRoute), ExecError> {
    if cfg.workers <= 1 {
        let (v, stats) = eval_serial(q, catalog)?;
        return Ok((v, stats, ExecRoute::Serial));
    }
    match partition_safety(q) {
        PartitionSafety::Safe(cert) => match lower(q) {
            Some(plan) => {
                let certificate = cert.to_string();
                match eval_plan_parallel(&plan, catalog, cfg, Some(&certificate)) {
                    Ok((rows, stats)) => Ok((
                        genpar_value::rows_to_value(rows),
                        stats,
                        ExecRoute::Parallel {
                            workers: cfg.workers,
                            certificate,
                        },
                    )),
                    // the ladder's last rung: retries and quarantine are
                    // exhausted, so the whole query degrades to the serial
                    // interpreter — a correct answer, never a wrong one
                    Err(ExecError::Fault(_)) => {
                        note_degrade("serial");
                        fallback(
                            q,
                            catalog,
                            "exec",
                            "recovery ladder exhausted: degraded to the serial interpreter",
                        )
                    }
                    Err(e) => Err(e),
                }
            }
            None => fallback(q, catalog, "lit", "literal rows are not flat tuples"),
        },
        PartitionSafety::FixpointRoundSafe { body_cert } => {
            run_fixpoint_route(q, catalog, cfg, &body_cert)
        }
        PartitionSafety::Combiner { op, cert } => run_combiner_route(q, catalog, cfg, op, &cert),
        PartitionSafety::Unsafe { op, reason } => fallback(q, catalog, op, reason),
    }
}

/// Is every `map` in the tree guaranteed to emit tuple-shaped values?
/// The row engine represents every set element as a tuple row, while the
/// interpreter lets `map` produce bare values — a fixpoint accumulator
/// crossing rounds must stay in one representation, so bodies whose maps
/// may emit non-tuples take the serial path.
fn row_shaped(q: &Query) -> bool {
    fn fn_row_shaped(f: &ValueFn) -> bool {
        match f {
            ValueFn::Identity | ValueFn::Cols(_) | ValueFn::Pair(..) => true,
            ValueFn::Const(c) => matches!(c, Value::Tuple(_)),
            ValueFn::Compose(a, b) => fn_row_shaped(a) && fn_row_shaped(b),
            _ => false,
        }
    }
    let mut ok = true;
    q.visit(&mut |n| {
        if let Query::Map(f, _) = n {
            ok &= fn_row_shaped(f);
        }
    });
    ok
}

/// Does the subtree mention `var` as a free relation name?
fn mentions(q: &Query, var: &str) -> bool {
    q.rel_names().iter().any(|n| n == var)
}

/// Is the step *linear* in the loop variable — semi-naive safe? True
/// when every operator on the path to the (at most one) side mentioning
/// `var` distributes over union in that argument, so
/// `step(X ∪ Δ) = step(X) ∪ step(Δ)` and each round may evaluate the
/// body on the previous round's delta alone. Joins/products with the
/// variable on both sides need cross terms (`Δ⋈X`, `X⋈Δ`) and are
/// conservatively refused, as is the right side of a difference
/// (anti-monotone).
fn delta_linear(q: &Query, var: &str) -> bool {
    if !mentions(q, var) {
        return true;
    }
    match q {
        Query::Rel(_) => true,
        Query::Project(_, a) | Query::Select(_, a) | Query::SelectHat(_, _, a) => {
            delta_linear(a, var)
        }
        Query::Map(_, a) => delta_linear(a, var),
        Query::Union(a, b)
        | Query::Join(_, a, b)
        | Query::Product(a, b)
        | Query::Intersect(a, b) => match (mentions(a, var), mentions(b, var)) {
            (true, true) => false,
            (true, false) => delta_linear(a, var),
            (false, true) => delta_linear(b, var),
            (false, false) => true,
        },
        Query::Difference(a, b) => !mentions(b, var) && delta_linear(a, var),
        _ => false,
    }
}

fn breach_to_exec(b: genpar_guard::BudgetBreach, partial: &ExecStats) -> ExecError {
    ExecError::Budget {
        resource: b.resource,
        limit: b.limit,
        used: b.used,
        op: b.op,
        partial: *partial,
    }
}

/// The parallel fixpoint driver: semi-naive delta iteration with each
/// round's body on the morsel pool.
///
/// The loop as a whole does not distribute over partitioning, but the
/// gate certified its body does — so each round substitutes the current
/// delta (or the full accumulator when the body is non-linear in the
/// loop variable) for the loop variable, lowers the bound body, runs it
/// on the parallel executor and canonically merges the new rows into the
/// accumulator. Round count, depth-budget charges and the final `Value`
/// are identical to the serial inflationary loop by construction.
///
/// Any injected fault (`exec.fixpoint_round`, or a morsel/merge site
/// inside a round) degrades the whole query to the serial interpreter —
/// a correct answer, never a wrong one.
fn run_fixpoint_route(
    q: &Query,
    catalog: &Catalog,
    cfg: &ExecConfig,
    body_cert: &SafetyCert,
) -> Result<(Value, ExecStats, ExecRoute), ExecError> {
    let Query::Fixpoint { var, init, step } = q else {
        return Err(ExecError::Internal(
            "fixpoint route on a non-fixpoint query".to_string(),
        ));
    };
    if !row_shaped(init) || !row_shaped(step) {
        return fallback(
            q,
            catalog,
            "fix",
            "body map may emit non-tuple values: row engine and interpreter representations diverge",
        );
    }
    let Some(init_plan) = lower(init) else {
        return fallback(
            q,
            catalog,
            "fix",
            "fixpoint seed does not lower to the row engine",
        );
    };
    // a probe substitution proves every round's bound body will lower
    // (rounds only vary the literal's rows, never the plan shape)
    if lower(&step.substitute_rel(var, &Value::empty_set())).is_none() {
        return fallback(
            q,
            catalog,
            "fix",
            "fixpoint body does not lower to the row engine",
        );
    }
    let semi_naive = delta_linear(step, var);
    let mut sp = genpar_obs::span("exec.fixpoint");
    sp.field("workers", cfg.workers as u64);
    sp.field("semi_naive", u64::from(semi_naive));
    let meter = SharedMeter::from_armed();
    let body_cert_s = body_cert.to_string();
    let ctx = Ctx {
        cfg,
        meter: meter.as_deref(),
        cert: Some(&body_cert_s),
    };
    let mut stats = ExecStats::default();
    let result = genpar_guard::catch_panics(|| {
        drive_fixpoint(var, &init_plan, step, semi_naive, catalog, &ctx, &mut stats)
    })
    .map_err(ExecError::Internal)?;
    match result {
        Ok((acc, rounds)) => {
            sp.field("rounds", rounds);
            stats.rows_out = acc.len() as u64;
            genpar_obs::counter("exec.executions", 1);
            genpar_obs::counter("exec.rows_out", stats.rows_out);
            genpar_obs::counter("exec.rows_processed", stats.rows_processed);
            let value = genpar_value::rows_to_value(acc);
            let certificate =
                format!(
                "per-round body certified: {body_cert}; semi-naive deltas: {}; rounds: {rounds}",
                if semi_naive { "yes" } else { "no (full accumulator per round)" },
            );
            Ok((
                value,
                stats,
                ExecRoute::Parallel {
                    workers: cfg.workers,
                    certificate,
                },
            ))
        }
        Err(ExecError::Fault(_)) => {
            note_degrade("serial");
            fallback(
                q,
                catalog,
                "fix",
                "injected fault in a fixpoint round: degraded to the serial interpreter",
            )
        }
        Err(e) => Err(e),
    }
}

/// The round loop proper: mirrors [`genpar_algebra::fixpoint::inflationary_fixpoint`]
/// (same bound, same `charge_depth` schedule, same stop condition) with
/// the body evaluated on the parallel executor each round.
fn drive_fixpoint(
    var: &str,
    init_plan: &PhysicalPlan,
    step: &Query,
    semi_naive: bool,
    catalog: &Catalog,
    ctx: &Ctx,
    stats: &mut ExecStats,
) -> Result<(Vec<Vec<Value>>, u64), ExecError> {
    let seed = run_plan(init_plan, catalog, ctx, stats)?;
    let mut acc: BTreeSet<Vec<Value>> = seed.iter().cloned().collect();
    let mut delta: Rows = seed;
    let bound =
        (genpar_algebra::fixpoint::DEFAULT_FIXPOINT_ITERS as u64).min(genpar_guard::depth_limit());
    let hist = genpar_obs::histogram("exec.fixpoint_round_us");
    let round_watchdog_us = kernels::watchdog_deadline_us(hist.snapshot().p95);
    let round_retries = recovery_retries().unwrap_or(0);
    for iter in 0..bound {
        genpar_guard::charge_depth(iter + 1, "fixpoint").map_err(|b| breach_to_exec(b, stats))?;
        let start = std::time::Instant::now();
        let mut rsp = genpar_obs::span("exec.fixpoint_round");
        rsp.field("round", iter + 1);
        genpar_obs::counter("exec.fixpoint_rounds", 1);
        // non-linear bodies see the whole accumulator; linear ones only
        // the rows that are new since the previous round
        let input: Rows = if semi_naive {
            std::mem::take(&mut delta)
        } else {
            acc.iter().cloned().collect()
        };
        rsp.field("input_rows", input.len() as u64);
        let bound_body = step.substitute_rel(var, &genpar_value::rows_to_value(input));
        // a round is pure against the accumulator (acc only changes
        // after success), so a faulted round can be re-run whole — the
        // round-granular rung of the recovery ladder
        let produced = {
            let mut attempt: u32 = 0;
            loop {
                let round = (|| -> Result<Rows, ExecError> {
                    genpar_guard::faultpoint("exec.fixpoint_round")
                        .map_err(|f| ExecError::Fault(f.to_string()))?;
                    if let Some(m) = ctx.meter {
                        m.charge_steps(1, "exec.fixpoint_round")
                            .map_err(|b| breach_to_exec(b, stats))?;
                    }
                    let plan = lower(&bound_body).ok_or_else(|| {
                        ExecError::Internal(
                            "probed-lowerable fixpoint body failed to lower".to_string(),
                        )
                    })?;
                    run_plan(&plan, catalog, ctx, stats)
                })();
                match round {
                    Ok(rows) => break rows,
                    Err(ExecError::Fault(_)) if attempt < round_retries => {
                        attempt += 1;
                        retry_gate(iter as usize, attempt)?;
                    }
                    Err(e) => return Err(e),
                }
            }
        };
        let mut fresh: Rows = Vec::new();
        for row in produced {
            if acc.insert(row.clone()) {
                fresh.push(row);
            }
        }
        rsp.field("delta_rows", fresh.len() as u64);
        rsp.field("acc_rows", acc.len() as u64);
        let round_us = start.elapsed().as_micros() as u64;
        hist.record(round_us);
        if round_us > round_watchdog_us {
            kernels::note_watchdog("exec.fixpoint_round", round_us, round_watchdog_us);
        }
        if fresh.is_empty() {
            return Ok((acc.into_iter().collect(), iter + 1));
        }
        delta = fresh;
    }
    Err(ExecError::Budget {
        resource: genpar_guard::Resource::Depth,
        limit: bound,
        used: bound,
        op: "fixpoint",
        partial: *stats,
    })
}

/// The combiner route: evaluate the (certified distributive) aggregate
/// input on the parallel executor, then fold partition-local
/// accumulators serially ([`kernels::par_combine`]). An injected fault
/// at any site inside the route degrades to the serial interpreter.
fn run_combiner_route(
    q: &Query,
    catalog: &Catalog,
    cfg: &ExecConfig,
    agg: &'static str,
    cert: &SafetyCert,
) -> Result<(Value, ExecStats, ExecRoute), ExecError> {
    let (kind, inner) = match q {
        Query::Even(inner) => (CombineKind::Parity, inner),
        Query::Count(inner) => (CombineKind::Count, inner),
        Query::Sum(col, inner) => (CombineKind::Sum(*col), inner),
        _ => {
            return Err(ExecError::Internal(
                "combiner route on a non-aggregate query".to_string(),
            ))
        }
    };
    let Some(plan) = lower(inner) else {
        return fallback(
            q,
            catalog,
            agg,
            "aggregate input does not lower to the row engine",
        );
    };
    let mut sp = genpar_obs::span("exec.parallel");
    sp.field("workers", cfg.workers as u64);
    sp.field("morsel_rows", cfg.effective_morsel_rows() as u64);
    let meter = SharedMeter::from_armed();
    let cert_s = cert.to_string();
    let ctx = Ctx {
        cfg,
        meter: meter.as_deref(),
        cert: Some(&cert_s),
    };
    let mut stats = ExecStats::default();
    let result = genpar_guard::catch_panics(|| {
        let rows = run_plan(&plan, catalog, &ctx, &mut stats)?;
        kernels::par_combine(rows, kind, &ctx)
    })
    .map_err(ExecError::Internal)?;
    match result {
        Ok((total, s)) => {
            kernels::add_stats(&mut stats, &s);
            stats.rows_out = 1;
            genpar_obs::counter("exec.executions", 1);
            genpar_obs::counter("exec.rows_out", 1);
            genpar_obs::counter("exec.rows_processed", stats.rows_processed);
            let value = match kind {
                CombineKind::Parity => Value::Bool(total % 2 == 0),
                CombineKind::Count | CombineKind::Sum(_) => Value::Int(total),
            };
            let certificate = format!(
                "combiner `{agg}`: partition-local accumulators + serial combine; input {cert}"
            );
            Ok((
                value,
                stats,
                ExecRoute::Parallel {
                    workers: cfg.workers,
                    certificate,
                },
            ))
        }
        Err(ExecError::Fault(_)) => {
            note_degrade("serial");
            fallback(
                q,
                catalog,
                agg,
                "injected fault in the combiner: degraded to the serial interpreter",
            )
        }
        Err(e) => Err(e),
    }
}

/// Record a serial-fallback decision in the obs registry: the
/// `exec.fallbacks` counter plus an `exec.fallback` event naming the
/// operator and reason. Public so CLI surfaces that bypass
/// [`eval_query`] (to keep their own serial semantics) report fallbacks
/// identically.
pub fn note_fallback(op: &str, reason: &str) {
    genpar_obs::counter("exec.fallbacks", 1);
    genpar_obs::event(
        "exec.fallback",
        [
            ("op", FieldValue::from(op.to_string())),
            ("reason", FieldValue::from(reason.to_string())),
            ("mode", FieldValue::from("serial")),
        ],
    );
}

fn fallback(
    q: &Query,
    catalog: &Catalog,
    op: &'static str,
    reason: &'static str,
) -> Result<(Value, ExecStats, ExecRoute), ExecError> {
    note_fallback(op, reason);
    let _sp = genpar_obs::span("exec.fallback");
    let db = db_from_catalog(catalog);
    let v = eval(q, &db).map_err(eval_to_exec)?;
    Ok((v, ExecStats::default(), ExecRoute::Fallback { op, reason }))
}

fn eval_serial(q: &Query, catalog: &Catalog) -> Result<(Value, ExecStats), ExecError> {
    if let Some(plan) = lower(q) {
        let (rows, stats) = plan.execute(catalog)?;
        Ok((genpar_value::rows_to_value(rows), stats))
    } else {
        let db = db_from_catalog(catalog);
        let v = eval(q, &db).map_err(eval_to_exec)?;
        Ok((v, ExecStats::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_clamp() {
        let c = ExecConfig::serial().with_workers(0).with_morsel_rows(0);
        assert_eq!(c.workers, 1);
        assert_eq!(c.morsel_rows, 1);
        assert_eq!(ExecConfig::default().morsel_rows, DEFAULT_MORSEL_ROWS);
    }

    #[test]
    fn config_from_env_parses_and_defaults() {
        // set/unset around the calls; no other test in this binary reads
        // the variable
        std::env::set_var(PARALLEL_ENV, "6");
        assert_eq!(ExecConfig::from_env().workers, 6);
        std::env::set_var(PARALLEL_ENV, "not-a-number");
        assert_eq!(ExecConfig::from_env().workers, 1);
        std::env::remove_var(PARALLEL_ENV);
        assert_eq!(ExecConfig::from_env().workers, 1);
    }
}
