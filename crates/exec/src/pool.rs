//! A work-stealing worker pool over scoped threads, with an optional
//! fault-recovery ladder.
//!
//! Tasks (morsel or partition closures) are distributed round-robin onto
//! per-worker deques; each worker pops its own deque from the back
//! (LIFO, cache-warm) and steals from other workers' fronts (FIFO, the
//! oldest — largest remaining — work) when its own runs dry. Workers
//! record `exec.worker` obs spans and `exec.morsels` / `exec.steals`
//! counters.
//!
//! Two failure modes:
//!
//! * **Plain** ([`run_tasks`]): the first task error cancels the pool —
//!   remaining workers observe the stop flag and exit without starting
//!   further tasks. Items move into tasks with no copies.
//! * **Recovering** ([`run_tasks_recovering`]): each item stays in its
//!   slot until its task *succeeds*, so a failed task can be re-run. A
//!   failure is first retried **in place** on the same worker (up to the
//!   configured retry count, each re-run passing the caller's gate — the
//!   `exec.retry` fault site); when retries exhaust, the worker takes a
//!   strike and the task is requeued once for another worker to absorb.
//!   A worker with repeated strikes is **quarantined** out of the deque
//!   set for the rest of the run (`exec.quarantine` event +
//!   `exec.degrade_step.quarantine` counter) — unless it is the last
//!   active worker, which must keep draining. A task that fails again
//!   after requeue is the ladder's end within the pool: its error wins
//!   and cancels the run (the route above degrades whole-serial). After
//!   the workers join, any item stranded by the shutdown races is swept
//!   serially on the caller's thread, so no morsel is ever silently
//!   dropped.
//!
//! Results come back **in task order**, independent of which worker ran
//! what — the first half of the determinism argument (the second half is
//! the canonical merge in `kernels`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Strikes (tasks failed past their in-place retries) before a worker is
/// quarantined out of the pool.
const QUARANTINE_STRIKES: u32 = 2;

/// Times a failed task is handed to the pool again before its error
/// cancels the run (in-place retries happen *within* each passage).
const MAX_REQUEUES: u32 = 1;

/// Recovery configuration for [`run_tasks_recovering`]: how many in-place
/// re-runs a failed task gets, and the gate consulted before each one
/// (the gate passes the `exec.retry` fault site and records the obs
/// trail; its error aborts the in-place rung and escalates).
pub(crate) struct Recovery<'a, E> {
    pub retries: u32,
    pub gate: &'a (dyn Fn(usize, u32) -> Result<(), E> + Sync),
}

/// A bounded pool of worker slots shared by every parallel run in the
/// process. A resident server installs one at startup
/// ([`install_worker_governor`]) so concurrent queries *borrow* workers
/// from a single pool instead of each spawning its own full complement —
/// queries become morsel sources, not pool owners. With no governor
/// installed (the one-shot CLI), every request is granted in full and
/// nothing changes.
struct Governor {
    available: AtomicUsize,
    total: usize,
}

impl Governor {
    /// Take up to `want` slots (lock-free; a fully drained pool grants
    /// zero and the caller runs inline on its own thread).
    fn take(&self, want: usize) -> usize {
        let mut avail = self.available.load(Ordering::Acquire);
        loop {
            let take = want.min(avail);
            if take == 0 {
                return 0;
            }
            match self.available.compare_exchange_weak(
                avail,
                avail - take,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return take,
                Err(a) => avail = a,
            }
        }
    }

    fn put(&self, n: usize) {
        self.available.fetch_add(n, Ordering::AcqRel);
    }
}

static GOVERNOR: std::sync::OnceLock<Governor> = std::sync::OnceLock::new();

/// Install the process-wide worker-slot pool (`total` slots, min 1).
/// First installation wins and is permanent for the process; returns
/// `false` if one was already installed.
pub fn install_worker_governor(total: usize) -> bool {
    let total = total.max(1);
    GOVERNOR
        .set(Governor {
            available: AtomicUsize::new(total),
            total,
        })
        .is_ok()
}

/// `(available, total)` slots of the installed governor, if any.
pub fn worker_governor_stats() -> Option<(usize, usize)> {
    GOVERNOR
        .get()
        .map(|g| (g.available.load(Ordering::Relaxed), g.total))
}

/// RAII permit over slots borrowed from the installed governor.
/// `borrowed` distinguishes a real loan from the ungoverned full grant,
/// so slots are only ever returned to a pool they came from.
struct Permit {
    granted: usize,
    borrowed: bool,
}

impl Drop for Permit {
    fn drop(&mut self) {
        if self.borrowed {
            if let Some(g) = GOVERNOR.get() {
                g.put(self.granted);
                genpar_obs::gauge(
                    "exec.pool.available",
                    g.available.load(Ordering::Relaxed) as i64,
                );
            }
        }
    }
}

fn acquire_workers(want: usize) -> Permit {
    let Some(g) = GOVERNOR.get() else {
        return Permit {
            granted: want,
            borrowed: false,
        };
    };
    let take = g.take(want);
    if take == 0 {
        genpar_obs::counter("exec.pool.starved", 1);
        return Permit {
            granted: 0,
            borrowed: false,
        };
    }
    if take < want {
        genpar_obs::counter("exec.pool.trimmed", 1);
    }
    genpar_obs::gauge(
        "exec.pool.available",
        g.available.load(Ordering::Relaxed) as i64,
    );
    Permit {
        granted: take,
        borrowed: true,
    }
}

/// Lock a mutex, recovering from poisoning (a panicking worker must not
/// wedge the pool — panics are converted at the executor boundary).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn pop_own(deques: &[Mutex<VecDeque<usize>>], wid: usize) -> Option<usize> {
    lock(&deques[wid]).pop_back()
}

fn steal(deques: &[Mutex<VecDeque<usize>>], wid: usize, steals: &mut u64) -> Option<usize> {
    for (i, d) in deques.iter().enumerate() {
        if i == wid {
            continue;
        }
        if let Some(idx) = lock(d).pop_front() {
            *steals += 1;
            return Some(idx);
        }
    }
    None
}

/// Run one item through the in-place retry rung: attempt, and on error
/// consult the gate and re-run from a fresh clone, up to `retries` times.
fn run_with_retries<T, R, E>(
    idx: usize,
    slot_item: &T,
    rec: &Recovery<'_, E>,
    f: &(impl Fn(usize, T) -> Result<R, E> + Sync),
) -> Result<R, E>
where
    T: Clone,
{
    let mut attempt: u32 = 0;
    loop {
        match f(idx, slot_item.clone()) {
            Ok(r) => return Ok(r),
            Err(e) => {
                if attempt >= rec.retries {
                    return Err(e);
                }
                attempt += 1;
                // the gate is itself a fault site: a fault injected at
                // `exec.retry` abandons the in-place rung and escalates
                (rec.gate)(idx, attempt)?;
            }
        }
    }
}

/// The no-threads path: run every item on the caller's thread (keeping
/// thread-local state — an armed serial budget, say — visible), with
/// in-place retries when recovery is armed.
fn run_inline<T, R, E, F>(
    items: Vec<T>,
    recovery: Option<&Recovery<'_, E>>,
    f: &F,
) -> Result<Vec<R>, E>
where
    T: Clone,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.into_iter().enumerate() {
        match recovery {
            Some(rec) => out.push(run_with_retries(i, &item, rec, f)?),
            None => out.push(f(i, item)?),
        }
    }
    Ok(out)
}

/// Run `f` over every item on `workers` threads; results in item order.
///
/// The first `Err` wins and cancels outstanding work. With `workers <= 1`
/// (or at most one item) everything runs inline on the caller's thread —
/// no threads are spawned, so thread-local state (an armed serial budget,
/// say) stays visible.
pub fn run_tasks<T, R, E, F>(workers: usize, items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Clone + Send,
    R: Send,
    E: Send,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    run_tasks_recovering(workers, items, None, f)
}

/// [`run_tasks`] with the recovery ladder armed when `recovery` is
/// `Some`: in-place retries, worker quarantine, one requeue per task,
/// and a serial completion sweep. With `recovery` `None` the plain
/// first-error-cancels semantics apply and items are never cloned.
pub(crate) fn run_tasks_recovering<T, R, E, F>(
    workers: usize,
    items: Vec<T>,
    recovery: Option<Recovery<'_, E>>,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Clone + Send,
    R: Send,
    E: Send,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return run_inline(items, recovery.as_ref(), &f);
    }

    // borrow worker slots from the process-wide governor (full grant
    // when none is installed); a starved pool runs inline on the
    // caller's thread, which is always available
    let permit = acquire_workers(workers.min(n));
    if permit.granted <= 1 {
        drop(permit);
        return run_inline(items, recovery.as_ref(), &f);
    }
    let w = permit.granted;
    // each item sits in its own slot; in plain mode it is taken exactly
    // once, in recovery mode it stays put until its task succeeds
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..w).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..n {
        lock(&deques[i % w]).push_back(i);
    }
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let first_err: Mutex<Option<E>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    // per-task count of pool-level passages that ended in failure
    let requeues: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let active = AtomicUsize::new(w);

    // capture the spawning thread's obs scope so workers record into the
    // scope of the query that spawned their tasks — work-stealing moves
    // tasks between lanes, but every lane is entered into the same scope
    let obs_scope = genpar_obs::scope::current();
    std::thread::scope(|s| {
        for wid in 0..w {
            let (deques, slots, results, requeues) = (&deques, &slots, &results, &requeues);
            let (first_err, stop, f, active) = (&first_err, &stop, &f, &active);
            let recovery = recovery.as_ref();
            let obs_scope = obs_scope.clone();
            s.spawn(move || {
                let _obs = obs_scope.map(genpar_obs::scope::enter);
                // worker wid records on timeline lane wid + 1 (lane 0
                // is the main thread)
                genpar_obs::timeline::set_lane(wid as u32 + 1);
                let mut sp = genpar_obs::span("exec.worker");
                sp.field("worker", wid as u64);
                let mut done = 0u64;
                let mut steals = 0u64;
                let mut strikes = 0u32;
                while !stop.load(Ordering::Acquire) {
                    let before = steals;
                    let Some(idx) =
                        pop_own(deques, wid).or_else(|| steal(deques, wid, &mut steals))
                    else {
                        break;
                    };
                    if steals > before {
                        genpar_obs::timeline::record_instant(
                            "exec.steal",
                            std::time::Instant::now(),
                        );
                    }
                    let outcome = match recovery {
                        None => {
                            let Some(item) = lock(&slots[idx]).take() else {
                                continue;
                            };
                            f(idx, item)
                        }
                        Some(rec) => {
                            // leave the item in its slot until success,
                            // so a failure can be re-run or requeued
                            let Some(item) = lock(&slots[idx]).clone() else {
                                continue;
                            };
                            run_with_retries(idx, &item, rec, f)
                        }
                    };
                    match outcome {
                        Ok(r) => {
                            *lock(&results[idx]) = Some(r);
                            if recovery.is_some() {
                                *lock(&slots[idx]) = None;
                            }
                            done += 1;
                        }
                        Err(e) => {
                            let fatal = recovery.is_none()
                                || requeues[idx].fetch_add(1, Ordering::Relaxed) >= MAX_REQUEUES;
                            if fatal {
                                let mut g = lock(first_err);
                                if g.is_none() {
                                    *g = Some(e);
                                }
                                stop.store(true, Ordering::Release);
                                break;
                            }
                            // hand the task to the pool again: back on
                            // this worker's own front, where a peer's
                            // steal (or this worker, if it survives)
                            // picks it up with fresh in-place retries
                            lock(&deques[wid]).push_front(idx);
                            strikes += 1;
                            if strikes >= QUARANTINE_STRIKES {
                                // quarantine unless this is the last
                                // active worker, which must keep
                                // draining the deques
                                if active.fetch_sub(1, Ordering::AcqRel) > 1 {
                                    sp.field("quarantined", 1);
                                    genpar_obs::counter("exec.degrade_step.quarantine", 1);
                                    genpar_obs::event(
                                        "exec.quarantine",
                                        [
                                            ("worker", genpar_obs::FieldValue::U64(wid as u64)),
                                            (
                                                "strikes",
                                                genpar_obs::FieldValue::U64(u64::from(strikes)),
                                            ),
                                        ],
                                    );
                                    genpar_obs::timeline::record_instant(
                                        "exec.quarantine",
                                        std::time::Instant::now(),
                                    );
                                    break;
                                }
                                active.fetch_add(1, Ordering::AcqRel);
                            }
                        }
                    }
                }
                sp.field("morsels", done);
                sp.field("steals", steals);
                genpar_obs::counter("exec.morsels", done);
                genpar_obs::counter("exec.steals", steals);
            });
        }
    });

    if let Some(e) = lock(&first_err).take() {
        return Err(e);
    }
    if let Some(rec) = &recovery {
        // completion sweep: quarantines and shutdown races can strand a
        // requeued item with no worker left to claim it — finish those
        // serially here so the pool never drops work without an error
        for (idx, slot) in slots.iter().enumerate() {
            let Some(item) = lock(slot).take() else {
                continue;
            };
            let r = run_with_retries(idx, &item, rec, &f)?;
            *lock(&results[idx]) = Some(r);
        }
    }
    // no error ⇒ every slot was taken and completed before its worker
    // exited, so every result is present
    let out: Vec<R> = results
        .into_iter()
        .filter_map(|m| match m.into_inner() {
            Ok(r) => r,
            Err(poisoned) => poisoned.into_inner(),
        })
        .collect();
    debug_assert_eq!(out.len(), n);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let got = run_tasks(4, items, |i, x| -> Result<u64, ()> {
            // uneven task cost to force interleaving and steals
            std::thread::sleep(std::time::Duration::from_micros(x % 7));
            Ok(i as u64 * 1000 + x)
        })
        .unwrap();
        assert_eq!(got.len(), 100);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i as u64 * 1000 + i as u64);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let ran = AtomicU64::new(0);
        let got = run_tasks(
            8,
            (0..257).collect::<Vec<i32>>(),
            |_, _| -> Result<(), ()> {
                ran.fetch_add(1, Ordering::Relaxed);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(got.len(), 257);
        assert_eq!(ran.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn first_error_wins_and_cancels() {
        let err = run_tasks(4, (0..1000).collect::<Vec<u64>>(), |_, x| {
            if x == 3 {
                Err(format!("boom {x}"))
            } else {
                std::thread::sleep(std::time::Duration::from_micros(5));
                Ok(x)
            }
        })
        .unwrap_err();
        assert!(err.starts_with("boom"), "{err}");
    }

    #[test]
    fn serial_path_spawns_no_threads() {
        let main = std::thread::current().id();
        let got = run_tasks(1, vec![1, 2, 3], |_, x| -> Result<_, ()> {
            assert_eq!(std::thread::current().id(), main);
            Ok(x * 2)
        })
        .unwrap();
        assert_eq!(got, vec![2, 4, 6]);
    }

    fn recovery(retries: u32) -> Recovery<'static, String> {
        static GATE: fn(usize, u32) -> Result<(), String> = |_, _| Ok(());
        Recovery {
            retries,
            gate: &GATE,
        }
    }

    #[test]
    fn transient_failures_are_retried_in_place() {
        // every task fails on its first attempt, succeeds on the second
        let attempts: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let got = run_tasks_recovering(
            4,
            (0..64u64).collect::<Vec<_>>(),
            Some(recovery(2)),
            |i, x| {
                if attempts[i].fetch_add(1, Ordering::Relaxed) == 0 {
                    Err(format!("blip {x}"))
                } else {
                    Ok(x * 2)
                }
            },
        )
        .unwrap();
        assert_eq!(got.len(), 64);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn persistent_failure_exhausts_ladder_and_errors() {
        let err = run_tasks_recovering(
            4,
            (0..32u64).collect::<Vec<_>>(),
            Some(recovery(2)),
            |_, x| -> Result<u64, String> {
                if x == 5 {
                    Err("hard fault".to_string())
                } else {
                    Ok(x)
                }
            },
        )
        .unwrap_err();
        assert_eq!(err, "hard fault");
    }

    #[test]
    fn gate_error_aborts_in_place_retries() {
        // the gate faults on the very first re-run: its error escalates
        // (and because the pool requeues once, each passage consults the
        // gate again — still an error, so the run fails overall)
        let gate = |_: usize, _: u32| -> Result<(), String> { Err("retry gate fault".into()) };
        let err = run_tasks_recovering(
            2,
            (0..8u64).collect::<Vec<_>>(),
            Some(Recovery {
                retries: 3,
                gate: &gate,
            }),
            |_, x| -> Result<u64, String> {
                if x == 1 {
                    Err("task fault".into())
                } else {
                    Ok(x)
                }
            },
        )
        .unwrap_err();
        assert!(
            err == "retry gate fault" || err == "task fault",
            "unexpected error: {err}"
        );
    }

    #[test]
    fn requeued_task_recovers_on_a_later_passage() {
        // a task that fails its entire first passage (all in-place
        // retries) but succeeds once requeued: the run still completes
        let attempts = AtomicU32::new(0);
        let got = run_tasks_recovering(
            4,
            (0..32u64).collect::<Vec<_>>(),
            Some(recovery(1)),
            |_, x| {
                if x == 7 && attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                    Err("flaky".to_string())
                } else {
                    Ok(x)
                }
            },
        )
        .unwrap();
        assert_eq!(got.len(), 32);
        assert_eq!(got[7], 7);
    }

    #[test]
    fn governor_takes_trims_and_returns() {
        // exercised against a local pool: the global OnceLock governor
        // stays uninstalled so other tests keep their full grants
        let g = Governor {
            available: AtomicUsize::new(4),
            total: 4,
        };
        assert_eq!(g.take(3), 3);
        assert_eq!(g.take(3), 1, "partial grant when the pool runs low");
        assert_eq!(g.take(3), 0, "drained pool grants nothing");
        g.put(1);
        g.put(3);
        assert_eq!(g.take(9), 4, "returned slots are reusable, capped at total");
        assert_eq!(g.total, 4);
    }

    #[test]
    fn governor_is_consistent_under_contention() {
        let g = Governor {
            available: AtomicUsize::new(8),
            total: 8,
        };
        std::thread::scope(|s| {
            for _ in 0..6 {
                s.spawn(|| {
                    for _ in 0..500 {
                        let got = g.take(3);
                        assert!(got <= 3);
                        if got > 0 {
                            g.put(got);
                        }
                    }
                });
            }
        });
        assert_eq!(
            g.available.load(Ordering::Relaxed),
            8,
            "every borrowed slot came back"
        );
    }

    #[test]
    fn ungoverned_acquire_grants_in_full() {
        // the global governor is never installed by unit tests
        let p = acquire_workers(7);
        assert_eq!(p.granted, 7);
        assert!(!p.borrowed);
    }

    #[test]
    fn recovery_sweep_completes_after_mass_quarantine() {
        // every worker's first two passages fail (striking them out),
        // but later attempts succeed: between requeues, the surviving
        // worker and the caller's sweep must finish all items
        let attempts: Vec<AtomicU32> = (0..16).map(|_| AtomicU32::new(0)).collect();
        let got = run_tasks_recovering(
            4,
            (0..16u64).collect::<Vec<_>>(),
            Some(recovery(0)),
            |i, x| {
                if attempts[i].fetch_add(1, Ordering::Relaxed) == 0 {
                    Err(format!("first-attempt blip {x}"))
                } else {
                    Ok(x + 100)
                }
            },
        )
        .unwrap();
        assert_eq!(got, (100..116).collect::<Vec<u64>>());
    }
}
