//! A work-stealing worker pool over scoped threads.
//!
//! Tasks (morsel or partition closures) are distributed round-robin onto
//! per-worker deques; each worker pops its own deque from the back
//! (LIFO, cache-warm) and steals from other workers' fronts (FIFO, the
//! oldest — largest remaining — work) when its own runs dry. Workers
//! record `exec.worker` obs spans and `exec.morsels` / `exec.steals`
//! counters. The first task error cancels the pool: remaining workers
//! observe the stop flag and exit without starting further tasks.
//!
//! Results come back **in task order**, independent of which worker ran
//! what — the first half of the determinism argument (the second half is
//! the canonical merge in `kernels`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Lock a mutex, recovering from poisoning (a panicking worker must not
/// wedge the pool — panics are converted at the executor boundary).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn pop_own(deques: &[Mutex<VecDeque<usize>>], wid: usize) -> Option<usize> {
    lock(&deques[wid]).pop_back()
}

fn steal(deques: &[Mutex<VecDeque<usize>>], wid: usize, steals: &mut u64) -> Option<usize> {
    for (i, d) in deques.iter().enumerate() {
        if i == wid {
            continue;
        }
        if let Some(idx) = lock(d).pop_front() {
            *steals += 1;
            return Some(idx);
        }
    }
    None
}

/// Run `f` over every item on `workers` threads; results in item order.
///
/// The first `Err` wins and cancels outstanding work. With `workers <= 1`
/// (or at most one item) everything runs inline on the caller's thread —
/// no threads are spawned, so thread-local state (an armed serial budget,
/// say) stays visible.
pub fn run_tasks<T, R, E, F>(workers: usize, items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for (i, item) in items.into_iter().enumerate() {
            out.push(f(i, item)?);
        }
        return Ok(out);
    }

    let w = workers.min(n);
    // each item sits in its own slot and is taken exactly once
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..w).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..n {
        lock(&deques[i % w]).push_back(i);
    }
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let first_err: Mutex<Option<E>> = Mutex::new(None);
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for wid in 0..w {
            let (deques, slots, results) = (&deques, &slots, &results);
            let (first_err, stop, f) = (&first_err, &stop, &f);
            s.spawn(move || {
                // worker wid records on timeline lane wid + 1 (lane 0
                // is the main thread)
                genpar_obs::timeline::set_lane(wid as u32 + 1);
                let mut sp = genpar_obs::span("exec.worker");
                sp.field("worker", wid as u64);
                let mut done = 0u64;
                let mut steals = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let before = steals;
                    let Some(idx) =
                        pop_own(deques, wid).or_else(|| steal(deques, wid, &mut steals))
                    else {
                        break;
                    };
                    if steals > before {
                        genpar_obs::timeline::record_instant(
                            "exec.steal",
                            std::time::Instant::now(),
                        );
                    }
                    let Some(item) = lock(&slots[idx]).take() else {
                        continue;
                    };
                    match f(idx, item) {
                        Ok(r) => {
                            *lock(&results[idx]) = Some(r);
                            done += 1;
                        }
                        Err(e) => {
                            let mut g = lock(first_err);
                            if g.is_none() {
                                *g = Some(e);
                            }
                            stop.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
                sp.field("morsels", done);
                sp.field("steals", steals);
                genpar_obs::counter("exec.morsels", done);
                genpar_obs::counter("exec.steals", steals);
            });
        }
    });

    if let Some(e) = lock(&first_err).take() {
        return Err(e);
    }
    // no error ⇒ every slot was taken and completed before its worker
    // exited, so every result is present
    let out: Vec<R> = results
        .into_iter()
        .filter_map(|m| match m.into_inner() {
            Ok(r) => r,
            Err(poisoned) => poisoned.into_inner(),
        })
        .collect();
    debug_assert_eq!(out.len(), n);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let got = run_tasks(4, items, |i, x| -> Result<u64, ()> {
            // uneven task cost to force interleaving and steals
            std::thread::sleep(std::time::Duration::from_micros(x % 7));
            Ok(i as u64 * 1000 + x)
        })
        .unwrap();
        assert_eq!(got.len(), 100);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i as u64 * 1000 + i as u64);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let ran = AtomicU64::new(0);
        let got = run_tasks(
            8,
            (0..257).collect::<Vec<i32>>(),
            |_, _| -> Result<(), ()> {
                ran.fetch_add(1, Ordering::Relaxed);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(got.len(), 257);
        assert_eq!(ran.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn first_error_wins_and_cancels() {
        let err = run_tasks(4, (0..1000).collect::<Vec<u64>>(), |_, x| {
            if x == 3 {
                Err(format!("boom {x}"))
            } else {
                std::thread::sleep(std::time::Duration::from_micros(5));
                Ok(x)
            }
        })
        .unwrap_err();
        assert!(err.starts_with("boom"), "{err}");
    }

    #[test]
    fn serial_path_spawns_no_threads() {
        let main = std::thread::current().id();
        let got = run_tasks(1, vec![1, 2, 3], |_, x| -> Result<_, ()> {
            assert_eq!(std::thread::current().id(), main);
            Ok(x * 2)
        })
        .unwrap();
        assert_eq!(got, vec![2, 4, 6]);
    }
}
