//! Parallel operator kernels.
//!
//! Every kernel has the same shape: cut (or hash-partition) the input,
//! run per-chunk tasks on the pool, then **canonically merge** — sort +
//! dedup under the derived total order on `Value` — so the result is
//! independent of worker count, morsel size and scheduling. Each task
//! passes the `exec.morsel` fault site and charges the shared budget
//! meter; the merge passes `exec.merge` and charges the output-side rows
//! and cells, mirroring the serial engine's per-node charges.
//!
//! Every task is wall-clock timed into the `exec.morsel_us` histogram,
//! and chunk-based kernels feed each batch's p95 latency back to the
//! global [`crate::tune::MorselTuner`] so the morsel size converges on
//! the ~100µs/task sweet spot.

use crate::morsel::{chunk_rows, key_partition, partition_rows, row_partition};
use crate::{pool, tune, ExecConfig};
use genpar_algebra::{eval::apply_fn, eval::eval_pred, vm, Db, Pred, ValueFn};
use genpar_engine::plan::{ExecError, ExecStats};
use genpar_guard::SharedMeter;
use genpar_value::{canonical_rows, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

/// Rows in flight between operators (canonical: sorted, deduplicated).
pub(crate) type Rows = Vec<Vec<Value>>;

/// Shared per-run context handed to every task.
#[derive(Clone, Copy)]
pub(crate) struct Ctx<'a> {
    pub cfg: &'a ExecConfig,
    pub meter: Option<&'a SharedMeter>,
    /// The partition gate's certificate rendering for this route, when
    /// the gate ran — attached to every program the kernels compile, so
    /// certification happens once at compile time, not per morsel.
    pub cert: Option<&'a str>,
}

impl Ctx<'_> {
    /// The morsel size to chunk with (tuner-driven unless pinned).
    fn morsel_rows(&self) -> usize {
        self.cfg.effective_morsel_rows()
    }
}

/// Whether a kernel's tasks are morsel-sized (so their latency should
/// steer the tuner) or partition-sized (timed, but not fed back —
/// partition count tracks the worker count, not `morsel_rows`).
#[derive(Clone, Copy)]
enum TaskKind {
    Morsel,
    Partition,
}

/// The watchdog deadline for one task, derived from the observed latency
/// distribution: generous (8 × the running p95, floored at 10ms) so a
/// loaded machine does not trip it, but tight enough that a genuinely
/// stuck task is flagged. No history yet means no deadline.
pub(crate) fn watchdog_deadline_us(p95: u64) -> u64 {
    if p95 == 0 {
        u64::MAX
    } else {
        p95.saturating_mul(8).max(10_000)
    }
}

/// Record a task (or round) that overran its watchdog deadline. The
/// result is kept — it is correct, and discarding completed work would
/// be a worse degradation than the slowness itself — but the overrun is
/// reported loudly so an operator sees stuck-task pressure building
/// before the wall-clock rung (`--timeout`) starts cancelling queries.
pub(crate) fn note_watchdog(site: &'static str, us: u64, deadline_us: u64) {
    genpar_obs::counter("exec.watchdog", 1);
    genpar_obs::event(
        "exec.watchdog",
        [
            ("site", genpar_obs::FieldValue::from(site)),
            ("us", genpar_obs::FieldValue::U64(us)),
            ("deadline_us", genpar_obs::FieldValue::U64(deadline_us)),
        ],
    );
    genpar_obs::timeline::record_instant("exec.watchdog", std::time::Instant::now());
}

/// Run a kernel's tasks on the pool with each task wall-clock timed into
/// the `exec.morsel_us` histogram (and, when the timeline recorder is
/// on, a real begin/end record per task on its worker's lane).
/// Morsel-kind batches additionally report their batch **p95** latency
/// to the global tuner, which may resize `morsel_rows` for the *next*
/// batch (and emits `exec.retune`). p95 rather than the mean: a few
/// slow outlier morsels (a skewed partition, a cold cache) should grow
/// the batch verdict, not be averaged away by many fast ones.
///
/// This is also where the recovery ladder arms. Each task runs behind a
/// panic boundary (a panicking morsel becomes a structured internal
/// error, eligible for recovery like any fault), and when recovery is on
/// — fault injection armed, or `GENPAR_RETRY` set explicitly — the pool
/// keeps every morsel recoverable: in-place retries through
/// [`crate::retry_gate`], then worker quarantine, before the error
/// escapes to the route layer's whole-serial rung. Tasks overrunning the
/// p95-derived watchdog deadline are flagged via [`note_watchdog`].
fn run_timed<T, F>(
    ctx: &Ctx,
    kind: TaskKind,
    tasks: Vec<T>,
    f: F,
) -> Result<Vec<(Rows, ExecStats)>, ExecError>
where
    T: Clone + Send,
    F: Fn(usize, T) -> Result<(Rows, ExecStats), ExecError> + Sync,
{
    let hist = genpar_obs::histogram("exec.morsel_us");
    let watchdog_us = watchdog_deadline_us(hist.snapshot().p95);
    let tune_batch = matches!(kind, TaskKind::Morsel) && ctx.cfg.auto_tune;
    let samples: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let run = |i, t| {
        let start = std::time::Instant::now();
        let out = match genpar_guard::catch_panics(|| f(i, t)) {
            Ok(r) => r,
            Err(msg) => Err(ExecError::Internal(format!("task panicked: {msg}"))),
        };
        let end = std::time::Instant::now();
        genpar_obs::timeline::record_span("exec.morsel", start, end);
        let us = end.duration_since(start).as_micros() as u64;
        hist.record(us);
        if us > watchdog_us {
            note_watchdog("exec.morsel", us, watchdog_us);
        }
        if tune_batch {
            match samples.lock() {
                Ok(mut s) => s.push(us),
                Err(p) => p.into_inner().push(us),
            }
        }
        out
    };
    let parts = match crate::recovery_retries() {
        Some(retries) => pool::run_tasks_recovering(
            ctx.cfg.workers,
            tasks,
            Some(pool::Recovery {
                retries,
                gate: &crate::retry_gate,
            }),
            run,
        )?,
        None => pool::run_tasks(ctx.cfg.workers, tasks, run)?,
    };
    if tune_batch {
        let s = match samples.into_inner() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        };
        tune::tuner().observe_batch(&s);
    }
    Ok(parts)
}

fn fault_err(f: genpar_guard::Fault) -> ExecError {
    ExecError::Fault(f.to_string())
}

fn eval_err(e: genpar_algebra::EvalError) -> ExecError {
    ExecError::Eval(e.to_string())
}

fn budget_err(b: genpar_guard::BudgetBreach, partial: &ExecStats) -> ExecError {
    ExecError::Budget {
        resource: b.resource,
        limit: b.limit,
        used: b.used,
        op: b.op,
        partial: *partial,
    }
}

pub(crate) fn add_stats(into: &mut ExecStats, s: &ExecStats) {
    into.rows_scanned += s.rows_scanned;
    into.rows_processed += s.rows_processed;
    into.cells_processed += s.cells_processed;
    into.probes += s.probes;
}

fn row_cells(rows: &[Vec<Value>]) -> u64 {
    rows.iter().map(|r| r.len() as u64).sum()
}

/// Per-task entry: the `exec.morsel` fault site plus the input-side
/// budget charges (steps = one quantum per morsel, cells = morsel cells).
fn enter_morsel(ctx: &Ctx, morsel: &[Vec<Value>], op: &'static str) -> Result<(), ExecError> {
    genpar_guard::faultpoint("exec.morsel").map_err(fault_err)?;
    if let Some(m) = ctx.meter {
        let zero = ExecStats::default();
        m.charge_steps(1, op).map_err(|b| budget_err(b, &zero))?;
        m.charge_cells(row_cells(morsel), op)
            .map_err(|b| budget_err(b, &zero))?;
    }
    Ok(())
}

/// Canonical merge: the `exec.merge` fault site, per-task stats summed in
/// task order, rows sorted + deduplicated, output-side budget charges.
fn merge(
    parts: Vec<(Rows, ExecStats)>,
    ctx: &Ctx,
    op: &'static str,
) -> Result<(Rows, ExecStats), ExecError> {
    genpar_guard::faultpoint("exec.merge").map_err(fault_err)?;
    let mut stats = ExecStats::default();
    let mut all: Rows = Vec::new();
    for (rows, s) in parts {
        add_stats(&mut stats, &s);
        all.extend(rows);
    }
    let rows = canonical_rows(all);
    if let Some(m) = ctx.meter {
        m.charge_rows(rows.len() as u64, op)
            .map_err(|b| budget_err(b, &stats))?;
        m.charge_cells(row_cells(&rows), op)
            .map_err(|b| budget_err(b, &stats))?;
    }
    Ok((rows, stats))
}

/// Compile one operator's expression program — **once**, before the
/// tasks fan out; every worker then shares the immutable program and
/// holds its own reusable [`vm::Vm`]. The route certificate (when the
/// gate ran) is attached to the program here, and the compilation is
/// left on the obs trail: a `vm.programs` counter and `vm.program`
/// event on success, `vm.ineligible` (with the paper-citing reason) on
/// refusal.
fn prepare_program(
    compiled: Result<vm::Program, vm::Ineligible>,
    cert: Option<&str>,
    op: &'static str,
) -> Option<vm::Program> {
    if !vm::enabled() {
        return None;
    }
    match compiled {
        Ok(prog) => {
            let prog = match cert {
                Some(c) => prog.with_cert(c),
                None => prog,
            };
            genpar_obs::counter("vm.programs", 1);
            genpar_obs::event(
                "vm.program",
                [
                    ("op", genpar_obs::FieldValue::from(op)),
                    ("ops", genpar_obs::FieldValue::U64(prog.len() as u64)),
                    (
                        "certified",
                        genpar_obs::FieldValue::U64(u64::from(prog.cert().is_some())),
                    ),
                ],
            );
            Some(prog)
        }
        Err(inel) => {
            genpar_obs::counter("vm.ineligible", 1);
            genpar_obs::event(
                "vm.ineligible",
                [
                    ("op", genpar_obs::FieldValue::from(op)),
                    ("reason", genpar_obs::FieldValue::from(inel.reason)),
                ],
            );
            None
        }
    }
}

/// Parallel σ: embarrassingly parallel over morsels. The predicate is
/// compiled once; each morsel re-checks [`vm::engage`] so an armed
/// `vm.exec` fault degrades that one morsel to the AST walker.
pub(crate) fn par_filter(input: Rows, p: &Pred, ctx: &Ctx) -> Result<(Rows, ExecStats), ExecError> {
    let prog = prepare_program(vm::compile_pred(p), ctx.cert, "plan.Filter");
    let parts = run_timed(
        ctx,
        TaskKind::Morsel,
        chunk_rows(input, ctx.morsel_rows()),
        |_, morsel| {
            enter_morsel(ctx, &morsel, "plan.Filter")?;
            let db = Db::with_standard_int();
            let mut stats = ExecStats::default();
            let mut out = Vec::new();
            match prog.as_ref().filter(|_| vm::engage()) {
                Some(prog) => {
                    let mut m = vm::Vm::new();
                    for row in morsel {
                        stats.rows_processed += 1;
                        stats.cells_processed += row.len() as u64;
                        let tv = Value::Tuple(row.clone());
                        if m.run_pred(prog, &tv, &db).map_err(eval_err)? {
                            out.push(row);
                        }
                    }
                }
                None => {
                    for row in morsel {
                        stats.rows_processed += 1;
                        stats.cells_processed += row.len() as u64;
                        let tv = Value::Tuple(row.clone());
                        if eval_pred(p, &tv, &db).map_err(eval_err)? {
                            out.push(row);
                        }
                    }
                }
            }
            Ok((out, stats))
        },
    )?;
    merge(parts, ctx, "plan.Filter")
}

/// Parallel π: embarrassingly parallel over morsels (dedup at merge).
pub(crate) fn par_project(
    input: Rows,
    cols: &[usize],
    ctx: &Ctx,
) -> Result<(Rows, ExecStats), ExecError> {
    let parts = run_timed(
        ctx,
        TaskKind::Morsel,
        chunk_rows(input, ctx.morsel_rows()),
        |_, morsel| {
            enter_morsel(ctx, &morsel, "plan.Project")?;
            let mut stats = ExecStats::default();
            let mut out = Vec::new();
            for row in morsel {
                stats.rows_processed += 1;
                stats.cells_processed += row.len() as u64;
                let mut projected = Vec::with_capacity(cols.len());
                for &c in cols {
                    projected.push(
                        row.get(c)
                            .cloned()
                            .ok_or_else(|| ExecError::Eval(format!("column {c} missing")))?,
                    );
                }
                out.push(projected);
            }
            Ok((out, stats))
        },
    )?;
    merge(parts, ctx, "plan.Project")
}

/// Parallel map: embarrassingly parallel over morsels. Same
/// compile-once / per-morsel-engage scheme as [`par_filter`];
/// ineligible functions (opaque closures) keep the walker.
pub(crate) fn par_map(input: Rows, f: &ValueFn, ctx: &Ctx) -> Result<(Rows, ExecStats), ExecError> {
    let prog = prepare_program(vm::compile_fn(f), ctx.cert, "plan.MapRows");
    let parts = run_timed(
        ctx,
        TaskKind::Morsel,
        chunk_rows(input, ctx.morsel_rows()),
        |_, morsel| {
            enter_morsel(ctx, &morsel, "plan.MapRows")?;
            let db = Db::with_standard_int();
            let mut stats = ExecStats::default();
            let mut out = Vec::new();
            match prog.as_ref().filter(|_| vm::engage()) {
                Some(prog) => {
                    let mut m = vm::Vm::new();
                    for row in morsel {
                        stats.rows_processed += 1;
                        stats.cells_processed += row.len() as u64;
                        let tv = Value::Tuple(row);
                        match m.run_fn(prog, &tv, &db).map_err(eval_err)? {
                            Value::Tuple(cols) => out.push(cols),
                            other => out.push(vec![other]),
                        }
                    }
                }
                None => {
                    for row in morsel {
                        stats.rows_processed += 1;
                        stats.cells_processed += row.len() as u64;
                        let tv = Value::Tuple(row);
                        match apply_fn(f, &tv, &db).map_err(eval_err)? {
                            Value::Tuple(cols) => out.push(cols),
                            other => out.push(vec![other]),
                        }
                    }
                }
            }
            Ok((out, stats))
        },
    )?;
    merge(parts, ctx, "plan.MapRows")
}

/// Partitioned hash join: both sides are routed by a deterministic hash
/// of the first key column, so matching keys meet in the same partition;
/// each partition builds and probes independently. A keyless join
/// degenerates to the product kernel.
pub(crate) fn par_join(
    l: Rows,
    r: Rows,
    on: &[(usize, usize)],
    ctx: &Ctx,
) -> Result<(Rows, ExecStats), ExecError> {
    let Some(&(i0, j0)) = on.first() else {
        return par_product(l, r, ctx, "plan.HashJoin");
    };
    let nparts = ctx.cfg.workers.max(1) * 2;
    let lparts = partition_rows(l, nparts, |row| key_partition(row, i0, nparts));
    let rparts = partition_rows(r, nparts, |row| key_partition(row, j0, nparts));
    let tasks: Vec<(Rows, Rows)> = lparts.into_iter().zip(rparts).collect();
    let parts = run_timed(ctx, TaskKind::Partition, tasks, |_, (lp, rp)| {
        enter_morsel(ctx, &lp, "plan.HashJoin")?;
        let mut stats = ExecStats::default();
        let mut out = Vec::new();
        let mut index: BTreeMap<&Value, Vec<&Vec<Value>>> = BTreeMap::new();
        for row in &rp {
            stats.rows_processed += 1;
            stats.cells_processed += row.len() as u64;
            match row.get(j0) {
                Some(k) => index.entry(k).or_default().push(row),
                None => return Err(ExecError::Eval(format!("join column {j0} missing"))),
            }
        }
        for lrow in &lp {
            stats.rows_processed += 1;
            stats.cells_processed += lrow.len() as u64;
            stats.probes += 1;
            let Some(k) = lrow.get(i0) else {
                return Err(ExecError::Eval(format!("join column {i0} missing")));
            };
            if let Some(matches) = index.get(k) {
                'next: for rrow in matches {
                    for &(i, j) in &on[1..] {
                        if lrow.get(i) != rrow.get(j) {
                            continue 'next;
                        }
                    }
                    let mut joined = lrow.clone();
                    joined.extend(rrow.iter().cloned());
                    out.push(joined);
                }
            }
        }
        Ok((out, stats))
    })?;
    merge(parts, ctx, "plan.HashJoin")
}

/// Parallel Cartesian product: the left side is morselized, each task
/// crosses its morsel with the whole right side. Quadratic, so every
/// task charges `|morsel| × |r|` steps up front — a breach fires long
/// before the full product materializes, even across workers.
pub(crate) fn par_product(
    l: Rows,
    r: Rows,
    ctx: &Ctx,
    op: &'static str,
) -> Result<(Rows, ExecStats), ExecError> {
    let rref = &r;
    let parts = run_timed(
        ctx,
        TaskKind::Morsel,
        chunk_rows(l, ctx.morsel_rows()),
        |_, morsel| {
            enter_morsel(ctx, &morsel, op)?;
            let mut stats = ExecStats::default();
            if let Some(m) = ctx.meter {
                m.charge_steps((morsel.len() * rref.len()) as u64, op)
                    .map_err(|b| budget_err(b, &stats))?;
            }
            let mut out = Vec::new();
            for lrow in &morsel {
                for rrow in rref {
                    stats.rows_processed += 1;
                    stats.cells_processed += (lrow.len() + rrow.len()) as u64;
                    let mut joined = lrow.clone();
                    joined.extend(rrow.iter().cloned());
                    out.push(joined);
                }
            }
            Ok((out, stats))
        },
    )?;
    merge(parts, ctx, op)
}

/// A partition-combinable whole-set aggregate: the kernel class sitting
/// *between* the per-tuple operators (embarrassingly parallel) and the
/// whole-set operators (serial only). The aggregate itself is not a
/// function of per-partition results of the aggregate — Lemma 2.12's
/// parity pitfall: `even(R₁∪R₂) ≠ even(R₁) xor even(R₂)` — but its
/// underlying *measure* is a homomorphism from disjoint union, so
/// partition-local accumulators combined serially reproduce the serial
/// answer exactly. Morsels are disjoint by construction (rows arrive
/// canonical: sorted + deduplicated).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CombineKind {
    /// `|R|` — each morsel contributes its row count.
    Count,
    /// `|R| mod 2` — each morsel contributes its row COUNT, not its
    /// parity bit: parities are combined by summing counts and taking
    /// the total mod 2 at the end, never by xor-ing partition parities.
    Parity,
    /// `Σ column` — each morsel contributes a partial (wrapping) sum of
    /// the given tuple component.
    Sum(usize),
}

impl CombineKind {
    fn op_name(self) -> &'static str {
        match self {
            CombineKind::Count => "plan.Count",
            CombineKind::Parity => "plan.Even",
            CombineKind::Sum(_) => "plan.Sum",
        }
    }
}

/// Partition-local accumulate + serial combine. Tasks run on the morsel
/// pool like any per-tuple kernel (timed into `exec.morsel_us`, steering
/// the tuner); the combine step is serial, passes the `exec.combine`
/// fault site, and is timed into `exec.combine_us` under an
/// `exec.combine` span. Returns the combined integer total — the caller
/// interprets it (count, parity, sum).
pub(crate) fn par_combine(
    input: Rows,
    kind: CombineKind,
    ctx: &Ctx,
) -> Result<(i64, ExecStats), ExecError> {
    let op = kind.op_name();
    let parts = run_timed(
        ctx,
        TaskKind::Morsel,
        chunk_rows(input, ctx.morsel_rows()),
        |_, morsel| {
            enter_morsel(ctx, &morsel, op)?;
            let mut stats = ExecStats::default();
            let mut acc: i64 = 0;
            for row in morsel {
                stats.rows_processed += 1;
                stats.cells_processed += row.len() as u64;
                match kind {
                    CombineKind::Count | CombineKind::Parity => acc += 1,
                    CombineKind::Sum(col) => {
                        // same component extraction as the serial
                        // evaluator, so the two routes agree on
                        // semantics and on error cases
                        let tv = Value::Tuple(row);
                        acc = acc.wrapping_add(
                            genpar_algebra::eval::sum_component(&tv, col).map_err(eval_err)?,
                        );
                    }
                }
            }
            // the partial accumulator rides back as a pseudo-row; the
            // combine below folds them in task order (no canonical
            // merge — equal partials must not deduplicate)
            Ok((vec![vec![Value::Int(acc)]], stats))
        },
    )?;
    let start = std::time::Instant::now();
    let mut sp = genpar_obs::span("exec.combine");
    sp.field("partials", parts.len() as u64);
    genpar_guard::faultpoint("exec.combine").map_err(fault_err)?;
    let mut stats = ExecStats::default();
    let mut total: i64 = 0;
    for (partial, s) in parts {
        add_stats(&mut stats, &s);
        for row in partial {
            for v in row {
                if let Value::Int(n) = v {
                    total = total.wrapping_add(n);
                }
            }
        }
    }
    if let Some(m) = ctx.meter {
        m.charge_rows(1, op).map_err(|b| budget_err(b, &stats))?;
        m.charge_cells(1, op).map_err(|b| budget_err(b, &stats))?;
    }
    genpar_obs::histogram("exec.combine_us").record(start.elapsed().as_micros() as u64);
    Ok((total, stats))
}

/// Which set operation a partitioned set kernel performs.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SetOp {
    Union,
    Intersect,
    Difference,
}

impl SetOp {
    fn op_name(self) -> &'static str {
        match self {
            SetOp::Union => "plan.Union",
            SetOp::Intersect => "plan.Intersect",
            SetOp::Difference => "plan.Difference",
        }
    }
}

/// Partitioned ∪/∩/−: both sides are routed by whole-row hash, so equal
/// rows meet in the same partition and each partition's set operation is
/// independent — the canonical merge of per-partition results equals the
/// serial result exactly.
pub(crate) fn par_setop(
    l: Rows,
    r: Rows,
    op: SetOp,
    ctx: &Ctx,
) -> Result<(Rows, ExecStats), ExecError> {
    let nparts = ctx.cfg.workers.max(1) * 2;
    let lparts = partition_rows(l, nparts, |row| row_partition(row, nparts));
    let rparts = partition_rows(r, nparts, |row| row_partition(row, nparts));
    let tasks: Vec<(Rows, Rows)> = lparts.into_iter().zip(rparts).collect();
    let name = op.op_name();
    let parts = run_timed(ctx, TaskKind::Partition, tasks, |_, (lp, rp)| {
        enter_morsel(ctx, &lp, name)?;
        let mut stats = ExecStats::default();
        stats.rows_processed += (lp.len() + rp.len()) as u64;
        stats.cells_processed += row_cells(&lp) + row_cells(&rp);
        let ls: BTreeSet<Vec<Value>> = lp.into_iter().collect();
        let rs: BTreeSet<Vec<Value>> = rp.into_iter().collect();
        let out: Rows = match op {
            SetOp::Union => ls.union(&rs).cloned().collect(),
            SetOp::Intersect => ls.intersection(&rs).cloned().collect(),
            SetOp::Difference => ls.difference(&rs).cloned().collect(),
        };
        Ok((out, stats))
    })?;
    merge(parts, ctx, name)
}
