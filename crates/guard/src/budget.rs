//! Execution budgets: per-thread resource governors checked at operator
//! boundaries.
//!
//! A [`ExecBudget`] is armed for the current thread with
//! [`ExecBudget::enter`]; while the returned [`BudgetScope`] lives, the
//! `charge_*` free functions meter work against it and return a
//! [`BudgetBreach`] once a cap is crossed. With no budget armed anywhere
//! in the process, every charge is one relaxed atomic load.

use crate::shared::SharedMeter;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The environment variable holding a budget spec (see
/// [`ExecBudget::parse`]).
pub const BUDGET_ENV: &str = "GENPAR_BUDGET";

/// Number of live [`BudgetScope`]s across all threads. Zero means every
/// `charge_*` call returns after one relaxed load.
static ARMED_SCOPES: AtomicUsize = AtomicUsize::new(0);

/// Number of live [`SharedBudgetScope`]s across all threads (tenant
/// quota pools armed by a resident server; see [`enter_shared`]).
static SHARED_SCOPES: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of *any* armed guard scope — thread-local budget,
/// shared meter, or wall deadline. Every `charge_*` fast path is exactly
/// one relaxed load of this counter; the per-kind checks only run when
/// it is nonzero, keeping the disarmed cost identical to pre-wall
/// builds.
pub(crate) static ACTIVE_GUARDS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static ACTIVE: RefCell<Option<Meter>> = const { RefCell::new(None) };
    /// The shared meter armed on this thread by [`enter_shared`].
    static ACTIVE_SHARED: RefCell<Option<Arc<SharedMeter>>> = const { RefCell::new(None) };
}

/// Which budgeted resource a charge draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// Rows materialized by a single operator.
    Rows,
    /// Cells (row × width units) processed in total.
    Cells,
    /// Operator-evaluation steps (the no-wall-clock deadline).
    Steps,
    /// Fixpoint / recursion iterations.
    Depth,
    /// Elements under a `powerset`.
    Powerset,
    /// Wall-clock milliseconds (the `--timeout` deadline; see
    /// [`crate::wall`]).
    Wall,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::Rows => "rows",
            Resource::Cells => "cells",
            Resource::Steps => "steps",
            Resource::Depth => "depth",
            Resource::Powerset => "powerset",
            Resource::Wall => "wall_ms",
        };
        write!(f, "{s}")
    }
}

/// Caps on the work one query evaluation may perform.
///
/// All limits are inclusive: evaluation fails once usage *exceeds* the
/// cap. `Default` gives finite, generous production caps; use
/// [`ExecBudget::unlimited`] to disable everything except the powerset
/// cap (which always defaults to [`ExecBudget::DEFAULT_POWERSET_CAP`]
/// even when no budget is armed — ℘ of 30 elements is a 2³⁰-element
/// answer regardless of anyone's intent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecBudget {
    /// Max rows a single operator may materialize.
    pub max_rows: u64,
    /// Max total cells processed.
    pub max_cells: u64,
    /// Max fixpoint / recursion depth.
    pub max_depth: u64,
    /// Max total evaluation steps (deadline; no wall clock).
    pub max_steps: u64,
    /// Max input-set size for `powerset`.
    pub max_powerset: usize,
}

impl ExecBudget {
    /// The powerset cap applied even when no budget is armed.
    pub const DEFAULT_POWERSET_CAP: usize = 20;

    /// No limits (the powerset cap becomes effectively unbounded too —
    /// only for tests that genuinely want the full expansion).
    pub fn unlimited() -> ExecBudget {
        ExecBudget {
            max_rows: u64::MAX,
            max_cells: u64::MAX,
            max_depth: u64::MAX,
            max_steps: u64::MAX,
            max_powerset: usize::MAX,
        }
    }

    /// Builder: cap rows materialized per operator.
    pub fn with_max_rows(mut self, n: u64) -> ExecBudget {
        self.max_rows = n;
        self
    }

    /// Builder: cap total cells processed.
    pub fn with_max_cells(mut self, n: u64) -> ExecBudget {
        self.max_cells = n;
        self
    }

    /// Builder: cap fixpoint/recursion depth.
    pub fn with_max_depth(mut self, n: u64) -> ExecBudget {
        self.max_depth = n;
        self
    }

    /// Builder: cap total evaluation steps.
    pub fn with_max_steps(mut self, n: u64) -> ExecBudget {
        self.max_steps = n;
        self
    }

    /// Builder: cap the input size of `powerset`.
    pub fn with_max_powerset(mut self, n: usize) -> ExecBudget {
        self.max_powerset = n;
        self
    }

    /// Parse a `key=value[,key=value...]` budget spec (the `GENPAR_BUDGET`
    /// environment grammar). Keys: `rows`, `cells`, `steps`, `depth`,
    /// `powerset`. Unmentioned resources keep their [`Default`] caps.
    pub fn parse(spec: &str) -> Result<ExecBudget, String> {
        let mut b = ExecBudget::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((key, val)) = part.split_once('=') else {
                return Err(format!(
                    "missing '=' in {part:?} (want key=value, keys: rows|cells|steps|depth|powerset)"
                ));
            };
            let n: u64 = val
                .trim()
                .parse()
                .map_err(|_| format!("bad value {:?} for {}", val.trim(), key.trim()))?;
            match key.trim() {
                "rows" => b.max_rows = n,
                "cells" => b.max_cells = n,
                "steps" => b.max_steps = n,
                "depth" => b.max_depth = n,
                "powerset" => b.max_powerset = n as usize,
                other => {
                    return Err(format!(
                        "unknown budget key {other:?} (rows|cells|steps|depth|powerset)"
                    ))
                }
            }
        }
        Ok(b)
    }

    /// Arm this budget for the current thread until the returned scope is
    /// dropped. Scopes nest; the innermost budget governs.
    #[must_use = "the budget is disarmed when the scope drops"]
    pub fn enter(self) -> BudgetScope {
        let prev = ACTIVE.with(|a| {
            a.borrow_mut().replace(Meter {
                budget: self,
                cells: 0,
                steps: 0,
            })
        });
        ARMED_SCOPES.fetch_add(1, Ordering::Relaxed);
        ACTIVE_GUARDS.fetch_add(1, Ordering::Relaxed);
        BudgetScope { prev }
    }
}

impl Default for ExecBudget {
    fn default() -> ExecBudget {
        ExecBudget {
            max_rows: 1_000_000,
            max_cells: 50_000_000,
            max_depth: 100_000,
            max_steps: 10_000_000,
            max_powerset: Self::DEFAULT_POWERSET_CAP,
        }
    }
}

/// RAII scope keeping a budget armed on the current thread.
pub struct BudgetScope {
    prev: Option<Meter>,
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        ARMED_SCOPES.fetch_sub(1, Ordering::Relaxed);
        ACTIVE_GUARDS.fetch_sub(1, Ordering::Relaxed);
        ACTIVE.with(|a| *a.borrow_mut() = self.prev.take());
    }
}

/// Arm a long-lived [`SharedMeter`] — a tenant's cumulative quota pool —
/// for the current thread until the returned scope drops. While armed,
/// the `charge_*` free functions draw from the shared meter (in addition
/// to any thread-scoped budget), so serial evaluation on a server
/// session thread drains the same pool as the parallel workers, and
/// [`SharedMeter::from_armed`] layers a per-request meter on top of it.
/// Scopes nest; the innermost meter governs.
#[must_use = "the shared meter is disarmed when the scope drops"]
pub fn enter_shared(meter: Arc<SharedMeter>) -> SharedBudgetScope {
    let prev = ACTIVE_SHARED.with(|a| a.borrow_mut().replace(meter));
    SHARED_SCOPES.fetch_add(1, Ordering::Relaxed);
    ACTIVE_GUARDS.fetch_add(1, Ordering::Relaxed);
    SharedBudgetScope { prev }
}

/// RAII scope keeping a shared meter armed on the current thread.
pub struct SharedBudgetScope {
    prev: Option<Arc<SharedMeter>>,
}

impl Drop for SharedBudgetScope {
    fn drop(&mut self) {
        SHARED_SCOPES.fetch_sub(1, Ordering::Relaxed);
        ACTIVE_GUARDS.fetch_sub(1, Ordering::Relaxed);
        ACTIVE_SHARED.with(|a| *a.borrow_mut() = self.prev.take());
    }
}

/// The shared meter armed on the current thread, if any. One relaxed
/// load when no shared scope exists anywhere in the process.
pub(crate) fn active_shared() -> Option<Arc<SharedMeter>> {
    if SHARED_SCOPES.load(Ordering::Relaxed) == 0 {
        return None;
    }
    ACTIVE_SHARED.with(|a| a.borrow().clone())
}

/// Usage accumulated against an armed budget.
#[derive(Debug, Clone, Copy)]
struct Meter {
    budget: ExecBudget,
    cells: u64,
    steps: u64,
}

/// A budget cap was crossed.
///
/// Carries everything a structured error needs: which resource, the cap,
/// the observed usage, and the operator that crossed the line. The
/// evaluators wrap this in their own error types together with
/// partial-progress stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetBreach {
    /// The exhausted resource.
    pub resource: Resource,
    /// The configured cap.
    pub limit: u64,
    /// Usage at the moment of the breach.
    pub used: u64,
    /// The operator charging when the cap was crossed.
    pub op: &'static str,
}

impl fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exceeded: {} limit {} (used {}) at {}",
            self.resource, self.limit, self.used, self.op
        )
    }
}

impl std::error::Error for BudgetBreach {}

/// Record a breach into obs (counter + event) and build the error. Shared
/// with the atomic [`crate::shared::SharedMeter`] so both metering styles
/// report identically.
pub(crate) fn record_breach(
    resource: Resource,
    limit: u64,
    used: u64,
    op: &'static str,
) -> BudgetBreach {
    genpar_obs::counter("guard.budget_breaches", 1);
    genpar_obs::event(
        "guard.budget_exceeded",
        [
            (
                "resource",
                genpar_obs::FieldValue::from(resource.to_string()),
            ),
            ("limit", genpar_obs::FieldValue::U64(limit)),
            ("used", genpar_obs::FieldValue::U64(used)),
            ("op", genpar_obs::FieldValue::from(op)),
        ],
    );
    BudgetBreach {
        resource,
        limit,
        used,
        op,
    }
}

#[inline]
fn with_meter(f: impl FnOnce(&mut Meter) -> Result<(), BudgetBreach>) -> Result<(), BudgetBreach> {
    ACTIVE.with(|a| match a.borrow_mut().as_mut() {
        Some(m) => f(m),
        None => Ok(()),
    })
}

/// Is any budget armed on any thread? One relaxed load.
#[inline]
fn armed() -> bool {
    ARMED_SCOPES.load(Ordering::Relaxed) != 0
}

/// Any guard scope armed at all? The single-load disarmed fast path.
#[inline]
fn active() -> bool {
    ACTIVE_GUARDS.load(Ordering::Relaxed) != 0
}

/// The budget armed on the current thread by [`ExecBudget::enter`], if
/// any — excludes shared (tenant) meters, so
/// [`SharedMeter::from_armed`] can layer the two explicitly.
pub(crate) fn thread_budget() -> Option<ExecBudget> {
    if !armed() {
        return None;
    }
    ACTIVE.with(|a| a.borrow().as_ref().map(|m| m.budget))
}

/// The budget governing the current thread, if any: the thread-scoped
/// [`ExecBudget::enter`] budget when one is armed, otherwise the budget
/// of the shared meter armed by [`enter_shared`] (so depth and powerset
/// caps follow the tenant quota on server session threads).
pub fn active_budget() -> Option<ExecBudget> {
    thread_budget().or_else(|| active_shared().map(|m| m.budget()))
}

/// Charge `n` rows materialized by operator `op` (per-operator cap, not
/// cumulative: a plan may stream many small results).
#[inline]
pub fn charge_rows(n: u64, op: &'static str) -> Result<(), BudgetBreach> {
    if !active() {
        return Ok(());
    }
    match active_shared() {
        // the shared meter checks the wall (global and thread-local)
        Some(m) => m.charge_rows(n, op)?,
        None => crate::wall::check_wall(op)?,
    }
    if !armed() {
        return Ok(());
    }
    with_meter(|m| {
        if n > m.budget.max_rows {
            Err(record_breach(Resource::Rows, m.budget.max_rows, n, op))
        } else {
            Ok(())
        }
    })
}

/// Charge `n` cells processed (cumulative across the armed scope).
#[inline]
pub fn charge_cells(n: u64, op: &'static str) -> Result<(), BudgetBreach> {
    if !active() {
        return Ok(());
    }
    match active_shared() {
        Some(m) => m.charge_cells(n, op)?,
        None => crate::wall::check_wall(op)?,
    }
    if !armed() {
        return Ok(());
    }
    with_meter(|m| {
        m.cells = m.cells.saturating_add(n);
        if m.cells > m.budget.max_cells {
            Err(record_breach(
                Resource::Cells,
                m.budget.max_cells,
                m.cells,
                op,
            ))
        } else {
            Ok(())
        }
    })
}

/// Charge `n` evaluation steps (cumulative; the deadline surrogate).
#[inline]
pub fn charge_steps(n: u64, op: &'static str) -> Result<(), BudgetBreach> {
    if !active() {
        return Ok(());
    }
    match active_shared() {
        Some(m) => m.charge_steps(n, op)?,
        None => crate::wall::check_wall(op)?,
    }
    if !armed() {
        return Ok(());
    }
    with_meter(|m| {
        m.steps = m.steps.saturating_add(n);
        if m.steps > m.budget.max_steps {
            Err(record_breach(
                Resource::Steps,
                m.budget.max_steps,
                m.steps,
                op,
            ))
        } else {
            Ok(())
        }
    })
}

/// Check an iteration count against the armed depth cap. Iteration loops
/// call this with their running count rather than accumulating here, so
/// nested loops each get the full depth allowance.
#[inline]
pub fn charge_depth(depth: u64, op: &'static str) -> Result<(), BudgetBreach> {
    if !active() {
        return Ok(());
    }
    match active_shared() {
        Some(m) => m.charge_depth(depth, op)?,
        None => crate::wall::check_wall(op)?,
    }
    if !armed() {
        return Ok(());
    }
    with_meter(|m| {
        if depth > m.budget.max_depth {
            Err(record_breach(
                Resource::Depth,
                m.budget.max_depth,
                depth,
                op,
            ))
        } else {
            Ok(())
        }
    })
}

/// The fixpoint/recursion depth cap: the armed budget's `max_depth`, or
/// `u64::MAX` when nothing is armed.
pub fn depth_limit() -> u64 {
    active_budget().map_or(u64::MAX, |b| b.max_depth)
}

/// The powerset input cap: the armed budget's `max_powerset`, or
/// [`ExecBudget::DEFAULT_POWERSET_CAP`] when nothing is armed (the one
/// guard that stays on by default — ℘ is doubly exponential in intent).
pub fn powerset_cap() -> usize {
    active_budget().map_or(ExecBudget::DEFAULT_POWERSET_CAP, |b| b.max_powerset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_charges_are_free_and_ok() {
        assert!(charge_rows(u64::MAX, "t").is_ok());
        assert!(charge_cells(u64::MAX, "t").is_ok());
        assert!(charge_steps(u64::MAX, "t").is_ok());
        assert!(charge_depth(u64::MAX, "t").is_ok());
        assert_eq!(powerset_cap(), ExecBudget::DEFAULT_POWERSET_CAP);
        assert_eq!(depth_limit(), u64::MAX);
        assert!(active_budget().is_none());
    }

    #[test]
    fn rows_cap_is_per_operator() {
        let _scope = ExecBudget::unlimited().with_max_rows(10).enter();
        assert!(charge_rows(10, "a").is_ok());
        assert!(charge_rows(10, "b").is_ok()); // not cumulative
        let e = charge_rows(11, "c").unwrap_err();
        assert_eq!(e.resource, Resource::Rows);
        assert_eq!(e.limit, 10);
        assert_eq!(e.used, 11);
        assert_eq!(e.op, "c");
    }

    #[test]
    fn cells_and_steps_accumulate() {
        let _scope = ExecBudget::unlimited()
            .with_max_cells(100)
            .with_max_steps(5)
            .enter();
        assert!(charge_cells(60, "a").is_ok());
        let e = charge_cells(60, "b").unwrap_err();
        assert_eq!(e.resource, Resource::Cells);
        assert_eq!(e.used, 120);
        for _ in 0..5 {
            charge_steps(1, "s").unwrap();
        }
        assert_eq!(charge_steps(1, "s").unwrap_err().resource, Resource::Steps);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = ExecBudget::unlimited().with_max_depth(3).enter();
        assert_eq!(depth_limit(), 3);
        {
            let _inner = ExecBudget::unlimited().with_max_depth(7).enter();
            assert_eq!(depth_limit(), 7);
            assert!(charge_depth(5, "f").is_ok());
        }
        assert_eq!(depth_limit(), 3);
        assert_eq!(charge_depth(5, "f").unwrap_err().resource, Resource::Depth);
        drop(outer);
        assert!(active_budget().is_none());
    }

    #[test]
    fn powerset_cap_follows_budget() {
        assert_eq!(powerset_cap(), 20);
        let _scope = ExecBudget::default().with_max_powerset(4).enter();
        assert_eq!(powerset_cap(), 4);
    }

    #[test]
    fn budget_specs_parse() {
        let b = ExecBudget::parse("rows=5, steps=9,powerset=3").unwrap();
        assert_eq!(b.max_rows, 5);
        assert_eq!(b.max_steps, 9);
        assert_eq!(b.max_powerset, 3);
        assert_eq!(b.max_cells, ExecBudget::default().max_cells);
        assert!(ExecBudget::parse("rows").is_err());
        assert!(ExecBudget::parse("rows=abc").is_err());
        assert!(ExecBudget::parse("clocks=1").is_err());
        assert_eq!(ExecBudget::parse("").unwrap(), ExecBudget::default());
    }

    #[test]
    fn shared_scope_routes_free_charges_to_the_pool() {
        let pool = Arc::new(SharedMeter::new(
            ExecBudget::unlimited().with_max_cells(100),
        ));
        let scope = enter_shared(Arc::clone(&pool));
        assert!(charge_cells(60, "a").is_ok());
        assert_eq!(pool.cells_used(), 60);
        let e = charge_cells(60, "b").unwrap_err();
        assert_eq!(e.resource, Resource::Cells);
        drop(scope);
        // disarmed again: charges no longer touch the pool
        assert!(charge_cells(60, "c").is_ok());
        assert_eq!(pool.cells_used(), 120);
    }

    #[test]
    fn shared_scope_governs_depth_and_powerset_caps() {
        assert_eq!(depth_limit(), u64::MAX);
        let pool = Arc::new(SharedMeter::new(
            ExecBudget::unlimited()
                .with_max_depth(4)
                .with_max_powerset(6),
        ));
        let _scope = enter_shared(pool);
        assert_eq!(depth_limit(), 4);
        assert_eq!(powerset_cap(), 6);
        assert_eq!(
            charge_depth(5, "fix").unwrap_err().resource,
            Resource::Depth
        );
        // a thread-scoped budget still narrows within the shared scope
        let _inner = ExecBudget::unlimited().with_max_depth(2).enter();
        assert_eq!(depth_limit(), 2);
    }

    #[test]
    fn shared_scope_is_thread_local() {
        let pool = Arc::new(SharedMeter::new(ExecBudget::unlimited().with_max_cells(10)));
        let _scope = enter_shared(Arc::clone(&pool));
        std::thread::scope(|s| {
            s.spawn(|| {
                // other threads are not governed by this thread's pool
                assert!(charge_cells(1_000, "t").is_ok());
            });
        });
        assert_eq!(pool.cells_used(), 0);
    }

    #[test]
    fn breach_renders_all_fields() {
        let b = BudgetBreach {
            resource: Resource::Cells,
            limit: 9,
            used: 12,
            op: "alg.Product",
        };
        let s = b.to_string();
        assert!(s.contains("cells"), "{s}");
        assert!(s.contains('9'), "{s}");
        assert!(s.contains("12"), "{s}");
        assert!(s.contains("alg.Product"), "{s}");
    }
}
