//! Bounded retry policy: the first rung of the execution degradation
//! ladder.
//!
//! A genericity certificate says a morsel (or a fixpoint round) is a
//! parametric computation over a disjoint slice — re-running it cannot
//! change its relationally-determined result. That makes an in-place
//! retry semantically free, so a faulted or panicked task is re-run up
//! to [`RetryPolicy::max_retries`] times before the failure escalates
//! to worker quarantine and, last, the whole-query serial fallback.
//!
//! The default allows 2 retries (3 attempts total); the `GENPAR_RETRY`
//! environment variable overrides it (`0` disables retries entirely and
//! restores the pre-ladder all-or-nothing behaviour).

use std::fmt;

/// The environment variable overriding the retry count.
pub const RETRY_ENV: &str = "GENPAR_RETRY";

/// How many times a faulted task may be re-run in place before the
/// failure escalates up the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (`0` = no retries).
    pub max_retries: u32,
}

impl RetryPolicy {
    /// The hard ceiling on configurable retries — beyond this a retry
    /// loop is masking a deterministic failure, not riding out a blip.
    pub const MAX_CONFIGURABLE: u32 = 16;

    /// A policy with no retries (first failure escalates immediately).
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0 }
    }

    /// Total attempts a task gets (first run + retries).
    pub fn max_attempts(self) -> u32 {
        self.max_retries.saturating_add(1)
    }

    /// Parse a `GENPAR_RETRY` value: a non-negative integer up to
    /// [`RetryPolicy::MAX_CONFIGURABLE`].
    pub fn parse(s: &str) -> Result<RetryPolicy, RetrySpecError> {
        let t = s.trim();
        let n: u32 = t
            .parse()
            .map_err(|_| RetrySpecError(format!("bad value {t:?} (want an integer 0..=16)")))?;
        if n > Self::MAX_CONFIGURABLE {
            return Err(RetrySpecError(format!(
                "value {n} too large (max {})",
                Self::MAX_CONFIGURABLE
            )));
        }
        Ok(RetryPolicy { max_retries: n })
    }

    /// The policy from the `GENPAR_RETRY` environment variable, or the
    /// default when unset/empty. A malformed value is an error — the CLI
    /// maps it to a usage failure rather than guessing.
    pub fn from_env() -> Result<RetryPolicy, RetrySpecError> {
        match std::env::var(RETRY_ENV) {
            Ok(v) if !v.trim().is_empty() => RetryPolicy::parse(&v),
            _ => Ok(RetryPolicy::default()),
        }
    }

    /// Like [`RetryPolicy::from_env`] but falling back to the default on
    /// a malformed value — for library paths that must not fail on
    /// configuration (the CLI validates the variable loudly up front).
    pub fn from_env_lossy() -> RetryPolicy {
        RetryPolicy::from_env().unwrap_or_default()
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_retries: 2 }
    }
}

/// A malformed `GENPAR_RETRY` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetrySpecError(pub String);

impl fmt::Display for RetrySpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad {RETRY_ENV} value: {}", self.0)
    }
}

impl std::error::Error for RetrySpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_allows_two_retries() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 2);
        assert_eq!(p.max_attempts(), 3);
    }

    #[test]
    fn parse_accepts_zero_and_bounds() {
        assert_eq!(RetryPolicy::parse("0").unwrap(), RetryPolicy::none());
        assert_eq!(RetryPolicy::parse(" 5 ").unwrap().max_retries, 5);
        assert_eq!(RetryPolicy::parse("16").unwrap().max_retries, 16);
    }

    #[test]
    fn parse_rejects_garbage_naming_the_token() {
        let e = RetryPolicy::parse("lots").unwrap_err();
        assert!(e.to_string().contains("lots"), "{e}");
        assert!(e.to_string().contains(RETRY_ENV), "{e}");
        assert!(RetryPolicy::parse("-1").is_err());
        assert!(RetryPolicy::parse("17").is_err());
        assert!(RetryPolicy::parse("2x").is_err());
    }
}
