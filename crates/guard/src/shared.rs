//! Concurrency-safe budget metering: one [`SharedMeter`] charged by all
//! workers of a parallel executor.
//!
//! The thread-scoped machinery in [`crate::budget`] is deliberately
//! thread-local (one query, one thread). A morsel-driven executor runs
//! one query on *N* threads that must all draw from a single budget, so
//! this module provides an atomic variant: cumulative resources
//! (`cells`, `steps`) are `fetch_add`-then-check counters, and the
//! per-operator `rows` cap is a plain comparison (nothing accumulates).
//!
//! ## Overshoot bound
//!
//! A charge is `fetch_add(n)` followed by a cap comparison — there is no
//! lock, so two workers may both pass the check an instant before either
//! add lands. The slack is bounded: every worker stops at its own first
//! failed charge, so with `W` workers each charging quanta of at most
//! `q` units, recorded usage never exceeds `cap + W × q`. Executors keep
//! `q` at morsel granularity (`morsel_rows × row_width` cells), making
//! the bound tight and documented rather than incidental. The
//! `workers_cannot_overshoot_beyond_slack` test pins this bound.
//!
//! ## Layered meters (tenants)
//!
//! A resident server arms one long-lived `Arc<SharedMeter>` per tenant
//! ([`crate::enter_shared`]); [`SharedMeter::from_armed`] then builds a
//! fresh per-request meter whose `parent` is the tenant pool, so every
//! worker charge draws from *both*: the request's own caps and the
//! tenant's cumulative quota. The request meter also captures the
//! session's thread-local wall deadline ([`crate::wall::local_deadline`])
//! so pool workers — which never see the session thread's thread-locals —
//! still enforce the per-request `--timeout`.

use crate::budget::{BudgetBreach, ExecBudget, Resource};
use crate::wall::WallDeadline;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An atomically charged budget shared by the workers of one parallel
/// query execution.
///
/// Construct it from the budget armed on the coordinating thread (or an
/// explicit [`ExecBudget`]), hand a reference to every worker, and map
/// the first [`BudgetBreach`] into the executor's error type.
#[derive(Debug)]
pub struct SharedMeter {
    budget: ExecBudget,
    cells: AtomicU64,
    steps: AtomicU64,
    /// Per-request wall deadline captured at construction; checked on
    /// every charge so workers inherit the session's `--timeout`.
    deadline: Option<WallDeadline>,
    /// Longer-lived pool (a tenant quota) this meter also draws from.
    parent: Option<Arc<SharedMeter>>,
}

impl SharedMeter {
    /// A shared meter over an explicit budget.
    pub fn new(budget: ExecBudget) -> SharedMeter {
        SharedMeter {
            budget,
            cells: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            deadline: None,
            parent: None,
        }
    }

    /// A shared meter over the guard state armed on the *current*
    /// thread, if any — the bridge from the thread-scoped world into a
    /// worker pool. Returns `None` when nothing is armed, so the
    /// disarmed fast path stays free.
    ///
    /// Layering, innermost first:
    /// - a thread-scoped [`ExecBudget::enter`] budget becomes the
    ///   request's own caps;
    /// - a shared scope ([`crate::enter_shared`], the tenant pool)
    ///   becomes the `parent` every charge also draws from — or, when no
    ///   thread budget narrows it, is charged directly;
    /// - a thread-local wall deadline
    ///   ([`crate::arm_wall_deadline_local`]) is captured so workers
    ///   enforce it; with only a deadline armed the meter's own caps are
    ///   unlimited.
    pub fn from_armed() -> Option<Arc<SharedMeter>> {
        let tenant = crate::budget::active_shared();
        let local = crate::budget::thread_budget();
        let deadline = crate::wall::local_deadline();
        match (tenant, local, deadline) {
            (None, None, None) => None,
            // nothing request-scoped to layer on: draw from the tenant
            // pool directly (cumulative across requests)
            (Some(t), None, None) => Some(t),
            (tenant, local, deadline) => {
                let budget = local
                    .or_else(|| tenant.as_ref().map(|t| t.budget))
                    .unwrap_or_else(ExecBudget::unlimited);
                Some(Arc::new(SharedMeter {
                    budget,
                    cells: AtomicU64::new(0),
                    steps: AtomicU64::new(0),
                    deadline,
                    parent: tenant,
                }))
            }
        }
    }

    #[inline]
    fn check_deadline(&self, op: &'static str) -> Result<(), BudgetBreach> {
        match &self.deadline {
            Some(d) => d.check(op),
            None => Ok(()),
        }
    }

    /// The budget this meter enforces.
    pub fn budget(&self) -> ExecBudget {
        self.budget
    }

    /// Cumulative cells charged so far (may exceed the cap by the
    /// documented worker slack once a breach has been reported).
    pub fn cells_used(&self) -> u64 {
        self.cells.load(Ordering::Relaxed)
    }

    /// Cumulative steps charged so far.
    pub fn steps_used(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Charge `n` rows materialized by operator `op` (per-operator cap,
    /// not cumulative — same semantics as [`crate::charge_rows`]).
    pub fn charge_rows(&self, n: u64, op: &'static str) -> Result<(), BudgetBreach> {
        crate::wall::check_wall(op)?;
        self.check_deadline(op)?;
        if n > self.budget.max_rows {
            return Err(crate::budget::record_breach(
                Resource::Rows,
                self.budget.max_rows,
                n,
                op,
            ));
        }
        match &self.parent {
            Some(p) => p.charge_rows(n, op),
            None => Ok(()),
        }
    }

    /// Charge `n` cells processed (cumulative across all workers).
    pub fn charge_cells(&self, n: u64, op: &'static str) -> Result<(), BudgetBreach> {
        crate::wall::check_wall(op)?;
        self.check_deadline(op)?;
        let used = self.cells.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if used > self.budget.max_cells {
            return Err(crate::budget::record_breach(
                Resource::Cells,
                self.budget.max_cells,
                used,
                op,
            ));
        }
        match &self.parent {
            Some(p) => p.charge_cells(n, op),
            None => Ok(()),
        }
    }

    /// Charge `n` evaluation steps (cumulative across all workers).
    pub fn charge_steps(&self, n: u64, op: &'static str) -> Result<(), BudgetBreach> {
        crate::wall::check_wall(op)?;
        self.check_deadline(op)?;
        let used = self.steps.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if used > self.budget.max_steps {
            return Err(crate::budget::record_breach(
                Resource::Steps,
                self.budget.max_steps,
                used,
                op,
            ));
        }
        match &self.parent {
            Some(p) => p.charge_steps(n, op),
            None => Ok(()),
        }
    }

    /// Check an iteration count against the depth cap (same semantics
    /// as [`crate::charge_depth`]: the loop passes its running count).
    pub fn charge_depth(&self, depth: u64, op: &'static str) -> Result<(), BudgetBreach> {
        crate::wall::check_wall(op)?;
        self.check_deadline(op)?;
        if depth > self.budget.max_depth {
            return Err(crate::budget::record_breach(
                Resource::Depth,
                self.budget.max_depth,
                depth,
                op,
            ));
        }
        match &self.parent {
            Some(p) => p.charge_depth(depth, op),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn unarmed_thread_yields_no_meter() {
        assert!(SharedMeter::from_armed().is_none());
        let _scope = ExecBudget::default().with_max_cells(7).enter();
        let m = SharedMeter::from_armed().unwrap();
        assert_eq!(m.budget().max_cells, 7);
    }

    #[test]
    fn shared_scope_alone_yields_the_pool_itself() {
        let pool = Arc::new(SharedMeter::new(ExecBudget::unlimited().with_max_cells(50)));
        let _scope = crate::budget::enter_shared(Arc::clone(&pool));
        let m = SharedMeter::from_armed().unwrap();
        assert!(
            Arc::ptr_eq(&m, &pool),
            "no request layer: charge the pool directly"
        );
        // cumulative across "requests": a second from_armed sees drained state
        m.charge_cells(40, "a").unwrap();
        let m2 = SharedMeter::from_armed().unwrap();
        assert_eq!(
            m2.charge_cells(40, "b").unwrap_err().resource,
            Resource::Cells
        );
    }

    #[test]
    fn thread_budget_layers_over_the_tenant_pool() {
        let pool = Arc::new(SharedMeter::new(
            ExecBudget::unlimited().with_max_cells(100),
        ));
        let _scope = crate::budget::enter_shared(Arc::clone(&pool));
        let _inner = ExecBudget::unlimited().with_max_cells(30).enter();
        let m = SharedMeter::from_armed().unwrap();
        // successful charges drain the tenant pool too...
        m.charge_cells(20, "a").unwrap();
        assert_eq!(pool.cells_used(), 20);
        // ...and the request meter enforces its own (narrower) cap,
        // stopping before the breaching charge reaches the pool
        assert_eq!(m.budget().max_cells, 30);
        assert_eq!(
            m.charge_cells(20, "b").unwrap_err().resource,
            Resource::Cells
        );
        assert_eq!(pool.cells_used(), 20);
    }

    #[test]
    fn local_deadline_rides_into_the_meter() {
        let _wall = crate::wall::arm_wall_deadline_local(std::time::Duration::ZERO);
        let m = SharedMeter::from_armed().expect("deadline alone arms a meter");
        std::thread::sleep(std::time::Duration::from_millis(2));
        // the captured deadline breaches even on a thread that never saw
        // the arming thread's thread-locals
        std::thread::scope(|s| {
            s.spawn(move || {
                let e = m.charge_cells(1, "exec.morsel").unwrap_err();
                assert_eq!(e.resource, Resource::Wall);
            });
        });
    }

    #[test]
    fn rows_cap_is_per_charge() {
        let m = SharedMeter::new(ExecBudget::unlimited().with_max_rows(10));
        assert!(m.charge_rows(10, "a").is_ok());
        assert!(m.charge_rows(10, "b").is_ok()); // not cumulative
        let e = m.charge_rows(11, "c").unwrap_err();
        assert_eq!(e.resource, Resource::Rows);
        assert_eq!(e.op, "c");
    }

    #[test]
    fn cells_and_steps_accumulate_across_charges() {
        let m = SharedMeter::new(
            ExecBudget::unlimited()
                .with_max_cells(100)
                .with_max_steps(3),
        );
        assert!(m.charge_cells(60, "a").is_ok());
        let e = m.charge_cells(60, "b").unwrap_err();
        assert_eq!(e.resource, Resource::Cells);
        assert_eq!(e.used, 120);
        for _ in 0..3 {
            m.charge_steps(1, "s").unwrap();
        }
        assert_eq!(
            m.charge_steps(1, "s").unwrap_err().resource,
            Resource::Steps
        );
    }

    /// The documented concurrency bound: with `W` workers charging
    /// quanta of `q`, recorded usage never exceeds `cap + W × q`, and
    /// every worker observes the breach (no one keeps charging past its
    /// own first error).
    #[test]
    fn workers_cannot_overshoot_beyond_slack() {
        const WORKERS: u64 = 8;
        const QUANTUM: u64 = 16;
        const CAP: u64 = 1000;
        let m = SharedMeter::new(
            ExecBudget::unlimited()
                .with_max_cells(CAP)
                .with_max_steps(CAP),
        );
        let all_breached = AtomicBool::new(true);
        std::thread::scope(|s| {
            for _ in 0..WORKERS {
                s.spawn(|| {
                    let mut breached = false;
                    // each worker tries far more work than the cap allows
                    for _ in 0..(2 * CAP / QUANTUM) {
                        if m.charge_cells(QUANTUM, "t").is_err() {
                            breached = true;
                            break; // a worker stops at its first breach
                        }
                    }
                    if !breached {
                        all_breached.store(false, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(
            all_breached.load(Ordering::Relaxed),
            "every worker must see the breach"
        );
        let used = m.cells_used();
        assert!(used > CAP, "the cap was genuinely reached: {used}");
        assert!(
            used <= CAP + WORKERS * QUANTUM,
            "overshoot {used} exceeds documented slack {}",
            CAP + WORKERS * QUANTUM
        );
    }
}
