//! Concurrency-safe budget metering: one [`SharedMeter`] charged by all
//! workers of a parallel executor.
//!
//! The thread-scoped machinery in [`crate::budget`] is deliberately
//! thread-local (one query, one thread). A morsel-driven executor runs
//! one query on *N* threads that must all draw from a single budget, so
//! this module provides an atomic variant: cumulative resources
//! (`cells`, `steps`) are `fetch_add`-then-check counters, and the
//! per-operator `rows` cap is a plain comparison (nothing accumulates).
//!
//! ## Overshoot bound
//!
//! A charge is `fetch_add(n)` followed by a cap comparison — there is no
//! lock, so two workers may both pass the check an instant before either
//! add lands. The slack is bounded: every worker stops at its own first
//! failed charge, so with `W` workers each charging quanta of at most
//! `q` units, recorded usage never exceeds `cap + W × q`. Executors keep
//! `q` at morsel granularity (`morsel_rows × row_width` cells), making
//! the bound tight and documented rather than incidental. The
//! `workers_cannot_overshoot_beyond_slack` test pins this bound.

use crate::budget::{BudgetBreach, ExecBudget, Resource};
use std::sync::atomic::{AtomicU64, Ordering};

/// An atomically charged budget shared by the workers of one parallel
/// query execution.
///
/// Construct it from the budget armed on the coordinating thread (or an
/// explicit [`ExecBudget`]), hand a reference to every worker, and map
/// the first [`BudgetBreach`] into the executor's error type.
#[derive(Debug)]
pub struct SharedMeter {
    budget: ExecBudget,
    cells: AtomicU64,
    steps: AtomicU64,
}

impl SharedMeter {
    /// A shared meter over an explicit budget.
    pub fn new(budget: ExecBudget) -> SharedMeter {
        SharedMeter {
            budget,
            cells: AtomicU64::new(0),
            steps: AtomicU64::new(0),
        }
    }

    /// A shared meter over the budget armed on the *current* thread, if
    /// any — the bridge from the thread-scoped [`ExecBudget::enter`]
    /// world into a worker pool. Returns `None` when nothing is armed,
    /// so the disarmed fast path stays free.
    pub fn from_armed() -> Option<SharedMeter> {
        crate::budget::active_budget().map(SharedMeter::new)
    }

    /// The budget this meter enforces.
    pub fn budget(&self) -> ExecBudget {
        self.budget
    }

    /// Cumulative cells charged so far (may exceed the cap by the
    /// documented worker slack once a breach has been reported).
    pub fn cells_used(&self) -> u64 {
        self.cells.load(Ordering::Relaxed)
    }

    /// Cumulative steps charged so far.
    pub fn steps_used(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Charge `n` rows materialized by operator `op` (per-operator cap,
    /// not cumulative — same semantics as [`crate::charge_rows`]).
    pub fn charge_rows(&self, n: u64, op: &'static str) -> Result<(), BudgetBreach> {
        crate::wall::check_wall(op)?;
        if n > self.budget.max_rows {
            Err(crate::budget::record_breach(
                Resource::Rows,
                self.budget.max_rows,
                n,
                op,
            ))
        } else {
            Ok(())
        }
    }

    /// Charge `n` cells processed (cumulative across all workers).
    pub fn charge_cells(&self, n: u64, op: &'static str) -> Result<(), BudgetBreach> {
        crate::wall::check_wall(op)?;
        let used = self.cells.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if used > self.budget.max_cells {
            Err(crate::budget::record_breach(
                Resource::Cells,
                self.budget.max_cells,
                used,
                op,
            ))
        } else {
            Ok(())
        }
    }

    /// Charge `n` evaluation steps (cumulative across all workers).
    pub fn charge_steps(&self, n: u64, op: &'static str) -> Result<(), BudgetBreach> {
        crate::wall::check_wall(op)?;
        let used = self.steps.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if used > self.budget.max_steps {
            Err(crate::budget::record_breach(
                Resource::Steps,
                self.budget.max_steps,
                used,
                op,
            ))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn unarmed_thread_yields_no_meter() {
        assert!(SharedMeter::from_armed().is_none());
        let _scope = ExecBudget::default().with_max_cells(7).enter();
        let m = SharedMeter::from_armed().unwrap();
        assert_eq!(m.budget().max_cells, 7);
    }

    #[test]
    fn rows_cap_is_per_charge() {
        let m = SharedMeter::new(ExecBudget::unlimited().with_max_rows(10));
        assert!(m.charge_rows(10, "a").is_ok());
        assert!(m.charge_rows(10, "b").is_ok()); // not cumulative
        let e = m.charge_rows(11, "c").unwrap_err();
        assert_eq!(e.resource, Resource::Rows);
        assert_eq!(e.op, "c");
    }

    #[test]
    fn cells_and_steps_accumulate_across_charges() {
        let m = SharedMeter::new(
            ExecBudget::unlimited()
                .with_max_cells(100)
                .with_max_steps(3),
        );
        assert!(m.charge_cells(60, "a").is_ok());
        let e = m.charge_cells(60, "b").unwrap_err();
        assert_eq!(e.resource, Resource::Cells);
        assert_eq!(e.used, 120);
        for _ in 0..3 {
            m.charge_steps(1, "s").unwrap();
        }
        assert_eq!(
            m.charge_steps(1, "s").unwrap_err().resource,
            Resource::Steps
        );
    }

    /// The documented concurrency bound: with `W` workers charging
    /// quanta of `q`, recorded usage never exceeds `cap + W × q`, and
    /// every worker observes the breach (no one keeps charging past its
    /// own first error).
    #[test]
    fn workers_cannot_overshoot_beyond_slack() {
        const WORKERS: u64 = 8;
        const QUANTUM: u64 = 16;
        const CAP: u64 = 1000;
        let m = SharedMeter::new(
            ExecBudget::unlimited()
                .with_max_cells(CAP)
                .with_max_steps(CAP),
        );
        let all_breached = AtomicBool::new(true);
        std::thread::scope(|s| {
            for _ in 0..WORKERS {
                s.spawn(|| {
                    let mut breached = false;
                    // each worker tries far more work than the cap allows
                    for _ in 0..(2 * CAP / QUANTUM) {
                        if m.charge_cells(QUANTUM, "t").is_err() {
                            breached = true;
                            break; // a worker stops at its first breach
                        }
                    }
                    if !breached {
                        all_breached.store(false, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(
            all_breached.load(Ordering::Relaxed),
            "every worker must see the breach"
        );
        let used = m.cells_used();
        assert!(used > CAP, "the cap was genuinely reached: {used}");
        assert!(
            used <= CAP + WORKERS * QUANTUM,
            "overshoot {used} exceeds documented slack {}",
            CAP + WORKERS * QUANTUM
        );
    }
}
