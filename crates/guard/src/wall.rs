//! Wall-clock deadlines: a cooperative cancellation token checked at the
//! existing `charge_*` points.
//!
//! The budget machinery is deliberately wall-clock free (steps are the
//! deterministic deadline surrogate), but an operator fronting a query
//! service needs a real timeout: `genpar run --timeout MS` arms a
//! process-global deadline with [`arm_wall_deadline`], and every
//! `charge_*` call — thread-local or [`crate::SharedMeter`] — first asks
//! [`check_wall`]. A crossed deadline surfaces as a [`BudgetBreach`] with
//! [`Resource::Wall`], flowing through the exact same structured-error
//! path (and exit code) as any other exhausted budget. No new unsafe, no
//! thread is ever killed: workers notice the deadline at their next
//! charge point and unwind cooperatively.
//!
//! Disarmed cost: one relaxed atomic load per check.
//!
//! Two arming styles coexist:
//!
//! - [`arm_wall_deadline`] is process-global and non-nesting (last armed
//!   wins) — it models "this whole invocation must finish by T", the
//!   one-shot CLI `--timeout`.
//! - [`arm_wall_deadline_local`] is thread-scoped: a resident server
//!   handling many concurrent requests arms one deadline per session
//!   thread without the sessions clobbering each other. The captured
//!   [`WallDeadline`] also rides into [`crate::SharedMeter`] (see
//!   [`local_deadline`]) so pool workers — which never see the session's
//!   thread-locals — still enforce the request's deadline at every
//!   metered charge.

use crate::budget::{record_breach, BudgetBreach, Resource};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Number of live [`WallScope`]s. Zero means [`check_wall`] is one
/// relaxed load and an immediate `Ok`.
static WALL_SCOPES: AtomicUsize = AtomicUsize::new(0);

/// Deadline in microseconds since the process [`epoch`].
static DEADLINE_US: AtomicU64 = AtomicU64::new(u64::MAX);

/// The configured limit in milliseconds (for breach rendering).
static LIMIT_MS: AtomicU64 = AtomicU64::new(0);

/// When the deadline was armed, microseconds since [`epoch`].
static ARMED_AT_US: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros().min(u64::MAX as u128) as u64
}

thread_local! {
    /// The deadline armed on this thread by [`arm_wall_deadline_local`].
    static LOCAL: Cell<Option<WallDeadline>> = const { Cell::new(None) };
}

/// A captured wall deadline: instants in microseconds against the
/// process [`epoch`]. `Copy` so it can ride into a
/// [`crate::SharedMeter`] and be checked by pool workers that never see
/// the arming thread's thread-locals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallDeadline {
    deadline_us: u64,
    limit_ms: u64,
    armed_at_us: u64,
}

impl WallDeadline {
    fn starting_now(timeout: Duration) -> WallDeadline {
        let start = now_us();
        WallDeadline {
            deadline_us: start.saturating_add(timeout.as_micros().min(u64::MAX as u128) as u64),
            limit_ms: timeout.as_millis().min(u64::MAX as u128) as u64,
            armed_at_us: start,
        }
    }

    /// Has this deadline passed? Same breach shape as the global check.
    pub(crate) fn check(&self, op: &'static str) -> Result<(), BudgetBreach> {
        let now = now_us();
        if now <= self.deadline_us {
            return Ok(());
        }
        let elapsed_ms = now.saturating_sub(self.armed_at_us) / 1_000;
        Err(record_breach(
            Resource::Wall,
            self.limit_ms,
            elapsed_ms.max(self.limit_ms + 1),
            op,
        ))
    }
}

/// The deadline armed on the current thread by
/// [`arm_wall_deadline_local`], if any — captured by
/// [`crate::SharedMeter::from_armed`] so parallel workers inherit it.
pub fn local_deadline() -> Option<WallDeadline> {
    LOCAL.with(|c| c.get())
}

/// Arm a wall deadline for the *current thread only*: concurrent server
/// sessions each arm their own without interfering. Scopes nest; the
/// innermost deadline governs until its scope drops.
#[must_use = "the deadline is disarmed when the scope drops"]
pub fn arm_wall_deadline_local(timeout: Duration) -> LocalWallScope {
    let prev = LOCAL.with(|c| c.replace(Some(WallDeadline::starting_now(timeout))));
    WALL_SCOPES.fetch_add(1, Ordering::Relaxed);
    crate::budget::ACTIVE_GUARDS.fetch_add(1, Ordering::Relaxed);
    LocalWallScope { prev }
}

/// RAII scope keeping a thread-local wall deadline armed.
pub struct LocalWallScope {
    prev: Option<WallDeadline>,
}

impl Drop for LocalWallScope {
    fn drop(&mut self) {
        LOCAL.with(|c| c.set(self.prev.take()));
        WALL_SCOPES.fetch_sub(1, Ordering::Relaxed);
        crate::budget::ACTIVE_GUARDS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Arm a process-global wall-clock deadline `timeout` from now. The
/// deadline stays armed until the returned scope drops.
#[must_use = "the deadline is disarmed when the scope drops"]
pub fn arm_wall_deadline(timeout: Duration) -> WallScope {
    let start = now_us();
    let deadline = start.saturating_add(timeout.as_micros().min(u64::MAX as u128) as u64);
    DEADLINE_US.store(deadline, Ordering::Relaxed);
    LIMIT_MS.store(
        timeout.as_millis().min(u64::MAX as u128) as u64,
        Ordering::Relaxed,
    );
    ARMED_AT_US.store(start, Ordering::Relaxed);
    WALL_SCOPES.fetch_add(1, Ordering::Relaxed);
    crate::budget::ACTIVE_GUARDS.fetch_add(1, Ordering::Relaxed);
    WallScope { _priv: () }
}

/// RAII scope keeping a wall deadline armed for the whole process.
pub struct WallScope {
    _priv: (),
}

impl Drop for WallScope {
    fn drop(&mut self) {
        if WALL_SCOPES.fetch_sub(1, Ordering::Relaxed) == 1 {
            DEADLINE_US.store(u64::MAX, Ordering::Relaxed);
        }
        crate::budget::ACTIVE_GUARDS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Has the armed wall deadline passed? `Ok(())` when no deadline is
/// armed (one relaxed load) or when there is still time left; otherwise
/// a [`BudgetBreach`] naming [`Resource::Wall`], the configured limit
/// and the elapsed milliseconds.
#[inline]
pub fn check_wall(op: &'static str) -> Result<(), BudgetBreach> {
    if WALL_SCOPES.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    check_wall_slow(op)
}

#[cold]
fn check_wall_slow(op: &'static str) -> Result<(), BudgetBreach> {
    let now = now_us();
    if now > DEADLINE_US.load(Ordering::Relaxed) {
        let limit = LIMIT_MS.load(Ordering::Relaxed);
        let elapsed_ms = now.saturating_sub(ARMED_AT_US.load(Ordering::Relaxed)) / 1_000;
        return Err(record_breach(
            Resource::Wall,
            limit,
            elapsed_ms.max(limit + 1),
            op,
        ));
    }
    if let Some(d) = LOCAL.with(|c| c.get()) {
        d.check(op)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The deadline is process-global; serialize tests touching it.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disarmed_checks_are_ok() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(check_wall("t").is_ok());
    }

    #[test]
    fn generous_deadline_passes_and_disarms_on_drop() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let scope = arm_wall_deadline(Duration::from_secs(3600));
        assert!(check_wall("t").is_ok());
        drop(scope);
        assert!(check_wall("t").is_ok());
    }

    #[test]
    fn expired_deadline_breaches_with_wall_resource() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let scope = arm_wall_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        let e = check_wall("exec.morsel").unwrap_err();
        assert_eq!(e.resource, Resource::Wall);
        assert_eq!(e.op, "exec.morsel");
        assert!(e.used > e.limit, "{e}");
        drop(scope);
        assert!(check_wall("exec.morsel").is_ok());
    }

    #[test]
    fn local_deadline_is_thread_scoped() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let scope = arm_wall_deadline_local(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        let e = check_wall("exec.morsel").unwrap_err();
        assert_eq!(e.resource, Resource::Wall);
        // another thread is not governed by this thread's deadline
        std::thread::scope(|s| {
            s.spawn(|| assert!(check_wall("other").is_ok()));
        });
        drop(scope);
        assert!(check_wall("exec.morsel").is_ok());
    }

    #[test]
    fn local_deadlines_nest_and_restore() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let outer = arm_wall_deadline_local(Duration::from_secs(3600));
        let outer_dl = local_deadline().unwrap();
        {
            let _inner = arm_wall_deadline_local(Duration::ZERO);
            std::thread::sleep(Duration::from_millis(2));
            assert!(check_wall("t").is_err());
        }
        assert_eq!(local_deadline(), Some(outer_dl));
        assert!(check_wall("t").is_ok());
        drop(outer);
        assert!(local_deadline().is_none());
    }

    #[test]
    fn captured_deadline_breaches_off_thread() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let scope = arm_wall_deadline_local(Duration::ZERO);
        let dl = local_deadline().unwrap();
        std::thread::sleep(Duration::from_millis(2));
        // a worker holding the captured deadline sees the breach even
        // though the arming thread's thread-local is invisible to it
        std::thread::scope(|s| {
            s.spawn(move || {
                let e = dl.check("exec.morsel").unwrap_err();
                assert_eq!(e.resource, Resource::Wall);
            });
        });
        drop(scope);
    }

    #[test]
    fn breach_renders_as_budget_exceeded() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let scope = arm_wall_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        let s = check_wall("q").unwrap_err().to_string();
        assert!(s.contains("budget exceeded"), "{s}");
        assert!(s.contains("wall_ms"), "{s}");
        drop(scope);
    }
}
