//! Deterministic fault injection.
//!
//! Call sites name themselves with [`faultpoint`]`("engine.scan")`; a
//! test (or an operator, via the `GENPAR_FAULTS` environment variable)
//! arms a spec like `engine.scan:2` and the **second** hit of that site
//! fails with a [`Fault`]. Since the workspace is single-source-of-truth
//! deterministic, arming `site:nth` reproduces the identical failure
//! every run — the harness the robustness tests use to prove each
//! failure path ends in a structured error rather than a panic.
//!
//! ## Spec grammar
//!
//! ```text
//! spec  := arm {',' arm}
//! arm   := site ':' trigger
//! trigger := nat            fire on the nth hit only (1-based)
//!          | '*'            fire on every hit
//! site  := [a-zA-Z0-9._-]+
//! ```
//!
//! Example: `GENPAR_FAULTS=engine.scan:1,optimizer.cost:*`.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// The environment variable holding the fault spec.
pub const FAULTS_ENV: &str = "GENPAR_FAULTS";

/// Fast-path switch: false means every [`faultpoint`] is one relaxed
/// load and an immediate `Ok`.
static FAULTS_ARMED: AtomicBool = AtomicBool::new(false);

static TABLE: OnceLock<Mutex<HashMap<String, Arm>>> = OnceLock::new();

fn table() -> &'static Mutex<HashMap<String, Arm>> {
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

#[derive(Debug, Clone, Copy)]
struct Arm {
    /// `None` fires every hit; `Some(n)` fires on the nth hit (1-based).
    nth: Option<u64>,
    hits: u64,
}

/// An injected fault: the structured error a [`faultpoint`] produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The site that fired.
    pub site: String,
    /// Which hit of the site this was (1-based).
    pub hit: u64,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {} (hit {})", self.site, self.hit)
    }
}

impl std::error::Error for Fault {}

/// A malformed `GENPAR_FAULTS` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(pub String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad {FAULTS_ENV} spec: {} (want site:nth[,site:nth...], nth a 1-based count or '*')",
            self.0
        )
    }
}

impl std::error::Error for FaultSpecError {}

/// Every fault site compiled into the workspace, sorted. The env-facing
/// [`arm_faults_strict`] validates against this registry so a typo in an
/// operator's `GENPAR_FAULTS` is a loud usage error instead of a spec
/// that silently never fires. (The programmatic [`arm_faults`] stays
/// charset-only so tests may arm synthetic sites.)
pub const KNOWN_SITES: &[&str] = &[
    "algebra.eval",
    "bench.op",
    "checker.invariance",
    "engine.execute",
    "engine.scan",
    "exec.combine",
    "exec.fixpoint_round",
    "exec.merge",
    "exec.morsel",
    "exec.retry",
    "io.persist",
    "optimizer.cost",
    "optimizer.rewrite",
    "transfer.check",
    "vm.exec",
];

fn parse_spec(spec: &str, strict: bool) -> Result<HashMap<String, Arm>, FaultSpecError> {
    let mut arms = HashMap::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some((site, trigger)) = part.split_once(':') else {
            return Err(FaultSpecError(format!("missing ':' in {part:?}")));
        };
        let site = site.trim();
        if site.is_empty()
            || !site
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        {
            return Err(FaultSpecError(format!("bad site name {site:?}")));
        }
        if strict && !KNOWN_SITES.contains(&site) {
            return Err(FaultSpecError(format!(
                "unknown fault site {site:?} (known sites: {})",
                KNOWN_SITES.join(", ")
            )));
        }
        let nth = match trigger.trim() {
            "*" => None,
            n => match n.parse::<u64>() {
                Ok(n) if n >= 1 => Some(n),
                _ => {
                    return Err(FaultSpecError(format!("bad trigger {n:?} for site {site}")));
                }
            },
        };
        arms.insert(site.to_string(), Arm { nth, hits: 0 });
    }
    Ok(arms)
}

fn install(arms: HashMap<String, Arm>) {
    let armed = !arms.is_empty();
    *table().lock().unwrap_or_else(|e| e.into_inner()) = arms;
    FAULTS_ARMED.store(armed, Ordering::Relaxed);
}

/// Arm faults from a `site:nth[,site:nth...]` spec, replacing any
/// previously armed set. Site names are charset-checked only — tests
/// may arm synthetic sites that no shipped code contains.
pub fn arm_faults(spec: &str) -> Result<(), FaultSpecError> {
    install(parse_spec(spec, false)?);
    Ok(())
}

/// Like [`arm_faults`] but additionally rejecting sites absent from
/// [`KNOWN_SITES`] — the validation applied at the environment boundary,
/// where a typo would otherwise arm nothing and report nothing.
pub fn arm_faults_strict(spec: &str) -> Result<(), FaultSpecError> {
    install(parse_spec(spec, true)?);
    Ok(())
}

/// Arm faults from the `GENPAR_FAULTS` environment variable, if set.
/// Returns whether anything was armed. Sites are validated against
/// [`KNOWN_SITES`]: a malformed or unknown token is an error naming it.
pub fn arm_faults_from_env() -> Result<bool, FaultSpecError> {
    match std::env::var(FAULTS_ENV) {
        Ok(spec) if !spec.trim().is_empty() => {
            arm_faults_strict(&spec)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Disarm all faults and reset hit counters.
pub fn disarm_faults() {
    FAULTS_ARMED.store(false, Ordering::Relaxed);
    table().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Is any fault currently armed? One relaxed load — cheap enough to
/// consult on hot paths (the executor uses it to decide whether tasks
/// must be held recoverable).
#[inline]
pub fn faults_armed() -> bool {
    FAULTS_ARMED.load(Ordering::Relaxed)
}

/// The currently armed sites (for diagnostics).
pub fn armed_faults() -> Vec<String> {
    let mut v: Vec<String> = table()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .keys()
        .cloned()
        .collect();
    v.sort();
    v
}

/// A named fault-injection site. Returns `Err(Fault)` when an armed spec
/// says this hit should fail; otherwise `Ok(())`. Disarmed cost: one
/// relaxed atomic load.
#[inline]
pub fn faultpoint(site: &'static str) -> Result<(), Fault> {
    if !FAULTS_ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    faultpoint_slow(site)
}

#[cold]
fn faultpoint_slow(site: &'static str) -> Result<(), Fault> {
    let mut t = table().lock().unwrap_or_else(|e| e.into_inner());
    let Some(arm) = t.get_mut(site) else {
        return Ok(());
    };
    arm.hits += 1;
    let fire = match arm.nth {
        None => true,
        Some(n) => arm.hits == n,
    };
    if !fire {
        return Ok(());
    }
    let fault = Fault {
        site: site.to_string(),
        hit: arm.hits,
    };
    drop(t);
    genpar_obs::counter("guard.faults_injected", 1);
    genpar_obs::event(
        "guard.fault_injected",
        [
            ("site", genpar_obs::FieldValue::from(site)),
            ("hit", genpar_obs::FieldValue::U64(fault.hit)),
        ],
    );
    Err(fault)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The fault table is process-global; serialize tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_faultpoints_are_ok() {
        let _g = serial();
        disarm_faults();
        assert!(faultpoint("nowhere").is_ok());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _g = serial();
        arm_faults("a.site:2").unwrap();
        assert!(faultpoint("a.site").is_ok());
        let f = faultpoint("a.site").unwrap_err();
        assert_eq!(f.site, "a.site");
        assert_eq!(f.hit, 2);
        assert!(faultpoint("a.site").is_ok()); // 3rd hit: silent again
        assert!(faultpoint("other.site").is_ok());
        disarm_faults();
    }

    #[test]
    fn star_trigger_fires_every_time() {
        let _g = serial();
        arm_faults("b.site:*").unwrap();
        assert!(faultpoint("b.site").is_err());
        assert!(faultpoint("b.site").is_err());
        disarm_faults();
        assert!(faultpoint("b.site").is_ok());
    }

    #[test]
    fn multi_arm_specs_parse() {
        let _g = serial();
        arm_faults("x.one:1, y.two:3 ,z-three:*").unwrap();
        let sites = armed_faults();
        assert_eq!(sites, vec!["x.one", "y.two", "z-three"]);
        disarm_faults();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _g = serial();
        assert!(arm_faults("no-colon").is_err());
        assert!(arm_faults("site:0").is_err());
        assert!(arm_faults("site:abc").is_err());
        assert!(arm_faults("bad site:1").is_err());
        assert!(arm_faults(":1").is_err());
        // a failed arm must not leave faults half-armed
        disarm_faults();
        assert!(faultpoint("site").is_ok());
    }

    #[test]
    fn strict_arming_rejects_unknown_sites_naming_them() {
        let _g = serial();
        disarm_faults();
        let e = arm_faults_strict("exec.morzel:1").unwrap_err();
        assert!(e.to_string().contains("exec.morzel"), "{e}");
        assert!(e.to_string().contains("unknown fault site"), "{e}");
        // a failed strict arm must not leave faults half-armed
        assert!(faultpoint("exec.morsel").is_ok());
        // every registered site passes strict arming
        for site in KNOWN_SITES {
            arm_faults_strict(&format!("{site}:1")).unwrap();
        }
        disarm_faults();
    }

    #[test]
    fn known_sites_are_sorted_and_unique() {
        let mut sorted = KNOWN_SITES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, KNOWN_SITES, "keep the registry sorted + unique");
    }

    #[test]
    fn fault_renders_site_and_hit() {
        let f = Fault {
            site: "engine.scan".into(),
            hit: 4,
        };
        let s = f.to_string();
        assert!(s.contains("engine.scan"), "{s}");
        assert!(s.contains("hit 4"), "{s}");
    }
}
