#![warn(missing_docs)]
//! # genpar-guard — resource governance and fault tolerance
//!
//! The algebra of the paper contains inherently explosive operators
//! (`powerset` is the Chandra hierarchy's Q5; fixpoint iteration need not
//! converge), so a production engine must treat partiality and failure as
//! first-class. This crate provides the three guard mechanisms the rest
//! of the workspace threads through its execution paths:
//!
//! * **Execution budgets** ([`ExecBudget`]) — caps on rows materialized,
//!   cells processed, fixpoint/recursion depth and total evaluation steps
//!   (a step-count deadline; the environment is offline-deterministic so
//!   there is deliberately no wall clock). A budget is armed for the
//!   current thread with [`ExecBudget::enter`]; evaluators call the
//!   `charge_*` functions at operator boundaries and surface a
//!   [`BudgetBreach`] as a structured error with partial-progress stats.
//!   Parallel executors bridge an armed budget into a worker pool with
//!   [`SharedMeter`] — one atomically charged meter shared by all
//!   workers, with a documented `workers × quantum` overshoot bound.
//! * **Deterministic fault injection** ([`faultpoint`]) — named sites in
//!   the engine, evaluator, checker and transfer machinery that can be
//!   armed via the `GENPAR_FAULTS=site:nth` environment spec (or
//!   programmatically with [`arm_faults`]) to fail on the nth hit,
//!   proving every failure path ends in a structured error, never a
//!   panic.
//! * **Panic boundaries** ([`catch_panics`]) — `catch_unwind` wrappers
//!   converting residual panics into error payloads at the engine and
//!   CLI boundaries.
//!
//! ## Cost when disabled
//!
//! When no budget is armed and no faults are armed, every `charge_*` call
//! and every [`faultpoint`] is **one relaxed atomic load** and an
//! immediate return. The `obs_overhead` bench in `genpar-bench` asserts
//! this path stays within the workspace's ≤5% overhead bound.
//!
//! Guard activity is recorded through the `genpar-obs` registry:
//! `guard.budget_breaches` / `guard.faults_injected` counters and
//! `guard.budget_exceeded` / `guard.fault_injected` events.

pub mod budget;
pub mod fault;
pub mod retry;
pub mod shared;
pub mod wall;

pub use budget::{
    active_budget, charge_cells, charge_depth, charge_rows, charge_steps, depth_limit,
    enter_shared, powerset_cap, BudgetBreach, BudgetScope, ExecBudget, Resource, SharedBudgetScope,
    BUDGET_ENV,
};
pub use fault::{
    arm_faults, arm_faults_from_env, arm_faults_strict, armed_faults, disarm_faults, faultpoint,
    faults_armed, Fault, FaultSpecError, FAULTS_ENV, KNOWN_SITES,
};
pub use retry::{RetryPolicy, RetrySpecError, RETRY_ENV};
pub use shared::SharedMeter;
pub use wall::{
    arm_wall_deadline, arm_wall_deadline_local, check_wall, LocalWallScope, WallDeadline, WallScope,
};

/// Render a panic payload (from `std::panic::catch_unwind`) as text.
///
/// Downcasts the two payload types `panic!` actually produces (`&str` and
/// `String`); anything else renders as `"<non-string panic payload>"`.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `f` behind a panic boundary: a panic becomes `Err(message)`.
///
/// This is the engine/CLI boundary of the robustness layer: residual
/// panics in operator code become structured internal errors instead of
/// unwinding across the public API.
pub fn catch_panics<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(panic_message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_panics_passes_values_and_captures_payloads() {
        assert_eq!(catch_panics(|| 42), Ok(42));
        let err = catch_panics(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
        assert_eq!(err, "boom 7");
        let err = catch_panics(|| -> u32 { std::panic::panic_any(99u8) }).unwrap_err();
        assert_eq!(err, "<non-string panic payload>");
    }
}
