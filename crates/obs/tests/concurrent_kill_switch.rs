//! Satellite S3: histograms under the kill switch while parallel workers
//! record concurrently. The contract mirrors `GENPAR_PARALLEL=4` with
//! `GENPAR_OBS=off`: four threads hammering a shared handle must be a
//! strict no-op when disabled, and must lose nothing (no torn reads, no
//! dropped increments) when enabled — including across a mid-run flip.

use genpar_obs::Registry;
use std::sync::Arc;

const WORKERS: u64 = 4;
const PER_WORKER: u64 = 10_000;

#[test]
fn disabled_histograms_are_a_no_op_under_concurrent_recording() {
    let reg = Arc::new(Registry::new());
    reg.set_enabled(false);
    let handle = reg.histogram("exec.morsel_us");
    std::thread::scope(|sc| {
        for t in 0..WORKERS {
            let handle = handle.clone();
            let reg = reg.clone();
            sc.spawn(move || {
                for i in 0..PER_WORKER {
                    handle.record(t * 100 + i % 17);
                    // the by-name path must also respect the switch
                    reg.record("exec.morsel_us", i);
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert!(
        snap.histograms.is_empty(),
        "disabled registry must report no histograms, got {:?}",
        snap.histograms.keys().collect::<Vec<_>>()
    );
}

#[test]
fn enabled_histograms_lose_nothing_across_four_workers() {
    let reg = Arc::new(Registry::new());
    let handle = reg.histogram("exec.morsel_us");
    std::thread::scope(|sc| {
        for t in 0..WORKERS {
            let handle = handle.clone();
            sc.spawn(move || {
                for i in 0..PER_WORKER {
                    handle.record(t * 1000 + i % 97);
                }
            });
        }
    });
    let snap = reg.snapshot();
    let h = &snap.histograms["exec.morsel_us"];
    assert_eq!(h.count, WORKERS * PER_WORKER);
    let want_sum: u64 = (0..WORKERS)
        .map(|t| (0..PER_WORKER).map(|i| t * 1000 + i % 97).sum::<u64>())
        .sum();
    assert_eq!(h.sum, want_sum, "atomic buckets must not tear");
    assert_eq!(h.max, (WORKERS - 1) * 1000 + 96);
    assert!(h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max);
}

#[test]
fn flipping_the_switch_mid_run_drops_only_disabled_window_records() {
    let reg = Registry::new();
    let handle = reg.histogram("exec.morsel_us");
    handle.record(10);
    reg.set_enabled(false);
    handle.record(10);
    handle.record(10);
    reg.set_enabled(true);
    handle.record(10);
    let snap = reg.snapshot();
    assert_eq!(snap.histograms["exec.morsel_us"].count, 2);
}

#[test]
fn reset_keeps_handles_live() {
    let reg = Registry::new();
    let handle = reg.histogram("exec.morsel_us");
    handle.record(5);
    reg.reset();
    assert!(reg.snapshot().histograms.is_empty());
    // the pre-reset handle still records into the (zeroed) histogram
    handle.record(7);
    assert_eq!(reg.snapshot().histograms["exec.morsel_us"].count, 1);
}
