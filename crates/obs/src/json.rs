//! A tiny self-contained JSON value with a writer and a parser.
//!
//! `genpar-obs` must not pull heavy dependencies (the build environment is
//! offline), so snapshots are rendered through this ~200-line module
//! instead of serde. Object key order is preserved (`Vec` of pairs), which
//! keeps renderings deterministic and makes round-trip tests exact.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i128),
    /// A float.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Parse a JSON document (must consume the full input).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // ensure floats survive a round-trip as floats
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(f, "{n:.1}")
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(xs) => {
                write!(f, "[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // take a run of plain bytes
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).ok_or_else(|| self.err("bad codepoint"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("bad integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints() {
        let j = Json::parse(r#"{"a": 1, "b": [true, null, "x\ny"], "c": 2.5}"#).unwrap();
        assert_eq!(j.get("a").and_then(Json::as_int), Some(1));
        assert_eq!(j.get("b").and_then(Json::as_arr).map(|a| a.len()), Some(3));
        let printed = j.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), j);
    }

    #[test]
    fn escapes_survive() {
        let j = Json::Str("quote \" back \\ newline \n tab \t".into());
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_stay_integers() {
        let j = Json::parse("[9007199254740993]").unwrap();
        assert_eq!(j.as_arr().unwrap()[0], Json::Int(9007199254740993));
        let f = Json::parse("[2.0]").unwrap();
        assert_eq!(f.to_string(), "[2.0]");
        assert_eq!(Json::parse(&f.to_string()).unwrap(), f);
    }
}
