//! Export a [`Snapshot`] as a Chrome `trace_event` document.
//!
//! Two renderings of the same data:
//!
//! * [`chrome_trace`] — the `{"traceEvents": [...]}` object format that
//!   `chrome://tracing` and Perfetto load directly.
//! * [`jsonl`] — the same events, one JSON object per line (newline-
//!   delimited), for `jq`-style stream processing.
//!
//! The registry aggregates spans by call-tree position (it does not keep
//! every begin/end timestamp), so span nodes are exported as **complete**
//! events (`"ph": "X"`) laid out sequentially: a node starts where its
//! previous sibling ended and lasts its *total* accumulated time. The
//! result reads as a flame graph of where time went, not a literal
//! timeline of when. Ring-buffer events carry real timestamps and are
//! exported as **instant** events (`"ph": "i"`) at their true
//! `at_micros`, on their own thread row.

use crate::json::Json;
use crate::registry::{Event, Snapshot, SpanNode};

/// Synthetic pid for all exported events.
const PID: i128 = 1;
/// Thread row for the aggregated span layout.
const TID_SPANS: i128 = 1;
/// Thread row for ring-buffer instant events.
const TID_EVENTS: i128 = 2;

fn span_events(node: &SpanNode, start_us: f64, out: &mut Vec<Json>) -> f64 {
    let dur_us = node.total_nanos as f64 / 1e3;
    let mut args: Vec<(String, Json)> = vec![("calls".to_string(), Json::Int(node.calls as i128))];
    for (k, v) in &node.fields {
        args.push((k.clone(), Json::Int(*v as i128)));
    }
    out.push(Json::obj([
        ("name", Json::str(&node.name)),
        ("ph", Json::str("X")),
        ("ts", Json::Num(start_us)),
        ("dur", Json::Num(dur_us)),
        ("pid", Json::Int(PID)),
        ("tid", Json::Int(TID_SPANS)),
        ("args", Json::Obj(args)),
    ]));
    let mut cursor = start_us;
    for child in &node.children {
        cursor = span_events(child, cursor, out);
    }
    start_us + dur_us
}

fn instant_event(e: &Event) -> Json {
    let args: Vec<(String, Json)> = std::iter::once(("seq".to_string(), Json::Int(e.seq as i128)))
        .chain(e.fields.iter().map(|(k, v)| {
            (
                k.clone(),
                match v {
                    crate::FieldValue::U64(n) => Json::Int(*n as i128),
                    crate::FieldValue::I64(n) => Json::Int(*n as i128),
                    crate::FieldValue::F64(n) => Json::Num(*n),
                    crate::FieldValue::Bool(b) => Json::Bool(*b),
                    crate::FieldValue::Str(s) => Json::str(s.clone()),
                },
            )
        }))
        .collect();
    Json::obj([
        ("name", Json::str(&e.kind)),
        ("ph", Json::str("i")),
        ("s", Json::str("t")), // instant scope: thread
        ("ts", Json::Num(e.at_micros as f64)),
        ("pid", Json::Int(PID)),
        ("tid", Json::Int(TID_EVENTS)),
        ("args", Json::Obj(args)),
    ])
}

fn thread_name(tid: i128, name: &str) -> Json {
    Json::obj([
        ("name", Json::str("thread_name")),
        ("ph", Json::str("M")),
        ("pid", Json::Int(PID)),
        ("tid", Json::Int(tid)),
        ("args", Json::obj([("name", Json::str(name))])),
    ])
}

/// All trace events of a snapshot, in emission order: metadata, the span
/// flame layout, then ring events by timestamp.
fn trace_events(snap: &Snapshot) -> Vec<Json> {
    let mut out = vec![
        Json::obj([
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::Int(PID)),
            ("tid", Json::Int(TID_SPANS)),
            ("args", Json::obj([("name", Json::str("genpar"))])),
        ]),
        thread_name(TID_SPANS, "spans (aggregated)"),
        thread_name(TID_EVENTS, "events"),
    ];
    let mut cursor = 0.0;
    for s in &snap.spans {
        cursor = span_events(s, cursor, &mut out);
    }
    for e in &snap.events {
        out.push(instant_event(e));
    }
    out
}

/// Render a snapshot as a Chrome `trace_event` JSON object
/// (`chrome://tracing` / Perfetto loadable).
pub fn chrome_trace(snap: &Snapshot) -> Json {
    Json::obj([
        ("traceEvents", Json::Arr(trace_events(snap))),
        ("displayTimeUnit", Json::str("ms")),
    ])
}

/// [`chrome_trace`] as text.
pub fn chrome_trace_string(snap: &Snapshot) -> String {
    chrome_trace(snap).to_string()
}

/// Render a snapshot's trace events as JSONL: one JSON object per line.
pub fn jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for e in trace_events(snap) {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldValue, Registry};

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::new();
        {
            let mut outer = reg.span("engine.execute");
            outer.field("rows_out", 3);
            let _a = reg.span("plan.Project");
            drop(_a);
            let _b = reg.span("plan.Scan");
        }
        reg.event(
            "exec.retune",
            [
                ("old", FieldValue::U64(1024)),
                ("new", FieldValue::U64(2048)),
            ],
        );
        reg.snapshot()
    }

    #[test]
    fn chrome_trace_is_loadable_json_with_all_events() {
        let snap = sample_snapshot();
        let text = chrome_trace_string(&snap);
        let parsed = Json::parse(&text).expect("trace parses");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        // 3 metadata + 3 spans + 1 instant
        assert_eq!(events.len(), 7, "{text}");
        let span = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("engine.execute"))
            .expect("span event present");
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert!(span.get("dur").is_some());
        let inst = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("exec.retune"))
            .expect("instant event present");
        assert_eq!(inst.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(
            inst.get("args").unwrap().get("new").unwrap().as_int(),
            Some(2048)
        );
    }

    #[test]
    fn children_are_laid_out_inside_their_parent() {
        let snap = sample_snapshot();
        let j = chrome_trace(&snap);
        let events = j.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        let get = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
                .unwrap()
        };
        let num = |e: &Json, k: &str| match e.get(k) {
            Some(Json::Num(n)) => *n,
            Some(Json::Int(i)) => *i as f64,
            _ => panic!("missing {k}"),
        };
        let parent = get("engine.execute");
        let child = get("plan.Scan");
        let (ps, pd) = (num(parent, "ts"), num(parent, "dur"));
        let (cs, cd) = (num(child, "ts"), num(child, "dur"));
        assert!(
            cs >= ps && cs + cd <= ps + pd + 1e-6,
            "child escapes parent"
        );
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let snap = sample_snapshot();
        let text = jsonl(&snap);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7);
        for line in lines {
            Json::parse(line).expect("each JSONL line parses");
        }
    }
}
