//! Export a [`Snapshot`] (and, when recorded, the true timeline) as a
//! Chrome `trace_event` document.
//!
//! Two renderings:
//!
//! * [`chrome_trace`] — the `{"traceEvents": [...]}` object format that
//!   `chrome://tracing` and Perfetto load directly.
//! * [`jsonl`] — the same events, one JSON object per line (newline-
//!   delimited), for `jq`-style stream processing.
//!
//! **With the timeline recorder on** (`GENPAR_TIMELINE` /
//! [`crate::timeline::set_enabled`]), the export is a *real* timeline:
//! every recorded span instance becomes a genuine begin/end pair
//! (`"ph": "B"` / `"ph": "E"`) at its measured instants, on a `tid` row
//! per worker lane (0 = main thread, `N` = pool worker `N−1`), with the
//! owning [`crate::timeline::QueryId`] in `args.query`. Morsel
//! scheduling, steal instants, fixpoint-round barriers and combiner
//! folds all land where they actually happened.
//!
//! **Without timeline records**, the export falls back to the synthetic
//! flame *layout*: the registry aggregates spans by call-tree position
//! (no per-instance timestamps), so span nodes are laid out sequentially
//! as complete events (`"ph": "X"`) — a flame graph of where time went,
//! not of when. Ring-buffer events are exported as instants
//! (`"ph": "i"`) at their true `at_micros` in fallback mode; the real
//! timeline records its own instants (steals, barriers) natively
//! instead, since the registry and timeline epochs differ.

use crate::json::Json;
use crate::registry::{Event, Snapshot, SpanNode};
use crate::timeline::{TimelineEvent, TimelineKind, TimelineSnapshot};

/// Synthetic pid for all exported events.
const PID: i128 = 1;
/// Thread row for the aggregated span layout (fallback mode).
const TID_SPANS: i128 = 1;
/// Thread row for ring-buffer instant events (fallback mode).
const TID_EVENTS: i128 = 2;

fn span_events(node: &SpanNode, start_us: f64, out: &mut Vec<Json>) -> f64 {
    let dur_us = node.total_nanos as f64 / 1e3;
    let mut args: Vec<(String, Json)> = vec![("calls".to_string(), Json::Int(node.calls as i128))];
    for (k, v) in &node.fields {
        args.push((k.clone(), Json::Int(*v as i128)));
    }
    out.push(Json::obj([
        ("name", Json::str(&node.name)),
        ("ph", Json::str("X")),
        ("ts", Json::Num(start_us)),
        ("dur", Json::Num(dur_us)),
        ("pid", Json::Int(PID)),
        ("tid", Json::Int(TID_SPANS)),
        ("args", Json::Obj(args)),
    ]));
    let mut cursor = start_us;
    for child in &node.children {
        cursor = span_events(child, cursor, out);
    }
    start_us + dur_us
}

fn instant_event(e: &Event) -> Json {
    let args: Vec<(String, Json)> = std::iter::once(("seq".to_string(), Json::Int(e.seq as i128)))
        .chain(e.fields.iter().map(|(k, v)| {
            (
                k.clone(),
                match v {
                    crate::FieldValue::U64(n) => Json::Int(*n as i128),
                    crate::FieldValue::I64(n) => Json::Int(*n as i128),
                    crate::FieldValue::F64(n) => Json::Num(*n),
                    crate::FieldValue::Bool(b) => Json::Bool(*b),
                    crate::FieldValue::Str(s) => Json::str(s.clone()),
                },
            )
        }))
        .collect();
    Json::obj([
        ("name", Json::str(&e.kind)),
        ("ph", Json::str("i")),
        ("s", Json::str("t")), // instant scope: thread
        ("ts", Json::Num(e.at_micros as f64)),
        ("pid", Json::Int(PID)),
        ("tid", Json::Int(TID_EVENTS)),
        ("args", Json::Obj(args)),
    ])
}

fn thread_name(tid: i128, name: &str) -> Json {
    Json::obj([
        ("name", Json::str("thread_name")),
        ("ph", Json::str("M")),
        ("pid", Json::Int(PID)),
        ("tid", Json::Int(tid)),
        ("args", Json::obj([("name", Json::str(name))])),
    ])
}

fn process_name() -> Json {
    Json::obj([
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::Int(PID)),
        ("tid", Json::Int(TID_SPANS)),
        ("args", Json::obj([("name", Json::str("genpar"))])),
    ])
}

/// Fallback trace events: metadata, the span flame layout, then ring
/// events by timestamp.
fn synthetic_events(snap: &Snapshot) -> Vec<Json> {
    let mut out = vec![
        process_name(),
        thread_name(TID_SPANS, "spans (aggregated)"),
        thread_name(TID_EVENTS, "events"),
    ];
    let mut cursor = 0.0;
    for s in &snap.spans {
        cursor = span_events(s, cursor, &mut out);
    }
    for e in &snap.events {
        out.push(instant_event(e));
    }
    out
}

fn lane_name(lane: u32) -> String {
    if lane == 0 {
        "main".to_string()
    } else {
        format!("worker-{}", lane - 1)
    }
}

fn begin_event(e: &TimelineEvent) -> Json {
    Json::obj([
        ("name", Json::str(&e.name)),
        ("ph", Json::str("B")),
        ("ts", Json::Num(e.begin_ns as f64 / 1e3)),
        ("pid", Json::Int(PID)),
        ("tid", Json::Int(e.lane as i128)),
        ("args", Json::obj([("query", Json::Int(e.query as i128))])),
    ])
}

fn end_event(e: &TimelineEvent) -> Json {
    Json::obj([
        ("name", Json::str(&e.name)),
        ("ph", Json::str("E")),
        ("ts", Json::Num(e.end_ns as f64 / 1e3)),
        ("pid", Json::Int(PID)),
        ("tid", Json::Int(e.lane as i128)),
    ])
}

fn timeline_instant(e: &TimelineEvent) -> Json {
    Json::obj([
        ("name", Json::str(&e.name)),
        ("ph", Json::str("i")),
        ("s", Json::str("t")),
        ("ts", Json::Num(e.begin_ns as f64 / 1e3)),
        ("pid", Json::Int(PID)),
        ("tid", Json::Int(e.lane as i128)),
        ("args", Json::obj([("query", Json::Int(e.query as i128))])),
    ])
}

/// Real-timeline trace events: per-lane metadata, then matched B/E
/// pairs. Within a lane the recorder's intervals are nested or disjoint
/// (one thread runs one span at a time), so a single stack sweep over
/// the `(begin asc, end desc)`-sorted events emits every `E` at its
/// measured end instant, properly nested for Chrome's validator.
fn timeline_events(tl: &TimelineSnapshot) -> Vec<Json> {
    let mut out = vec![process_name()];
    let mut lanes: Vec<u32> = tl.events.iter().map(|e| e.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for &lane in &lanes {
        out.push(thread_name(lane as i128, &lane_name(lane)));
    }
    let mut stack: Vec<&TimelineEvent> = Vec::new();
    let mut cur_lane: Option<u32> = None;
    let flush = |stack: &mut Vec<&TimelineEvent>, out: &mut Vec<Json>| {
        while let Some(top) = stack.pop() {
            out.push(end_event(top));
        }
    };
    for e in &tl.events {
        if cur_lane != Some(e.lane) {
            flush(&mut stack, &mut out);
            cur_lane = Some(e.lane);
        }
        // close every open span that ended before this record starts
        while let Some(top) = stack.last() {
            if top.end_ns <= e.begin_ns {
                out.push(end_event(top));
                stack.pop();
            } else {
                break;
            }
        }
        match e.kind {
            TimelineKind::Instant => out.push(timeline_instant(e)),
            TimelineKind::Span => {
                out.push(begin_event(e));
                stack.push(e);
            }
        }
    }
    flush(&mut stack, &mut out);
    out
}

fn all_events(snap: &Snapshot, tl: &TimelineSnapshot) -> Vec<Json> {
    if tl.events.is_empty() {
        synthetic_events(snap)
    } else {
        timeline_events(tl)
    }
}

/// Render a snapshot (plus timeline, when recorded) as a Chrome
/// `trace_event` JSON object (`chrome://tracing` / Perfetto loadable).
/// With timeline events present the export is real B/E pairs on
/// per-worker lanes; otherwise the synthetic flame layout.
pub fn chrome_trace(snap: &Snapshot, tl: &TimelineSnapshot) -> Json {
    let mut fields = vec![
        ("traceEvents".to_string(), Json::Arr(all_events(snap, tl))),
        ("displayTimeUnit".to_string(), Json::str("ms")),
    ];
    if !tl.events.is_empty() {
        fields.push(("timelineDropped".to_string(), Json::Int(tl.dropped as i128)));
    }
    Json::Obj(fields)
}

/// [`chrome_trace`] as text.
pub fn chrome_trace_string(snap: &Snapshot, tl: &TimelineSnapshot) -> String {
    chrome_trace(snap, tl).to_string()
}

/// Render the trace events as JSONL: one JSON object per line.
pub fn jsonl(snap: &Snapshot, tl: &TimelineSnapshot) -> String {
    let mut out = String::new();
    for e in all_events(snap, tl) {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldValue, Registry};

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::new();
        {
            let mut outer = reg.span("engine.execute");
            outer.field("rows_out", 3);
            let _a = reg.span("plan.Project");
            drop(_a);
            let _b = reg.span("plan.Scan");
        }
        reg.event(
            "exec.retune",
            [
                ("old", FieldValue::U64(1024)),
                ("new", FieldValue::U64(2048)),
            ],
        );
        reg.snapshot()
    }

    fn no_tl() -> TimelineSnapshot {
        TimelineSnapshot::default()
    }

    /// A hand-built timeline: two lanes, nested spans on lane 0, a
    /// morsel + steal on lane 1.
    fn sample_timeline() -> TimelineSnapshot {
        let ev = |name: &str, lane, begin_ns, end_ns, kind| TimelineEvent {
            name: name.to_string(),
            lane,
            query: 7,
            begin_ns,
            end_ns,
            kind,
        };
        let mut events = vec![
            ev("exec.parallel", 0, 100, 10_000, TimelineKind::Span),
            ev("exec.fixpoint_round", 0, 200, 4_000, TimelineKind::Span),
            ev("exec.fixpoint_round", 0, 4_500, 9_000, TimelineKind::Span),
            ev("exec.morsel", 1, 300, 2_000, TimelineKind::Span),
            ev("exec.steal", 1, 2_100, 2_100, TimelineKind::Instant),
            ev("exec.morsel", 1, 2_200, 3_500, TimelineKind::Span),
        ];
        events.sort_by(|a, b| {
            (a.lane, a.begin_ns, std::cmp::Reverse(a.end_ns)).cmp(&(
                b.lane,
                b.begin_ns,
                std::cmp::Reverse(b.end_ns),
            ))
        });
        TimelineSnapshot {
            events,
            dropped: 0,
            written: 6,
            capacity_per_thread: 8192,
        }
    }

    #[test]
    fn fallback_chrome_trace_is_loadable_json_with_all_events() {
        let snap = sample_snapshot();
        let text = chrome_trace_string(&snap, &no_tl());
        let parsed = Json::parse(&text).expect("trace parses");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        // 3 metadata + 3 spans + 1 instant
        assert_eq!(events.len(), 7, "{text}");
        let span = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("engine.execute"))
            .expect("span event present");
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert!(span.get("dur").is_some());
        let inst = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("exec.retune"))
            .expect("instant event present");
        assert_eq!(inst.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(
            inst.get("args").unwrap().get("new").unwrap().as_int(),
            Some(2048)
        );
    }

    #[test]
    fn fallback_children_are_laid_out_inside_their_parent() {
        let snap = sample_snapshot();
        let j = chrome_trace(&snap, &no_tl());
        let events = j.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        let get = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
                .unwrap()
        };
        let num = |e: &Json, k: &str| match e.get(k) {
            Some(Json::Num(n)) => *n,
            Some(Json::Int(i)) => *i as f64,
            _ => panic!("missing {k}"),
        };
        let parent = get("engine.execute");
        let child = get("plan.Scan");
        let (ps, pd) = (num(parent, "ts"), num(parent, "dur"));
        let (cs, cd) = (num(child, "ts"), num(child, "dur"));
        assert!(
            cs >= ps && cs + cd <= ps + pd + 1e-6,
            "child escapes parent"
        );
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let snap = sample_snapshot();
        let text = jsonl(&snap, &no_tl());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7);
        for line in lines {
            Json::parse(line).expect("each JSONL line parses");
        }
    }

    #[test]
    fn timeline_export_emits_balanced_nested_be_pairs() {
        let snap = sample_snapshot();
        let j = chrome_trace(&snap, &sample_timeline());
        let events = j.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        // no synthetic X events in timeline mode
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(|p| p.as_str()) != Some("X")));
        // per tid: B/E balanced and properly nested (a stack never
        // underflows, and every E matches the innermost open B's name)
        use std::collections::HashMap;
        let mut stacks: HashMap<i128, Vec<&str>> = HashMap::new();
        let mut b_count = 0;
        for e in events {
            let ph = e.get("ph").and_then(|p| p.as_str()).unwrap();
            let tid = e.get("tid").and_then(|t| t.as_int()).unwrap_or(0);
            let name = e.get("name").and_then(|n| n.as_str()).unwrap();
            match ph {
                "B" => {
                    b_count += 1;
                    stacks.entry(tid).or_default().push(name);
                }
                "E" => {
                    let top = stacks.entry(tid).or_default().pop();
                    assert_eq!(top, Some(name), "E matches innermost B");
                }
                _ => {}
            }
        }
        assert_eq!(b_count, 5, "five span instances exported");
        assert!(stacks.values().all(|s| s.is_empty()), "all spans closed");
        // the two fixpoint rounds are distinct B events with real begins
        let rounds: Vec<f64> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("B")
                    && e.get("name").and_then(|n| n.as_str()) == Some("exec.fixpoint_round")
            })
            .map(|e| match e.get("ts") {
                Some(Json::Num(n)) => *n,
                _ => panic!("B has ts"),
            })
            .collect();
        assert_eq!(rounds.len(), 2);
        assert!(rounds[1] > rounds[0], "rounds at distinct instants");
        // worker lane carries the steal instant and the query id
        let steal = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("exec.steal"))
            .unwrap();
        assert_eq!(steal.get("tid").unwrap().as_int(), Some(1));
        assert_eq!(
            steal.get("args").unwrap().get("query").unwrap().as_int(),
            Some(7)
        );
        // lanes are named
        assert!(events.iter().any(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("thread_name")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    == Some("worker-0")
        }));
    }

    #[test]
    fn timeline_jsonl_matches_object_form() {
        let snap = sample_snapshot();
        let tl = sample_timeline();
        let text = jsonl(&snap, &tl);
        let obj = chrome_trace(&snap, &tl);
        let n = obj
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .unwrap()
            .len();
        assert_eq!(text.lines().count(), n);
        for line in text.lines() {
            Json::parse(line).expect("each JSONL line parses");
        }
    }
}
