//! Scoped observability: per-query/per-tenant registries that roll up
//! into the global one.
//!
//! The registry used to be the one non-parametric subsystem: a single
//! process-global instance meant a served `explain`/`profile` had to
//! `reset()` the world to attribute events to one query, wiping the
//! server's own counters and serializing profiles behind a mutex. A
//! [`Scope`] restores the instantiate-per-use shape the rest of the
//! workspace has: each served request (keyed by the existing
//! [`crate::timeline::QueryId`] and tenant name) gets its own
//! [`Registry`]; recording through the crate-level free functions
//! ([`crate::counter`], [`crate::span`], …) lands in the innermost
//! scope entered on the current thread, and falls through to the global
//! registry when no scope is active.
//!
//! **Thread inheritance.** A `Scope` is an `Arc` handle — clone it into
//! a worker closure and [`enter`] it there, and everything the worker
//! records lands in the query's scope regardless of which pool lane the
//! task was stolen onto. The executor's pool does exactly this: workers
//! capture the spawning thread's current scope before `thread::scope`.
//!
//! **Roll-up invariant.** When the last handle to a scope drops, its
//! registry is folded into its parent's ([`Registry::merge_into`]) —
//! ultimately the process-global root — so for any set of scopes
//! `sum(child snapshots at drop) + root-direct = root total`: global
//! `stats` totals are unchanged by scoping, by construction, and no
//! request path ever needs the global `reset()` again.
//!
//! **Retained roll-ups.** Scopes created with a tenant name additionally
//! retain a bounded per-tenant accumulation (counters, query count, and
//! a ring of recent per-query summaries) that the serve layer's `stats`
//! op exposes through optional `"tenant"` / `"query_id"` filters.

use crate::json::Json;
use crate::registry::{Registry, Snapshot};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::marker::PhantomData;
use std::sync::{Arc, Mutex, OnceLock};

/// Most-recent per-query summaries retained per tenant.
const RECENT_QUERIES_PER_TENANT: usize = 32;
/// Distinct tenants retained before the oldest-touched is evicted.
const MAX_TENANTS: usize = 64;

struct ScopeInner {
    registry: Registry,
    parent: Option<Scope>,
    query_id: u64,
    tenant: Option<String>,
}

impl Drop for ScopeInner {
    fn drop(&mut self) {
        // retain the tenant roll-up from the scope's own contribution
        // (snapshot before the merge, so parent-direct data is excluded)
        if let Some(tenant) = &self.tenant {
            retain(tenant, self.query_id, &self.registry.snapshot());
        }
        let target = match &self.parent {
            Some(p) => p.0.registry.clone(),
            None => crate::global().clone(),
        };
        self.registry.merge_into(&target);
    }
}

/// A handle to one observability scope: a private [`Registry`] plus the
/// parent it rolls up into when the last handle drops. Cloning is cheap
/// (`Arc`) and clones share the scope; send clones to worker threads and
/// [`enter`] there to inherit the scope across the pool.
#[derive(Clone)]
pub struct Scope(Arc<ScopeInner>);

impl Scope {
    /// A scope for one served request, keyed by the timeline query id
    /// and tenant name. The parent is the creating thread's current
    /// scope (the global root when none is active); the new registry
    /// starts with the global enabled flag, so the `GENPAR_OBS` kill
    /// switch governs scoped recording too.
    pub fn for_request(query_id: u64, tenant: Option<&str>) -> Scope {
        let registry = Registry::new();
        registry.set_enabled(crate::global().is_enabled());
        Scope(Arc::new(ScopeInner {
            registry,
            parent: current(),
            query_id,
            tenant: tenant.map(str::to_string),
        }))
    }

    /// An anonymous child scope: no tenant retention, query id inherited
    /// from the enclosing scope (0 outside any). `explain`/`profile` use
    /// this to take an isolated snapshot without resetting anything.
    pub fn anonymous() -> Scope {
        let query_id = current().map(|s| s.query_id()).unwrap_or(0);
        Scope::for_request(query_id, None)
    }

    /// The query id this scope is keyed by (0 = none).
    pub fn query_id(&self) -> u64 {
        self.0.query_id
    }

    /// The tenant this scope is keyed by, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.0.tenant.as_deref()
    }

    /// The scope's private registry.
    pub fn registry(&self) -> &Registry {
        &self.0.registry
    }

    /// Snapshot what this scope (and the scopes/threads entered into it)
    /// has recorded so far — disjoint from every sibling scope.
    pub fn snapshot(&self) -> Snapshot {
        self.0.registry.snapshot()
    }

    /// Make this scope the innermost on the current thread until the
    /// returned guard drops. Nests: recording goes to the innermost
    /// entered scope.
    pub fn enter(&self) -> ScopeGuard {
        enter(self.clone())
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Scope>> = const { RefCell::new(Vec::new()) };
}

/// Enter `scope` on the current thread (see [`Scope::enter`]). Worker
/// threads call this with a clone captured from the spawning thread.
pub fn enter(scope: Scope) -> ScopeGuard {
    CURRENT.with(|stack| stack.borrow_mut().push(scope));
    ScopeGuard {
        _not_send: PhantomData,
    }
}

/// The innermost scope entered on the current thread, if any.
pub fn current() -> Option<Scope> {
    CURRENT.with(|stack| stack.borrow().last().cloned())
}

/// The registry recording calls on this thread should land in: the
/// innermost entered scope's, or `None` for the global fallback.
#[inline]
pub(crate) fn current_registry() -> Option<Registry> {
    CURRENT.with(|stack| stack.borrow().last().map(|s| s.0.registry.clone()))
}

/// RAII guard from [`enter`]; leaving is popping. Not `Send`: a guard
/// must drop on the thread that entered the scope.
pub struct ScopeGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

// ---------------------------------------------------------------------
// retained per-tenant roll-ups
// ---------------------------------------------------------------------

/// One completed query's contribution, as retained for `stats` filters.
#[derive(Debug, Clone)]
struct QuerySummary {
    query_id: u64,
    counters: BTreeMap<String, u64>,
    span_calls: u64,
    events: u64,
}

/// Everything retained for one tenant. Counters accumulate across the
/// tenant's whole lifetime; per-query summaries keep the most recent
/// [`RECENT_QUERIES_PER_TENANT`].
#[derive(Debug, Default)]
struct TenantRollup {
    queries: u64,
    counters: BTreeMap<String, u64>,
    recent: VecDeque<QuerySummary>,
    /// Monotonic touch stamp for eviction.
    touched: u64,
}

#[derive(Default)]
struct Rollups {
    tenants: BTreeMap<String, TenantRollup>,
    clock: u64,
}

fn rollups() -> &'static Mutex<Rollups> {
    static ROLLUPS: OnceLock<Mutex<Rollups>> = OnceLock::new();
    ROLLUPS.get_or_init(|| Mutex::new(Rollups::default()))
}

fn lock_rollups() -> std::sync::MutexGuard<'static, Rollups> {
    match rollups().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn span_calls(nodes: &[crate::registry::SpanNode]) -> u64 {
    nodes
        .iter()
        .map(|n| n.calls + span_calls(&n.children))
        .sum()
}

fn retain(tenant: &str, query_id: u64, snap: &Snapshot) {
    let mut r = lock_rollups();
    r.clock += 1;
    let stamp = r.clock;
    if !r.tenants.contains_key(tenant) && r.tenants.len() >= MAX_TENANTS {
        // evict the least-recently-touched tenant to stay bounded
        if let Some(name) = r
            .tenants
            .iter()
            .min_by_key(|(_, t)| t.touched)
            .map(|(k, _)| k.clone())
        {
            r.tenants.remove(&name);
        }
    }
    let entry = r.tenants.entry(tenant.to_string()).or_default();
    entry.touched = stamp;
    entry.queries += 1;
    for (k, v) in &snap.counters {
        *entry.counters.entry(k.clone()).or_insert(0) += v;
    }
    if entry.recent.len() >= RECENT_QUERIES_PER_TENANT {
        entry.recent.pop_front();
    }
    entry.recent.push_back(QuerySummary {
        query_id,
        counters: snap.counters.clone(),
        span_calls: span_calls(&snap.spans),
        events: snap.events.len() as u64 + snap.events_dropped,
    });
}

/// Forget every retained roll-up (tests).
pub fn clear_rollups() {
    let mut r = lock_rollups();
    r.tenants.clear();
}

fn counters_json(counters: &BTreeMap<String, u64>) -> Json {
    Json::Obj(
        counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(*v as i128)))
            .collect(),
    )
}

fn summary_json(q: &QuerySummary) -> Json {
    Json::obj([
        ("query_id", Json::Int(q.query_id as i128)),
        ("span_calls", Json::Int(q.span_calls as i128)),
        ("events", Json::Int(q.events as i128)),
        ("counters", counters_json(&q.counters)),
    ])
}

/// The retained roll-up for one tenant, or `Json::Null` when nothing has
/// been retained under that name.
pub fn tenant_rollup_json(tenant: &str) -> Json {
    let r = lock_rollups();
    match r.tenants.get(tenant) {
        None => Json::Null,
        Some(t) => Json::obj([
            ("tenant", Json::str(tenant)),
            ("queries", Json::Int(t.queries as i128)),
            ("counters", counters_json(&t.counters)),
            (
                "recent",
                Json::Arr(t.recent.iter().map(summary_json).collect()),
            ),
        ]),
    }
}

/// The retained summary for one query id (searching every tenant's
/// recent ring), or `Json::Null` when it has aged out or never existed.
pub fn query_rollup_json(query_id: u64) -> Json {
    let r = lock_rollups();
    for (name, t) in &r.tenants {
        if let Some(q) = t.recent.iter().rev().find(|q| q.query_id == query_id) {
            let mut j = summary_json(q);
            if let Json::Obj(fields) = &mut j {
                fields.insert(0, ("tenant".to_string(), Json::str(name.as_str())));
            }
            return j;
        }
    }
    Json::Null
}

/// Tenant names with retained roll-ups, with their query counts.
pub fn rollup_tenants_json() -> Json {
    let r = lock_rollups();
    Json::Obj(
        r.tenants
            .iter()
            .map(|(k, t)| (k.clone(), Json::Int(t.queries as i128)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_recording_is_isolated_then_rolls_up() {
        let root = Registry::new();
        let scope = Scope(Arc::new(ScopeInner {
            registry: Registry::new(),
            parent: None,
            query_id: 1,
            tenant: None,
        }));
        // record through the scope's registry directly (the free-function
        // routing is exercised by the lib-level tests)
        scope.registry().counter("q.counter", 3);
        {
            let _s = scope.registry().span("q.span");
        }
        scope.registry().record("q.hist", 10);
        let snap = scope.snapshot();
        assert_eq!(snap.counters["q.counter"], 3);
        // a sibling registry sees nothing
        assert!(root.snapshot().counters.is_empty());
        // roll up manually (parent None targets the global root, which
        // other tests share — use merge_into to keep this test hermetic)
        scope.registry().merge_into(&root);
        let rolled = root.snapshot();
        assert_eq!(rolled.counters["q.counter"], 3);
        assert_eq!(rolled.spans.len(), 1);
        assert_eq!(rolled.spans[0].name, "q.span");
        assert_eq!(rolled.histograms["q.hist"].count, 1);
    }

    #[test]
    fn enter_routes_and_nests_per_thread() {
        let outer = Scope::for_request(7, None);
        let g1 = outer.enter();
        assert_eq!(current().unwrap().query_id(), 7);
        {
            let inner = Scope::anonymous();
            // anonymous scopes inherit the enclosing query id
            assert_eq!(inner.query_id(), 7);
            let _g2 = inner.enter();
            crate::counter("nest.counter", 1);
            assert_eq!(inner.snapshot().counters["nest.counter"], 1);
            assert!(outer.snapshot().counters.is_empty());
            drop(_g2);
            drop(inner);
        }
        // the inner scope rolled into the outer on drop
        assert_eq!(outer.snapshot().counters["nest.counter"], 1);
        drop(g1);
        assert!(current().is_none());
    }

    #[test]
    fn worker_clone_records_into_the_same_scope() {
        let scope = Scope::for_request(9, None);
        let _g = scope.enter();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let worker_scope = current().unwrap();
                s.spawn(move || {
                    let _wg = enter(worker_scope);
                    crate::counter("workers.counter", 1);
                });
            }
        });
        assert_eq!(scope.snapshot().counters["workers.counter"], 4);
    }

    #[test]
    fn tenant_rollups_are_retained_and_bounded() {
        clear_rollups();
        for i in 0..3u64 {
            let scope = Scope::for_request(1000 + i, Some("rollup-tenant"));
            scope.registry().counter("t.counter", 2);
            drop(scope);
        }
        let j = tenant_rollup_json("rollup-tenant");
        assert_eq!(j.get("queries").and_then(|v| v.as_int()), Some(3));
        assert_eq!(
            j.get("counters")
                .and_then(|c| c.get("t.counter"))
                .and_then(|v| v.as_int()),
            Some(6)
        );
        let q = query_rollup_json(1001);
        assert_eq!(
            q.get("tenant").and_then(|v| v.as_str()),
            Some("rollup-tenant")
        );
        assert_eq!(
            q.get("counters")
                .and_then(|c| c.get("t.counter"))
                .and_then(|v| v.as_int()),
            Some(2)
        );
        assert_eq!(query_rollup_json(999_999), Json::Null);
        assert_eq!(tenant_rollup_json("no-such-tenant"), Json::Null);
        // the recent ring stays bounded
        for i in 0..(RECENT_QUERIES_PER_TENANT as u64 + 10) {
            let scope = Scope::for_request(2000 + i, Some("ring-tenant"));
            drop(scope);
        }
        let j = tenant_rollup_json("ring-tenant");
        let recent = j.get("recent").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(recent.len(), RECENT_QUERIES_PER_TENANT);
        clear_rollups();
    }
}
