//! The thread-safe metrics registry: spans, counters, gauges, events,
//! histograms.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::json::Json;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

/// Default capacity of the bounded event ring buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// A typed field value attached to events.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl FieldValue {
    fn to_json(&self) -> Json {
        match self {
            FieldValue::U64(v) => Json::Int(*v as i128),
            FieldValue::I64(v) => Json::Int(*v as i128),
            FieldValue::F64(v) => Json::Num(*v),
            FieldValue::Bool(v) => Json::Bool(*v),
            FieldValue::Str(v) => Json::Str(v.clone()),
        }
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident ($conv:expr)),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue {
                FieldValue::$variant($conv(v))
            }
        }
    )*};
}

impl_field_from! {
    u64 => U64(|v| v),
    u32 => U64(|v: u32| v as u64),
    usize => U64(|v: usize| v as u64),
    i64 => I64(|v| v),
    i32 => I64(|v: i32| v as i64),
    f64 => F64(|v| v),
    bool => Bool(|v| v),
    String => Str(|v| v),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

/// One recorded event in the ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (also counts dropped events).
    pub seq: u64,
    /// Microseconds since registry creation/reset.
    pub at_micros: u64,
    /// Event kind, e.g. `"optimizer.rewrite"`.
    pub kind: String,
    /// Typed payload fields.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::Int(self.seq as i128)),
            ("at_micros", Json::Int(self.at_micros as i128)),
            ("kind", Json::str(&self.kind)),
            (
                "fields",
                Json::Obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Aggregated timings for one span position in the call tree.
///
/// Two executions of the same span name under the same parent aggregate
/// into one node (`calls`, `total_nanos` and `fields` accumulate).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanNode {
    /// Span name, e.g. `"plan.HashJoin"`.
    pub name: String,
    /// Number of completed executions.
    pub calls: u64,
    /// Total wall-clock nanoseconds across executions (children included).
    pub total_nanos: u64,
    /// Accumulated numeric span fields (e.g. `rows_in`, `rows_out`).
    pub fields: BTreeMap<String, u64>,
    /// Child spans in first-seen order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn child_mut(&mut self, name: &str) -> &mut SpanNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(SpanNode {
            name: name.to_string(),
            ..SpanNode::default()
        });
        self.children.last_mut().unwrap()
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("calls", Json::Int(self.calls as i128)),
            ("total_nanos", Json::Int(self.total_nanos as i128)),
            (
                "fields",
                Json::Obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v as i128)))
                        .collect(),
                ),
            ),
            (
                "children",
                Json::Arr(self.children.iter().map(SpanNode::to_json).collect()),
            ),
        ])
    }
}

struct Inner {
    epoch: Instant,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    events: VecDeque<Event>,
    event_capacity: usize,
    events_dropped: u64,
    seq: u64,
    root: SpanNode,
    /// Active span-name stack per thread (for parent/child nesting).
    stacks: HashMap<ThreadId, Vec<String>>,
}

impl Inner {
    fn new(event_capacity: usize) -> Inner {
        Inner {
            epoch: Instant::now(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            events: VecDeque::new(),
            event_capacity,
            events_dropped: 0,
            seq: 0,
            root: SpanNode {
                name: "root".to_string(),
                ..SpanNode::default()
            },
            stacks: HashMap::new(),
        }
    }
}

struct Shared {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
    /// Histograms live outside `inner`: the map lock is taken only to
    /// intern a name into a handle; recording itself is lock-free on the
    /// `Histogram`'s atomics.
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// A cheap, clonable handle to one named histogram in a registry.
/// Recording through the handle is a single enabled-flag load plus four
/// relaxed atomic operations — no lock — so hot loops (the parallel
/// executor's per-morsel timing) should intern the handle once and
/// record through it.
#[derive(Clone)]
pub struct HistogramHandle {
    shared: Arc<Shared>,
    hist: Arc<Histogram>,
}

impl HistogramHandle {
    /// Record one value, unless the registry is disabled (the
    /// `GENPAR_OBS` kill switch makes this one relaxed load + return).
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.shared.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.hist.record(value);
    }

    /// An immutable summary of the histogram right now. The executor's
    /// watchdog reads the running p95 through this to derive per-task
    /// and per-round deadlines.
    pub fn snapshot(&self) -> crate::histogram::HistogramSnapshot {
        self.hist.snapshot()
    }
}

/// A thread-safe metrics registry. Cloning is cheap (`Arc` handle); all
/// clones observe the same data. Most callers use the process-wide
/// [`global()`](crate::global) registry via the crate-level free
/// functions, but independent registries can be created for tests.
#[derive(Clone)]
pub struct Registry(Arc<Shared>);

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A fresh, enabled registry with the default event capacity.
    pub fn new() -> Registry {
        Registry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A fresh, enabled registry with a custom event ring capacity.
    pub fn with_event_capacity(capacity: usize) -> Registry {
        Registry(Arc::new(Shared {
            enabled: AtomicBool::new(true),
            inner: Mutex::new(Inner::new(capacity.max(1))),
            histograms: Mutex::new(BTreeMap::new()),
        }))
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // a panic while holding the metrics lock must not cascade
        self.0.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Is instrumentation live? A single relaxed atomic load — the fast
    /// path every recording call takes first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off. When off, every recording call is a
    /// single atomic load and an immediate return.
    pub fn set_enabled(&self, enabled: bool) {
        self.0.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Discard all recorded data (counters, gauges, events, spans,
    /// histograms) and restart the clock. The enabled flag is untouched.
    /// Histograms are zeroed **in place** so handles interned before the
    /// reset keep recording into the live histogram afterwards.
    pub fn reset(&self) {
        {
            let mut inner = self.lock();
            let cap = inner.event_capacity;
            *inner = Inner::new(cap);
        }
        let hists = match self.0.histograms.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        for h in hists.values() {
            h.clear();
        }
    }

    /// Intern a histogram by name and return a recording handle. The
    /// handle stays valid across [`Registry::reset`] (which zeroes the
    /// histogram in place rather than dropping it). Interning takes the
    /// histogram-map lock; recording through the handle does not.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut hists = match self.0.histograms.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        let hist = hists
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone();
        HistogramHandle {
            shared: self.0.clone(),
            hist,
        }
    }

    /// One-shot record into a named histogram: intern + record. For hot
    /// loops prefer holding the [`HistogramHandle`] from
    /// [`Registry::histogram`]. When the registry is disabled this is one
    /// relaxed load and an immediate return — the map is not even locked.
    #[inline]
    pub fn record(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        self.histogram(name).record(value);
    }

    /// Add to a monotonic counter.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set a gauge to a value.
    #[inline]
    pub fn gauge(&self, name: &str, value: i64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Record an event into the bounded ring buffer. When full, the
    /// oldest event is dropped (and counted in `events_dropped`).
    pub fn event(&self, kind: &str, fields: impl IntoIterator<Item = (&'static str, FieldValue)>) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        let at_micros = inner.epoch.elapsed().as_micros() as u64;
        let seq = inner.seq;
        inner.seq += 1;
        if inner.events.len() >= inner.event_capacity {
            inner.events.pop_front();
            inner.events_dropped += 1;
        }
        let mut fields: Vec<(String, FieldValue)> = fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        // with the timeline on, every event carries the current query id
        if crate::timeline::enabled() {
            let q = crate::timeline::current_query();
            if q > 0 {
                fields.push(("query".to_string(), FieldValue::U64(q)));
            }
        }
        inner.events.push_back(Event {
            seq,
            at_micros,
            kind: kind.to_string(),
            fields,
        });
    }

    /// Open a timed span. Spans nest per thread: a span opened while
    /// another is active on the same thread becomes its child in the
    /// aggregated tree. Dropping the guard records the timing.
    #[inline]
    pub fn span(&self, name: &str) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { active: None };
        }
        let depth = {
            let mut inner = self.lock();
            let stack = inner.stacks.entry(std::thread::current().id()).or_default();
            stack.push(name.to_string());
            stack.len()
        };
        SpanGuard {
            active: Some(ActiveSpan {
                registry: self.clone(),
                name: name.to_string(),
                depth,
                start: Instant::now(),
                fields: Vec::new(),
            }),
        }
    }

    fn close_span(&self, depth: usize, elapsed: Duration, fields: &[(String, u64)]) {
        let mut inner = self.lock();
        let tid = std::thread::current().id();
        let path: Vec<String> = {
            let Some(stack) = inner.stacks.get_mut(&tid) else {
                return; // reset() raced the guard: drop the record
            };
            if stack.len() < depth {
                return; // ditto
            }
            let path = stack[..depth].to_vec();
            stack.truncate(depth - 1);
            path
        };
        let mut node = &mut inner.root;
        for seg in &path {
            node = node.child_mut(seg);
        }
        node.calls += 1;
        node.total_nanos += elapsed.as_nanos() as u64;
        for (k, v) in fields {
            *node.fields.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Fold everything this registry recorded into `target` — the scope
    /// roll-up primitive. Counters and span aggregates add, gauges take
    /// the child's (newer) value, events append to the target ring (time
    /// stamps translated onto the target's epoch, drops counted), and
    /// histograms merge bucket-wise. Merging a registry into itself is a
    /// no-op. `self` is left untouched, so a snapshot taken before the
    /// merge still describes exactly what was contributed.
    pub fn merge_into(&self, target: &Registry) {
        if Arc::ptr_eq(&self.0, &target.0) {
            return;
        }
        // histograms first: bucket adds are atomic, no inner lock needed
        let src_hists: Vec<(String, Arc<Histogram>)> = {
            let hists = match self.0.histograms.lock() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            hists.iter().map(|(k, h)| (k.clone(), h.clone())).collect()
        };
        for (name, h) in src_hists {
            let dst = {
                let mut hists = match target.0.histograms.lock() {
                    Ok(g) => g,
                    Err(e) => e.into_inner(),
                };
                hists
                    .entry(name)
                    .or_insert_with(|| Arc::new(Histogram::new()))
                    .clone()
            };
            h.add_into(&dst);
        }
        // copy the mutex-guarded state out before taking the target's
        // lock — never hold both inner locks at once
        let (counters, gauges, events, events_dropped, root, epoch) = {
            let inner = self.lock();
            (
                inner.counters.clone(),
                inner.gauges.clone(),
                inner.events.iter().cloned().collect::<Vec<Event>>(),
                inner.events_dropped,
                inner.root.clone(),
                inner.epoch,
            )
        };
        let mut t = target.lock();
        for (k, v) in counters {
            *t.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in gauges {
            t.gauges.insert(k, v);
        }
        // a child scope is created after its parent, so its epoch offset
        // is non-negative; translate event stamps onto the parent clock
        let offset_micros = epoch
            .checked_duration_since(t.epoch)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        t.events_dropped += events_dropped;
        for mut e in events {
            e.seq = t.seq;
            t.seq += 1;
            e.at_micros = e.at_micros.saturating_add(offset_micros);
            if t.events.len() >= t.event_capacity {
                t.events.pop_front();
                t.events_dropped += 1;
            }
            t.events.push_back(e);
        }
        merge_span_children(&mut t.root, &root);
    }

    /// Copy out everything recorded so far. Histograms with zero
    /// recorded values (interned but never hit, e.g. under the kill
    /// switch) are omitted.
    pub fn snapshot(&self) -> Snapshot {
        let histograms: BTreeMap<String, HistogramSnapshot> = {
            let hists = match self.0.histograms.lock() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            hists
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .filter(|(_, s)| s.count > 0)
                .collect()
        };
        let inner = self.lock();
        Snapshot {
            uptime_micros: inner.epoch.elapsed().as_micros() as u64,
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            events: inner.events.iter().cloned().collect(),
            events_dropped: inner.events_dropped,
            spans: inner.root.children.clone(),
            histograms,
        }
    }
}

/// Accumulate `src`'s children into `dst`'s by tree position: calls,
/// total time and numeric fields add; unseen children are appended in
/// first-seen order — exactly how two executions recording into one
/// shared registry would have aggregated.
fn merge_span_children(dst: &mut SpanNode, src: &SpanNode) {
    for child in &src.children {
        let node = dst.child_mut(&child.name);
        node.calls += child.calls;
        node.total_nanos += child.total_nanos;
        for (k, v) in &child.fields {
            *node.fields.entry(k.clone()).or_insert(0) += v;
        }
        merge_span_children(node, child);
    }
}

struct ActiveSpan {
    registry: Registry,
    name: String,
    depth: usize,
    start: Instant,
    fields: Vec<(String, u64)>,
}

/// RAII guard returned by [`Registry::span`]; records on drop. Inert when
/// the registry is disabled.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attach (or accumulate) a numeric field on the span's tree node,
    /// e.g. `rows_in` / `rows_out`.
    #[inline]
    pub fn field(&mut self, key: &str, value: u64) {
        if let Some(a) = &mut self.active {
            a.fields.push((key.to_string(), value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let end = Instant::now();
            // true-timeline record first (lock-free ring, gated off by
            // default) — the aggregated tree below takes the mutex
            if crate::timeline::enabled() {
                crate::timeline::record_span(&a.name, a.start, end);
            }
            let elapsed = end.duration_since(a.start);
            a.registry.close_span(a.depth, elapsed, &a.fields);
        }
    }
}

/// An immutable copy of a registry's state, with renderers.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Microseconds since the registry was created or reset.
    pub uptime_micros: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Ring-buffer contents, oldest first.
    pub events: Vec<Event>,
    /// Events discarded because the ring was full.
    pub events_dropped: u64,
    /// Aggregated span trees (top-level spans).
    pub spans: Vec<SpanNode>,
    /// Histogram summaries by name (empty histograms omitted).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

fn fmt_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3}s", nanos as f64 / 1e9)
    }
}

impl Snapshot {
    /// Render the span trees, counters, gauges and recent events as an
    /// indented ASCII tree.
    pub fn render_tree(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.spans.is_empty() {
            let _ = writeln!(out, "spans:");
            for (i, s) in self.spans.iter().enumerate() {
                render_span(&mut out, s, "", i + 1 == self.spans.len());
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k} = {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k} = {v}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k}  count={} p50={} p95={} p99={} max={} mean={:.1}",
                    h.count,
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max,
                    h.mean()
                );
            }
        }
        if !self.events.is_empty() || self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "events ({} recorded, {} dropped):",
                self.events.len(),
                self.events_dropped
            );
            for e in &self.events {
                let fields = e
                    .fields
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                let _ = writeln!(out, "  [{:>6}µs] {} {}", e.at_micros, e.kind, fields);
            }
        }
        out
    }

    /// The snapshot as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("uptime_micros", Json::Int(self.uptime_micros as i128)),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v as i128)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v as i128)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
            ("events_dropped", Json::Int(self.events_dropped as i128)),
            (
                "events",
                Json::Arr(self.events.iter().map(Event::to_json).collect()),
            ),
            (
                "spans",
                Json::Arr(self.spans.iter().map(SpanNode::to_json).collect()),
            ),
        ])
    }

    /// The snapshot as compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

fn render_span(out: &mut String, node: &SpanNode, prefix: &str, last: bool) {
    use std::fmt::Write as _;
    let branch = if last { "└─ " } else { "├─ " };
    let fields = if node.fields.is_empty() {
        String::new()
    } else {
        let parts: Vec<String> = node
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("  [{}]", parts.join(" "))
    };
    let _ = writeln!(
        out,
        "{prefix}{branch}{}  calls={} total={}{}",
        node.name,
        node.calls,
        fmt_nanos(node.total_nanos),
        fields
    );
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    for (i, c) in node.children.iter().enumerate() {
        render_span(out, c, &child_prefix, i + 1 == node.children.len());
    }
}
