//! True-timeline recording: per-thread lock-free ring buffers of real
//! span begin/end instants.
//!
//! The registry's span tree ([`crate::Snapshot::spans`]) *aggregates*:
//! every instance of `exec.morsel` folds into one node with a count and
//! a total. That is the right shape for totals and misestimates, but it
//! destroys the information a timeline needs — **when** each instance
//! ran, and **on which worker**. This module keeps that information,
//! cheaply:
//!
//! * Each thread owns a fixed-capacity ring of slots (single writer —
//!   the owning thread; many readers — snapshotters). Recording is a
//!   monotonic `fetch_add` on the ring head plus a seqlock-protected
//!   slot write: no mutex anywhere on the hot path.
//! * The ring **overwrites oldest**: a long query keeps its most recent
//!   [`RING_CAPACITY`] records per thread, and the snapshot reports the
//!   exact number dropped (`written − kept`), never a guess.
//! * Everything is gated twice: the global obs kill switch
//!   ([`crate::enabled`]) *and* the timeline's own flag (the
//!   `GENPAR_TIMELINE` environment variable, or
//!   [`set_enabled`] — `profile --trace`/`--timeline` flips it
//!   programmatically). Both off by default; a disabled check is one
//!   relaxed atomic load.
//! * Every record is stamped with the current [`QueryId`] — a
//!   process-global counter bumped at each executor entry
//!   ([`begin_query`]) — and the recording thread's *lane* (0 = main
//!   thread, `wid + 1` = pool worker `wid`, set by [`set_lane`]). Lanes
//!   become Chrome trace `tid`s, so worker overlap, steals and
//!   fixpoint-round barriers are visible as real rows on the timeline.
//!
//! Memory bound: `RING_CAPACITY` slots × 6 words ≈ 384 KiB per thread
//! that ever records, freed never (rings are process-global so scoped
//! pool threads from finished queries stay readable). See DESIGN.md §12.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Slots per per-thread ring (power of two; overwrite-oldest beyond).
pub const RING_CAPACITY: usize = 8192;

/// A monotonically increasing identifier for one executor entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

/// What one timeline record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineKind {
    /// A completed span instance with real begin/end instants.
    Span,
    /// A point event (e.g. a successful steal).
    Instant,
}

/// One decoded timeline record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Interned span/event name (`exec.morsel`, `exec.fixpoint_round`, …).
    pub name: String,
    /// Recording lane: 0 = main thread, `wid + 1` = pool worker `wid`.
    pub lane: u32,
    /// The [`QueryId`] current when the record was written (0 = none).
    pub query: u64,
    /// Begin instant, nanoseconds since the process timeline epoch.
    pub begin_ns: u64,
    /// End instant (== `begin_ns` for [`TimelineKind::Instant`]).
    pub end_ns: u64,
    /// Span or instant.
    pub kind: TimelineKind,
}

/// An immutable copy of every ring, decoded and time-sorted.
#[derive(Debug, Clone, Default)]
pub struct TimelineSnapshot {
    /// Surviving records, sorted by `(begin_ns, reverse end_ns)` so
    /// enclosing spans precede the spans they contain.
    pub events: Vec<TimelineEvent>,
    /// Records overwritten by ring wraparound — exact, not estimated.
    pub dropped: u64,
    /// Total records ever written (kept + dropped).
    pub written: u64,
    /// Per-thread ring capacity, for the memory-bound arithmetic.
    pub capacity_per_thread: usize,
}

impl TimelineSnapshot {
    /// The snapshot restricted to records stamped with `query_id` — the
    /// scope filter the trace renderers use when profiling one served
    /// request among many. `written`/`dropped` stay whole-ring totals
    /// (they describe ring pressure, which is shared across queries).
    pub fn for_query(&self, query_id: u64) -> TimelineSnapshot {
        TimelineSnapshot {
            events: self
                .events
                .iter()
                .filter(|e| e.query == query_id)
                .cloned()
                .collect(),
            dropped: self.dropped,
            written: self.written,
            capacity_per_thread: self.capacity_per_thread,
        }
    }
}

// ---------------------------------------------------------------------
// gating
// ---------------------------------------------------------------------

fn enabled_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = std::env::var("GENPAR_TIMELINE")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                !(v.is_empty() || v == "0" || v == "off" || v == "false")
            })
            .unwrap_or(false);
        AtomicBool::new(on)
    })
}

/// Is timeline recording on? Requires both the obs kill switch and the
/// timeline flag; a `false` answer costs two relaxed loads.
#[inline]
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed) && crate::enabled()
}

/// Flip timeline recording programmatically (overrides `GENPAR_TIMELINE`).
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// query ids and lanes
// ---------------------------------------------------------------------

static NEXT_QUERY: AtomicU64 = AtomicU64::new(0);
static CURRENT_QUERY: AtomicU64 = AtomicU64::new(0);

/// Stamp a fresh [`QueryId`] as the process-wide current query.
///
/// Propagation rule (DESIGN.md §12): the id is process-global, set at
/// each executor entry; worker threads read it at record time, so every
/// record a query's morsels/rounds/combines produce carries the same id
/// without any per-thread plumbing. Nested executor entries (e.g. a
/// fault-degraded fixpoint re-entering the serial engine) get their own
/// id — distinct execution phases of one user query stay
/// distinguishable on the timeline.
pub fn begin_query() -> QueryId {
    let id = NEXT_QUERY.fetch_add(1, Ordering::Relaxed) + 1;
    CURRENT_QUERY.store(id, Ordering::Relaxed);
    QueryId(id)
}

/// The current query id (0 when no query has begun).
#[inline]
pub fn current_query() -> u64 {
    CURRENT_QUERY.load(Ordering::Relaxed)
}

/// Re-stamp an already-allocated [`QueryId`] as the process-wide current
/// query without allocating a fresh one. The serve path allocates the id
/// when a request is admitted (so the response and the obs scope share
/// it); the executor entry then re-stamps it here instead of calling
/// [`begin_query`] and forking the numbering.
pub fn set_current_query(id: u64) {
    CURRENT_QUERY.store(id, Ordering::Relaxed);
}

/// Declare this thread's timeline lane (0 = main, `wid + 1` = worker).
pub fn set_lane(lane: u32) {
    if !enabled() {
        return;
    }
    ring().lane.store(lane, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// name interning
// ---------------------------------------------------------------------

fn name_table() -> &'static Mutex<Vec<String>> {
    static TABLE: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static NAME_CACHE: std::cell::RefCell<HashMap<String, u32>> =
        std::cell::RefCell::new(HashMap::new());
}

fn intern(name: &str) -> u32 {
    NAME_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(&id) = cache.get(name) {
            return id;
        }
        let mut table = match name_table().lock() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        };
        let id = match table.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                table.push(name.to_string());
                (table.len() - 1) as u32
            }
        };
        cache.insert(name.to_string(), id);
        id
    })
}

fn name_of(id: u32) -> String {
    let table = match name_table().lock() {
        Ok(t) => t,
        Err(p) => p.into_inner(),
    };
    table
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| format!("name#{id}"))
}

// ---------------------------------------------------------------------
// rings
// ---------------------------------------------------------------------

const KIND_SPAN: u64 = 0;
const KIND_INSTANT: u64 = 1;

/// One slot: seqlock word + payload. The writer bumps `seq` to an odd
/// value, writes the payload, then publishes an even `seq`; readers
/// retry/skip on odd or changed `seq`, so a concurrent snapshot can
/// never observe a torn record.
struct Slot {
    seq: AtomicU64,
    /// `name_id << 34 | lane << 2 | kind` (lane capped at 2³² lanes,
    /// kind in 2 bits).
    meta: AtomicU64,
    query: AtomicU64,
    begin_ns: AtomicU64,
    end_ns: AtomicU64,
}

struct Ring {
    /// Monotonic count of records ever written to this ring; the slot
    /// for write `n` is `n % RING_CAPACITY`, so
    /// `dropped = written.saturating_sub(RING_CAPACITY)` is exact.
    head: AtomicU64,
    lane: AtomicU32,
    slots: Vec<Slot>,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            head: AtomicU64::new(0),
            lane: AtomicU32::new(0),
            slots: (0..RING_CAPACITY)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                    query: AtomicU64::new(0),
                    begin_ns: AtomicU64::new(0),
                    end_ns: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn record(&self, name_id: u32, kind: u64, begin_ns: u64, end_ns: u64) {
        let n = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n % RING_CAPACITY as u64) as usize];
        let lane = self.lane.load(Ordering::Relaxed) as u64;
        // seqlock write: odd while in progress, even (2·write#+2) when done
        slot.seq.store(2 * n + 1, Ordering::Release);
        slot.meta.store(
            ((name_id as u64) << 34) | (lane << 2) | kind,
            Ordering::Relaxed,
        );
        slot.query.store(current_query(), Ordering::Relaxed);
        slot.begin_ns.store(begin_ns, Ordering::Relaxed);
        slot.end_ns.store(end_ns, Ordering::Relaxed);
        slot.seq.store(2 * n + 2, Ordering::Release);
    }

    fn clear(&self) {
        self.head.store(0, Ordering::Relaxed);
        for s in &self.slots {
            s.seq.store(0, Ordering::Relaxed);
        }
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

fn ring() -> Arc<Ring> {
    MY_RING.with(|cell| {
        cell.get_or_init(|| {
            let r = Arc::new(Ring::new());
            match rings().lock() {
                Ok(mut all) => all.push(r.clone()),
                Err(p) => p.into_inner().push(r.clone()),
            }
            r
        })
        .clone()
    })
}

// ---------------------------------------------------------------------
// time base
// ---------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[inline]
fn ns_since_epoch(t: Instant) -> u64 {
    t.checked_duration_since(epoch())
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------
// recording api
// ---------------------------------------------------------------------

/// Record one completed span instance with its real begin/end instants.
#[inline]
pub fn record_span(name: &str, begin: Instant, end: Instant) {
    if !enabled() {
        return;
    }
    let b = ns_since_epoch(begin);
    let e = ns_since_epoch(end).max(b);
    ring().record(intern(name), KIND_SPAN, b, e);
}

/// Record a point event (steals, barriers) at `at`.
#[inline]
pub fn record_instant(name: &str, at: Instant) {
    if !enabled() {
        return;
    }
    let t = ns_since_epoch(at);
    ring().record(intern(name), KIND_INSTANT, t, t);
}

/// Decode every ring into one time-sorted snapshot. Torn slots (a
/// writer mid-overwrite) are skipped, never misread.
pub fn snapshot() -> TimelineSnapshot {
    let all: Vec<Arc<Ring>> = match rings().lock() {
        Ok(r) => r.clone(),
        Err(p) => p.into_inner().clone(),
    };
    let mut events = Vec::new();
    let mut written = 0u64;
    let mut dropped = 0u64;
    for r in &all {
        let head = r.head.load(Ordering::Acquire);
        written += head;
        dropped += head.saturating_sub(RING_CAPACITY as u64);
        let live = head.min(RING_CAPACITY as u64);
        for i in 0..live {
            let n = head - live + i; // write number held by this slot (if stable)
            let slot = &r.slots[(n % RING_CAPACITY as u64) as usize];
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 != 2 * n + 2 {
                // torn (odd), already overwritten, or racing ahead — skip
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let query = slot.query.load(Ordering::Relaxed);
            let begin_ns = slot.begin_ns.load(Ordering::Relaxed);
            let end_ns = slot.end_ns.load(Ordering::Relaxed);
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq1 {
                continue;
            }
            events.push(TimelineEvent {
                name: name_of((meta >> 34) as u32),
                lane: ((meta >> 2) & 0xffff_ffff) as u32,
                query,
                begin_ns,
                end_ns,
                kind: if meta & 0b11 == KIND_INSTANT {
                    TimelineKind::Instant
                } else {
                    TimelineKind::Span
                },
            });
        }
    }
    events.sort_by(|a, b| {
        (a.lane, a.begin_ns, std::cmp::Reverse(a.end_ns)).cmp(&(
            b.lane,
            b.begin_ns,
            std::cmp::Reverse(b.end_ns),
        ))
    });
    TimelineSnapshot {
        events,
        dropped,
        written,
        capacity_per_thread: RING_CAPACITY,
    }
}

/// Empty every ring (the current query id and the epoch survive).
pub fn reset() {
    let all: Vec<Arc<Ring>> = match rings().lock() {
        Ok(r) => r.clone(),
        Err(p) => p.into_inner().clone(),
    };
    for r in &all {
        r.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Timeline state is process-global; tests serialize on this lock.
    static TL_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        match TL_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_recording_is_a_noop() {
        let _g = guard();
        set_enabled(false);
        let t = Instant::now();
        record_span("noop-span", t, t);
        record_instant("noop-instant", t);
        let snap = snapshot();
        assert!(snap
            .events
            .iter()
            .all(|e| e.name != "noop-span" && e.name != "noop-instant"));
    }

    #[test]
    fn records_spans_with_lanes_and_queries() {
        let _g = guard();
        crate::set_enabled(true);
        set_enabled(true);
        reset();
        let q = begin_query();
        set_lane(3);
        let t0 = Instant::now();
        let t1 = t0 + Duration::from_micros(50);
        record_span("exec.morsel", t0, t1);
        record_instant("exec.steal", t1);
        let snap = snapshot();
        set_enabled(false);
        // other obs tests may record concurrently into their own rings,
        // so locate this test's records by name + query id
        assert!(snap.written >= 2);
        let span = snap
            .events
            .iter()
            .find(|e| e.kind == TimelineKind::Span && e.name == "exec.morsel" && e.query == q.0)
            .unwrap();
        assert_eq!(span.lane, 3);
        assert!(span.end_ns >= span.begin_ns + 49_000);
        let inst = snap
            .events
            .iter()
            .find(|e| e.kind == TimelineKind::Instant && e.name == "exec.steal" && e.query == q.0)
            .unwrap();
        assert_eq!(inst.begin_ns, inst.end_ns);
    }

    #[test]
    fn overwrite_accounting_is_exact() {
        let _g = guard();
        crate::set_enabled(true);
        set_enabled(true);
        reset();
        let t = Instant::now();
        let total = RING_CAPACITY + 123;
        for _ in 0..total {
            record_span("wrap", t, t);
        }
        let snap = snapshot();
        set_enabled(false);
        // this thread's ring wrapped; other test threads may add a few
        // records of their own, so compare against this ring's share
        assert!(snap.written >= total as u64);
        assert!(snap.dropped >= 123);
        assert!(snap.events.len() as u64 >= RING_CAPACITY as u64 - 1);
    }

    #[test]
    fn query_ids_are_fresh_and_monotone() {
        let a = begin_query();
        let b = begin_query();
        assert!(b.0 > a.0);
        assert_eq!(current_query(), b.0);
    }
}
