#![warn(missing_docs)]
//! # genpar-obs — observability substrate for the genpar workspace
//!
//! A zero-dependency tracing/metrics layer: nested span timers, monotonic
//! counters, gauges, and a bounded event ring buffer behind a thread-safe
//! [`Registry`], with a pretty-tree renderer and a JSON renderer
//! (hand-rolled in [`json`]; the build environment is offline, so no
//! serde).
//!
//! ## Usage
//!
//! Most code records into the process-wide [`global()`] registry through
//! the free functions:
//!
//! ```
//! genpar_obs::reset();
//! {
//!     let mut sp = genpar_obs::span("engine.execute");
//!     sp.field("rows_out", 42);
//!     genpar_obs::counter("engine.rows_scanned", 42);
//! }
//! let snap = genpar_obs::snapshot();
//! assert_eq!(snap.counters["engine.rows_scanned"], 42);
//! println!("{}", snap.render_tree());
//! ```
//!
//! ## Kill switch
//!
//! Instrumentation is **on** by default and can be disabled at runtime
//! with [`set_enabled`]`(false)`, or at startup with the environment
//! variable `GENPAR_OBS=off` (also `0` / `false`). When disabled, every
//! recording call is one relaxed atomic load and an immediate return —
//! the overhead bench (`genpar-bench`, `obs_overhead`) asserts this is
//! near-zero relative to per-operator work.
//!
//! The [`timeline`] module adds a second, separately-gated layer
//! (`GENPAR_TIMELINE` / [`timeline::set_enabled`]): per-thread ring
//! buffers of real span begin/end instants with worker lanes and
//! per-query ids, exported as genuine Chrome `trace_event` B/E pairs by
//! [`trace`].

mod histogram;
pub mod json;
mod registry;
pub mod scope;
pub mod timeline;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use json::{Json, JsonError};
pub use registry::{
    Event, FieldValue, HistogramHandle, Registry, Snapshot, SpanGuard, SpanNode,
    DEFAULT_EVENT_CAPACITY,
};
pub use scope::Scope;
pub use timeline::{QueryId, TimelineEvent, TimelineKind, TimelineSnapshot};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry. Created on first use; honours `GENPAR_OBS`
/// (`off`/`0`/`false` start it disabled).
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(|| {
        let r = Registry::new();
        if let Ok(v) = std::env::var("GENPAR_OBS") {
            let v = v.to_ascii_lowercase();
            if v == "off" || v == "0" || v == "false" {
                r.set_enabled(false);
            }
        }
        r
    })
}

/// Is the global registry recording?
#[inline]
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Enable or disable the global registry at runtime (the `--quiet` /
/// `GENPAR_OBS=off` kill switch).
pub fn set_enabled(enabled: bool) {
    global().set_enabled(enabled);
}

/// Open a span on the current scope's registry (the global one when no
/// [`scope::Scope`] is entered on this thread). See [`Registry::span`].
#[inline]
pub fn span(name: &str) -> SpanGuard {
    match scope::current_registry() {
        Some(reg) => reg.span(name),
        None => global().span(name),
    }
}

/// Add to a counter on the current scope's registry (global fallback).
#[inline]
pub fn counter(name: &str, delta: u64) {
    match scope::current_registry() {
        Some(reg) => reg.counter(name, delta),
        None => global().counter(name, delta),
    }
}

/// Set a gauge on the current scope's registry (global fallback).
#[inline]
pub fn gauge(name: &str, value: i64) {
    match scope::current_registry() {
        Some(reg) => reg.gauge(name, value),
        None => global().gauge(name, value),
    }
}

/// Record an event on the current scope's registry (global fallback).
pub fn event(kind: &str, fields: impl IntoIterator<Item = (&'static str, FieldValue)>) {
    match scope::current_registry() {
        Some(reg) => reg.event(kind, fields),
        None => global().event(kind, fields),
    }
}

/// Intern a histogram on the current scope's registry (global fallback)
/// and return a handle that records lock-free. Hot loops should call
/// this once and reuse the handle **within one scope**; a handle interned
/// inside a scope records into that scope and must not outlive it.
/// See [`Registry::histogram`].
pub fn histogram(name: &str) -> HistogramHandle {
    match scope::current_registry() {
        Some(reg) => reg.histogram(name),
        None => global().histogram(name),
    }
}

/// One-shot record into a named histogram on the current scope's
/// registry (interns on each call — prefer [`histogram`] + handle in hot
/// paths; global fallback).
pub fn record(name: &str, value: u64) {
    match scope::current_registry() {
        Some(reg) => reg.record(name, value),
        None => global().record(name, value),
    }
}

/// Snapshot the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clear the global registry (counters, spans, events; keeps the enabled
/// flag) and the timeline rings. Call before a run whose metrics you
/// want in isolation.
pub fn reset() {
    global().reset();
    timeline::reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn spans_nest_parent_child() {
        let reg = Registry::new();
        {
            let mut outer = reg.span("outer");
            outer.field("rows_in", 10);
            {
                let _inner = reg.span("inner");
                let _leaf = reg.span("leaf");
            }
            {
                let _inner2 = reg.span("inner");
            }
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 1);
        let outer = &snap.spans[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.fields["rows_in"], 10);
        // the two "inner" executions aggregate into one child node
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.calls, 2);
        assert_eq!(inner.children.len(), 1);
        assert_eq!(inner.children[0].name, "leaf");
        // parent time includes child time
        assert!(outer.total_nanos >= inner.total_nanos);
    }

    #[test]
    fn sibling_spans_stay_siblings() {
        let reg = Registry::new();
        {
            let _a = reg.span("a");
        }
        {
            let _b = reg.span("b");
        }
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn counters_and_gauges() {
        let reg = Registry::new();
        reg.counter("x", 3);
        reg.counter("x", 4);
        reg.gauge("g", -2);
        reg.gauge("g", 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["x"], 7);
        assert_eq!(snap.gauges["g"], 5);
    }

    #[test]
    fn ring_buffer_overflow_drops_oldest() {
        let reg = Registry::with_event_capacity(3);
        for i in 0..5u64 {
            reg.event("tick", [("i", FieldValue::U64(i))]);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.events_dropped, 2);
        // oldest two dropped: seqs 2,3,4 remain in order
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
        assert_eq!(snap.events[0].fields[0].1, FieldValue::U64(2));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        reg.set_enabled(false);
        {
            let mut sp = reg.span("quiet");
            sp.field("n", 1);
        }
        reg.counter("c", 1);
        reg.event("e", []);
        let snap = reg.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.events.is_empty());
        // re-enabling starts recording again
        reg.set_enabled(true);
        reg.counter("c", 1);
        assert_eq!(reg.snapshot().counters["c"], 1);
    }

    #[test]
    fn reset_clears_everything() {
        let reg = Registry::new();
        reg.counter("c", 1);
        {
            let _s = reg.span("s");
        }
        reg.event("e", []);
        reg.reset();
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.spans.is_empty() && snap.events.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let reg = Registry::with_event_capacity(8);
        {
            let mut sp = reg.span("outer");
            sp.field("rows", 9);
            let _inner = reg.span("inner");
        }
        reg.counter("ops", 12);
        reg.gauge("depth", -3);
        reg.event(
            "rewrite",
            [
                ("rule", FieldValue::Str("ProjectThroughUnion".into())),
                ("fired", FieldValue::Bool(true)),
                ("cost", FieldValue::F64(12.5)),
            ],
        );
        let snap = reg.snapshot();
        let text = snap.to_json_string();
        let parsed = Json::parse(&text).expect("snapshot JSON parses");
        assert_eq!(parsed, snap.to_json(), "parse(print(j)) == j");
        // spot-check structure
        assert_eq!(
            parsed.get("counters").unwrap().get("ops").unwrap().as_int(),
            Some(12)
        );
        let spans = parsed.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("outer"));
        let ev = &parsed.get("events").unwrap().as_arr().unwrap()[0];
        assert_eq!(ev.get("kind").unwrap().as_str(), Some("rewrite"));
    }

    #[test]
    fn render_tree_shows_nesting_and_fields() {
        let reg = Registry::new();
        {
            let mut a = reg.span("plan.Project");
            a.field("rows_out", 4);
            let _b = reg.span("plan.Scan");
        }
        reg.counter("engine.rows_scanned", 10);
        let text = reg.snapshot().render_tree();
        assert!(text.contains("plan.Project"), "{text}");
        assert!(text.contains("└─ plan.Scan"), "{text}");
        assert!(text.contains("rows_out=4"), "{text}");
        assert!(text.contains("engine.rows_scanned = 10"), "{text}");
    }

    #[test]
    fn global_helpers_work() {
        // keep assertions robust against other tests touching the global
        reset();
        counter("global.test.counter", 2);
        {
            let _s = span("global.test.span");
        }
        let snap = snapshot();
        assert!(snap.counters.get("global.test.counter").copied() == Some(2));
        assert!(snap.spans.iter().any(|s| s.name == "global.test.span"));
    }
}
