//! Lock-free latency histograms with logarithmic buckets.
//!
//! An HDR-histogram-lite: values (microseconds, rows, anything `u64`)
//! land in fixed log-spaced buckets — each power-of-two octave is split
//! into 8 linear sub-buckets, bounding the relative quantile error at
//! 12.5% while keeping the whole structure a flat array of atomics.
//! Recording is wait-free (one `fetch_add` on the bucket, plus
//! count/sum/max updates); there is no lock anywhere on the record path,
//! so worker threads in the parallel executor can all hammer the same
//! histogram without contention beyond cache-line traffic.
//!
//! Quantiles (p50/p95/p99) are computed at snapshot time by walking the
//! bucket array and reporting the **upper bound** of the bucket holding
//! the requested rank — a pessimistic estimate, never an optimistic one.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave, as a bit count (2³ = 8).
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: values `0..8` get exact buckets, then 8 buckets
/// per octave for octaves 3..=63.
pub(crate) const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Bucket index for a value. Values below `SUB` index exactly; larger
/// values map to `(octave, sub-bucket)` pairs.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let idx = ((msb - SUB_BITS) as u64 * SUB + (v >> (msb - SUB_BITS))) as usize;
    idx.min(NUM_BUCKETS - 1)
}

/// Upper (inclusive) bound of the values mapping to bucket `idx` — the
/// value quantiles report.
fn bucket_upper_bound(idx: usize) -> u64 {
    if (idx as u64) < SUB {
        return idx as u64;
    }
    let octave = (idx as u64 - SUB) / SUB; // 0 ⇒ msb == SUB_BITS
    let top = (idx as u64 - SUB) % SUB + SUB; // value >> shift, in SUB..2·SUB
    let shift = octave as u32;
    // all values v with v >> shift == top: upper bound is the last one
    top.checked_shl(shift)
        .map(|lo| lo + ((1u64 << shift) - 1))
        .unwrap_or(u64::MAX)
}

/// A fixed-size log-bucketed histogram. All methods are `&self` and
/// lock-free; share it across threads freely (the registry hands out
/// `Arc`-backed handles).
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one value. Wait-free: three `fetch_*` plus one bucket
    /// increment, all `Relaxed` — per-bucket totals are exact because
    /// atomic RMW operations never tear, and snapshot readers only need
    /// eventual agreement, not a cross-bucket consistent cut.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Zero every cell in place (used by `Registry::reset` so held
    /// handles stay live across resets).
    pub(crate) fn clear(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Add every cell of `self` into `target` (used by scope roll-up:
    /// the child histogram's buckets fold additively into the parent's,
    /// so quantiles over the merged histogram are exactly what one
    /// shared histogram would have recorded).
    pub(crate) fn add_into(&self, target: &Histogram) {
        target
            .count
            .fetch_add(self.count.load(Ordering::Relaxed), Ordering::Relaxed);
        target
            .sum
            .fetch_add(self.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        target
            .max
            .fetch_max(self.max.load(Ordering::Relaxed), Ordering::Relaxed);
        for (src, dst) in self.buckets.iter().zip(&target.buckets) {
            let v = src.load(Ordering::Relaxed);
            if v > 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    /// Copy out an immutable summary (counts, quantiles).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // rank of the q-quantile, 1-based
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper_bound(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum,
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// An immutable summary of a [`Histogram`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median (upper bucket bound — pessimistic).
    pub p50: u64,
    /// 95th percentile (upper bucket bound).
    pub p95: u64,
    /// 99th percentile (upper bucket bound).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::Int(self.count as i128)),
            ("sum", Json::Int(self.sum as i128)),
            ("max", Json::Int(self.max as i128)),
            ("p50", Json::Int(self.p50 as i128)),
            ("p95", Json::Int(self.p95 as i128)),
            ("p99", Json::Int(self.p99 as i128)),
            ("mean", Json::Num(self.mean())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..8 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 28);
        assert_eq!(s.max, 7);
        // rank 4 of 8 is value 3 exactly (buckets 0..8 are exact)
        assert_eq!(s.p50, 3);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [
            0u64,
            1,
            7,
            8,
            9,
            100,
            1000,
            12_345,
            1 << 20,
            (1 << 40) + 17,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let hi = bucket_upper_bound(idx);
            assert!(v <= hi, "value {v} above bucket {idx} bound {hi}");
            // the bound is within 12.5% of the value (log-bucket error)
            assert!(
                (hi as f64) <= (v as f64) * 1.125 + 1.0,
                "bound {hi} too loose for {v}"
            );
        }
    }

    #[test]
    fn quantiles_are_ordered_and_pessimistic() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        // pessimistic but within the 12.5% bucket error
        assert!(s.p50 >= 500 && (s.p50 as f64) <= 500.0 * 1.125, "{}", s.p50);
        assert!(s.p95 >= 950 && (s.p95 as f64) <= 950.0 * 1.125, "{}", s.p95);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 4;
        let per = 10_000u64;
        std::thread::scope(|sc| {
            for t in 0..threads {
                let h = h.clone();
                sc.spawn(move || {
                    for i in 0..per {
                        h.record(t * 1000 + i % 97);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, threads * per);
        let want_sum: u64 = (0..threads)
            .map(|t| (0..per).map(|i| t * 1000 + i % 97).sum::<u64>())
            .sum();
        assert_eq!(s.sum, want_sum, "atomic buckets must not tear");
        assert_eq!(s.max, 3000 + 96);
    }

    #[test]
    fn clear_zeroes_in_place() {
        let h = Histogram::new();
        h.record(5);
        h.record(1 << 30);
        h.clear();
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        h.record(2);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn json_rendering_has_quantiles() {
        let h = Histogram::new();
        h.record(10);
        let j = h.snapshot().to_json();
        assert_eq!(j.get("count").unwrap().as_int(), Some(1));
        assert_eq!(j.get("p99").unwrap().as_int(), Some(10));
    }
}
