//! Query-parser robustness: `parse_query` must reject malformed input
//! with a structured error — never panic — on arbitrary byte strings.

use genpar_algebra::parse::parse_query;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (interpreted lossily as UTF-8) never panic the
    /// query parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..48)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_query(&text);
    }

    /// Query-shaped character soup: operator names, brackets, columns
    /// and commas in random order exercise the recursive descent paths.
    #[test]
    fn printable_ascii_never_panics(s in "[ -~]{0,48}") {
        let _ = parse_query(&s);
    }

    /// Mangled real queries: a valid query with a random printable
    /// suffix either parses or errors, never panics.
    #[test]
    fn mangled_queries_never_panic(tail in "[ -~]{0,16}") {
        for prefix in ["pi[$1](", "select[$1=", "powerset(R", "join[$1=$1](R,", "lit[{(a,"] {
            let _ = parse_query(&format!("{prefix}{tail}"));
        }
    }
}
