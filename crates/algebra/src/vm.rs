//! Compile-once stack bytecode for predicate and map-function evaluation.
//!
//! The recursive AST walk in [`crate::eval`] pays per-tuple dispatch on
//! every row of every morsel. This module compiles a [`Pred`] or
//! [`ValueFn`] **once** into an immutable [`Program`] — an
//! `Arc<Vec<Op>>` instruction sequence plus constant / symbol / column
//! pools — that a reusable [`Vm`] then executes per tuple with **no
//! recursion** and no per-tuple allocation beyond the values the AST
//! walker would also clone.
//!
//! Why this is safe to do at all is the paper's point: a generic query
//! cannot observe *how* its uniform parts are implemented, only what
//! they compute. A compiled program is just a second uniform
//! implementation of the same function, so Reynolds-style parametricity
//! says the two representations must be observationally identical — and
//! `tests/vm_differential.rs` turns that claim into an enforced
//! invariant (VM output byte-identical to the walker, including error
//! cases and short-circuit order).
//!
//! Contracts the compiler keeps so the oracle can hold:
//!
//! * **Short-circuit order** — `And`/`Or` become conditional jumps
//!   ([`Op::JumpIfFalse`]/[`Op::JumpIfTrue`]), so an erroring right arm
//!   that the walker would never evaluate is never executed here
//!   either. Constant folding only folds cases the walker also
//!   short-circuits (`And(false, _)`, `Or(true, _)`) or that are pure
//!   (`Not` of a constant).
//! * **Late symbol binding** — [`Pred::Named`] / [`ValueFn::Interp`]
//!   compile to pool indices and resolve against the [`Db`] signature
//!   at run time, exactly like the walker: an unknown symbol errors
//!   per-application, never at compile time.
//! * **Error parity** — shape and column errors are constructed with
//!   the same operator labels (`σ`, `π`, `π (fn)`) and in the same
//!   evaluation order as [`crate::eval::eval_pred`] /
//!   [`crate::eval::apply_fn`].
//!
//! Expressions the compiler cannot certify — opaque [`ValueFn::Custom`]
//! closures, or programs whose evaluation stack would exceed the armed
//! depth budget — are refused at compile time with a paper-citing
//! [`Ineligible`] reason; callers keep the AST walker for those, and
//! `explain` prints the refusal.
//!
//! `GENPAR_VM=0` (or [`set_enabled`]`(false)`) is the kill switch: the
//! walker remains the fallback implementation everywhere. The
//! `vm.exec` fault site lets the chaos harness force that degradation
//! per evaluation unit and assert the answer is unchanged.

use crate::eval::{Db, EvalError};
use crate::expr::{Pred, ValueFn};
use genpar_value::Value;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Environment variable for the kill switch: `GENPAR_VM=0` (or `false`
/// / `off`) keeps every evaluation on the AST walker.
pub const VM_ENV: &str = "GENPAR_VM";

/// The VM's deterministic fault site: injected faults here degrade one
/// evaluation unit (a set in the serial evaluator, a morsel in a
/// kernel) to the AST walker — a correct answer, never a wrong one.
pub const FAULT_SITE: &str = "vm.exec";

/// Hard ceiling on a compiled program's evaluation stack, independent
/// of any armed budget. Programs needing more refuse to compile.
pub const STACK_CAP: usize = 4096;

/// One bytecode instruction. Predicate programs leave one `bool` on the
/// stack; function programs transform the input value pushed at entry
/// into the result value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Push a boolean constant.
    PushBool(bool),
    /// `t.$i == t.$j` on the input tuple; push the verdict.
    EqCols(usize, usize),
    /// `t.$i == consts[c]` on the input tuple; push the verdict.
    EqConst(usize, u32),
    /// Apply interpreted predicate `syms[s]` to input columns
    /// `colsets[c]`; push the verdict. Resolved by name per call.
    CallPred(u32, u32),
    /// Negate the boolean at the top of the stack.
    Not,
    /// If the top of the stack is `false`, jump to the target
    /// (keeping the `false` in place as the result).
    JumpIfFalse(u32),
    /// If the top of the stack is `true`, jump to the target
    /// (keeping the `true` in place as the result).
    JumpIfTrue(u32),
    /// Discard the top of the stack.
    Pop,
    /// Replace the top of the stack with its tuple component `i`.
    ProjTos(usize),
    /// Replace the top of the stack with its projection onto
    /// `colsets[c]`.
    ColsTos(u32),
    /// Replace the top of the stack with `consts[c]`.
    ConstTos(u32),
    /// Replace the top of the stack with interpreted function `syms[s]`
    /// applied to it (tuple arguments spread unless the function is
    /// unary — the walker's rule). Resolved by name per call.
    CallFnTos(u32),
    /// Duplicate the top of the stack.
    Dup,
    /// Swap the two top stack values.
    Swap,
    /// Pop `b`, pop `a`, push the tuple `(a, b)`.
    MakePair,
}

/// Which evaluator a program was compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProgKind {
    Pred,
    Fn,
}

/// An immutable compiled program: shareable across worker threads
/// (`Send + Sync`), cheap to clone (all pools behind `Arc`).
///
/// The partition-safety gate's distributivity certificate can be
/// attached once at compile time via [`Program::with_cert`]; `explain`
/// prints it alongside the program length.
#[derive(Debug, Clone)]
pub struct Program {
    ops: Arc<Vec<Op>>,
    consts: Arc<Vec<Value>>,
    syms: Arc<Vec<String>>,
    colsets: Arc<Vec<Vec<usize>>>,
    max_stack: usize,
    kind: ProgKind,
    cert: Option<Arc<str>>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the program has no instructions (e.g. compiled
    /// `ValueFn::Identity`: the input value *is* the result).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of pooled constants.
    pub fn const_count(&self) -> usize {
        self.consts.len()
    }

    /// The peak evaluation-stack depth this program can reach.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// The instruction sequence (for explain/debug rendering).
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Attach a genericity certificate rendering (from the
    /// partition-safety gate) to the compiled program — certification
    /// happens once at compile time, not per run.
    pub fn with_cert(mut self, cert: &str) -> Program {
        self.cert = Some(Arc::from(cert));
        self
    }

    /// The attached certificate, if any.
    pub fn cert(&self) -> Option<&str> {
        self.cert.as_deref()
    }

    /// One-line rendering for `explain`: length, pool sizes, stack.
    pub fn describe(&self) -> String {
        format!(
            "{} ops, {} consts, max stack {}",
            self.len(),
            self.const_count(),
            self.max_stack
        )
    }
}

/// A compile-time refusal: the expression is outside the fragment the
/// VM can certify, with a paper-citing reason in the style of the
/// partition gate. Callers keep the AST walker for the expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ineligible {
    /// The offending operator.
    pub op: &'static str,
    /// Why it cannot be compiled.
    pub reason: String,
}

impl std::fmt::Display for Ineligible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "`{}` not compiled: {}", self.op, self.reason)
    }
}

impl Ineligible {
    fn custom_closure() -> Ineligible {
        Ineligible {
            op: "map",
            reason: "opaque closure has no syntax to compile and carries no genericity \
                     certificate (Section 4.4: a method about which we know nothing); \
                     the AST walker evaluates it in place"
                .to_string(),
        }
    }

    fn stack_depth(need: usize, cap: u64) -> Ineligible {
        Ineligible {
            op: "vm",
            reason: format!(
                "compiled evaluation stack needs {need} slots, over the armed depth \
                 budget's cap of {cap} (Resource::Depth); the AST walker evaluates \
                 the expression under its own per-recursion depth charges"
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Kill switch

/// `0` = uninitialised (consult the environment), `1` = on, `2` = off.
static VM_STATE: AtomicU8 = AtomicU8::new(0);

/// Is compiled execution enabled? Defaults to on; `GENPAR_VM=0` (or
/// `false`/`off`) disables it process-wide. The first call caches the
/// environment's verdict; [`set_enabled`] overrides it.
pub fn enabled() -> bool {
    match VM_STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(
                std::env::var(VM_ENV).as_deref().map(str::trim),
                Ok("0") | Ok("false") | Ok("off")
            );
            VM_STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force the kill switch on or off (tests and benchmarks; process-wide).
pub fn set_enabled(on: bool) {
    VM_STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Gate one unit of compiled execution (a set in the serial evaluator,
/// a morsel in a kernel): the kill switch plus the `vm.exec` fault
/// site. An injected fault degrades the unit to the AST walker —
/// recorded as a `vm.degrade` counter and event — and the answer is
/// unchanged by construction.
pub fn engage() -> bool {
    if !enabled() {
        return false;
    }
    match genpar_guard::faultpoint(FAULT_SITE) {
        Ok(()) => true,
        Err(f) => {
            genpar_obs::counter("vm.degrade", 1);
            genpar_obs::event(
                "vm.degrade",
                [
                    ("site", genpar_obs::FieldValue::from(f.site)),
                    ("hit", genpar_obs::FieldValue::U64(f.hit)),
                ],
            );
            false
        }
    }
}

// ---------------------------------------------------------------------
// Compiler

struct Builder {
    ops: Vec<Op>,
    consts: Vec<Value>,
    syms: Vec<String>,
    colsets: Vec<Vec<usize>>,
}

/// Predicate-compiler worklist items. The compiler is **iterative** —
/// an explicit worklist instead of recursion, so arbitrarily deep
/// expressions compile without grow-the-call-stack risk.
enum PredWork<'a> {
    Emit(&'a Pred),
    /// Left arm emitted starting at `start`; now place the
    /// short-circuit jump (or fold) and emit the right arm.
    AndRhs {
        start: usize,
        rhs: &'a Pred,
    },
    OrRhs {
        start: usize,
        rhs: &'a Pred,
    },
    /// Operand emitted starting at `start`; negate (or fold).
    NotEnd {
        start: usize,
    },
    /// Patch the jump at `at` to land after everything emitted so far.
    Patch {
        at: usize,
    },
}

enum FnWork<'a> {
    Emit(&'a ValueFn),
    Push(Op),
}

impl Builder {
    fn new() -> Builder {
        Builder {
            ops: Vec::new(),
            consts: Vec::new(),
            syms: Vec::new(),
            colsets: Vec::new(),
        }
    }

    fn intern_const(&mut self, v: &Value) -> u32 {
        match self.consts.iter().position(|c| c == v) {
            Some(i) => i as u32,
            None => {
                self.consts.push(v.clone());
                (self.consts.len() - 1) as u32
            }
        }
    }

    fn intern_sym(&mut self, name: &str) -> u32 {
        match self.syms.iter().position(|s| s == name) {
            Some(i) => i as u32,
            None => {
                self.syms.push(name.to_string());
                (self.syms.len() - 1) as u32
            }
        }
    }

    fn intern_cols(&mut self, cols: &[usize]) -> u32 {
        match self.colsets.iter().position(|c| c == cols) {
            Some(i) => i as u32,
            None => {
                self.colsets.push(cols.to_vec());
                (self.colsets.len() - 1) as u32
            }
        }
    }

    /// If the code emitted since `start` is exactly one boolean push,
    /// its value — the only folding the compiler does, because it is
    /// the only folding the walker's own short-circuiting makes
    /// unobservable.
    fn const_block(&self, start: usize) -> Option<bool> {
        if self.ops.len() == start + 1 {
            if let Op::PushBool(b) = self.ops[start] {
                return Some(b);
            }
        }
        None
    }

    fn pred(&mut self, root: &Pred) {
        let mut work = vec![PredWork::Emit(root)];
        while let Some(w) = work.pop() {
            match w {
                PredWork::Emit(p) => match p {
                    Pred::True => self.ops.push(Op::PushBool(true)),
                    Pred::EqCols(i, j) => self.ops.push(Op::EqCols(*i, *j)),
                    Pred::EqConst(i, c) => {
                        let ci = self.intern_const(c);
                        self.ops.push(Op::EqConst(*i, ci));
                    }
                    Pred::Named(name, cols) => {
                        let s = self.intern_sym(name);
                        let c = self.intern_cols(cols);
                        self.ops.push(Op::CallPred(s, c));
                    }
                    Pred::And(a, b) => {
                        work.push(PredWork::AndRhs {
                            start: self.ops.len(),
                            rhs: b,
                        });
                        work.push(PredWork::Emit(a));
                    }
                    Pred::Or(a, b) => {
                        work.push(PredWork::OrRhs {
                            start: self.ops.len(),
                            rhs: b,
                        });
                        work.push(PredWork::Emit(a));
                    }
                    Pred::Not(a) => {
                        work.push(PredWork::NotEnd {
                            start: self.ops.len(),
                        });
                        work.push(PredWork::Emit(a));
                    }
                },
                PredWork::AndRhs { start, rhs } => match self.const_block(start) {
                    // `false && rhs`: the walker short-circuits, so the
                    // never-evaluated rhs can fold away entirely
                    Some(false) => {}
                    // `true && rhs` ≡ rhs
                    Some(true) => {
                        self.ops.truncate(start);
                        work.push(PredWork::Emit(rhs));
                    }
                    None => {
                        let at = self.ops.len();
                        self.ops.push(Op::JumpIfFalse(0));
                        self.ops.push(Op::Pop);
                        work.push(PredWork::Patch { at });
                        work.push(PredWork::Emit(rhs));
                    }
                },
                PredWork::OrRhs { start, rhs } => match self.const_block(start) {
                    Some(true) => {}
                    Some(false) => {
                        self.ops.truncate(start);
                        work.push(PredWork::Emit(rhs));
                    }
                    None => {
                        let at = self.ops.len();
                        self.ops.push(Op::JumpIfTrue(0));
                        self.ops.push(Op::Pop);
                        work.push(PredWork::Patch { at });
                        work.push(PredWork::Emit(rhs));
                    }
                },
                PredWork::NotEnd { start } => match self.const_block(start) {
                    Some(b) => {
                        self.ops.truncate(start);
                        self.ops.push(Op::PushBool(!b));
                    }
                    None => self.ops.push(Op::Not),
                },
                PredWork::Patch { at } => {
                    let target = self.ops.len() as u32;
                    if let Op::JumpIfFalse(t) | Op::JumpIfTrue(t) = &mut self.ops[at] {
                        *t = target;
                    }
                }
            }
        }
    }

    fn func(&mut self, root: &ValueFn) -> Result<(), Ineligible> {
        let mut work = vec![FnWork::Emit(root)];
        while let Some(w) = work.pop() {
            match w {
                FnWork::Emit(f) => match f {
                    // the input value is already the top of the stack
                    ValueFn::Identity => {}
                    ValueFn::Proj(i) => self.ops.push(Op::ProjTos(*i)),
                    ValueFn::Cols(cols) => {
                        let c = self.intern_cols(cols);
                        self.ops.push(Op::ColsTos(c));
                    }
                    ValueFn::Const(c) => {
                        let ci = self.intern_const(c);
                        self.ops.push(Op::ConstTos(ci));
                    }
                    ValueFn::Compose(a, b) => {
                        // apply `a` first (the walker's order)
                        work.push(FnWork::Emit(b));
                        work.push(FnWork::Emit(a));
                    }
                    ValueFn::Interp(name) => {
                        let s = self.intern_sym(name);
                        self.ops.push(Op::CallFnTos(s));
                    }
                    ValueFn::Pair(a, b) => {
                        // [v] → Dup → [v v] → a → [v a(v)] → Swap →
                        // [a(v) v] → b → [a(v) b(v)] → MakePair
                        work.push(FnWork::Push(Op::MakePair));
                        work.push(FnWork::Emit(b));
                        work.push(FnWork::Push(Op::Swap));
                        work.push(FnWork::Emit(a));
                        work.push(FnWork::Push(Op::Dup));
                    }
                    ValueFn::Custom(_) => return Err(Ineligible::custom_closure()),
                },
                FnWork::Push(op) => self.ops.push(op),
            }
        }
        Ok(())
    }

    fn finish(self, kind: ProgKind) -> Result<Program, Ineligible> {
        // Jump targets always rejoin at equal stack height (the jump
        // keeps the short-circuit value that the fall-through path
        // rebuilds), so a linear scan computes the exact peak depth.
        let mut height: isize = match kind {
            ProgKind::Pred => 0,
            ProgKind::Fn => 1, // the input value is pushed at entry
        };
        let mut max = height;
        for op in &self.ops {
            height += match op {
                Op::PushBool(_) | Op::EqCols(..) | Op::EqConst(..) | Op::CallPred(..) | Op::Dup => {
                    1
                }
                Op::Pop | Op::MakePair => -1,
                _ => 0,
            };
            max = max.max(height);
        }
        let need = max.max(0) as usize;
        // The stack cap is a Budget charge: an armed depth budget caps
        // the compiled stack exactly as it caps walker recursion.
        let cap = genpar_guard::depth_limit().min(STACK_CAP as u64);
        if need as u64 > cap {
            return Err(Ineligible::stack_depth(need, cap));
        }
        Ok(Program {
            ops: Arc::new(self.ops),
            consts: Arc::new(self.consts),
            syms: Arc::new(self.syms),
            colsets: Arc::new(self.colsets),
            max_stack: need,
            kind,
            cert: None,
        })
    }
}

/// Compile a predicate into a program whose verdicts (and errors) are
/// byte-identical to [`crate::eval::eval_pred`].
pub fn compile_pred(p: &Pred) -> Result<Program, Ineligible> {
    let mut b = Builder::new();
    b.pred(p);
    b.finish(ProgKind::Pred)
}

/// Compile a map function into a program whose results (and errors)
/// are byte-identical to [`crate::eval::apply_fn`]. Opaque
/// [`ValueFn::Custom`] closures are [`Ineligible`].
pub fn compile_fn(f: &ValueFn) -> Result<Program, Ineligible> {
    let mut b = Builder::new();
    b.func(f)?;
    b.finish(ProgKind::Fn)
}

// ---------------------------------------------------------------------
// Interpreter

/// A reusable evaluation engine: one per worker (or per evaluation
/// loop), shared across every tuple it processes. [`Vm::reset`] — also
/// run at the start of every execution — guarantees no state leaks
/// between tuples, even after an errored run.
#[derive(Debug, Default)]
pub struct Vm {
    stack: Vec<Value>,
    args: Vec<Value>,
}

fn shape(op: &'static str, v: &Value) -> EvalError {
    EvalError::Shape {
        op,
        found: v.to_string(),
    }
}

/// A structural impossibility (stack underflow, non-bool where the
/// compiler guaranteed a bool). Unreachable for programs produced by
/// [`compile_pred`]/[`compile_fn`]; reported as a shape error rather
/// than a panic so even a hand-built bad program cannot take a worker
/// down.
fn corrupt(found: &str) -> EvalError {
    EvalError::Shape {
        op: "vm",
        found: found.to_string(),
    }
}

impl Vm {
    /// A fresh VM with empty (lazily grown) stacks.
    pub fn new() -> Vm {
        Vm::default()
    }

    /// Clear all interpreter state. Execution entry points call this
    /// themselves; it is public so reuse-safety is testable.
    pub fn reset(&mut self) {
        self.stack.clear();
        self.args.clear();
    }

    /// Run a predicate program against one tuple. Verdicts and errors
    /// are byte-identical to [`crate::eval::eval_pred`] on the source
    /// expression.
    pub fn run_pred(&mut self, prog: &Program, t: &Value, db: &Db) -> Result<bool, EvalError> {
        if prog.kind != ProgKind::Pred {
            return Err(corrupt("function program run as predicate"));
        }
        self.reset();
        self.stack.reserve(prog.max_stack);
        let ops = prog.ops.as_slice();
        let mut pc = 0usize;
        while let Some(op) = ops.get(pc) {
            match op {
                Op::PushBool(b) => self.stack.push(Value::Bool(*b)),
                Op::EqCols(i, j) => {
                    let tup = t.as_tuple().ok_or_else(|| shape("σ", t))?;
                    let a = tup.get(*i).ok_or(EvalError::BadColumn(*i))?;
                    let b = tup.get(*j).ok_or(EvalError::BadColumn(*j))?;
                    self.stack.push(Value::Bool(a == b));
                }
                Op::EqConst(i, c) => {
                    let tup = t.as_tuple().ok_or_else(|| shape("σ", t))?;
                    let a = tup.get(*i).ok_or(EvalError::BadColumn(*i))?;
                    self.stack.push(Value::Bool(a == &prog.consts[*c as usize]));
                }
                Op::CallPred(s, c) => {
                    let name = &prog.syms[*s as usize];
                    let pred = db
                        .signature()
                        .predicate(name)
                        .ok_or_else(|| EvalError::UnknownSymbol(name.clone()))?;
                    let tup = t.as_tuple().ok_or_else(|| shape("σ", t))?;
                    self.args.clear();
                    for &col in &prog.colsets[*c as usize] {
                        self.args
                            .push(tup.get(col).ok_or(EvalError::BadColumn(col))?.clone());
                    }
                    self.stack.push(Value::Bool((pred.eval)(&self.args)));
                }
                Op::Not => match self.stack.last_mut() {
                    Some(Value::Bool(b)) => *b = !*b,
                    _ => return Err(corrupt("Not on a non-bool")),
                },
                Op::JumpIfFalse(target) => {
                    if matches!(self.stack.last(), Some(Value::Bool(false))) {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::JumpIfTrue(target) => {
                    if matches!(self.stack.last(), Some(Value::Bool(true))) {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::Pop => {
                    self.stack.pop();
                }
                _ => return Err(corrupt("function opcode in a predicate program")),
            }
            pc += 1;
        }
        match self.stack.pop() {
            Some(Value::Bool(b)) => Ok(b),
            _ => Err(corrupt("predicate program left no bool")),
        }
    }

    /// Run a function program against one value. Results and errors are
    /// byte-identical to [`crate::eval::apply_fn`] on the source
    /// expression.
    pub fn run_fn(&mut self, prog: &Program, v: &Value, db: &Db) -> Result<Value, EvalError> {
        if prog.kind != ProgKind::Fn {
            return Err(corrupt("predicate program run as function"));
        }
        self.reset();
        self.stack.reserve(prog.max_stack);
        self.stack.push(v.clone());
        let ops = prog.ops.as_slice();
        let mut pc = 0usize;
        while let Some(op) = ops.get(pc) {
            match op {
                Op::ProjTos(i) => {
                    let top = self.stack.pop().ok_or_else(|| corrupt("empty stack"))?;
                    let out = top
                        .project(*i)
                        .cloned()
                        .ok_or_else(|| shape("π (fn)", &top))?;
                    self.stack.push(out);
                }
                Op::ColsTos(c) => {
                    let top = self.stack.pop().ok_or_else(|| corrupt("empty stack"))?;
                    let tup = top.as_tuple().ok_or_else(|| shape("π", &top))?;
                    let cols = &prog.colsets[*c as usize];
                    let mut out = Vec::with_capacity(cols.len());
                    for &col in cols {
                        out.push(tup.get(col).ok_or(EvalError::BadColumn(col))?.clone());
                    }
                    self.stack.push(Value::Tuple(out));
                }
                Op::ConstTos(c) => {
                    self.stack.pop();
                    self.stack.push(prog.consts[*c as usize].clone());
                }
                Op::CallFnTos(s) => {
                    let name = &prog.syms[*s as usize];
                    let func = db
                        .signature()
                        .function(name)
                        .ok_or_else(|| EvalError::UnknownSymbol(name.clone()))?;
                    let top = self.stack.pop().ok_or_else(|| corrupt("empty stack"))?;
                    self.args.clear();
                    // the walker's spread rule: a tuple argument spreads
                    // unless the function is unary
                    match top.as_tuple() {
                        Some(t) if func.args.len() != 1 => self.args.extend(t.iter().cloned()),
                        _ => self.args.push(top),
                    }
                    self.stack.push((func.eval)(&self.args));
                }
                Op::Dup => {
                    let top = self
                        .stack
                        .last()
                        .cloned()
                        .ok_or_else(|| corrupt("empty stack"))?;
                    self.stack.push(top);
                }
                Op::Swap => {
                    let n = self.stack.len();
                    if n < 2 {
                        return Err(corrupt("Swap needs two values"));
                    }
                    self.stack.swap(n - 1, n - 2);
                }
                Op::MakePair => {
                    let b = self.stack.pop().ok_or_else(|| corrupt("empty stack"))?;
                    let a = self.stack.pop().ok_or_else(|| corrupt("empty stack"))?;
                    self.stack.push(Value::tuple([a, b]));
                }
                _ => return Err(corrupt("predicate opcode in a function program")),
            }
            pc += 1;
        }
        match self.stack.pop() {
            Some(out) if self.stack.is_empty() => Ok(out),
            _ => Err(corrupt("function program left a bad stack")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{apply_fn, eval_pred};
    use genpar_value::parse::parse_value;

    fn tup(s: &str) -> Value {
        parse_value(s).unwrap()
    }

    fn pair(a: ValueFn, b: ValueFn) -> ValueFn {
        ValueFn::Pair(Box::new(a), Box::new(b))
    }

    fn comp(a: ValueFn, b: ValueFn) -> ValueFn {
        ValueFn::Compose(Box::new(a), Box::new(b))
    }

    fn db() -> Db {
        Db::with_standard_int()
    }

    /// VM and walker must agree exactly — on values and on errors.
    fn assert_pred_parity(p: &Pred, t: &Value, db: &Db) {
        let prog = compile_pred(p).expect("eligible predicate");
        let mut vm = Vm::new();
        assert_eq!(
            vm.run_pred(&prog, t, db),
            eval_pred(p, t, db),
            "{p:?} on {t}"
        );
    }

    fn assert_fn_parity(f: &ValueFn, v: &Value, db: &Db) {
        let prog = compile_fn(f).expect("eligible function");
        let mut vm = Vm::new();
        assert_eq!(vm.run_fn(&prog, v, db), apply_fn(f, v, db), "{f:?} on {v}");
    }

    #[test]
    fn pushbool_and_not_opcodes() {
        let t = tup("(1, 2)");
        assert_pred_parity(&Pred::True, &t, &db());
        assert_pred_parity(&Pred::True.not(), &t, &db());
        // Not over a non-constant exercises the Not opcode proper
        let p = Pred::eq_cols(0, 1).not();
        let prog = compile_pred(&p).unwrap();
        assert!(prog.ops().contains(&Op::Not));
        assert_pred_parity(&p, &t, &db());
        assert_pred_parity(&p, &tup("(3, 3)"), &db());
    }

    #[test]
    fn eqcols_and_eqconst_opcodes() {
        let d = db();
        for t in ["(1, 1)", "(1, 2)", "(7, 9)"] {
            let t = tup(t);
            assert_pred_parity(&Pred::eq_cols(0, 1), &t, &d);
            assert_pred_parity(&Pred::eq_const(0, Value::Int(7)), &t, &d);
            // error parity: bad column, non-tuple input
            assert_pred_parity(&Pred::eq_cols(0, 9), &t, &d);
        }
        assert_pred_parity(&Pred::eq_cols(0, 1), &Value::Int(3), &d);
    }

    #[test]
    fn callpred_opcode_resolves_per_call() {
        let d = db();
        let p = Pred::Named("even".into(), vec![0]);
        for t in ["(2, 5)", "(3, 5)"] {
            assert_pred_parity(&p, &tup(t), &d);
        }
        // unknown symbols error at run time, per application — exactly
        // like the walker, so compiling cannot introduce new failures
        let bad = Pred::Named("nope".into(), vec![0]);
        let prog = compile_pred(&bad).unwrap();
        let mut vm = Vm::new();
        assert_eq!(
            vm.run_pred(&prog, &tup("(1, 2)"), &d),
            Err(EvalError::UnknownSymbol("nope".into()))
        );
        assert_pred_parity(&bad, &tup("(1, 2)"), &d);
    }

    #[test]
    fn jump_opcodes_short_circuit_like_the_walker() {
        let d = db();
        // rhs errors (bad column) — must not fire when lhs decides
        let and = Pred::eq_cols(0, 9).and(Pred::eq_cols(0, 0)); // lhs errors first
        assert_pred_parity(&and, &tup("(1, 2)"), &d);
        let and2 = Pred::eq_const(0, Value::Int(9)).and(Pred::eq_cols(0, 99));
        // lhs false: rhs (which would error) is skipped by JumpIfFalse
        let prog = compile_pred(&and2).unwrap();
        assert!(prog.ops().iter().any(|o| matches!(o, Op::JumpIfFalse(_))));
        assert_pred_parity(&and2, &tup("(1, 2)"), &d);
        let or2 = Pred::eq_const(0, Value::Int(1)).or(Pred::eq_cols(0, 99));
        let prog = compile_pred(&or2).unwrap();
        assert!(prog.ops().iter().any(|o| matches!(o, Op::JumpIfTrue(_))));
        assert_pred_parity(&or2, &tup("(1, 2)"), &d);
        // and when the lhs does not decide, the erroring rhs fires
        let and3 = Pred::eq_const(0, Value::Int(1)).and(Pred::eq_cols(0, 99));
        assert_pred_parity(&and3, &tup("(1, 2)"), &d);
    }

    #[test]
    fn projtos_colstos_consttos_opcodes() {
        let d = db();
        let t = tup("(10, 20, 30)");
        assert_fn_parity(&ValueFn::Proj(1), &t, &d);
        assert_fn_parity(&ValueFn::Proj(9), &t, &d); // error parity
        assert_fn_parity(&ValueFn::Cols(vec![2, 0]), &t, &d);
        assert_fn_parity(&ValueFn::Cols(vec![2, 9]), &t, &d); // error parity
        assert_fn_parity(&ValueFn::Cols(vec![0]), &Value::Int(1), &d); // shape error
        assert_fn_parity(&ValueFn::Const(Value::Int(42)), &t, &d);
    }

    #[test]
    fn callfntos_opcode_and_spread_rule() {
        let mut d = db();
        // a binary function: tuple arguments spread
        d.signature_mut().add_function(genpar_value::InterpFn {
            name: "add".into(),
            args: vec![genpar_value::BaseType::Int, genpar_value::BaseType::Int],
            result: genpar_value::BaseType::Int,
            eval: Box::new(|vs: &[Value]| match vs {
                [Value::Int(a), Value::Int(b)] => Value::Int(a + b),
                _ => Value::Int(-1),
            }),
        });
        // unary `succ` on a tuple: NOT spread (walker rule)
        assert_fn_parity(&ValueFn::Interp("succ".into()), &Value::Int(5), &d);
        assert_fn_parity(&ValueFn::Interp("succ".into()), &tup("(5, 6)"), &d);
        assert_fn_parity(&ValueFn::Interp("add".into()), &tup("(5, 6)"), &d);
        assert_fn_parity(&ValueFn::Interp("add".into()), &Value::Int(5), &d);
        assert_fn_parity(&ValueFn::Interp("ghost".into()), &Value::Int(5), &d);
    }

    #[test]
    fn dup_swap_makepair_opcodes() {
        let d = db();
        let f = pair(ValueFn::Proj(1), ValueFn::Proj(0));
        let prog = compile_fn(&f).unwrap();
        for op in [Op::Dup, Op::Swap, Op::MakePair] {
            assert!(prog.ops().contains(&op), "missing {op:?}");
        }
        assert_fn_parity(&f, &tup("(10, 20)"), &d);
        // left arm evaluates (and errors) first, as in the walker
        assert_fn_parity(
            &pair(ValueFn::Proj(9), ValueFn::Proj(0)),
            &tup("(1, 2)"),
            &d,
        );
    }

    #[test]
    fn compose_applies_left_first() {
        let d = db();
        let f = comp(ValueFn::Cols(vec![1, 0]), ValueFn::Proj(0));
        assert_fn_parity(&f, &tup("(10, 20)"), &d);
        // error in the first stage wins
        assert_fn_parity(
            &comp(ValueFn::Proj(9), ValueFn::Proj(8)),
            &tup("(1, 2)"),
            &d,
        );
    }

    #[test]
    fn empty_program_is_identity() {
        let prog = compile_fn(&ValueFn::Identity).unwrap();
        assert!(prog.is_empty());
        assert_eq!(prog.len(), 0);
        let v = tup("{(1, 2), 3}");
        let mut vm = Vm::new();
        assert_eq!(vm.run_fn(&prog, &v, &db()), Ok(v.clone()));
        assert_fn_parity(&ValueFn::Identity, &v, &db());
    }

    #[test]
    fn constant_folding_preserves_short_circuit_semantics() {
        // And(false, _): the walker never evaluates the rhs, so an
        // erroring rhs folds away entirely
        let dead_rhs = Pred::Named("nope".into(), vec![0]);
        let p = Pred::True.not().and(dead_rhs.clone());
        let prog = compile_pred(&p).unwrap();
        assert_eq!(prog.ops(), &[Op::PushBool(false)]);
        assert_pred_parity(&p, &tup("(1, 2)"), &db());
        // Or(true, _) likewise
        let p = Pred::True.or(dead_rhs);
        assert_eq!(compile_pred(&p).unwrap().ops(), &[Op::PushBool(true)]);
        assert_pred_parity(&p, &tup("(1, 2)"), &db());
        // And(true, b) ≡ b — no jump emitted
        let p = Pred::True.and(Pred::eq_cols(0, 1));
        assert_eq!(compile_pred(&p).unwrap().ops(), &[Op::EqCols(0, 1)]);
        // Or(false, b) ≡ b
        let p = Pred::True.not().or(Pred::eq_cols(0, 1));
        assert_eq!(compile_pred(&p).unwrap().ops(), &[Op::EqCols(0, 1)]);
        // Not(Not(True)) folds to a single push
        let p = Pred::True.not().not();
        assert_eq!(compile_pred(&p).unwrap().ops(), &[Op::PushBool(true)]);
    }

    #[test]
    fn deep_nesting_compiles_and_runs_without_recursion() {
        // deep enough that the recursive walker would overflow a test
        // thread's stack — the iterative compiler and flat interpreter
        // handle it in O(1) stack. The expression itself still needs a
        // big thread to be *dropped* (Box chains drop recursively),
        // which is precisely the hazard the VM removes from evaluation.
        std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn(|| {
                let depth = 50_000;
                let mut p = Pred::eq_cols(0, 1);
                for _ in 0..depth {
                    p = p.not();
                }
                let prog = compile_pred(&p).unwrap();
                assert_eq!(prog.len(), depth + 1);
                assert_eq!(prog.max_stack(), 1);
                let mut vm = Vm::new();
                // even depth of nots: identity
                assert_eq!(vm.run_pred(&prog, &tup("(3, 3)"), &db()), Ok(true));
                // a deep right-nested And-chain stays at stack height 1
                let mut q = Pred::eq_cols(0, 0);
                for _ in 0..depth {
                    q = Pred::eq_cols(0, 0).and(q);
                }
                let prog = compile_pred(&q).unwrap();
                assert_eq!(prog.max_stack(), 1);
                assert_eq!(vm.run_pred(&prog, &tup("(3, 3)"), &db()), Ok(true));
            })
            .expect("spawn")
            .join()
            .expect("deep-nesting thread");
    }

    #[test]
    fn stack_cap_is_a_budget_charge() {
        // Pair nesting is the one shape that actually grows the stack
        let mut f = ValueFn::Proj(0);
        for _ in 0..8 {
            f = pair(f, ValueFn::Proj(0));
        }
        let unbounded = compile_fn(&f).unwrap();
        assert!(unbounded.max_stack() > 4);
        // with a depth budget armed, the same program is refused — the
        // compiled stack is charged against Resource::Depth like walker
        // recursion would be
        let _scope = genpar_guard::ExecBudget::unlimited()
            .with_max_depth(4)
            .enter();
        let err = compile_fn(&f).unwrap_err();
        assert_eq!(err.op, "vm");
        assert!(err.reason.contains("Resource::Depth"), "{err}");
        assert!(err.to_string().contains("not compiled"), "{err}");
    }

    #[test]
    fn custom_closures_are_ineligible_with_a_citing_reason() {
        let f = ValueFn::custom(|v| v.clone());
        let err = compile_fn(&f).unwrap_err();
        assert_eq!(err.op, "map");
        assert!(err.reason.contains("Section 4.4"), "{err}");
        // nested anywhere, same refusal
        let nested = comp(ValueFn::Proj(0), ValueFn::custom(|v| v.clone()));
        assert!(compile_fn(&nested).is_err());
    }

    #[test]
    fn reset_reuse_leaks_no_state_between_tuples() {
        let d = db();
        let mut vm = Vm::new();
        let pred = compile_pred(&Pred::eq_cols(0, 1).and(Pred::eq_cols(1, 2))).unwrap();
        let func = compile_fn(&pair(ValueFn::Proj(0), ValueFn::Proj(1))).unwrap();
        // interleave successes and errors on ONE instance; every result
        // must match what a fresh instance computes
        let tuples = [
            tup("(1, 1, 1)"),
            Value::Int(9),
            tup("(2, 3)"),
            tup("(4, 4, 4)"),
        ];
        for t in &tuples {
            let reused_p = vm.run_pred(&pred, t, &d);
            let fresh_p = Vm::new().run_pred(&pred, t, &d);
            assert_eq!(reused_p, fresh_p, "pred on {t}");
            let reused_f = vm.run_fn(&func, t, &d);
            let fresh_f = Vm::new().run_fn(&func, t, &d);
            assert_eq!(reused_f, fresh_f, "fn on {t}");
        }
        // and reset() empties everything even after an errored run
        let _ = vm.run_pred(&pred, &Value::Int(9), &d);
        vm.reset();
        assert!(vm.stack.is_empty() && vm.args.is_empty());
    }

    #[test]
    fn programs_are_shareable_and_carry_certs() {
        fn is_send_sync<T: Send + Sync>() {}
        is_send_sync::<Program>();
        is_send_sync::<Vm>();
        let prog = compile_pred(&Pred::eq_cols(0, 1))
            .unwrap()
            .with_cert("1 operators certified; rel-mode class: generic");
        assert_eq!(
            prog.cert(),
            Some("1 operators certified; rel-mode class: generic")
        );
        assert!(prog.describe().contains("1 ops"));
        let clone = prog.clone();
        assert_eq!(clone.cert(), prog.cert());
    }

    #[test]
    fn kill_switch_toggles() {
        // identical answers on both paths make a concurrent toggle
        // harmless; this test only checks the switch itself
        set_enabled(false);
        assert!(!enabled());
        assert!(!engage());
        set_enabled(true);
        assert!(enabled());
        assert!(engage());
    }
}
