//! Evaluation of queries over databases of complex values.

use crate::expr::{Pred, Query, ValueFn};
use genpar_value::enumerate::{enumerate, EnumLimits, Universe};
use genpar_value::{CvType, Signature, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A database: named complex values, plus the signature giving meaning to
/// interpreted symbols and (optionally) a finite universe for full-domain
/// operations such as [`Query::Complement`].
pub struct Db {
    relations: BTreeMap<String, Value>,
    signature: Signature,
    /// Universe for full-domain semantics (Section 3.3). `None` disables
    /// `Complement`.
    pub universe: Option<(Universe, CvType)>,
}

impl Db {
    /// An empty database with an empty signature.
    pub fn new() -> Self {
        Db {
            relations: BTreeMap::new(),
            signature: Signature::new(),
            universe: None,
        }
    }

    /// A database with the standard integer signature.
    pub fn with_standard_int() -> Self {
        Db {
            relations: BTreeMap::new(),
            signature: Signature::standard_int(),
            universe: None,
        }
    }

    /// Insert/replace a named relation (builder style).
    pub fn with(mut self, name: impl Into<String>, v: Value) -> Self {
        self.relations.insert(name.into(), v);
        self
    }

    /// Insert/replace a named relation.
    pub fn set(&mut self, name: impl Into<String>, v: Value) {
        self.relations.insert(name.into(), v);
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.relations.get(name)
    }

    /// Iterate over all relations.
    pub fn relations(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.relations.iter()
    }

    /// The signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Mutable signature access (to register interpreted symbols).
    pub fn signature_mut(&mut self) -> &mut Signature {
        &mut self.signature
    }

    /// Enable full-domain semantics: complements are taken w.r.t. all
    /// values of `ty` over `universe`.
    pub fn with_universe(mut self, universe: Universe, ty: CvType) -> Self {
        self.universe = Some((universe, ty));
        self
    }

    /// The active domain of the whole database (union over relations).
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        for v in self.relations.values() {
            out.extend(v.active_domain());
        }
        out
    }
}

impl Default for Db {
    fn default() -> Self {
        Db::new()
    }
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A referenced relation is missing from the database.
    UnknownRelation(String),
    /// An operator was applied to a value of the wrong shape.
    Shape {
        /// Which operator failed.
        op: &'static str,
        /// Rendering of the offending value.
        found: String,
    },
    /// An interpreted symbol is not in the signature.
    UnknownSymbol(String),
    /// `Complement` was evaluated without a universe, or the universe was
    /// too large to enumerate.
    NoUniverse,
    /// A projection column index was out of range.
    BadColumn(usize),
    /// An [`genpar_guard::ExecBudget`] cap was crossed. Evaluation stops
    /// promptly and reports the work done so far.
    BudgetExceeded {
        /// The exhausted resource.
        resource: genpar_guard::Resource,
        /// The configured cap.
        limit: u64,
        /// Usage at the moment of the breach.
        used: u64,
        /// The operator charging when the cap was crossed.
        op: &'static str,
        /// Work counters accumulated before the breach.
        partial: EvalStats,
    },
    /// A deterministic fault-injection site fired (`GENPAR_FAULTS`).
    Fault(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRelation(n) => write!(f, "unknown relation {n}"),
            EvalError::Shape { op, found } => write!(f, "{op}: unexpected value shape {found}"),
            EvalError::UnknownSymbol(n) => write!(f, "unknown interpreted symbol {n}"),
            EvalError::NoUniverse => write!(f, "complement requires a finite universe"),
            EvalError::BadColumn(i) => write!(f, "column ${} out of range", i + 1),
            EvalError::BudgetExceeded {
                resource,
                limit,
                used,
                op,
                partial,
            } => write!(
                f,
                "budget exceeded: {resource} limit {limit} (used {used}) at {op} \
                 [partial progress: {} scanned, {} emitted, {} fn applications]",
                partial.tuples_scanned, partial.tuples_emitted, partial.fn_applications
            ),
            EvalError::Fault(msg) => write!(f, "{msg}"),
        }
    }
}

impl EvalError {
    /// Is this a budget breach (as opposed to a semantic error)?
    pub fn is_budget(&self) -> bool {
        matches!(self, EvalError::BudgetExceeded { .. })
    }

    /// Wrap a guard breach when no work counters are at hand (the
    /// evaluator proper uses `budget_err` to attach partial progress).
    pub fn from_breach(b: genpar_guard::BudgetBreach) -> EvalError {
        EvalError::BudgetExceeded {
            resource: b.resource,
            limit: b.limit,
            used: b.used,
            op: b.op,
            partial: EvalStats::default(),
        }
    }
}

impl std::error::Error for EvalError {}

/// Work counters filled in during evaluation, used by the optimizer
/// benchmarks to compare plans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Elements read from input collections.
    pub tuples_scanned: u64,
    /// Elements written to output collections.
    pub tuples_emitted: u64,
    /// Predicate/function applications.
    pub fn_applications: u64,
}

/// Evaluate `q` against `db`.
pub fn eval(q: &Query, db: &Db) -> Result<Value, EvalError> {
    let mut stats = EvalStats::default();
    let out = eval_with_stats(q, db, &mut stats)?;
    genpar_obs::counter("algebra.tuples_scanned", stats.tuples_scanned);
    genpar_obs::counter("algebra.tuples_emitted", stats.tuples_emitted);
    genpar_obs::counter("algebra.fn_applications", stats.fn_applications);
    Ok(out)
}

/// The span name of a query node's outermost operator.
pub fn op_name(q: &Query) -> &'static str {
    match q {
        Query::Rel(_) => "alg.Rel",
        Query::Lit(_) => "alg.Lit",
        Query::Empty => "alg.Empty",
        Query::Project(..) => "alg.Project",
        Query::Select(..) => "alg.Select",
        Query::SelectHat(..) => "alg.SelectHat",
        Query::Product(..) => "alg.Product",
        Query::Union(..) => "alg.Union",
        Query::Intersect(..) => "alg.Intersect",
        Query::Difference(..) => "alg.Difference",
        Query::Join(..) => "alg.Join",
        Query::Map(..) => "alg.Map",
        Query::Insert(..) => "alg.Insert",
        Query::Singleton(..) => "alg.Singleton",
        Query::Flatten(..) => "alg.Flatten",
        Query::Powerset(..) => "alg.Powerset",
        Query::EqAdom(..) => "alg.EqAdom",
        Query::Adom(..) => "alg.Adom",
        Query::Even(..) => "alg.Even",
        Query::NestParity(..) => "alg.NestParity",
        Query::Complement(..) => "alg.Complement",
        Query::TuplePair(..) => "alg.TuplePair",
        Query::Nest(..) => "alg.Nest",
        Query::Unnest(..) => "alg.Unnest",
        Query::Count(..) => "alg.Count",
        Query::Sum(..) => "alg.Sum",
        Query::Fixpoint { .. } => "alg.Fixpoint",
    }
}

/// Evaluate `q` against `db`, accumulating work counters. Each operator
/// node gets an obs span (parent/child mirrors the query tree) carrying
/// `rows_in`/`rows_out` where the operator consumes/produces sets.
///
/// Budget governance happens at this operator boundary: each node charges
/// one step plus the rows it materialized against any armed
/// [`genpar_guard::ExecBudget`]; a breach surfaces as
/// [`EvalError::BudgetExceeded`] with the partial-progress counters.
pub fn eval_with_stats(q: &Query, db: &Db, stats: &mut EvalStats) -> Result<Value, EvalError> {
    let op = op_name(q);
    genpar_guard::faultpoint("algebra.eval").map_err(|f| EvalError::Fault(f.to_string()))?;
    genpar_guard::charge_steps(1, op).map_err(|b| budget_err(b, stats))?;
    let mut sp = genpar_obs::span(op);
    let out = eval_node(q, db, stats, &mut sp)?;
    if let Value::Set(s) = &out {
        sp.field("rows_out", s.len() as u64);
        genpar_guard::charge_rows(s.len() as u64, op).map_err(|b| budget_err(b, stats))?;
        genpar_guard::charge_cells(s.iter().map(Value::len).sum::<usize>() as u64, op)
            .map_err(|b| budget_err(b, stats))?;
    }
    Ok(out)
}

/// Wrap a guard breach into a structured eval error carrying the work
/// counters accumulated so far.
fn budget_err(b: genpar_guard::BudgetBreach, stats: &EvalStats) -> EvalError {
    EvalError::BudgetExceeded {
        resource: b.resource,
        limit: b.limit,
        used: b.used,
        op: b.op,
        partial: *stats,
    }
}

fn eval_node(
    q: &Query,
    db: &Db,
    stats: &mut EvalStats,
    sp: &mut genpar_obs::SpanGuard,
) -> Result<Value, EvalError> {
    match q {
        Query::Rel(name) => db
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::UnknownRelation(name.clone())),
        Query::Lit(v) => Ok(v.clone()),
        Query::Empty => Ok(Value::empty_set()),
        Query::Project(cols, q) => {
            let s = eval_set(q, db, stats)?;
            sp.field("rows_in", s.len() as u64);
            let mut out = BTreeSet::new();
            for t in &s {
                stats.tuples_scanned += 1;
                out.insert(project_tuple(t, cols)?);
            }
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::Select(p, q) => {
            let s = eval_set(q, db, stats)?;
            sp.field("rows_in", s.len() as u64);
            let out = select_set(p, s, db, stats)?;
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::SelectHat(i, j, q) => {
            // σ̂_{i=j}(R) = {π_ĵ(t) | t ∈ R, t.i = t.j} (Section 3.2)
            let s = eval_set(q, db, stats)?;
            sp.field("rows_in", s.len() as u64);
            let mut out = BTreeSet::new();
            for t in &s {
                stats.tuples_scanned += 1;
                let tup = t.as_tuple().ok_or_else(|| shape("σ̂", t))?;
                let a = tup.get(*i).ok_or(EvalError::BadColumn(*i))?;
                let b = tup.get(*j).ok_or(EvalError::BadColumn(*j))?;
                if a == b {
                    let projected: Vec<Value> = tup
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| k != j)
                        .map(|(_, v)| v.clone())
                        .collect();
                    out.insert(Value::Tuple(projected));
                }
            }
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::Product(a, b) => {
            let sa = eval_set(a, db, stats)?;
            let sb = eval_set(b, db, stats)?;
            sp.field("rows_in", (sa.len() + sb.len()) as u64);
            let mut out = BTreeSet::new();
            for x in &sa {
                // × is quadratic: re-check the budget between inner
                // sweeps so an armed cap stops the blow-up promptly
                // instead of after full materialization
                genpar_guard::charge_steps(sb.len() as u64, "alg.Product")
                    .map_err(|b| budget_err(b, stats))?;
                genpar_guard::charge_rows(out.len() as u64, "alg.Product")
                    .map_err(|b| budget_err(b, stats))?;
                for y in &sb {
                    stats.tuples_scanned += 1;
                    out.insert(concat_tuples(x, y)?);
                }
            }
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::Union(a, b) => {
            let mut sa = eval_set(a, db, stats)?;
            let sb = eval_set(b, db, stats)?;
            sp.field("rows_in", (sa.len() + sb.len()) as u64);
            stats.tuples_scanned += (sa.len() + sb.len()) as u64;
            sa.extend(sb);
            stats.tuples_emitted += sa.len() as u64;
            Ok(Value::Set(sa))
        }
        Query::Intersect(a, b) => {
            let sa = eval_set(a, db, stats)?;
            let sb = eval_set(b, db, stats)?;
            sp.field("rows_in", (sa.len() + sb.len()) as u64);
            stats.tuples_scanned += (sa.len() + sb.len()) as u64;
            let out: BTreeSet<Value> = sa.intersection(&sb).cloned().collect();
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::Difference(a, b) => {
            let sa = eval_set(a, db, stats)?;
            let sb = eval_set(b, db, stats)?;
            sp.field("rows_in", (sa.len() + sb.len()) as u64);
            stats.tuples_scanned += (sa.len() + sb.len()) as u64;
            let out: BTreeSet<Value> = sa.difference(&sb).cloned().collect();
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::Join(on, a, b) => {
            let sa = eval_set(a, db, stats)?;
            let sb = eval_set(b, db, stats)?;
            sp.field("rows_in", (sa.len() + sb.len()) as u64);
            // hash join on the first key pair, nested filter for the rest
            let mut out = BTreeSet::new();
            if let Some(&(i0, j0)) = on.first() {
                let mut index: BTreeMap<&Value, Vec<&Value>> = BTreeMap::new();
                for t in &sb {
                    stats.tuples_scanned += 1;
                    let tup = t.as_tuple().ok_or_else(|| shape("⋈", t))?;
                    let k = tup.get(j0).ok_or(EvalError::BadColumn(j0))?;
                    index.entry(k).or_default().push(t);
                }
                for s in &sa {
                    stats.tuples_scanned += 1;
                    let stup = s.as_tuple().ok_or_else(|| shape("⋈", s))?;
                    let k = stup.get(i0).ok_or(EvalError::BadColumn(i0))?;
                    if let Some(matches) = index.get(k) {
                        'next: for t in matches {
                            let ttup = t.as_tuple().expect("indexed tuples");
                            for &(i, j) in &on[1..] {
                                let x = stup.get(i).ok_or(EvalError::BadColumn(i))?;
                                let y = ttup.get(j).ok_or(EvalError::BadColumn(j))?;
                                if x != y {
                                    continue 'next;
                                }
                            }
                            out.insert(concat_tuples(s, t)?);
                        }
                    }
                }
            } else {
                // no key pairs: degenerate to product (quadratic, so
                // budget-checked between inner sweeps like ×)
                for x in &sa {
                    genpar_guard::charge_steps(sb.len() as u64, "alg.Join")
                        .map_err(|b| budget_err(b, stats))?;
                    genpar_guard::charge_rows(out.len() as u64, "alg.Join")
                        .map_err(|b| budget_err(b, stats))?;
                    for y in &sb {
                        stats.tuples_scanned += 1;
                        out.insert(concat_tuples(x, y)?);
                    }
                }
            }
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::Map(f, q) => {
            let s = eval_set(q, db, stats)?;
            sp.field("rows_in", s.len() as u64);
            let out = map_set(f, &s, db, stats)?;
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::Insert(c, q) => {
            let mut s = eval_set(q, db, stats)?;
            s.insert(c.clone());
            stats.tuples_emitted += 1;
            Ok(Value::Set(s))
        }
        Query::Singleton(q) => {
            let v = eval_with_stats(q, db, stats)?;
            stats.tuples_emitted += 1;
            Ok(Value::set([v]))
        }
        Query::Flatten(q) => {
            let s = eval_set(q, db, stats)?;
            let mut out = BTreeSet::new();
            for inner in &s {
                stats.tuples_scanned += 1;
                let is = inner.as_set().ok_or_else(|| shape("μ", inner))?;
                out.extend(is.iter().cloned());
            }
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::Powerset(q) => {
            let s = eval_set(q, db, stats)?;
            let elems: Vec<Value> = s.into_iter().collect();
            // ℘ of n elements is a 2ⁿ-element answer: governed by the
            // armed budget's powerset cap (default 20 even when no
            // budget is armed — this is the one always-on guard)
            // 62: the mask enumeration below uses a u64, and anything
            // beyond 2⁶² subsets is out of reach regardless of budget
            let cap = genpar_guard::powerset_cap().min(62);
            if elems.len() > cap {
                return Err(EvalError::BudgetExceeded {
                    resource: genpar_guard::Resource::Powerset,
                    limit: cap as u64,
                    used: elems.len() as u64,
                    op: "℘",
                    partial: *stats,
                });
            }
            let mut out = BTreeSet::new();
            for mask in 0u64..(1u64 << elems.len()) {
                let sub: BTreeSet<Value> = elems
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, v)| v.clone())
                    .collect();
                out.insert(Value::Set(sub));
            }
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::EqAdom(q) => {
            let v = eval_with_stats(q, db, stats)?;
            let adom = v.active_domain();
            let out: BTreeSet<Value> = adom
                .iter()
                .map(|x| Value::tuple([x.clone(), x.clone()]))
                .collect();
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::Adom(q) => {
            let v = eval_with_stats(q, db, stats)?;
            Ok(Value::Set(v.active_domain()))
        }
        Query::Even(q) => {
            let s = eval_set(q, db, stats)?;
            Ok(Value::Bool(s.len() % 2 == 0))
        }
        Query::NestParity(q) => {
            let v = eval_with_stats(q, db, stats)?;
            Ok(Value::Bool(v.set_nesting_depth() % 2 == 0))
        }
        Query::Complement(q) => {
            let s = eval_set(q, db, stats)?;
            let (universe, ty) = db.universe.as_ref().ok_or(EvalError::NoUniverse)?;
            let elem_ty = match ty {
                CvType::Set(t) => (**t).clone(),
                other => other.clone(),
            };
            let all = enumerate(&elem_ty, universe, EnumLimits::default())
                .ok_or(EvalError::NoUniverse)?;
            let out: BTreeSet<Value> = all.into_iter().filter(|v| !s.contains(v)).collect();
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::TuplePair(a, b) => {
            let va = eval_with_stats(a, db, stats)?;
            let vb = eval_with_stats(b, db, stats)?;
            Ok(Value::tuple([va, vb]))
        }
        Query::Nest(keys, q) => {
            let s = eval_set(q, db, stats)?;
            sp.field("rows_in", s.len() as u64);
            let mut groups: BTreeMap<Vec<Value>, BTreeSet<Value>> = BTreeMap::new();
            for t in &s {
                stats.tuples_scanned += 1;
                let tup = t.as_tuple().ok_or_else(|| shape("ν", t))?;
                let mut key = Vec::with_capacity(keys.len());
                for &k in keys {
                    key.push(tup.get(k).ok_or(EvalError::BadColumn(k))?.clone());
                }
                let rest: Vec<Value> = tup
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !keys.contains(i))
                    .map(|(_, v)| v.clone())
                    .collect();
                groups.entry(key).or_default().insert(Value::Tuple(rest));
            }
            let mut out = BTreeSet::new();
            for (key, nested) in groups {
                let mut row = key;
                row.push(Value::Set(nested));
                out.insert(Value::Tuple(row));
            }
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::Unnest(col, q) => {
            let s = eval_set(q, db, stats)?;
            sp.field("rows_in", s.len() as u64);
            let mut out = BTreeSet::new();
            for t in &s {
                stats.tuples_scanned += 1;
                let tup = t.as_tuple().ok_or_else(|| shape("μ (unnest)", t))?;
                let inner = tup
                    .get(*col)
                    .ok_or(EvalError::BadColumn(*col))?
                    .as_set()
                    .ok_or_else(|| shape("μ (unnest)", t))?;
                for elem in inner {
                    let spliced: Vec<Value> = match elem.as_tuple() {
                        Some(parts) => tup
                            .iter()
                            .enumerate()
                            .flat_map(|(i, v)| {
                                if i == *col {
                                    parts.to_vec()
                                } else {
                                    vec![v.clone()]
                                }
                            })
                            .collect(),
                        None => tup
                            .iter()
                            .enumerate()
                            .map(|(i, v)| if i == *col { elem.clone() } else { v.clone() })
                            .collect(),
                    };
                    out.insert(Value::Tuple(spliced));
                }
            }
            stats.tuples_emitted += out.len() as u64;
            Ok(Value::Set(out))
        }
        Query::Count(q) => {
            let s = eval_set(q, db, stats)?;
            sp.field("rows_in", s.len() as u64);
            stats.tuples_scanned += s.len() as u64;
            Ok(Value::Int(s.len() as i64))
        }
        Query::Sum(col, q) => {
            let s = eval_set(q, db, stats)?;
            sp.field("rows_in", s.len() as u64);
            let mut total: i64 = 0;
            for t in &s {
                stats.tuples_scanned += 1;
                total = total.wrapping_add(sum_component(t, *col)?);
            }
            Ok(Value::Int(total))
        }
        Query::Fixpoint { var, init, step } => {
            let seed = eval_with_stats(init, db, stats)?;
            // each round binds the accumulator to the loop variable by
            // literal substitution, then evaluates the body as usual
            crate::fixpoint::inflationary_fixpoint(
                &seed,
                |x| {
                    let bound = step.substitute_rel(var, x);
                    eval_with_stats(&bound, db, stats)
                },
                crate::fixpoint::DEFAULT_FIXPOINT_ITERS,
            )
        }
    }
}

/// The integer contribution of one set element to `sum[$col]`: column
/// `col` of a tuple element, or the element itself when it is a bare
/// integer addressed as column 0. Shared with the parallel combiner
/// kernel so the two routes agree on semantics (and on error cases).
pub fn sum_component(t: &Value, col: usize) -> Result<i64, EvalError> {
    let v = match t.as_tuple() {
        Some(tup) => tup.get(col).ok_or(EvalError::BadColumn(col))?,
        None if col == 0 => t,
        None => return Err(shape("sum", t)),
    };
    v.as_int().ok_or_else(|| shape("sum", v))
}

fn shape(op: &'static str, v: &Value) -> EvalError {
    EvalError::Shape {
        op,
        found: v.to_string(),
    }
}

fn eval_set(q: &Query, db: &Db, stats: &mut EvalStats) -> Result<BTreeSet<Value>, EvalError> {
    match eval_with_stats(q, db, stats)? {
        Value::Set(s) => Ok(s),
        other => Err(shape("set operator", &other)),
    }
}

fn project_tuple(t: &Value, cols: &[usize]) -> Result<Value, EvalError> {
    let tup = t.as_tuple().ok_or_else(|| shape("π", t))?;
    let mut out = Vec::with_capacity(cols.len());
    for &c in cols {
        out.push(tup.get(c).ok_or(EvalError::BadColumn(c))?.clone());
    }
    Ok(Value::Tuple(out))
}

fn concat_tuples(a: &Value, b: &Value) -> Result<Value, EvalError> {
    let x = a.as_tuple().ok_or_else(|| shape("×", a))?;
    let y = b.as_tuple().ok_or_else(|| shape("×", b))?;
    Ok(Value::Tuple(x.iter().chain(y).cloned().collect()))
}

/// One set through `σ_p`, on the compiled-program path when the VM is
/// engaged (kill switch on, `vm.exec` fault site clean) and `p` is
/// eligible, otherwise the AST walker. The two paths are
/// observationally identical — verdicts, errors and the per-tuple stat
/// counts all match — which is exactly the parametricity fact the
/// differential oracle pins.
fn select_set(
    p: &Pred,
    s: BTreeSet<Value>,
    db: &Db,
    stats: &mut EvalStats,
) -> Result<BTreeSet<Value>, EvalError> {
    let mut out = BTreeSet::new();
    let prog = if crate::vm::engage() {
        crate::vm::compile_pred(p).ok()
    } else {
        None
    };
    if let Some(prog) = prog {
        let mut vm = crate::vm::Vm::new();
        for t in s {
            stats.tuples_scanned += 1;
            stats.fn_applications += 1;
            if vm.run_pred(&prog, &t, db)? {
                out.insert(t);
            }
        }
    } else {
        for t in s {
            stats.tuples_scanned += 1;
            stats.fn_applications += 1;
            if eval_pred(p, &t, db)? {
                out.insert(t);
            }
        }
    }
    Ok(out)
}

/// One set through `map(f)` — same engage-or-walk split as
/// [`select_set`]. Ineligible functions (opaque closures, over-deep
/// programs) silently keep the walker here; `explain` is where the
/// refusal reason is surfaced.
fn map_set(
    f: &ValueFn,
    s: &BTreeSet<Value>,
    db: &Db,
    stats: &mut EvalStats,
) -> Result<BTreeSet<Value>, EvalError> {
    let mut out = BTreeSet::new();
    let prog = if crate::vm::engage() {
        crate::vm::compile_fn(f).ok()
    } else {
        None
    };
    if let Some(prog) = prog {
        let mut vm = crate::vm::Vm::new();
        for t in s {
            stats.tuples_scanned += 1;
            stats.fn_applications += 1;
            out.insert(vm.run_fn(&prog, t, db)?);
        }
    } else {
        for t in s {
            stats.tuples_scanned += 1;
            stats.fn_applications += 1;
            out.insert(apply_fn(f, t, db)?);
        }
    }
    Ok(out)
}

/// Evaluate a predicate on a tuple.
pub fn eval_pred(p: &Pred, t: &Value, db: &Db) -> Result<bool, EvalError> {
    match p {
        Pred::True => Ok(true),
        Pred::EqCols(i, j) => {
            let tup = t.as_tuple().ok_or_else(|| shape("σ", t))?;
            let a = tup.get(*i).ok_or(EvalError::BadColumn(*i))?;
            let b = tup.get(*j).ok_or(EvalError::BadColumn(*j))?;
            Ok(a == b)
        }
        Pred::EqConst(i, c) => {
            let tup = t.as_tuple().ok_or_else(|| shape("σ", t))?;
            Ok(tup.get(*i).ok_or(EvalError::BadColumn(*i))? == c)
        }
        Pred::Named(name, cols) => {
            let pred = db
                .signature()
                .predicate(name)
                .ok_or_else(|| EvalError::UnknownSymbol(name.clone()))?;
            let tup = t.as_tuple().ok_or_else(|| shape("σ", t))?;
            let mut args = Vec::with_capacity(cols.len());
            for &c in cols {
                args.push(tup.get(c).ok_or(EvalError::BadColumn(c))?.clone());
            }
            Ok((pred.eval)(&args))
        }
        Pred::And(a, b) => Ok(eval_pred(a, t, db)? && eval_pred(b, t, db)?),
        Pred::Or(a, b) => Ok(eval_pred(a, t, db)? || eval_pred(b, t, db)?),
        Pred::Not(a) => Ok(!eval_pred(a, t, db)?),
    }
}

/// Apply a [`ValueFn`] to a value.
pub fn apply_fn(f: &ValueFn, v: &Value, db: &Db) -> Result<Value, EvalError> {
    match f {
        ValueFn::Identity => Ok(v.clone()),
        ValueFn::Proj(i) => v.project(*i).cloned().ok_or_else(|| shape("π (fn)", v)),
        ValueFn::Cols(cols) => project_tuple(v, cols),
        ValueFn::Const(c) => Ok(c.clone()),
        ValueFn::Compose(a, b) => {
            let mid = apply_fn(a, v, db)?;
            apply_fn(b, &mid, db)
        }
        ValueFn::Interp(name) => {
            let func = db
                .signature()
                .function(name)
                .ok_or_else(|| EvalError::UnknownSymbol(name.clone()))?;
            let args: Vec<Value> = match v.as_tuple() {
                Some(t) if func.args.len() != 1 => t.to_vec(),
                _ => vec![v.clone()],
            };
            Ok((func.eval)(&args))
        }
        ValueFn::Pair(a, b) => Ok(Value::tuple([apply_fn(a, v, db)?, apply_fn(b, v, db)?])),
        ValueFn::Custom(g) => Ok(g(v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpar_value::parse::parse_value;

    fn db_r(s: &str) -> Db {
        Db::new().with("R", parse_value(s).unwrap())
    }

    fn run(q: &Query, db: &Db) -> Value {
        eval(q, db).unwrap()
    }

    #[test]
    fn rel_and_lit_and_empty() {
        let db = db_r("{(a, b)}");
        assert_eq!(run(&Query::rel("R"), &db), parse_value("{(a, b)}").unwrap());
        assert_eq!(run(&Query::Lit(Value::Int(3)), &db), Value::Int(3));
        assert_eq!(run(&Query::Empty, &db), Value::empty_set());
        assert_eq!(
            eval(&Query::rel("S"), &db),
            Err(EvalError::UnknownRelation("S".into()))
        );
    }

    #[test]
    fn example_2_2_q1_composition() {
        // Q1 = π$1,$3(R ⋈ R) on r1 returns {(e,g),(i,g)}
        let db = db_r("{(e, f), (i, f), (e, j), (i, j), (f, g), (j, g)}");
        let q1 = Query::rel("R")
            .join_on(Query::rel("R"), [(1, 0)])
            .project([0, 3]);
        assert_eq!(run(&q1, &db), parse_value("{(e, g), (i, g)}").unwrap());
    }

    #[test]
    fn example_2_2_q1_on_r2() {
        let db = db_r("{(a, b), (b, c)}");
        let q1 = Query::rel("R")
            .join_on(Query::rel("R"), [(1, 0)])
            .project([0, 3]);
        assert_eq!(run(&q1, &db), parse_value("{(a, c)}").unwrap());
    }

    #[test]
    fn example_2_2_q1_on_r3_is_empty() {
        let db = db_r("{(e, j), (i, j), (f, g)}");
        let q1 = Query::rel("R")
            .join_on(Query::rel("R"), [(1, 0)])
            .project([0, 3]);
        assert_eq!(run(&q1, &db), Value::empty_set());
    }

    #[test]
    fn product_concatenates() {
        let db = db_r("{(a), (b)}");
        let q2 = Query::rel("R").product(Query::rel("R"));
        let got = run(&q2, &db);
        assert_eq!(got, parse_value("{(a,a),(a,b),(b,a),(b,b)}").unwrap());
    }

    #[test]
    fn select_eq_cols_q4() {
        let db = db_r("{(a, a), (a, b)}");
        let q4 = Query::rel("R").select(Pred::eq_cols(0, 1));
        assert_eq!(run(&q4, &db), parse_value("{(a, a)}").unwrap());
    }

    #[test]
    fn select_eq_const_q5() {
        let db = Db::new().with("R", parse_value("{(7), (8)}").unwrap());
        let q5 = Query::rel("R").select(Pred::eq_const(0, Value::Int(7)));
        assert_eq!(run(&q5, &db), parse_value("{(7)}").unwrap());
    }

    #[test]
    fn select_named_predicate() {
        let db = Db::with_standard_int().with("R", parse_value("{(1), (2), (3), (4)}").unwrap());
        let q = Query::rel("R").select(Pred::Named("even".into(), vec![0]));
        assert_eq!(run(&q, &db), parse_value("{(2), (4)}").unwrap());
        let bad = Query::rel("R").select(Pred::Named("nope".into(), vec![0]));
        assert_eq!(
            eval(&bad, &db),
            Err(EvalError::UnknownSymbol("nope".into()))
        );
    }

    #[test]
    fn select_hat_projects_out_equal_column() {
        // σ̂_{1=2} on {(a,a,b), (a,b,c)} → {(a,b)}
        let db = db_r("{(a, a, b), (a, b, c)}");
        let q = Query::rel("R").select_hat(0, 1);
        assert_eq!(run(&q, &db), parse_value("{(a, b)}").unwrap());
    }

    #[test]
    fn set_operations() {
        let db = Db::new()
            .with("R", parse_value("{(a), (b)}").unwrap())
            .with("S", parse_value("{(b), (c)}").unwrap());
        assert_eq!(
            run(&Query::rel("R").union(Query::rel("S")), &db),
            parse_value("{(a), (b), (c)}").unwrap()
        );
        assert_eq!(
            run(&Query::rel("R").intersect(Query::rel("S")), &db),
            parse_value("{(b)}").unwrap()
        );
        assert_eq!(
            run(&Query::rel("R").difference(Query::rel("S")), &db),
            parse_value("{(a)}").unwrap()
        );
    }

    #[test]
    fn join_multi_key() {
        let db = Db::new()
            .with("R", parse_value("{(a, b), (a, c)}").unwrap())
            .with("S", parse_value("{(a, b), (c, c)}").unwrap());
        let q = Query::rel("R").join_on(Query::rel("S"), [(0, 0), (1, 1)]);
        assert_eq!(run(&q, &db), parse_value("{(a, b, a, b)}").unwrap());
    }

    #[test]
    fn join_with_no_keys_is_product() {
        let db = db_r("{(a), (b)}");
        let q = Query::rel("R").join_on(Query::rel("R"), []);
        assert_eq!(run(&q, &db).len(), 4);
    }

    #[test]
    fn map_applies_fn() {
        let db = db_r("{(a, b), (b, c)}");
        let q = Query::rel("R").map(ValueFn::Proj(0));
        assert_eq!(run(&q, &db), parse_value("{a, b}").unwrap());
        let q2 = Query::rel("R").map(ValueFn::Cols(vec![1, 0]));
        assert_eq!(run(&q2, &db), parse_value("{(b, a), (c, b)}").unwrap());
    }

    #[test]
    fn map_with_interp_fn() {
        let db = Db::with_standard_int().with("R", parse_value("{1, 2}").unwrap());
        let q = Query::rel("R").map(ValueFn::Interp("succ".into()));
        assert_eq!(run(&q, &db), parse_value("{2, 3}").unwrap());
    }

    #[test]
    fn insert_and_singleton_and_flatten() {
        let db = db_r("{a}");
        assert_eq!(
            run(
                &Query::Insert(Value::atom(0, 1), Box::new(Query::rel("R"))),
                &db
            ),
            parse_value("{a, b}").unwrap()
        );
        assert_eq!(
            run(&Query::Singleton(Box::new(Query::rel("R"))), &db),
            parse_value("{{a}}").unwrap()
        );
        let db2 = db_r("{{a}, {b, c}}");
        assert_eq!(
            run(&Query::Flatten(Box::new(Query::rel("R"))), &db2),
            parse_value("{a, b, c}").unwrap()
        );
    }

    #[test]
    fn powerset_small() {
        let db = db_r("{a, b}");
        let q = Query::Powerset(Box::new(Query::rel("R")));
        assert_eq!(run(&q, &db).len(), 4);
    }

    #[test]
    fn powerset_guards_size() {
        // 30 elements: 2³⁰ subsets — must fail fast with a structured
        // budget error carrying partial stats, not a Shape error or OOM
        let big = Value::set((0..30).map(|i| Value::atom(0, i)));
        let db = Db::new().with("R", big);
        match eval(&Query::Powerset(Box::new(Query::rel("R"))), &db) {
            Err(EvalError::BudgetExceeded {
                resource,
                limit,
                used,
                op,
                ..
            }) => {
                assert_eq!(resource, genpar_guard::Resource::Powerset);
                assert_eq!(limit, 20);
                assert_eq!(used, 30);
                assert_eq!(op, "℘");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn powerset_cap_is_budget_configurable() {
        let big = Value::set((0..25).map(|i| Value::atom(0, i)));
        let db = Db::new().with("R", big);
        let q = Query::Powerset(Box::new(Query::rel("R")));
        // raising the cap (and the row/cell caps ℘'s output needs)
        // allows the 2²⁵-subset expansion to be *attempted*; a tighter
        // cap rejects a small set
        {
            let _scope = genpar_guard::ExecBudget::default()
                .with_max_powerset(4)
                .enter();
            let err = eval(&Query::Powerset(Box::new(Query::rel("R"))), &db).unwrap_err();
            assert!(err.is_budget(), "{err}");
            let small = Db::new().with("R", Value::set((0..3).map(|i| Value::atom(0, i))));
            assert_eq!(eval(&q, &small).unwrap().len(), 8);
            let five = Db::new().with("R", Value::set((0..5).map(|i| Value::atom(0, i))));
            assert!(eval(&q, &five).unwrap_err().is_budget());
        }
    }

    #[test]
    fn eq_adom_builds_identity_relation() {
        let db = db_r("{(a, b)}");
        let q = Query::EqAdom(Box::new(Query::rel("R")));
        assert_eq!(run(&q, &db), parse_value("{(a, a), (b, b)}").unwrap());
    }

    #[test]
    fn adom_and_even_and_nest_parity() {
        let db = db_r("{(a, b), (b, c)}");
        assert_eq!(
            run(&Query::Adom(Box::new(Query::rel("R"))), &db),
            parse_value("{a, b, c}").unwrap()
        );
        assert_eq!(
            run(&Query::Even(Box::new(Query::rel("R"))), &db),
            Value::Bool(true)
        );
        let db2 = db_r("{(a, b), (b, c), (a, c)}");
        assert_eq!(
            run(&Query::Even(Box::new(Query::rel("R"))), &db2),
            Value::Bool(false)
        );
        // np: {(a,b)} has nesting depth 1 → odd
        assert_eq!(
            run(&Query::NestParity(Box::new(Query::rel("R"))), &db),
            Value::Bool(false)
        );
        let db3 = db_r("{{a}}");
        assert_eq!(
            run(&Query::NestParity(Box::new(Query::rel("R"))), &db3),
            Value::Bool(true)
        );
    }

    #[test]
    fn complement_needs_universe() {
        let db = db_r("{a}");
        assert_eq!(
            eval(&Query::Complement(Box::new(Query::rel("R"))), &db),
            Err(EvalError::NoUniverse)
        );
        let db = db_r("{a}").with_universe(Universe::atoms_only(3), CvType::set(CvType::domain(0)));
        assert_eq!(
            run(&Query::Complement(Box::new(Query::rel("R"))), &db),
            parse_value("{b, c}").unwrap()
        );
    }

    #[test]
    fn stats_count_work() {
        let db = db_r("{(a, b), (b, c), (c, d)}");
        let mut stats = EvalStats::default();
        let q = Query::rel("R").select(Pred::True).project([0]);
        eval_with_stats(&q, &db, &mut stats).unwrap();
        assert_eq!(stats.tuples_scanned, 6); // 3 select + 3 project
        assert_eq!(stats.fn_applications, 3);
        assert!(stats.tuples_emitted >= 6);
    }

    #[test]
    fn shape_errors_are_reported() {
        let db = Db::new().with("R", Value::Int(3));
        assert!(matches!(
            eval(&Query::rel("R").project([0]), &db),
            Err(EvalError::Shape { .. })
        ));
        let db2 = db_r("{a}");
        assert!(matches!(
            eval(&Query::rel("R").project([2]), &db2),
            Err(EvalError::Shape { .. }) | Err(EvalError::BadColumn(_))
        ));
    }

    #[test]
    fn count_and_sum_aggregate() {
        let db = db_r("{(1, 10), (2, 20), (3, 30)}");
        assert_eq!(run(&Query::rel("R").count(), &db), Value::Int(3));
        assert_eq!(run(&Query::rel("R").sum(1), &db), Value::Int(60));
        assert_eq!(run(&Query::Empty.count(), &db), Value::Int(0));
        assert_eq!(run(&Query::Empty.sum(0), &db), Value::Int(0));
        // bare-int elements sum as column 0
        let db2 = db_r("{1, 2, 3}");
        assert_eq!(run(&Query::rel("R").sum(0), &db2), Value::Int(6));
        // non-int column is a shape error
        let db3 = db_r("{(a, b)}");
        assert!(matches!(
            eval(&Query::rel("R").sum(0), &db3),
            Err(EvalError::Shape { .. })
        ));
        assert!(matches!(
            eval(&Query::rel("R").sum(7), &db3),
            Err(EvalError::BadColumn(7))
        ));
    }

    #[test]
    fn fixpoint_query_computes_transitive_closure() {
        // fix[X](E, π$1,$4(X ⋈ E)) = TC of edge relation E
        let db = Db::new().with("E", parse_value("{(a, b), (b, c), (c, d)}").unwrap());
        let q = Query::fixpoint(
            "X",
            Query::rel("E"),
            Query::rel("X")
                .join_on(Query::rel("E"), [(1, 0)])
                .project([0, 3]),
        );
        assert_eq!(
            run(&q, &db),
            parse_value("{(a, b), (b, c), (c, d), (a, c), (b, d), (a, d)}").unwrap()
        );
    }

    #[test]
    fn fixpoint_loop_variable_shadows_database_relation() {
        // a DB relation named X must not leak into the loop body
        let db = Db::new()
            .with("E", parse_value("{(a, b)}").unwrap())
            .with("X", parse_value("{(z, z)}").unwrap());
        let q = Query::fixpoint(
            "X",
            Query::rel("E"),
            Query::rel("X")
                .join_on(Query::rel("E"), [(1, 0)])
                .project([0, 3]),
        );
        assert_eq!(run(&q, &db), parse_value("{(a, b)}").unwrap());
    }

    #[test]
    fn fixpoint_respects_armed_depth_budget() {
        let db = Db::with_standard_int().with("R", parse_value("{1}").unwrap());
        // map(succ) grows forever: the armed depth cap must cut it short
        let q = Query::fixpoint(
            "X",
            Query::rel("R"),
            Query::rel("X").map(ValueFn::Interp("succ".into())),
        );
        let _scope = genpar_guard::ExecBudget::unlimited()
            .with_max_depth(5)
            .enter();
        let err = eval(&q, &db).unwrap_err();
        assert!(err.is_budget(), "{err}");
    }

    #[test]
    fn tuple_pair_builds_database_tuples() {
        let db = Db::new()
            .with("R", parse_value("{a}").unwrap())
            .with("S", parse_value("{b}").unwrap());
        let q = Query::TuplePair(Box::new(Query::rel("R")), Box::new(Query::rel("S")));
        assert_eq!(run(&q, &db), parse_value("({a}, {b})").unwrap());
    }
}

#[cfg(test)]
mod nest_tests {
    use super::*;
    use crate::expr::Query;
    use genpar_value::parse::parse_value;

    fn db_r(s: &str) -> Db {
        Db::new().with("R", parse_value(s).unwrap())
    }

    #[test]
    fn nest_groups_by_keys() {
        // R = {(a,1),(a,2),(b,1)} ν[$1] → {(a,{(1),(2)}), (b,{(1)})}
        let db = db_r("{(a, 1), (a, 2), (b, 1)}");
        let q = Query::rel("R").nest([0]);
        let got = eval(&q, &db).unwrap();
        assert_eq!(got, parse_value("{(a, {(1), (2)}), (b, {(1)})}").unwrap());
    }

    #[test]
    fn nest_on_all_columns_gives_unit_groups() {
        let db = db_r("{(a, 1)}");
        let q = Query::rel("R").nest([0, 1]);
        let got = eval(&q, &db).unwrap();
        assert_eq!(got, parse_value("{(a, 1, {()})}").unwrap());
    }

    #[test]
    fn unnest_inverts_nest() {
        let db = db_r("{(a, 1), (a, 2), (b, 1)}");
        let q = Query::rel("R").nest([0]).unnest(1);
        let got = eval(&q, &db).unwrap();
        assert_eq!(got, parse_value("{(a, 1), (a, 2), (b, 1)}").unwrap());
    }

    #[test]
    fn unnest_drops_empty_groups() {
        // a tuple with an empty nested set contributes nothing
        let db = db_r("{(a, {}), (b, {(1)})}");
        let q = Query::rel("R").unnest(1);
        let got = eval(&q, &db).unwrap();
        assert_eq!(got, parse_value("{(b, 1)}").unwrap());
    }

    #[test]
    fn unnest_of_non_tuple_elements_substitutes() {
        let db = db_r("{(a, {x, y})}");
        let q = Query::rel("R").unnest(1);
        let got = eval(&q, &db).unwrap();
        assert_eq!(got, parse_value("{(a, x), (a, y)}").unwrap());
    }

    #[test]
    fn nest_errors_on_bad_column() {
        let db = db_r("{(a)}");
        assert!(matches!(
            eval(&Query::rel("R").nest([4]), &db),
            Err(EvalError::BadColumn(4))
        ));
        assert!(matches!(
            eval(&Query::rel("R").unnest(0), &db),
            Err(EvalError::Shape { .. })
        ));
    }

    #[test]
    fn nest_displays() {
        let q = Query::rel("R").nest([0]).unnest(1);
        assert_eq!(q.to_string(), "μ[$2](ν[$1](R))");
    }
}
