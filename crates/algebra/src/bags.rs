//! Bag (multiset) operations.
//!
//! The extended abstract defers bags to the full paper ("in the full
//! paper we present definitions and results for bags"); `genpar-mapping`
//! already extends mappings to bags by perfect matching, and this module
//! supplies the operations whose genericity the framework can then
//! classify:
//!
//! * additive union `⊎` (multiplicities add) — fully generic, like `∪`;
//! * monus `∸` (multiplicity subtraction) — needs equality, like `−`;
//! * `bag_map` — closure, like `map`;
//! * duplicate elimination `δ : ⟅τ⟆ → {τ}` and its section
//!   `set_to_bag` — the bridges between the bag and set worlds
//!   (δ is the bag analogue of `toset`).

use crate::eval::EvalError;
use genpar_value::Value;
use std::collections::BTreeMap;

fn as_bag<'a>(v: &'a Value, op: &'static str) -> Result<&'a BTreeMap<Value, usize>, EvalError> {
    v.as_bag().ok_or_else(|| EvalError::Shape {
        op,
        found: v.to_string(),
    })
}

/// Additive bag union: multiplicities add.
pub fn bag_union(a: &Value, b: &Value) -> Result<Value, EvalError> {
    let (x, y) = (as_bag(a, "⊎")?, as_bag(b, "⊎")?);
    let mut out = x.clone();
    for (v, n) in y {
        *out.entry(v.clone()).or_insert(0) += n;
    }
    Ok(Value::Bag(out))
}

/// Bag monus: multiplicities subtract, floored at zero.
pub fn bag_monus(a: &Value, b: &Value) -> Result<Value, EvalError> {
    let (x, y) = (as_bag(a, "∸")?, as_bag(b, "∸")?);
    let mut out = BTreeMap::new();
    for (v, n) in x {
        let m = y.get(v).copied().unwrap_or(0);
        if *n > m {
            out.insert(v.clone(), n - m);
        }
    }
    Ok(Value::Bag(out))
}

/// Intersection with minimum multiplicities.
pub fn bag_min_intersect(a: &Value, b: &Value) -> Result<Value, EvalError> {
    let (x, y) = (as_bag(a, "∩⟅⟆")?, as_bag(b, "∩⟅⟆")?);
    let mut out = BTreeMap::new();
    for (v, n) in x {
        if let Some(m) = y.get(v) {
            out.insert(v.clone(), *n.min(m));
        }
    }
    Ok(Value::Bag(out))
}

/// Map a function over a bag; images accumulate multiplicity (a
/// non-injective `f` merges entries *additively*, unlike the set `map`).
pub fn bag_map(f: &dyn Fn(&Value) -> Value, a: &Value) -> Result<Value, EvalError> {
    let x = as_bag(a, "map⟅⟆")?;
    let mut out: BTreeMap<Value, usize> = BTreeMap::new();
    for (v, n) in x {
        *out.entry(f(v)).or_insert(0) += n;
    }
    Ok(Value::Bag(out))
}

/// Duplicate elimination `δ : ⟅τ⟆ → {τ}`.
pub fn dup_elim(a: &Value) -> Result<Value, EvalError> {
    let x = as_bag(a, "δ")?;
    Ok(Value::set(x.keys().cloned()))
}

/// The canonical section of δ: each element with multiplicity 1.
pub fn set_to_bag(a: &Value) -> Result<Value, EvalError> {
    let s = a.as_set().ok_or_else(|| EvalError::Shape {
        op: "set→bag",
        found: a.to_string(),
    })?;
    Ok(Value::bag(s.iter().cloned()))
}

/// Total multiplicity.
pub fn bag_count(a: &Value) -> Result<i64, EvalError> {
    Ok(as_bag(a, "count⟅⟆")?.values().map(|&n| n as i64).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpar_value::parse::parse_value;

    fn b(s: &str) -> Value {
        parse_value(s).unwrap()
    }

    #[test]
    fn additive_union() {
        let u = bag_union(&b("{|1, 1, 2|}"), &b("{|1, 3|}")).unwrap();
        assert_eq!(u, b("{|1, 1, 1, 2, 3|}"));
        assert_eq!(bag_union(&b("{| |}"), &b("{| |}")).unwrap(), b("{| |}"));
    }

    #[test]
    fn monus_floors_at_zero() {
        let m = bag_monus(&b("{|1, 1, 2|}"), &b("{|1, 2, 2|}")).unwrap();
        assert_eq!(m, b("{|1|}"));
        let all = bag_monus(&b("{|1|}"), &b("{|1, 1|}")).unwrap();
        assert_eq!(all, b("{| |}"));
    }

    #[test]
    fn min_intersection() {
        let i = bag_min_intersect(&b("{|1, 1, 2|}"), &b("{|1, 3|}")).unwrap();
        assert_eq!(i, b("{|1|}"));
    }

    #[test]
    fn bag_map_accumulates() {
        // collapse everything to 0: multiplicities add
        let m = bag_map(&|_| Value::Int(0), &b("{|1, 2, 3|}")).unwrap();
        assert_eq!(m, b("{|0, 0, 0|}"));
        // vs set map, which would collapse to a single element
        let s = dup_elim(&m).unwrap();
        assert_eq!(s, b("{0}"));
    }

    #[test]
    fn dup_elim_and_section() {
        let d = dup_elim(&b("{|1, 1, 2|}")).unwrap();
        assert_eq!(d, b("{1, 2}"));
        // δ ∘ set_to_bag = id on sets
        let s = b("{1, 2, 3}");
        assert_eq!(dup_elim(&set_to_bag(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn counts() {
        assert_eq!(bag_count(&b("{|1, 1, 2|}")).unwrap(), 3);
        assert_eq!(bag_count(&b("{| |}")).unwrap(), 0);
    }

    #[test]
    fn shape_errors() {
        assert!(bag_union(&Value::Int(1), &b("{| |}")).is_err());
        assert!(dup_elim(&b("{1}")).is_err());
        assert!(set_to_bag(&b("{|1|}")).is_err());
    }

    #[test]
    fn union_monus_interplay() {
        // (a ⊎ b) ∸ b = a  (bags, unlike sets, support cancellation)
        let a = b("{|1, 1, 2|}");
        let c = b("{|1, 2, 3|}");
        let u = bag_union(&a, &c).unwrap();
        assert_eq!(bag_monus(&u, &c).unwrap(), a);
    }
}
