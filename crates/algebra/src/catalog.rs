//! The paper's named queries, as reusable constructors.
//!
//! | name | paper | definition |
//! |------|-------|------------|
//! | `q1` | Ex. 2.2 | `π_{$1,$3}(R ⋈ R)` — relation composition `R ∘ R` |
//! | `q2` | Ex. 2.2 | `R × R` |
//! | `q3` | §2.3   | `π_{$1}(R)` |
//! | `q4` | §2.3   | `σ_{$1=$2}(R)` |
//! | `q5` | §2.4   | `σ_{$1=7}(R)` |
//! | `q4_hat` | §3.2 | `σ̂_{$1=$2}(R)` (Chandra's projecting selection) |
//! | `eq_adom` | Prop 3.5 | equality over the active domain |
//! | `even` | Lemma 2.12 | cardinality parity |
//! | `np` | Prop 4.16 | nest parity |
//! | `complement` | §3.3 | `{t : ¬R(t)}` |

use crate::expr::{Pred, Query};
use genpar_value::Value;

/// `Q₁ = π_{$1,$3}(R ⋈_{$2=$1} R)`, i.e. `R ∘ R` (Example 2.2).
pub fn q1() -> Query {
    Query::rel("R")
        .join_on(Query::rel("R"), [(1, 0)])
        .project([0, 3])
}

/// `Q₂ = R × R` (Example 2.2) — "invariant under all mappings".
pub fn q2() -> Query {
    Query::rel("R").product(Query::rel("R"))
}

/// `Q₃ = π_{$1}(R)` (Section 2.3) — fully generic in both modes.
pub fn q3() -> Query {
    Query::rel("R").project([0])
}

/// `Q₄ = σ_{$1=$2}(R)` (Section 2.3) — not rel-generic w.r.t. all
/// mappings, rel-generic w.r.t. injective ones.
pub fn q4() -> Query {
    Query::rel("R").select(Pred::eq_cols(0, 1))
}

/// `σ̂_{$1=$2}(R)` (Section 3.2) — strong-fully generic, unlike `Q₄`.
pub fn q4_hat() -> Query {
    Query::rel("R").select_hat(0, 1)
}

/// `Q₅ = σ_{$1=7}(R)` (Section 2.4) — generic only w.r.t. mappings that
/// strictly preserve `7` (more precisely: preserve the predicate `=₇`).
pub fn q5() -> Query {
    Query::rel("R").select(Pred::eq_const(0, Value::Int(7)))
}

/// `eq_adom` (Proposition 3.5): the equality relation over the active
/// domain — rel-fully generic but *not* strong-fully generic.
pub fn eq_adom() -> Query {
    Query::EqAdom(Box::new(Query::rel("R")))
}

/// `even` (Lemma 2.12): cardinality parity of `R` — not strictly
/// C-generic for any finite C over an infinite domain.
pub fn even() -> Query {
    Query::Even(Box::new(Query::rel("R")))
}

/// Nest-parity `np` (Proposition 4.16): fully generic but not parametric.
pub fn np() -> Query {
    Query::NestParity(Box::new(Query::rel("R")))
}

/// Complement `{t | ¬R(t)}` (Section 3.3): generic only once mappings are
/// restricted to total and surjective ones.
pub fn complement() -> Query {
    Query::Complement(Box::new(Query::rel("R")))
}

/// All catalog queries with their paper names, for audits and examples.
pub fn all_named() -> Vec<(&'static str, Query)> {
    vec![
        ("Q1 = π13(R ⋈ R)", q1()),
        ("Q2 = R × R", q2()),
        ("Q3 = π1(R)", q3()),
        ("Q4 = σ(1=2)(R)", q4()),
        ("Q4^ = σ̂(1=2)(R)", q4_hat()),
        ("Q5 = σ(1=7)(R)", q5()),
        ("eq_adom", eq_adom()),
        ("even", even()),
        ("np", np()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Db};
    use genpar_value::parse::parse_value;

    #[test]
    fn catalog_queries_run_on_r1() {
        let db = Db::new().with(
            "R",
            parse_value("{(e, f), (i, f), (e, j), (i, j), (f, g), (j, g)}").unwrap(),
        );
        for (name, q) in all_named() {
            if name.starts_with("Q5") {
                continue; // Q5 compares against an int; atoms are fine too (no match)
            }
            eval(&q, &db).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn q1_matches_paper() {
        let db = Db::new().with(
            "R",
            parse_value("{(e, f), (i, f), (e, j), (i, j), (f, g), (j, g)}").unwrap(),
        );
        assert_eq!(
            eval(&q1(), &db).unwrap(),
            parse_value("{(e, g), (i, g)}").unwrap()
        );
    }

    #[test]
    fn q4_vs_q4_hat() {
        let db = Db::new().with("R", parse_value("{(a, a), (a, b)}").unwrap());
        assert_eq!(eval(&q4(), &db).unwrap(), parse_value("{(a, a)}").unwrap());
        assert_eq!(eval(&q4_hat(), &db).unwrap(), parse_value("{(a)}").unwrap());
    }

    #[test]
    fn q5_selects_sevens() {
        let db = Db::new().with("R", parse_value("{(7), (9)}").unwrap());
        assert_eq!(eval(&q5(), &db).unwrap(), parse_value("{(7)}").unwrap());
    }
}
