//! Fixpoint and while operations.
//!
//! Section 3.2 closes with "in the full paper we present results about
//! *fixpoint* and *while* operations"; this module provides the
//! operations so the genericity framework can classify them:
//!
//! * [`inflationary_fixpoint`] — iterate `X ← X ∪ step(X)` to a fixpoint
//!   (inflationary, so guaranteed to terminate over a finite domain);
//! * [`while_loop`] — the (non-inflationary) while of \[9\]: iterate
//!   `X ← body(X)` while `cond(X)` holds, with a step bound since
//!   termination is not guaranteed;
//! * [`transitive_closure`] — the canonical fixpoint query, implemented
//!   via relation composition (`π₁,₄ ∘ σ̂₂₌₃ ∘ ×`, an equality-in-query-
//!   only pipeline — which is *why* TC turns out strong-fully generic but
//!   not rel-fully generic, exactly like `Q₁`).

use crate::eval::{EvalError, EvalStats};
use genpar_value::Value;
use std::collections::BTreeSet;

/// Round cap for [`crate::Query::Fixpoint`] evaluation: even with no
/// budget armed, a divergent body (e.g. one mapping `succ` over the
/// accumulator) must terminate with a depth error rather than spin.
pub const DEFAULT_FIXPOINT_ITERS: usize = 100_000;

/// The effective iteration bound: the caller's `max_iters` clamped by
/// any active [`genpar_guard::ExecBudget`]'s recursion-depth budget.
fn effective_bound(max_iters: usize) -> u64 {
    (max_iters as u64).min(genpar_guard::depth_limit())
}

fn depth_exhausted(op: &'static str, iters: u64) -> EvalError {
    EvalError::BudgetExceeded {
        resource: genpar_guard::Resource::Depth,
        limit: effective_bound(iters as usize),
        used: iters,
        op,
        partial: EvalStats::default(),
    }
}

/// Iterate `x ← x ∪ step(x)` until nothing new is added. Both `x` and
/// the step results must be set values. Iterations are bounded by
/// `max_iters` *and* the active budget's `max_depth`.
pub fn inflationary_fixpoint(
    initial: &Value,
    mut step: impl FnMut(&Value) -> Result<Value, EvalError>,
    max_iters: usize,
) -> Result<Value, EvalError> {
    let mut current: BTreeSet<Value> = initial
        .as_set()
        .ok_or_else(|| EvalError::Shape {
            op: "fixpoint",
            found: initial.to_string(),
        })?
        .clone();
    let bound = effective_bound(max_iters);
    for iter in 0..bound {
        genpar_guard::charge_depth(iter + 1, "fixpoint").map_err(EvalError::from_breach)?;
        let cv = Value::Set(current.clone());
        let next = step(&cv)?;
        let ns = next.as_set().ok_or_else(|| EvalError::Shape {
            op: "fixpoint step",
            found: next.to_string(),
        })?;
        let before = current.len();
        current.extend(ns.iter().cloned());
        if current.len() == before {
            return Ok(Value::Set(current));
        }
    }
    Err(depth_exhausted("fixpoint", bound))
}

/// The while loop of the while-queries literature: repeat `x ← body(x)`
/// as long as `cond(x)`; bounded by `max_iters` since while need not
/// terminate.
pub fn while_loop(
    initial: &Value,
    mut cond: impl FnMut(&Value) -> Result<bool, EvalError>,
    mut body: impl FnMut(&Value) -> Result<Value, EvalError>,
    max_iters: usize,
) -> Result<Value, EvalError> {
    let mut current = initial.clone();
    let bound = effective_bound(max_iters);
    for iter in 0..bound {
        genpar_guard::charge_depth(iter + 1, "while").map_err(EvalError::from_breach)?;
        if !cond(&current)? {
            return Ok(current);
        }
        current = body(&current)?;
    }
    Err(depth_exhausted("while", bound))
}

/// Relation composition `R ∘ S = {(x,z) | ∃y. R(x,y) ∧ S(y,z)}` — the
/// equality-in-query-only building block of transitive closure.
pub fn compose(r: &Value, s: &Value) -> Result<Value, EvalError> {
    let (rs, ss) = match (r.as_set(), s.as_set()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(EvalError::Shape {
                op: "∘",
                found: format!("{r} / {s}"),
            })
        }
    };
    let mut out = BTreeSet::new();
    for t in rs {
        let tt = t.as_tuple().ok_or_else(|| EvalError::Shape {
            op: "∘",
            found: t.to_string(),
        })?;
        if tt.len() != 2 {
            return Err(EvalError::Shape {
                op: "∘",
                found: t.to_string(),
            });
        }
        for u in ss {
            let ut = u.as_tuple().ok_or_else(|| EvalError::Shape {
                op: "∘",
                found: u.to_string(),
            })?;
            if ut.len() == 2 && tt[1] == ut[0] {
                out.insert(Value::tuple([tt[0].clone(), ut[1].clone()]));
            }
        }
    }
    Ok(Value::Set(out))
}

/// Transitive closure of a binary relation, via the inflationary fixpoint
/// `TC ← TC ∪ (TC ∘ R)` seeded with `R`.
pub fn transitive_closure(r: &Value) -> Result<Value, EvalError> {
    let n = r.len().max(1);
    inflationary_fixpoint(r, |tc| compose(tc, r), n + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpar_value::parse::parse_value;

    #[test]
    fn compose_follows_edges() {
        let r = parse_value("{(a, b), (b, c)}").unwrap();
        assert_eq!(compose(&r, &r).unwrap(), parse_value("{(a, c)}").unwrap());
        let empty = compose(
            &parse_value("{(a, b)}").unwrap(),
            &parse_value("{(a, b)}").unwrap(),
        )
        .unwrap();
        assert_eq!(empty, parse_value("{}").unwrap());
    }

    #[test]
    fn tc_of_a_path() {
        let r = parse_value("{(a, b), (b, c), (c, d)}").unwrap();
        let tc = transitive_closure(&r).unwrap();
        assert_eq!(
            tc,
            parse_value("{(a, b), (b, c), (c, d), (a, c), (b, d), (a, d)}").unwrap()
        );
    }

    #[test]
    fn tc_of_a_cycle_saturates() {
        let r = parse_value("{(a, b), (b, a)}").unwrap();
        let tc = transitive_closure(&r).unwrap();
        assert_eq!(tc, parse_value("{(a, b), (b, a), (a, a), (b, b)}").unwrap());
    }

    #[test]
    fn tc_of_empty_is_empty() {
        assert_eq!(
            transitive_closure(&Value::empty_set()).unwrap(),
            Value::empty_set()
        );
    }

    #[test]
    fn inflationary_fixpoint_reaches_stability() {
        // step adds atom n+1 up to 3 (encoded as singleton tuples)
        let step = |v: &Value| -> Result<Value, EvalError> {
            let max = v
                .as_set()
                .unwrap()
                .iter()
                .filter_map(|t| {
                    t.project(0).and_then(|a| match a {
                        Value::Atom(at) => Some(at.id),
                        _ => None,
                    })
                })
                .max()
                .unwrap_or(0);
            Ok(if max < 3 {
                Value::set([Value::tuple([Value::atom(0, max + 1)])])
            } else {
                Value::empty_set()
            })
        };
        let init = parse_value("{(a)}").unwrap();
        let out = inflationary_fixpoint(&init, step, 10).unwrap();
        assert_eq!(out, parse_value("{(a), (b), (c), (d)}").unwrap());
    }

    #[test]
    fn fixpoint_budget_enforced() {
        // a step that keeps growing forever
        let mut i = 0u32;
        let step = move |_: &Value| -> Result<Value, EvalError> {
            i += 1;
            Ok(Value::set([Value::tuple([Value::atom(0, i)])]))
        };
        let init = parse_value("{(a)}").unwrap();
        assert!(inflationary_fixpoint(&init, step, 5).is_err());
    }

    #[test]
    fn armed_depth_budget_cuts_divergent_fixpoint_short() {
        // Even with a generous max_iters, an armed ExecBudget depth cap
        // stops the loop and names the Depth resource.
        let mut i = 0u32;
        let step = move |_: &Value| -> Result<Value, EvalError> {
            i += 1;
            Ok(Value::set([Value::tuple([Value::atom(0, i)])]))
        };
        let init = parse_value("{(a)}").unwrap();
        let budget = genpar_guard::ExecBudget::unlimited().with_max_depth(3);
        let _scope = budget.enter();
        let err = inflationary_fixpoint(&init, step, 1_000).unwrap_err();
        match err {
            EvalError::BudgetExceeded {
                resource, limit, ..
            } => {
                assert_eq!(resource, genpar_guard::Resource::Depth);
                assert_eq!(limit, 3);
            }
            other => panic!("expected a depth budget error, got {other:?}"),
        }
    }

    #[test]
    fn while_loop_runs_and_bounds() {
        // double the set of ints until size ≥ 4
        let cond = |v: &Value| Ok(v.len() < 4);
        let body = |v: &Value| -> Result<Value, EvalError> {
            let s = v.as_set().unwrap();
            let shifted: Vec<Value> = s
                .iter()
                .map(|x| Value::Int(x.as_int().unwrap() + s.len() as i64))
                .collect();
            Ok(Value::Set(s.iter().cloned().chain(shifted).collect()))
        };
        let init = parse_value("{0}").unwrap();
        let out = while_loop(&init, cond, body, 10).unwrap();
        assert_eq!(out.len(), 4);
        // non-terminating while hits the bound
        let forever = while_loop(&init, |_| Ok(true), |v| Ok(v.clone()), 5);
        assert!(forever.is_err());
    }

    #[test]
    fn compose_rejects_non_binary() {
        let r = parse_value("{(a, b, c)}").unwrap();
        assert!(compose(&r, &r).is_err());
        assert!(compose(&Value::Int(1), &r).is_err());
    }
}
