//! The query AST: relational algebra + complex-value operations.

use genpar_value::Value;
use std::fmt;
use std::sync::Arc;

/// A tuple predicate, used by selections.
///
/// The paper's genericity analysis distinguishes predicates by how much
/// equality they use: `True` uses none, `EqCols`/`EqConst` use equality of
/// (possibly uninterpreted) values, `Named` invokes an interpreted
/// predicate of the signature (e.g. `even`, `lt`), whose preservation is
/// the subject of Section 2.5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// Always true.
    True,
    /// `$i = $j` (0-based columns).
    EqCols(usize, usize),
    /// `$i = c` for a constant `c` (the paper's Q₅ uses `$1 = 7`).
    EqConst(usize, Value),
    /// An interpreted predicate of the signature applied to columns.
    Named(String, Vec<usize>),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// `$i = $j`.
    pub fn eq_cols(i: usize, j: usize) -> Pred {
        Pred::EqCols(i, j)
    }
    /// `$i = c`.
    pub fn eq_const(i: usize, c: Value) -> Pred {
        Pred::EqConst(i, c)
    }
    /// Conjunction helper.
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }
    /// Disjunction helper.
    pub fn or(self, other: Pred) -> Pred {
        Pred::Or(Box::new(self), Box::new(other))
    }
    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        Pred::Not(Box::new(self))
    }

    /// The constants mentioned by the predicate (for the genericity
    /// classifier: Section 2.4's C).
    pub fn constants(&self) -> Vec<Value> {
        match self {
            Pred::True | Pred::EqCols(..) | Pred::Named(..) => Vec::new(),
            Pred::EqConst(_, c) => vec![c.clone()],
            Pred::And(a, b) | Pred::Or(a, b) => {
                let mut out = a.constants();
                out.extend(b.constants());
                out
            }
            Pred::Not(a) => a.constants(),
        }
    }

    /// Does the predicate test equality between columns or against
    /// constants (i.e. observe value identity)?
    pub fn uses_equality(&self) -> bool {
        match self {
            Pred::True | Pred::Named(..) => false,
            Pred::EqCols(..) | Pred::EqConst(..) => true,
            Pred::And(a, b) | Pred::Or(a, b) => a.uses_equality() || b.uses_equality(),
            Pred::Not(a) => a.uses_equality(),
        }
    }

    /// The interpreted predicate names used (Section 2.5 preservation
    /// obligations).
    pub fn named_preds(&self) -> Vec<String> {
        match self {
            Pred::Named(n, _) => vec![n.clone()],
            Pred::And(a, b) | Pred::Or(a, b) => {
                let mut out = a.named_preds();
                out.extend(b.named_preds());
                out
            }
            Pred::Not(a) => a.named_preds(),
            _ => Vec::new(),
        }
    }
}

/// A first-class element function for `map(f)` and function-parameterized
/// operators (the paper's `ins_c`, `σ_p`, and the `map(f)` of
/// Proposition 3.1 / Section 4.4).
#[derive(Clone)]
pub enum ValueFn {
    /// Identity.
    Identity,
    /// Tuple projection `t ↦ t.i`.
    Proj(usize),
    /// Generalized projection `t ↦ (t.i₁, …, t.iₖ)`; columns may repeat.
    Cols(Vec<usize>),
    /// Constant function.
    Const(Value),
    /// Composition: `Compose(f, g) = g ∘ f` (apply `f` first).
    Compose(Box<ValueFn>, Box<ValueFn>),
    /// An interpreted function of the signature (unary view: the value is
    /// passed as the single argument, or spread if it is a tuple).
    Interp(String),
    /// Pair the results of two functions: `t ↦ (f(t), g(t))`.
    Pair(Box<ValueFn>, Box<ValueFn>),
    /// An opaque user function — used by the checker to treat queries as
    /// black boxes and by Section 4.4's "f could be any user-defined
    /// method … about which we know nothing".
    Custom(Arc<dyn Fn(&Value) -> Value + Send + Sync>),
}

impl fmt::Debug for ValueFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueFn::Identity => write!(f, "id"),
            ValueFn::Proj(i) => write!(f, "π{i}"),
            ValueFn::Cols(cs) => write!(f, "π{cs:?}"),
            ValueFn::Const(c) => write!(f, "const({c})"),
            ValueFn::Compose(a, b) => write!(f, "({b:?} ∘ {a:?})"),
            ValueFn::Interp(n) => write!(f, "{n}"),
            ValueFn::Pair(a, b) => write!(f, "⟨{a:?}, {b:?}⟩"),
            ValueFn::Custom(_) => write!(f, "<custom>"),
        }
    }
}

impl ValueFn {
    /// A custom function from a closure.
    pub fn custom(f: impl Fn(&Value) -> Value + Send + Sync + 'static) -> ValueFn {
        ValueFn::Custom(Arc::new(f))
    }

    /// Constants mentioned (for the classifier).
    pub fn constants(&self) -> Vec<Value> {
        match self {
            ValueFn::Const(c) => vec![c.clone()],
            ValueFn::Compose(a, b) | ValueFn::Pair(a, b) => {
                let mut out = a.constants();
                out.extend(b.constants());
                out
            }
            _ => Vec::new(),
        }
    }
}

/// A query: a function from databases (named complex values) to a complex
/// value, built from the operations whose genericity Section 3 classifies.
#[derive(Debug, Clone)]
pub enum Query {
    /// A named input relation (the base query `R` of Corollary 3.2).
    Rel(String),
    /// A constant value (mentioning it costs genericity: Section 2.4).
    Lit(Value),
    /// `∅̂` — the query returning the empty relation (fully generic).
    Empty,
    /// π: generalized projection over a set of tuples; columns may repeat
    /// (`π_{1,1}` is allowed and matters for strong genericity).
    Project(Vec<usize>, Box<Query>),
    /// σ_p: selection.
    Select(Pred, Box<Query>),
    /// σ̂_{i=j}: Chandra's projecting selection (Section 3.2):
    /// `{π_ĵ(t) | t ∈ R, t.i = t.j}` — selects on equality, then projects
    /// *out* column `j` so equality never shows in the output.
    SelectHat(usize, usize, Box<Query>),
    /// Cartesian product (tuples concatenate).
    Product(Box<Query>, Box<Query>),
    /// Union.
    Union(Box<Query>, Box<Query>),
    /// Intersection.
    Intersect(Box<Query>, Box<Query>),
    /// Difference.
    Difference(Box<Query>, Box<Query>),
    /// Equi-join on column pairs `(i, j)`: tuples `s ++ t` with
    /// `s.i = t.j` for all pairs.
    Join(Vec<(usize, usize)>, Box<Query>, Box<Query>),
    /// `map(f)`: apply `f` to every element of a set (Proposition 3.1).
    Map(ValueFn, Box<Query>),
    /// `ins_c`: insert a constant into a set (Section 4.3's `ins`).
    Insert(Value, Box<Query>),
    /// Singleton: `v ↦ {v}`.
    Singleton(Box<Query>),
    /// Flatten: `{{…}, {…}} ↦ ⋃` (the monad multiplication of \[5\]).
    Flatten(Box<Query>),
    /// Powerset (the complex-value algebra of \[1\]).
    Powerset(Box<Query>),
    /// `eq_adom`: the equality relation over the active domain of the
    /// input (Proposition 3.5).
    EqAdom(Box<Query>),
    /// The active domain of the input, as a set (Section 3.3).
    Adom(Box<Query>),
    /// `even`: is the cardinality of the input set even? (Lemma 2.12.)
    Even(Box<Query>),
    /// Nest-parity `np`: is the set-nesting depth of the input even?
    /// (Proposition 4.16.)
    NestParity(Box<Query>),
    /// Complement w.r.t. the evaluation universe (Section 3.3 full-domain
    /// semantics; requires the evaluator to know the universe).
    Complement(Box<Query>),
    /// Pair two query results into a 2-tuple value.
    TuplePair(Box<Query>, Box<Query>),
    /// ν: nest — group tuples by the given key columns; the remaining
    /// columns are collected (in original order) into a set of tuples
    /// appended as one final set-valued component. The nested relational
    /// algebra's constructor (\[1\]; the discussion section notes L-to-S
    /// types capture the entire nested relational algebra).
    Nest(Vec<usize>, Box<Query>),
    /// μ⁻¹-style unnest — explode the set-valued column at the given
    /// index: `(…, {t₁, t₂}, …) ↦ {(…, t₁ᵢ…, …), (…, t₂ᵢ…, …)}` with the
    /// nested tuple's components spliced in place.
    Unnest(usize, Box<Query>),
    /// `count`: the cardinality of the input set, as an integer. Like
    /// `even` (Lemma 2.12), counting distinct elements observes value
    /// identity — but unlike a parity, partial counts *combine*: the
    /// executor's parallel-with-combiner class exploits this.
    Count(Box<Query>),
    /// `sum`: the sum of the integer values in the given column of the
    /// input set of tuples. Another combinable whole-set aggregate.
    Sum(usize, Box<Query>),
    /// Inflationary fixpoint `fix X. init ∪ step(X)`: evaluate `init`,
    /// then repeatedly union in `step` (which refers to the accumulator
    /// via `Rel(var)`) until the set stops growing. The loop variable
    /// shadows any database relation of the same name inside `step`.
    Fixpoint {
        /// The loop variable `step` refers to via `Rel(var)`.
        var: String,
        /// The seed set.
        init: Box<Query>,
        /// The body, re-evaluated each round with `var` bound.
        step: Box<Query>,
    },
}

impl Query {
    /// A named relation.
    pub fn rel(name: impl Into<String>) -> Query {
        Query::Rel(name.into())
    }
    /// π helper.
    pub fn project(self, cols: impl IntoIterator<Item = usize>) -> Query {
        Query::Project(cols.into_iter().collect(), Box::new(self))
    }
    /// σ helper.
    pub fn select(self, p: Pred) -> Query {
        Query::Select(p, Box::new(self))
    }
    /// σ̂ helper.
    pub fn select_hat(self, i: usize, j: usize) -> Query {
        Query::SelectHat(i, j, Box::new(self))
    }
    /// × helper.
    pub fn product(self, other: Query) -> Query {
        Query::Product(Box::new(self), Box::new(other))
    }
    /// ∪ helper.
    pub fn union(self, other: Query) -> Query {
        Query::Union(Box::new(self), Box::new(other))
    }
    /// ∩ helper.
    pub fn intersect(self, other: Query) -> Query {
        Query::Intersect(Box::new(self), Box::new(other))
    }
    /// − helper.
    pub fn difference(self, other: Query) -> Query {
        Query::Difference(Box::new(self), Box::new(other))
    }
    /// ⋈ helper.
    pub fn join_on(self, other: Query, on: impl IntoIterator<Item = (usize, usize)>) -> Query {
        Query::Join(on.into_iter().collect(), Box::new(self), Box::new(other))
    }
    /// map helper.
    pub fn map(self, f: ValueFn) -> Query {
        Query::Map(f, Box::new(self))
    }
    /// ν helper.
    pub fn nest(self, keys: impl IntoIterator<Item = usize>) -> Query {
        Query::Nest(keys.into_iter().collect(), Box::new(self))
    }
    /// unnest helper.
    pub fn unnest(self, col: usize) -> Query {
        Query::Unnest(col, Box::new(self))
    }
    /// count helper.
    pub fn count(self) -> Query {
        Query::Count(Box::new(self))
    }
    /// sum helper.
    pub fn sum(self, col: usize) -> Query {
        Query::Sum(col, Box::new(self))
    }
    /// Fixpoint helper: `fix var. init ∪ step(var)`.
    pub fn fixpoint(var: impl Into<String>, init: Query, step: Query) -> Query {
        Query::Fixpoint {
            var: var.into(),
            init: Box::new(init),
            step: Box::new(step),
        }
    }

    /// All relation names the query reads from the database. A fixpoint's
    /// loop variable is *bound*: occurrences of `Rel(var)` inside its
    /// `step` are references to the accumulator, not database reads, and
    /// are excluded (respecting shadowing by nested fixpoints).
    pub fn rel_names(&self) -> Vec<String> {
        fn go(q: &Query, bound: &mut Vec<String>, out: &mut Vec<String>) {
            match q {
                Query::Rel(n) => {
                    if !bound.iter().any(|b| b == n) {
                        out.push(n.clone());
                    }
                }
                Query::Fixpoint { var, init, step } => {
                    go(init, bound, out);
                    bound.push(var.clone());
                    go(step, bound, out);
                    bound.pop();
                }
                _ => {
                    let mut kids = Vec::new();
                    q.children(&mut kids);
                    for c in kids {
                        go(c, bound, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// The direct subqueries of this node, in evaluation order.
    fn children<'a>(&'a self, out: &mut Vec<&'a Query>) {
        match self {
            Query::Rel(_) | Query::Lit(_) | Query::Empty => {}
            Query::Project(_, q)
            | Query::Select(_, q)
            | Query::SelectHat(_, _, q)
            | Query::Map(_, q)
            | Query::Insert(_, q)
            | Query::Singleton(q)
            | Query::Flatten(q)
            | Query::Powerset(q)
            | Query::EqAdom(q)
            | Query::Adom(q)
            | Query::Even(q)
            | Query::NestParity(q)
            | Query::Complement(q)
            | Query::Nest(_, q)
            | Query::Unnest(_, q)
            | Query::Count(q)
            | Query::Sum(_, q) => out.push(q),
            Query::Product(a, b)
            | Query::Union(a, b)
            | Query::Intersect(a, b)
            | Query::Difference(a, b)
            | Query::Join(_, a, b)
            | Query::TuplePair(a, b) => {
                out.push(a);
                out.push(b);
            }
            Query::Fixpoint { init, step, .. } => {
                out.push(init);
                out.push(step);
            }
        }
    }

    /// Substitute a literal value for every free occurrence of the
    /// relation `var` (the binding primitive of fixpoint evaluation:
    /// a round binds the accumulator — or its delta — to the loop
    /// variable). Occurrences shadowed by a nested fixpoint binding the
    /// same name are left alone.
    pub fn substitute_rel(&self, var: &str, v: &Value) -> Query {
        match self {
            Query::Rel(n) if n == var => Query::Lit(v.clone()),
            Query::Rel(_) | Query::Lit(_) | Query::Empty => self.clone(),
            Query::Project(cols, q) => {
                Query::Project(cols.clone(), Box::new(q.substitute_rel(var, v)))
            }
            Query::Select(p, q) => Query::Select(p.clone(), Box::new(q.substitute_rel(var, v))),
            Query::SelectHat(i, j, q) => {
                Query::SelectHat(*i, *j, Box::new(q.substitute_rel(var, v)))
            }
            Query::Product(a, b) => Query::Product(
                Box::new(a.substitute_rel(var, v)),
                Box::new(b.substitute_rel(var, v)),
            ),
            Query::Union(a, b) => Query::Union(
                Box::new(a.substitute_rel(var, v)),
                Box::new(b.substitute_rel(var, v)),
            ),
            Query::Intersect(a, b) => Query::Intersect(
                Box::new(a.substitute_rel(var, v)),
                Box::new(b.substitute_rel(var, v)),
            ),
            Query::Difference(a, b) => Query::Difference(
                Box::new(a.substitute_rel(var, v)),
                Box::new(b.substitute_rel(var, v)),
            ),
            Query::Join(on, a, b) => Query::Join(
                on.clone(),
                Box::new(a.substitute_rel(var, v)),
                Box::new(b.substitute_rel(var, v)),
            ),
            Query::Map(f, q) => Query::Map(f.clone(), Box::new(q.substitute_rel(var, v))),
            Query::Insert(c, q) => Query::Insert(c.clone(), Box::new(q.substitute_rel(var, v))),
            Query::Singleton(q) => Query::Singleton(Box::new(q.substitute_rel(var, v))),
            Query::Flatten(q) => Query::Flatten(Box::new(q.substitute_rel(var, v))),
            Query::Powerset(q) => Query::Powerset(Box::new(q.substitute_rel(var, v))),
            Query::EqAdom(q) => Query::EqAdom(Box::new(q.substitute_rel(var, v))),
            Query::Adom(q) => Query::Adom(Box::new(q.substitute_rel(var, v))),
            Query::Even(q) => Query::Even(Box::new(q.substitute_rel(var, v))),
            Query::NestParity(q) => Query::NestParity(Box::new(q.substitute_rel(var, v))),
            Query::Complement(q) => Query::Complement(Box::new(q.substitute_rel(var, v))),
            Query::TuplePair(a, b) => Query::TuplePair(
                Box::new(a.substitute_rel(var, v)),
                Box::new(b.substitute_rel(var, v)),
            ),
            Query::Nest(keys, q) => Query::Nest(keys.clone(), Box::new(q.substitute_rel(var, v))),
            Query::Unnest(col, q) => Query::Unnest(*col, Box::new(q.substitute_rel(var, v))),
            Query::Count(q) => Query::Count(Box::new(q.substitute_rel(var, v))),
            Query::Sum(col, q) => Query::Sum(*col, Box::new(q.substitute_rel(var, v))),
            Query::Fixpoint { var: w, init, step } => {
                let init = Box::new(init.substitute_rel(var, v));
                // an inner fixpoint binding the same name shadows: the
                // outer substitution must not reach into its step
                let step = if w == var {
                    step.clone()
                } else {
                    Box::new(step.substitute_rel(var, v))
                };
                Query::Fixpoint {
                    var: w.clone(),
                    init,
                    step,
                }
            }
        }
    }

    /// All constants the query mentions — its C of Section 2.4 (from
    /// literals, predicates, `ins_c`, and `map` constant functions).
    pub fn mentioned_constants(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.visit(&mut |q| match q {
            Query::Lit(v) => out.push(v.clone()),
            Query::Insert(c, _) => out.push(c.clone()),
            Query::Select(p, _) => out.extend(p.constants()),
            Query::Map(f, _) => out.extend(f.constants()),
            _ => {}
        });
        out.sort();
        out.dedup();
        out
    }

    /// Visit every node of the AST (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Query)) {
        f(self);
        match self {
            Query::Rel(_) | Query::Lit(_) | Query::Empty => {}
            Query::Project(_, q)
            | Query::Select(_, q)
            | Query::SelectHat(_, _, q)
            | Query::Map(_, q)
            | Query::Insert(_, q)
            | Query::Singleton(q)
            | Query::Flatten(q)
            | Query::Powerset(q)
            | Query::EqAdom(q)
            | Query::Adom(q)
            | Query::Even(q)
            | Query::NestParity(q)
            | Query::Complement(q)
            | Query::Nest(_, q)
            | Query::Unnest(_, q)
            | Query::Count(q)
            | Query::Sum(_, q) => q.visit(f),
            Query::Product(a, b)
            | Query::Union(a, b)
            | Query::Intersect(a, b)
            | Query::Difference(a, b)
            | Query::Join(_, a, b)
            | Query::TuplePair(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Query::Fixpoint { init, step, .. } => {
                init.visit(f);
                step.visit(f);
            }
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Rel(n) => write!(f, "{n}"),
            Query::Lit(v) => write!(f, "{v}"),
            Query::Empty => write!(f, "∅̂"),
            Query::Project(cols, q) => {
                write!(f, "π[")?;
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "${}", c + 1)?;
                }
                write!(f, "]({q})")
            }
            Query::Select(p, q) => write!(f, "σ[{p:?}]({q})"),
            Query::SelectHat(i, j, q) => write!(f, "σ̂[${}=${}]({q})", i + 1, j + 1),
            Query::Product(a, b) => write!(f, "({a} × {b})"),
            Query::Union(a, b) => write!(f, "({a} ∪ {b})"),
            Query::Intersect(a, b) => write!(f, "({a} ∩ {b})"),
            Query::Difference(a, b) => write!(f, "({a} − {b})"),
            Query::Join(on, a, b) => write!(f, "({a} ⋈{on:?} {b})"),
            Query::Map(g, q) => write!(f, "map({g:?})({q})"),
            Query::Insert(c, q) => write!(f, "ins_{c}({q})"),
            Query::Singleton(q) => write!(f, "η({q})"),
            Query::Flatten(q) => write!(f, "μ({q})"),
            Query::Powerset(q) => write!(f, "℘({q})"),
            Query::EqAdom(q) => write!(f, "eq_adom({q})"),
            Query::Adom(q) => write!(f, "adom({q})"),
            Query::Even(q) => write!(f, "even({q})"),
            Query::NestParity(q) => write!(f, "np({q})"),
            Query::Complement(q) => write!(f, "¬({q})"),
            Query::TuplePair(a, b) => write!(f, "⟨{a}, {b}⟩"),
            Query::Nest(keys, q) => {
                write!(f, "ν[")?;
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "${}", k + 1)?;
                }
                write!(f, "]({q})")
            }
            Query::Unnest(col, q) => write!(f, "μ[${}]({q})", col + 1),
            Query::Count(q) => write!(f, "count({q})"),
            Query::Sum(col, q) => write!(f, "sum[${}]({q})", col + 1),
            Query::Fixpoint { var, init, step } => write!(f, "fix[{var}]({init}, {step})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let q = Query::rel("R")
            .select(Pred::eq_cols(0, 1))
            .project([0])
            .union(Query::rel("S"));
        assert_eq!(q.rel_names(), vec!["R".to_string(), "S".to_string()]);
        assert_eq!(q.size(), 5);
    }

    #[test]
    fn mentioned_constants_collects_from_everywhere() {
        let q = Query::rel("R")
            .select(Pred::eq_const(0, Value::Int(7)))
            .union(Query::Insert(Value::Int(3), Box::new(Query::rel("S"))))
            .union(Query::Lit(Value::set([Value::Int(9)])));
        let cs = q.mentioned_constants();
        assert_eq!(
            cs,
            vec![Value::Int(3), Value::Int(7), Value::set([Value::Int(9)])]
        );
    }

    #[test]
    fn pred_introspection() {
        let p = Pred::eq_cols(0, 1)
            .and(Pred::Named("even".into(), vec![0]))
            .or(Pred::eq_const(2, Value::Int(7)).not());
        assert!(p.uses_equality());
        assert_eq!(p.named_preds(), vec!["even".to_string()]);
        assert_eq!(p.constants(), vec![Value::Int(7)]);
        assert!(!Pred::True.uses_equality());
        assert!(!Pred::Named("lt".into(), vec![0, 1]).uses_equality());
    }

    #[test]
    fn display_is_paperish() {
        let q1 = Query::rel("R")
            .join_on(Query::rel("R"), [(1, 0)])
            .project([0, 3]);
        let s = q1.to_string();
        assert!(s.contains('π'), "{s}");
        assert!(s.contains('⋈'), "{s}");
    }

    #[test]
    fn fixpoint_variable_is_bound_not_read() {
        // fix[X](E, X ⋈ E): X is the accumulator, E is the only DB read
        let q = Query::fixpoint(
            "X",
            Query::rel("E"),
            Query::rel("X").join_on(Query::rel("E"), [(1, 0)]),
        );
        assert_eq!(q.rel_names(), vec!["E".to_string()]);
        // a same-named DB relation outside the binder is still a read
        let q2 = Query::rel("X").union(q.clone());
        assert_eq!(q2.rel_names(), vec!["E".to_string(), "X".to_string()]);
        // Display round-trips the shape
        assert!(q.to_string().starts_with("fix[X]("), "{q}");
    }

    #[test]
    fn substitute_rel_respects_shadowing() {
        let v = Value::set([Value::Int(1)]);
        let q = Query::rel("X").union(Query::rel("R"));
        let s = q.substitute_rel("X", &v);
        assert!(matches!(&s, Query::Union(a, _) if matches!(a.as_ref(), Query::Lit(_))));
        // inner fix[X] shadows: its step keeps Rel("X"), its init does not
        let inner = Query::fixpoint("X", Query::rel("X"), Query::rel("X"));
        let sub = inner.substitute_rel("X", &v);
        match sub {
            Query::Fixpoint { init, step, .. } => {
                assert!(matches!(init.as_ref(), Query::Lit(_)));
                assert!(matches!(step.as_ref(), Query::Rel(n) if n == "X"));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn count_and_sum_builders() {
        let q = Query::rel("R").count();
        assert_eq!(q.to_string(), "count(R)");
        let q = Query::rel("R").sum(1);
        assert_eq!(q.to_string(), "sum[$2](R)");
        assert_eq!(q.size(), 2);
    }

    #[test]
    fn value_fn_debug_and_constants() {
        let f = ValueFn::Compose(
            Box::new(ValueFn::Proj(0)),
            Box::new(ValueFn::Const(Value::Int(1))),
        );
        assert_eq!(f.constants(), vec![Value::Int(1)]);
        assert!(format!("{f:?}").contains('π'));
        let c = ValueFn::custom(|v| v.clone());
        assert_eq!(format!("{c:?}"), "<custom>");
    }
}
