//! A textual surface syntax for queries, used by the `genpar` CLI and by
//! tests/examples that want to state queries compactly.
//!
//! Grammar (function-call style, whitespace-insensitive; columns are
//! 1-based like the paper's `$1`, `$2`):
//!
//! ```text
//! query := NAME                                — input relation
//!        | 'empty'
//!        | 'pi'      '[' cols ']'   '(' query ')'
//!        | 'select'  '[' pred ']'   '(' query ')'
//!        | 'hat'     '[' col '=' col ']' '(' query ')'
//!        | 'product' | 'union' | 'intersect' | 'diff'   '(' query ',' query ')'
//!        | 'join'    '[' col '=' col {',' col '=' col} ']' '(' query ',' query ')'
//!        | 'map'     '[' fn ']'     '(' query ')'
//!        | 'insert'  '[' value ']'  '(' query ')'
//!        | 'nest'    '[' cols ']'   '(' query ')'
//!        | 'unnest'  '[' col ']'    '(' query ')'
//!        | 'singleton' | 'flatten' | 'powerset' | 'eqadom'
//!        | 'adom' | 'even' | 'np' | 'complement' | 'count' '(' query ')'
//!        | 'sum'     '[' col ']'    '(' query ')'
//!        | 'fix'     '[' NAME ']'   '(' query ',' query ')'
//!        | 'lit'     '[' value ']'
//! cols  := col {',' col}           col := '$' NAT
//! pred  := 'true'
//!        | col '=' col | col '=' value
//!        | NAME '(' cols ')'       — interpreted predicate
//!        | pred '&' pred | pred '|' pred | '!' pred | '(' pred ')'
//! fn    := 'id' | col | 'cols' '(' cols ')' | 'const' '(' value ')' | NAME
//! value := complex-value literal (genpar-value syntax)
//! ```

use crate::expr::{Pred, Query, ValueFn};
use genpar_value::parse::{parse_value, ParseError as ValueParseError};
use std::fmt;

/// A query-parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset.
    pub pos: usize,
    /// Message.
    pub msg: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for QueryParseError {}

impl From<ValueParseError> for QueryParseError {
    fn from(e: ValueParseError) -> Self {
        QueryParseError {
            pos: e.pos,
            msg: format!("in value literal: {}", e.msg),
        }
    }
}

/// Parse a query.
pub fn parse_query(input: &str) -> Result<Query, QueryParseError> {
    let mut p = P { src: input, pos: 0 };
    p.ws();
    let q = p.query()?;
    p.ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(q)
}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: impl Into<String>) -> QueryParseError {
        QueryParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), QueryParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{tok}'")))
        }
    }

    fn ident(&mut self) -> Option<&'a str> {
        self.ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !c.is_ascii_alphanumeric() && *c != '_')
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 || !rest.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
            return None;
        }
        self.pos += end;
        Some(&rest[..end])
    }

    fn nat(&mut self) -> Result<usize, QueryParseError> {
        self.ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !c.is_ascii_digit())
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected a number"));
        }
        let n = rest[..end]
            .parse::<usize>()
            .map_err(|e| self.err(format!("bad number: {e}")))?;
        self.pos += end;
        Ok(n)
    }

    /// `$N` (1-based) → 0-based column index.
    fn col(&mut self) -> Result<usize, QueryParseError> {
        self.expect("$")?;
        let n = self.nat()?;
        if n == 0 {
            return Err(self.err("columns are 1-based ($1, $2, …)"));
        }
        Ok(n - 1)
    }

    fn cols(&mut self) -> Result<Vec<usize>, QueryParseError> {
        let mut out = vec![self.col()?];
        while self.eat(",") {
            out.push(self.col()?);
        }
        Ok(out)
    }

    /// A bracketed complex-value literal: read to the matching `]`.
    fn bracketed_value(&mut self) -> Result<genpar_value::Value, QueryParseError> {
        self.ws();
        // find the matching close bracket, counting nesting of [({ vs ])}
        let rest = self.rest();
        let mut depth = 0i32;
        for (i, c) in rest.char_indices() {
            match c {
                '[' | '(' | '{' => depth += 1,
                ']' | ')' | '}' => {
                    if depth == 0 && c == ']' {
                        let v = parse_value(rest[..i].trim())?;
                        self.pos += i;
                        return Ok(v);
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        Err(self.err("unterminated value literal (expected ']')"))
    }

    fn query(&mut self) -> Result<Query, QueryParseError> {
        self.ws();
        let save = self.pos;
        let Some(name) = self.ident() else {
            return Err(self.err("expected a query"));
        };
        let unary =
            |p: &mut P<'a>, build: fn(Box<Query>) -> Query| -> Result<Query, QueryParseError> {
                p.expect("(")?;
                let q = p.query()?;
                p.expect(")")?;
                Ok(build(Box::new(q)))
            };
        match name {
            "empty" => Ok(Query::Empty),
            "lit" => {
                self.expect("[")?;
                let v = self.bracketed_value()?;
                self.expect("]")?;
                Ok(Query::Lit(v))
            }
            "pi" => {
                self.expect("[")?;
                let cols = self.cols()?;
                self.expect("]")?;
                self.expect("(")?;
                let q = self.query()?;
                self.expect(")")?;
                Ok(Query::Project(cols, Box::new(q)))
            }
            "select" => {
                self.expect("[")?;
                let p = self.pred()?;
                self.expect("]")?;
                self.expect("(")?;
                let q = self.query()?;
                self.expect(")")?;
                Ok(Query::Select(p, Box::new(q)))
            }
            "hat" => {
                self.expect("[")?;
                let i = self.col()?;
                self.expect("=")?;
                let j = self.col()?;
                self.expect("]")?;
                self.expect("(")?;
                let q = self.query()?;
                self.expect(")")?;
                Ok(Query::SelectHat(i, j, Box::new(q)))
            }
            "product" | "union" | "intersect" | "diff" => {
                self.expect("(")?;
                let a = self.query()?;
                self.expect(",")?;
                let b = self.query()?;
                self.expect(")")?;
                Ok(match name {
                    "product" => Query::Product(Box::new(a), Box::new(b)),
                    "union" => Query::Union(Box::new(a), Box::new(b)),
                    "intersect" => Query::Intersect(Box::new(a), Box::new(b)),
                    _ => Query::Difference(Box::new(a), Box::new(b)),
                })
            }
            "join" => {
                self.expect("[")?;
                let mut on = Vec::new();
                loop {
                    let i = self.col()?;
                    self.expect("=")?;
                    let j = self.col()?;
                    on.push((i, j));
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect("]")?;
                self.expect("(")?;
                let a = self.query()?;
                self.expect(",")?;
                let b = self.query()?;
                self.expect(")")?;
                Ok(Query::Join(on, Box::new(a), Box::new(b)))
            }
            "map" => {
                self.expect("[")?;
                let f = self.value_fn()?;
                self.expect("]")?;
                self.expect("(")?;
                let q = self.query()?;
                self.expect(")")?;
                Ok(Query::Map(f, Box::new(q)))
            }
            "insert" => {
                self.expect("[")?;
                let v = self.bracketed_value()?;
                self.expect("]")?;
                self.expect("(")?;
                let q = self.query()?;
                self.expect(")")?;
                Ok(Query::Insert(v, Box::new(q)))
            }
            "nest" => {
                self.expect("[")?;
                let cols = self.cols()?;
                self.expect("]")?;
                self.expect("(")?;
                let q = self.query()?;
                self.expect(")")?;
                Ok(Query::Nest(cols, Box::new(q)))
            }
            "unnest" => {
                self.expect("[")?;
                let col = self.col()?;
                self.expect("]")?;
                self.expect("(")?;
                let q = self.query()?;
                self.expect(")")?;
                Ok(Query::Unnest(col, Box::new(q)))
            }
            "count" => unary(self, Query::Count),
            "sum" => {
                self.expect("[")?;
                let col = self.col()?;
                self.expect("]")?;
                self.expect("(")?;
                let q = self.query()?;
                self.expect(")")?;
                Ok(Query::Sum(col, Box::new(q)))
            }
            "fix" => {
                self.expect("[")?;
                let var = self
                    .ident()
                    .ok_or_else(|| self.err("expected a loop variable name"))?
                    .to_string();
                self.expect("]")?;
                self.expect("(")?;
                let init = self.query()?;
                self.expect(",")?;
                let step = self.query()?;
                self.expect(")")?;
                Ok(Query::fixpoint(var, init, step))
            }
            "singleton" => unary(self, Query::Singleton),
            "flatten" => unary(self, Query::Flatten),
            "powerset" => unary(self, Query::Powerset),
            "eqadom" => unary(self, Query::EqAdom),
            "adom" => unary(self, Query::Adom),
            "even" => unary(self, Query::Even),
            "np" => unary(self, Query::NestParity),
            "complement" => unary(self, Query::Complement),
            _ => {
                // a relation name — but reject if it is followed by '('
                // (probably a typo'd operator)
                self.ws();
                if self.rest().starts_with('(') {
                    self.pos = save;
                    Err(self.err(format!("unknown operator '{name}'")))
                } else {
                    Ok(Query::Rel(name.to_string()))
                }
            }
        }
    }

    fn pred(&mut self) -> Result<Pred, QueryParseError> {
        let mut left = self.pred_atom()?;
        loop {
            if self.eat("&") {
                let right = self.pred_atom()?;
                left = left.and(right);
            } else if self.eat("|") {
                let right = self.pred_atom()?;
                left = left.or(right);
            } else {
                return Ok(left);
            }
        }
    }

    fn pred_atom(&mut self) -> Result<Pred, QueryParseError> {
        self.ws();
        if self.eat("!") {
            return Ok(self.pred_atom()?.not());
        }
        if self.eat("(") {
            let p = self.pred()?;
            self.expect(")")?;
            return Ok(p);
        }
        if self.rest().starts_with('$') {
            let i = self.col()?;
            self.expect("=")?;
            self.ws();
            if self.rest().starts_with('$') {
                let j = self.col()?;
                return Ok(Pred::eq_cols(i, j));
            }
            // a value literal up to the next ']' / '&' / '|' boundary
            let rest = self.rest();
            let end = rest
                .char_indices()
                .find(|(_, c)| matches!(c, ']' | '&' | '|'))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let v = parse_value(rest[..end].trim())?;
            self.pos += end;
            return Ok(Pred::eq_const(i, v));
        }
        if self.rest().starts_with("true") {
            self.pos += 4;
            return Ok(Pred::True);
        }
        // named predicate
        let name = self
            .ident()
            .ok_or_else(|| self.err("expected a predicate"))?
            .to_string();
        self.expect("(")?;
        let cols = self.cols()?;
        self.expect(")")?;
        Ok(Pred::Named(name, cols))
    }

    fn value_fn(&mut self) -> Result<ValueFn, QueryParseError> {
        self.ws();
        if self.rest().starts_with('$') {
            let c = self.col()?;
            return Ok(ValueFn::Proj(c));
        }
        let name = self
            .ident()
            .ok_or_else(|| self.err("expected a function"))?
            .to_string();
        match name.as_str() {
            "id" => Ok(ValueFn::Identity),
            "cols" => {
                self.expect("(")?;
                let cols = self.cols()?;
                self.expect(")")?;
                Ok(ValueFn::Cols(cols))
            }
            "const" => {
                self.expect("(")?;
                self.ws();
                // read the literal up to the matching ')'
                let rest = self.rest();
                let mut depth = 0i32;
                for (i, c) in rest.char_indices() {
                    match c {
                        '[' | '(' | '{' => depth += 1,
                        ']' | '}' => depth -= 1,
                        ')' => {
                            if depth == 0 {
                                let v = parse_value(rest[..i].trim())?;
                                self.pos += i;
                                self.expect(")")?;
                                return Ok(ValueFn::Const(v));
                            }
                            depth -= 1;
                        }
                        _ => {}
                    }
                }
                Err(self.err("unterminated const(…)"))
            }
            other => Ok(ValueFn::Interp(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Db};
    use genpar_value::Value;

    #[test]
    fn parses_relations_and_ops() {
        assert!(matches!(parse_query("R").unwrap(), Query::Rel(n) if n == "R"));
        assert!(matches!(parse_query("empty").unwrap(), Query::Empty));
        // the paper's π$1,$3 assumes a *natural* join (3 columns); our
        // ⋈ keeps both join columns, so the equivalent is π$1,$4
        let q = parse_query("pi[$1, $4](join[$2=$1](R, R))").unwrap();
        assert_eq!(q.to_string(), crate::catalog::q1().to_string());
    }

    #[test]
    fn parses_selections() {
        let q = parse_query("select[$1=$2](R)").unwrap();
        assert_eq!(q.to_string(), crate::catalog::q4().to_string());
        let q5 = parse_query("select[$1=7](R)").unwrap();
        assert_eq!(q5.to_string(), crate::catalog::q5().to_string());
        let named = parse_query("select[even($1)](R)").unwrap();
        assert!(matches!(named, Query::Select(Pred::Named(..), _)));
        let combo = parse_query("select[$1=$2 & !even($1) | true](R)").unwrap();
        assert!(matches!(combo, Query::Select(Pred::Or(..), _)));
    }

    #[test]
    fn parses_hat_and_setops() {
        let q = parse_query("hat[$1=$2](R)").unwrap();
        assert!(matches!(q, Query::SelectHat(0, 1, _)));
        for (src, check) in [
            ("union(R, S)", "∪"),
            ("intersect(R, S)", "∩"),
            ("diff(R, S)", "−"),
            ("product(R, S)", "×"),
        ] {
            let q = parse_query(src).unwrap();
            assert!(q.to_string().contains(check), "{src}");
        }
    }

    #[test]
    fn parses_map_variants() {
        assert!(matches!(
            parse_query("map[id](R)").unwrap(),
            Query::Map(ValueFn::Identity, _)
        ));
        assert!(matches!(
            parse_query("map[$2](R)").unwrap(),
            Query::Map(ValueFn::Proj(1), _)
        ));
        assert!(matches!(
            parse_query("map[cols($2, $1)](R)").unwrap(),
            Query::Map(ValueFn::Cols(_), _)
        ));
        assert!(matches!(
            parse_query("map[const({1, 2})](R)").unwrap(),
            Query::Map(ValueFn::Const(_), _)
        ));
        assert!(matches!(
            parse_query("map[succ](R)").unwrap(),
            Query::Map(ValueFn::Interp(_), _)
        ));
    }

    #[test]
    fn parses_literals_and_insert() {
        let q = parse_query("lit[{(a, b)}]").unwrap();
        assert!(matches!(q, Query::Lit(_)));
        let q = parse_query("insert[(7)](R)").unwrap();
        assert!(matches!(q, Query::Insert(Value::Tuple(_), _)));
        let q = parse_query("union(lit[{(a)}], R)").unwrap();
        assert!(matches!(q, Query::Union(..)));
    }

    #[test]
    fn parses_nest_unnest() {
        let q = parse_query("unnest[$2](nest[$1](R))").unwrap();
        assert_eq!(q.to_string(), "μ[$2](ν[$1](R))");
        let db = Db::new().with(
            "R",
            genpar_value::parse::parse_value("{(a, 1), (a, 2)}").unwrap(),
        );
        assert_eq!(
            eval(&q, &db).unwrap(),
            genpar_value::parse::parse_value("{(a, 1), (a, 2)}").unwrap()
        );
    }

    #[test]
    fn parses_unary_builtins() {
        for src in [
            "singleton(R)",
            "flatten(R)",
            "powerset(R)",
            "eqadom(R)",
            "adom(R)",
            "even(R)",
            "np(R)",
            "complement(R)",
        ] {
            parse_query(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn parses_count_sum_fixpoint() {
        assert!(matches!(parse_query("count(R)").unwrap(), Query::Count(_)));
        assert!(matches!(
            parse_query("sum[$2](R)").unwrap(),
            Query::Sum(1, _)
        ));
        let q = parse_query("fix[X](E, pi[$1,$4](join[$2=$1](X, E)))").unwrap();
        assert!(matches!(&q, Query::Fixpoint { var, .. } if var == "X"));
        assert_eq!(q.rel_names(), vec!["E".to_string()]);
        // fixpoint TC evaluates through the parser
        let db = Db::new().with(
            "E",
            genpar_value::parse::parse_value("{(a, b), (b, c)}").unwrap(),
        );
        assert_eq!(
            eval(&q, &db).unwrap(),
            genpar_value::parse::parse_value("{(a, b), (b, c), (a, c)}").unwrap()
        );
        // malformed fixpoints are rejected
        assert!(parse_query("fix[1](E, X)").is_err());
        assert!(parse_query("fix[X](E)").is_err());
        assert!(parse_query("sum[2](R)").is_err());
    }

    #[test]
    fn parsed_queries_evaluate() {
        let db = Db::new().with(
            "R",
            genpar_value::parse::parse_value("{(e, f), (f, g)}").unwrap(),
        );
        let q = parse_query("pi[$1, $4](join[$2=$1](R, R))").unwrap();
        assert_eq!(
            eval(&q, &db).unwrap(),
            genpar_value::parse::parse_value("{(e, g)}").unwrap()
        );
    }

    #[test]
    fn errors_are_positioned() {
        assert!(parse_query("").is_err());
        assert!(parse_query("pi[$0](R)").is_err()); // 1-based
        assert!(parse_query("pi[$1](R) trailing").is_err());
        assert!(parse_query("frobnicate(R)").is_err());
        assert!(parse_query("select[$1=](R)").is_err());
        assert!(parse_query("union(R)").is_err());
        let e = parse_query("pi[$1](").unwrap_err();
        assert!(e.pos > 0);
    }

    #[test]
    fn roundtrip_via_display_is_not_required_but_parse_is_stable() {
        // parse(s) = parse(pretty-ish spacing of s)
        let a = parse_query("union( R ,S )").unwrap();
        let b = parse_query("union(R,S)").unwrap();
        assert_eq!(a.to_string(), b.to_string());
    }
}
