#![warn(missing_docs)]
//! # genpar-algebra — relational and complex-value algebra
//!
//! The paper analyzes the genericity of "many well known database
//! operations" (Section 3): the relational algebra (π, σ, ×, ∪, ∩, −, ⋈),
//! Chandra's projecting selection σ̂ (Section 3.2), `map(f)`, the
//! complement and active-domain operations of Section 3.3, and the
//! complex-value operations (nest/unnest/powerset/singleton/flatten) of
//! the languages it cites ([1, 4, 5]). This crate provides:
//!
//! * [`expr::Query`] — a query AST covering all of these, closed under
//!   composition, with first-class predicates ([`expr::Pred`]) and element
//!   functions ([`expr::ValueFn`]);
//! * [`eval`] — the evaluator `Query × Db → Value` with cost counters;
//! * [`catalog`] — the paper's named queries (Q₁–Q₅, `eq_adom`, `even`,
//!   nest-parity `np`, σ̂ variants) ready for the genericity experiments;
//! * [`vm`] — a compile-once stack bytecode for predicates and map
//!   functions, observationally identical to the walker by construction
//!   (and by the differential oracle), with `GENPAR_VM=0` as the kill
//!   switch.
//!
//! A *database* is a finite assignment of names to complex values
//! ([`eval::Db`]): "databases can be viewed as tuples of complex values"
//! (Section 2).

pub mod bags;
pub mod calculus;
pub mod catalog;
pub mod eval;
pub mod expr;
pub mod fixpoint;
pub mod parse;
pub mod types;
pub mod vm;

pub use eval::{Db, EvalError, EvalStats};
pub use expr::{Pred, Query, ValueFn};
