//! Output-type inference for queries.
//!
//! Section 4.3 closes with: "the type could be found using type
//! inference, or could be verified using type checking" — the more
//! general the type derived for a query, the more invariance information
//! parametricity yields. This module infers the output [`CvType`] of a
//! query from the types of its input relations, which the checker and
//! probe use to avoid hand-written output types.

use crate::expr::{Query, ValueFn};
use genpar_value::{CvType, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A typing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeInferenceError(pub String);

impl fmt::Display for TypeInferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type inference: {}", self.0)
    }
}

impl std::error::Error for TypeInferenceError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TypeInferenceError> {
    Err(TypeInferenceError(msg.into()))
}

/// The environment: types of the named input relations.
pub type TypeEnv = BTreeMap<String, CvType>;

/// Components of a set-of-tuples type, if the type has that shape.
fn tuple_elems(t: &CvType) -> Option<&[CvType]> {
    match t {
        CvType::Set(inner) => match &**inner {
            CvType::Tuple(ts) => Some(ts),
            _ => None,
        },
        _ => None,
    }
}

/// The element type of a set type.
fn set_elem(t: &CvType) -> Option<&CvType> {
    match t {
        CvType::Set(inner) => Some(inner),
        _ => None,
    }
}

/// The most specific type of a literal value, when it is unambiguous
/// (empty collections default element types to `D0`).
pub fn type_of_value(v: &Value) -> CvType {
    match v {
        Value::Bool(_) => CvType::bool(),
        Value::Int(_) => CvType::int(),
        Value::Str(_) => CvType::str(),
        Value::Atom(a) => CvType::Base(genpar_value::BaseType::Domain(a.domain)),
        Value::Tuple(vs) => CvType::Tuple(vs.iter().map(type_of_value).collect()),
        Value::Set(vs) => CvType::set(
            vs.iter()
                .next()
                .map(type_of_value)
                .unwrap_or_else(|| CvType::domain(0)),
        ),
        Value::Bag(vs) => CvType::bag(
            vs.keys()
                .next()
                .map(type_of_value)
                .unwrap_or_else(|| CvType::domain(0)),
        ),
        Value::List(vs) => CvType::list(
            vs.first()
                .map(type_of_value)
                .unwrap_or_else(|| CvType::domain(0)),
        ),
    }
}

/// Infer the output type of `q` under `env`.
pub fn infer_type(q: &Query, env: &TypeEnv) -> Result<CvType, TypeInferenceError> {
    match q {
        Query::Rel(n) => env
            .get(n)
            .cloned()
            .ok_or_else(|| TypeInferenceError(format!("unknown relation {n}"))),
        Query::Lit(v) => Ok(type_of_value(v)),
        Query::Empty => Ok(CvType::set(CvType::tuple([]))),
        Query::Project(cols, inner) => {
            let t = infer_type(inner, env)?;
            let elems = tuple_elems(&t)
                .ok_or_else(|| TypeInferenceError(format!("π over non-relation type {t}")))?;
            let picked: Result<Vec<CvType>, _> = cols
                .iter()
                .map(|&c| {
                    elems.get(c).cloned().ok_or_else(|| {
                        TypeInferenceError(format!("π column ${} out of range", c + 1))
                    })
                })
                .collect();
            Ok(CvType::set(CvType::Tuple(picked?)))
        }
        Query::Select(_, inner) => infer_type(inner, env),
        Query::SelectHat(i, j, inner) => {
            let t = infer_type(inner, env)?;
            let elems = tuple_elems(&t)
                .ok_or_else(|| TypeInferenceError(format!("σ̂ over non-relation type {t}")))?;
            if *i >= elems.len() || *j >= elems.len() {
                return err(format!("σ̂ columns ${}/${} out of range", i + 1, j + 1));
            }
            let kept: Vec<CvType> = elems
                .iter()
                .enumerate()
                .filter(|(k, _)| k != j)
                .map(|(_, t)| t.clone())
                .collect();
            Ok(CvType::set(CvType::Tuple(kept)))
        }
        Query::Product(a, b) | Query::Join(_, a, b) => {
            let (ta, tb) = (infer_type(a, env)?, infer_type(b, env)?);
            let ea = tuple_elems(&ta)
                .ok_or_else(|| TypeInferenceError(format!("× over non-relation {ta}")))?;
            let eb = tuple_elems(&tb)
                .ok_or_else(|| TypeInferenceError(format!("× over non-relation {tb}")))?;
            Ok(CvType::set(CvType::Tuple(
                ea.iter().chain(eb).cloned().collect(),
            )))
        }
        Query::Union(a, b) | Query::Intersect(a, b) | Query::Difference(a, b) => {
            let (ta, tb) = (infer_type(a, env)?, infer_type(b, env)?);
            if ta != tb {
                return err(format!("set operation on mismatched types {ta} vs {tb}"));
            }
            Ok(ta)
        }
        Query::Map(f, inner) => {
            let t = infer_type(inner, env)?;
            let elem =
                set_elem(&t).ok_or_else(|| TypeInferenceError(format!("map over non-set {t}")))?;
            Ok(CvType::set(fn_output_type(f, elem)?))
        }
        Query::Insert(v, inner) => {
            let t = infer_type(inner, env)?;
            let elem =
                set_elem(&t).ok_or_else(|| TypeInferenceError(format!("ins into non-set {t}")))?;
            let vt = type_of_value(v);
            if *elem != vt {
                return err(format!("ins of {vt} into set of {elem}"));
            }
            Ok(t)
        }
        Query::Singleton(inner) => Ok(CvType::set(infer_type(inner, env)?)),
        Query::Flatten(inner) => {
            let t = infer_type(inner, env)?;
            let outer =
                set_elem(&t).ok_or_else(|| TypeInferenceError(format!("μ over non-set {t}")))?;
            match outer {
                CvType::Set(_) => Ok(outer.clone()),
                other => err(format!("μ over set of non-sets {other}")),
            }
        }
        Query::Powerset(inner) => Ok(CvType::set(infer_type(inner, env)?)),
        Query::EqAdom(inner) => {
            // the adom is heterogeneous in general; when the input is a
            // flat relation over one base type we can type it precisely
            let t = infer_type(inner, env)?;
            match uniform_base(&t) {
                Some(b) => Ok(CvType::set(CvType::tuple([
                    CvType::Base(b),
                    CvType::Base(b),
                ]))),
                None => err(format!("eq_adom over non-uniform type {t}")),
            }
        }
        Query::Adom(inner) => {
            let t = infer_type(inner, env)?;
            match uniform_base(&t) {
                Some(b) => Ok(CvType::set(CvType::Base(b))),
                None => err(format!("adom over non-uniform type {t}")),
            }
        }
        Query::Even(_) | Query::NestParity(_) => Ok(CvType::bool()),
        Query::Count(_) => Ok(CvType::int()),
        Query::Sum(col, inner) => {
            let t = infer_type(inner, env)?;
            let elem =
                set_elem(&t).ok_or_else(|| TypeInferenceError(format!("sum over non-set {t}")))?;
            let component = match elem {
                CvType::Tuple(ts) => ts.get(*col).ok_or_else(|| {
                    TypeInferenceError(format!("sum column ${} missing", col + 1))
                })?,
                other if *col == 0 => other,
                other => return err(format!("sum column ${} of non-tuple {other}", col + 1)),
            };
            if *component != CvType::int() {
                return err(format!("sum over non-integer column type {component}"));
            }
            Ok(CvType::int())
        }
        Query::Fixpoint { var, init, step } => {
            // the loop variable has the init type inside the body; the
            // fixpoint is well-typed when the body returns the same type
            let ti = infer_type(init, env)?;
            let mut inner_env = env.clone();
            inner_env.insert(var.clone(), ti.clone());
            let ts = infer_type(step, &inner_env)?;
            if ti != ts {
                return err(format!("fixpoint body type {ts} differs from seed {ti}"));
            }
            Ok(ti)
        }
        Query::Complement(inner) => infer_type(inner, env),
        Query::TuplePair(a, b) => Ok(CvType::tuple([infer_type(a, env)?, infer_type(b, env)?])),
        Query::Nest(keys, inner) => {
            let t = infer_type(inner, env)?;
            let elems = tuple_elems(&t)
                .ok_or_else(|| TypeInferenceError(format!("ν over non-relation {t}")))?;
            for &k in keys {
                if k >= elems.len() {
                    return err(format!("ν key ${} out of range", k + 1));
                }
            }
            let mut out: Vec<CvType> = keys.iter().map(|&k| elems[k].clone()).collect();
            let rest: Vec<CvType> = elems
                .iter()
                .enumerate()
                .filter(|(i, _)| !keys.contains(i))
                .map(|(_, t)| t.clone())
                .collect();
            out.push(CvType::set(CvType::Tuple(rest)));
            Ok(CvType::set(CvType::Tuple(out)))
        }
        Query::Unnest(col, inner) => {
            let t = infer_type(inner, env)?;
            let elems = tuple_elems(&t)
                .ok_or_else(|| TypeInferenceError(format!("unnest over non-relation {t}")))?;
            let nested = elems
                .get(*col)
                .ok_or_else(|| TypeInferenceError(format!("unnest column ${} missing", col + 1)))?;
            let inner_elems: Vec<CvType> = match set_elem(nested) {
                Some(CvType::Tuple(ts)) => ts.clone(),
                Some(other) => vec![other.clone()],
                None => return err(format!("unnest of non-set column {nested}")),
            };
            let out: Vec<CvType> = elems
                .iter()
                .enumerate()
                .flat_map(|(i, t)| {
                    if i == *col {
                        inner_elems.clone()
                    } else {
                        vec![t.clone()]
                    }
                })
                .collect();
            Ok(CvType::set(CvType::Tuple(out)))
        }
    }
}

/// If every leaf of the type is the same base type, return it.
fn uniform_base(t: &CvType) -> Option<genpar_value::BaseType> {
    let leaves = t.leaves();
    let first = *leaves.first()?;
    leaves.iter().all(|&b| b == first).then_some(first)
}

fn fn_output_type(f: &ValueFn, input: &CvType) -> Result<CvType, TypeInferenceError> {
    match f {
        ValueFn::Identity => Ok(input.clone()),
        ValueFn::Proj(i) => match input {
            CvType::Tuple(ts) => ts
                .get(*i)
                .cloned()
                .ok_or_else(|| TypeInferenceError(format!("π{i} out of range for {input}"))),
            other => err(format!("π{i} of non-tuple {other}")),
        },
        ValueFn::Cols(cols) => match input {
            CvType::Tuple(ts) => {
                let picked: Result<Vec<CvType>, _> = cols
                    .iter()
                    .map(|&c| {
                        ts.get(c)
                            .cloned()
                            .ok_or_else(|| TypeInferenceError(format!("column {c} out of range")))
                    })
                    .collect();
                Ok(CvType::Tuple(picked?))
            }
            other => err(format!("cols of non-tuple {other}")),
        },
        ValueFn::Const(v) => Ok(type_of_value(v)),
        ValueFn::Compose(a, b) => {
            let mid = fn_output_type(a, input)?;
            fn_output_type(b, &mid)
        }
        ValueFn::Pair(a, b) => Ok(CvType::tuple([
            fn_output_type(a, input)?,
            fn_output_type(b, input)?,
        ])),
        ValueFn::Interp(name) => err(format!(
            "interpreted function {name} needs a signature to type"
        )),
        ValueFn::Custom(_) => err("opaque function is untypeable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Pred;
    use genpar_value::BaseType;

    fn env() -> TypeEnv {
        let mut e = TypeEnv::new();
        e.insert(
            "R".into(),
            CvType::relation(BaseType::Domain(genpar_value::DomainId(0)), 2),
        );
        e.insert(
            "S".into(),
            CvType::relation(BaseType::Domain(genpar_value::DomainId(0)), 2),
        );
        e
    }

    fn d0() -> CvType {
        CvType::domain(0)
    }

    #[test]
    fn relations_and_projections() {
        assert_eq!(infer_type(&Query::rel("R"), &env()).unwrap(), env()["R"]);
        assert_eq!(
            infer_type(&Query::rel("R").project([0]), &env()).unwrap(),
            CvType::set(CvType::tuple([d0()]))
        );
        assert!(infer_type(&Query::rel("R").project([5]), &env()).is_err());
        assert!(infer_type(&Query::rel("Z"), &env()).is_err());
    }

    #[test]
    fn products_concatenate_and_setops_match() {
        let t = infer_type(&Query::rel("R").product(Query::rel("S")), &env()).unwrap();
        assert_eq!(
            t,
            CvType::relation(BaseType::Domain(genpar_value::DomainId(0)), 4)
        );
        assert!(infer_type(&Query::rel("R").union(Query::rel("S")), &env()).is_ok());
        let bad = Query::rel("R").union(Query::rel("R").project([0]));
        assert!(infer_type(&bad, &env()).is_err());
    }

    #[test]
    fn select_hat_drops_one_column() {
        let t = infer_type(&Query::rel("R").select_hat(0, 1), &env()).unwrap();
        assert_eq!(t, CvType::set(CvType::tuple([d0()])));
        assert!(infer_type(&Query::rel("R").select_hat(0, 9), &env()).is_err());
    }

    #[test]
    fn nest_unnest_types() {
        let t = infer_type(&Query::rel("R").nest([0]), &env()).unwrap();
        assert_eq!(
            t,
            CvType::set(CvType::tuple([d0(), CvType::set(CvType::tuple([d0()]))]))
        );
        let back = infer_type(&Query::rel("R").nest([0]).unnest(1), &env()).unwrap();
        assert_eq!(back, env()["R"]);
    }

    #[test]
    fn map_function_types() {
        let q = Query::rel("R").map(ValueFn::Proj(0));
        assert_eq!(infer_type(&q, &env()).unwrap(), CvType::set(d0()));
        let q2 = Query::rel("R").map(ValueFn::Cols(vec![1, 0, 1]));
        assert_eq!(
            infer_type(&q2, &env()).unwrap(),
            CvType::set(CvType::tuple([d0(), d0(), d0()]))
        );
        let opaque = Query::rel("R").map(ValueFn::custom(|v| v.clone()));
        assert!(infer_type(&opaque, &env()).is_err());
    }

    #[test]
    fn scalar_outputs() {
        assert_eq!(
            infer_type(&Query::Even(Box::new(Query::rel("R"))), &env()).unwrap(),
            CvType::bool()
        );
        assert_eq!(
            infer_type(&Query::EqAdom(Box::new(Query::rel("R"))), &env()).unwrap(),
            CvType::relation(BaseType::Domain(genpar_value::DomainId(0)), 2)
        );
    }

    #[test]
    fn select_preserves_type() {
        let q = Query::rel("R").select(Pred::eq_cols(0, 1));
        assert_eq!(infer_type(&q, &env()).unwrap(), env()["R"]);
    }

    #[test]
    fn singleton_flatten_powerset() {
        let t = infer_type(&Query::Singleton(Box::new(Query::rel("R"))), &env()).unwrap();
        assert_eq!(t, CvType::set(env()["R"].clone()));
        let back = infer_type(
            &Query::Flatten(Box::new(Query::Singleton(Box::new(Query::rel("R"))))),
            &env(),
        )
        .unwrap();
        assert_eq!(back, env()["R"]);
        let ps = infer_type(&Query::Powerset(Box::new(Query::rel("R"))), &env()).unwrap();
        assert_eq!(ps, CvType::set(env()["R"].clone()));
    }

    #[test]
    fn literal_typing() {
        use genpar_value::parse::parse_value;
        let v = parse_value("{(a, 1)}").unwrap();
        assert_eq!(
            type_of_value(&v),
            CvType::set(CvType::tuple([d0(), CvType::int()]))
        );
        // empty set defaults its element type
        assert_eq!(type_of_value(&Value::empty_set()), CvType::set(d0()));
    }

    /// Inferred types agree with the evaluator on concrete data.
    #[test]
    fn inference_agrees_with_evaluation() {
        use crate::eval::{eval, Db};
        use genpar_value::parse::parse_value;
        let data = parse_value("{(a, b), (b, c)}").unwrap();
        let db = Db::new().with("R", data.clone()).with("S", data);
        for q in [
            Query::rel("R").project([1, 0]),
            Query::rel("R").nest([1]),
            Query::rel("R").select_hat(0, 1),
            Query::rel("R").product(Query::rel("S")),
            Query::rel("R").map(ValueFn::Proj(0)),
            Query::Powerset(Box::new(Query::rel("R").project([0]))),
        ] {
            let t = infer_type(&q, &env()).unwrap();
            let v = eval(&q, &db).unwrap();
            assert!(v.has_type(&t), "{q} : inferred {t} but value {v}");
        }
    }
}
