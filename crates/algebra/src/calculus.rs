//! A safe-range relational calculus fragment, for Proposition 3.3.
//!
//! The paper classifies calculus queries by how formulas are built:
//! "the functions expressed in the relational calculus, using only atomic
//! formulas `R(x̄)` with no repeated variables, using `∨` on formulas with
//! the same free variables, using `∧` on formulas with disjoint variable
//! sets, and using `∃`, are fully generic for both modes" (Prop 3.3).
//! Adding equality atoms `x = y` (or repeated variables, which abbreviate
//! them) leaves the fragment.
//!
//! Formulas here are evaluated under active-domain semantics; the
//! evaluator returns the set of assignments to the free variables, as
//! tuples ordered by variable index.

use crate::eval::{Db, EvalError};
use genpar_value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A first-order variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A calculus formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Atomic `R(x₁,…,xₙ)`; variables may repeat (repetition implicitly
    /// uses equality and leaves the Prop 3.3 fragment).
    Atom(String, Vec<Var>),
    /// Equality atom `x = y` (outside the fragment).
    Eq(Var, Var),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Existential quantification.
    Exists(Var, Box<Formula>),
}

impl Formula {
    /// `R(x̄)` helper.
    pub fn atom(rel: impl Into<String>, vars: impl IntoIterator<Item = u32>) -> Formula {
        Formula::Atom(rel.into(), vars.into_iter().map(Var).collect())
    }
    /// Conjunction helper.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }
    /// Disjunction helper.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }
    /// Existential helper.
    pub fn exists(v: u32, body: Formula) -> Formula {
        Formula::Exists(Var(v), Box::new(body))
    }

    /// Free variables, sorted.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Formula::Atom(_, vs) => vs.iter().copied().collect(),
            Formula::Eq(a, b) => [*a, *b].into_iter().collect(),
            Formula::And(a, b) | Formula::Or(a, b) => {
                let mut s = a.free_vars();
                s.extend(b.free_vars());
                s
            }
            Formula::Exists(v, body) => {
                let mut s = body.free_vars();
                s.remove(v);
                s
            }
        }
    }

    /// Is the formula inside the Proposition 3.3 fragment?
    ///
    /// * atoms have no repeated variables and there are no `Eq` atoms,
    /// * every `∨` joins formulas with the *same* free variables,
    /// * every `∧` joins formulas with *disjoint* free variables.
    pub fn in_prop_3_3_fragment(&self) -> bool {
        match self {
            Formula::Atom(_, vs) => {
                let mut seen = BTreeSet::new();
                vs.iter().all(|v| seen.insert(*v))
            }
            Formula::Eq(..) => false,
            Formula::Or(a, b) => {
                a.free_vars() == b.free_vars()
                    && a.in_prop_3_3_fragment()
                    && b.in_prop_3_3_fragment()
            }
            Formula::And(a, b) => {
                a.free_vars().is_disjoint(&b.free_vars())
                    && a.in_prop_3_3_fragment()
                    && b.in_prop_3_3_fragment()
            }
            Formula::Exists(_, body) => body.in_prop_3_3_fragment(),
        }
    }

    /// Evaluate under active-domain semantics: the result is the set of
    /// satisfying assignments to the free variables, each a tuple in
    /// ascending variable order.
    pub fn eval(&self, db: &Db) -> Result<Value, EvalError> {
        let free: Vec<Var> = self.free_vars().into_iter().collect();
        let adom: Vec<Value> = db.active_domain().into_iter().collect();
        let mut out = BTreeSet::new();
        let mut assignment: BTreeMap<Var, Value> = BTreeMap::new();
        enumerate_assignments(&free, 0, &adom, &mut assignment, &mut |asg| {
            if self.holds(asg, &adom, db)? {
                out.insert(Value::Tuple(free.iter().map(|v| asg[v].clone()).collect()));
            }
            Ok(())
        })?;
        Ok(Value::Set(out))
    }

    /// Satisfaction under an assignment of all free variables.
    fn holds(
        &self,
        asg: &BTreeMap<Var, Value>,
        adom: &[Value],
        db: &Db,
    ) -> Result<bool, EvalError> {
        match self {
            Formula::Atom(rel, vs) => {
                let r = db
                    .get(rel)
                    .ok_or_else(|| EvalError::UnknownRelation(rel.clone()))?;
                let s = r.as_set().ok_or_else(|| EvalError::Shape {
                    op: "calculus atom",
                    found: r.to_string(),
                })?;
                let tuple = Value::Tuple(vs.iter().map(|v| asg[v].clone()).collect());
                Ok(s.contains(&tuple))
            }
            Formula::Eq(a, b) => Ok(asg[a] == asg[b]),
            Formula::And(a, b) => Ok(a.holds(asg, adom, db)? && b.holds(asg, adom, db)?),
            Formula::Or(a, b) => Ok(a.holds(asg, adom, db)? || b.holds(asg, adom, db)?),
            Formula::Exists(v, body) => {
                for d in adom {
                    let mut asg2 = asg.clone();
                    asg2.insert(*v, d.clone());
                    if body.holds(&asg2, adom, db)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }
}

fn enumerate_assignments(
    vars: &[Var],
    i: usize,
    adom: &[Value],
    asg: &mut BTreeMap<Var, Value>,
    f: &mut impl FnMut(&BTreeMap<Var, Value>) -> Result<(), EvalError>,
) -> Result<(), EvalError> {
    if i == vars.len() {
        return f(asg);
    }
    for d in adom {
        asg.insert(vars[i], d.clone());
        enumerate_assignments(vars, i + 1, adom, asg, f)?;
    }
    asg.remove(&vars[i]);
    Ok(())
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom(r, vs) => {
                write!(f, "{r}(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Formula::Exists(v, body) => write!(f, "∃{v}.{body}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpar_value::parse::parse_value;

    fn db() -> Db {
        Db::new()
            .with("R", parse_value("{(a, b), (b, c)}").unwrap())
            .with("S", parse_value("{(c)}").unwrap())
    }

    #[test]
    fn atom_evaluates_to_relation() {
        let f = Formula::atom("R", [0, 1]);
        assert_eq!(
            f.eval(&db()).unwrap(),
            parse_value("{(a, b), (b, c)}").unwrap()
        );
    }

    #[test]
    fn exists_projects() {
        // ∃x1. R(x0, x1)  ≡ π₁(R)
        let f = Formula::exists(1, Formula::atom("R", [0, 1]));
        assert_eq!(f.eval(&db()).unwrap(), parse_value("{(a), (b)}").unwrap());
    }

    #[test]
    fn disjunction_same_vars_is_union() {
        // R(x0,x1) ∨ R(x1,x0): same free vars
        let f = Formula::atom("R", [0, 1]).or(Formula::atom("R", [1, 0]));
        let got = f.eval(&db()).unwrap();
        assert_eq!(
            got,
            parse_value("{(a, b), (b, c), (b, a), (c, b)}").unwrap()
        );
    }

    #[test]
    fn conjunction_disjoint_vars_is_product() {
        // R(x0,x1) ∧ S(x2)
        let f = Formula::atom("R", [0, 1]).and(Formula::atom("S", [2]));
        let got = f.eval(&db()).unwrap();
        assert_eq!(got, parse_value("{(a, b, c), (b, c, c)}").unwrap());
    }

    #[test]
    fn equality_atom_selects() {
        // R(x0,x1) ∧ x0 = x1 — empty on our data
        let f = Formula::atom("R", [0, 1]).and(Formula::Eq(Var(0), Var(1)));
        // note: this ∧ has non-disjoint vars — it evaluates fine, it just
        // leaves the fragment
        assert_eq!(f.eval(&db()).unwrap(), Value::empty_set());
    }

    #[test]
    fn repeated_variable_atom_is_diagonal() {
        // R(x0, x0)
        let f = Formula::Atom("R".into(), vec![Var(0), Var(0)]);
        assert_eq!(f.eval(&db()).unwrap(), Value::empty_set());
        let db2 = Db::new().with("R", parse_value("{(a, a), (a, b)}").unwrap());
        assert_eq!(f.eval(&db2).unwrap(), parse_value("{(a)}").unwrap());
    }

    #[test]
    fn fragment_membership_prop_3_3() {
        // in the fragment:
        assert!(Formula::atom("R", [0, 1]).in_prop_3_3_fragment());
        assert!(Formula::exists(1, Formula::atom("R", [0, 1])).in_prop_3_3_fragment());
        assert!(Formula::atom("R", [0, 1])
            .or(Formula::atom("R", [0, 1]))
            .in_prop_3_3_fragment());
        assert!(Formula::atom("R", [0, 1])
            .and(Formula::atom("S", [2]))
            .in_prop_3_3_fragment());
        // out of the fragment:
        assert!(!Formula::Atom("R".into(), vec![Var(0), Var(0)]).in_prop_3_3_fragment());
        assert!(!Formula::Eq(Var(0), Var(1)).in_prop_3_3_fragment());
        assert!(!Formula::atom("R", [0, 1])
            .or(Formula::atom("S", [0]))
            .in_prop_3_3_fragment()); // different free vars
        assert!(!Formula::atom("R", [0, 1])
            .and(Formula::atom("R", [1, 2]))
            .in_prop_3_3_fragment()); // overlapping vars (a join!)
    }

    #[test]
    fn free_vars_respect_binders() {
        let f = Formula::exists(0, Formula::atom("R", [0, 1]));
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), vec![Var(1)]);
    }

    #[test]
    fn display_formulas() {
        let f = Formula::exists(1, Formula::atom("R", [0, 1]).and(Formula::atom("S", [2])));
        assert_eq!(f.to_string(), "∃x1.(R(x0,x1) ∧ S(x2))");
    }

    #[test]
    fn unknown_relation_errors() {
        let f = Formula::atom("Z", [0]);
        assert!(matches!(f.eval(&db()), Err(EvalError::UnknownRelation(_))));
    }
}

/// Translate a Proposition 3.3 fragment formula to the algebra (the
/// classical calculus→algebra direction, restricted to the fragment —
/// which is exactly what makes the translation need no equality
/// operators: atoms become projections, ∧ a product, ∨ a union, ∃ a
/// projection-out).
///
/// Returns the query together with the output column order (the sorted
/// free variables), or `None` if the formula is outside the fragment or
/// contains a vacuous ∃ (a quantifier over a variable not free in its
/// body — whose active-domain semantics is not expressible without an
/// adom relation).
pub fn to_algebra(f: &Formula) -> Option<(crate::expr::Query, Vec<Var>)> {
    use crate::expr::Query;
    if !f.in_prop_3_3_fragment() {
        return None;
    }
    match f {
        Formula::Atom(rel, vars) => {
            let mut sorted: Vec<Var> = vars.clone();
            sorted.sort();
            // π reordering the atom's columns into sorted-variable order
            let perm: Vec<usize> = sorted
                .iter()
                .map(|v| vars.iter().position(|w| w == v).expect("var present"))
                .collect();
            let q = Query::Project(perm, Box::new(Query::Rel(rel.clone())));
            Some((q, sorted))
        }
        Formula::Eq(..) => None,
        Formula::And(a, b) => {
            let (qa, va) = to_algebra(a)?;
            let (qb, vb) = to_algebra(b)?;
            // disjoint variable sets: product, then interleave columns
            let mut all: Vec<Var> = va.iter().chain(vb.iter()).copied().collect();
            all.sort();
            let perm: Vec<usize> = all
                .iter()
                .map(|v| {
                    va.iter()
                        .position(|w| w == v)
                        .or_else(|| vb.iter().position(|w| w == v).map(|i| i + va.len()))
                        .expect("var present on one side")
                })
                .collect();
            let q = Query::Project(perm, Box::new(Query::Product(Box::new(qa), Box::new(qb))));
            Some((q, all))
        }
        Formula::Or(a, b) => {
            let (qa, va) = to_algebra(a)?;
            let (qb, vb) = to_algebra(b)?;
            debug_assert_eq!(va, vb, "fragment guarantees equal free vars");
            Some((Query::Union(Box::new(qa), Box::new(qb)), va))
        }
        Formula::Exists(v, body) => {
            let (qb, vars) = to_algebra(body)?;
            let pos = vars.iter().position(|w| w == v)?; // None if vacuous
            let keep: Vec<usize> = (0..vars.len()).filter(|&i| i != pos).collect();
            let out_vars: Vec<Var> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, v)| *v)
                .collect();
            Some((Query::Project(keep, Box::new(qb)), out_vars))
        }
    }
}

#[cfg(test)]
mod translation_tests {
    use super::*;
    use crate::eval::eval;
    use genpar_value::parse::parse_value;

    fn db() -> Db {
        Db::new()
            .with("R", parse_value("{(a, b), (b, c), (c, a)}").unwrap())
            .with("S", parse_value("{(b), (c)}").unwrap())
    }

    fn check_agree(f: &Formula) {
        let (q, _) = to_algebra(f).unwrap_or_else(|| panic!("should translate: {f}"));
        let calc = f.eval(&db()).unwrap();
        let alg = eval(&q, &db()).unwrap();
        assert_eq!(calc, alg, "{f} vs {q}");
    }

    #[test]
    fn atom_translation_reorders() {
        check_agree(&Formula::atom("R", [0, 1]));
        // reversed variable order forces a reordering projection
        check_agree(&Formula::atom("R", [1, 0]));
    }

    #[test]
    fn exists_translation_projects() {
        check_agree(&Formula::exists(1, Formula::atom("R", [0, 1])));
        check_agree(&Formula::exists(0, Formula::atom("R", [0, 1])));
    }

    #[test]
    fn and_translation_interleaves_columns() {
        // R(x0, x2) ∧ S(x1): sorted output (x0, x1, x2) interleaves sides
        let f = Formula::atom("R", [0, 2]).and(Formula::atom("S", [1]));
        check_agree(&f);
    }

    #[test]
    fn or_translation_unions() {
        let f = Formula::atom("R", [0, 1]).or(Formula::atom("R", [1, 0]));
        check_agree(&f);
    }

    #[test]
    fn nested_combination() {
        // ∃x1. (R(x0,x1) ∧ S(x2)) ∨ (R(x2,...)) — build a richer one
        let f = Formula::exists(1, Formula::atom("R", [0, 1]).and(Formula::atom("S", [2])));
        check_agree(&f);
    }

    #[test]
    fn out_of_fragment_returns_none() {
        assert!(to_algebra(&Formula::Eq(Var(0), Var(1))).is_none());
        assert!(to_algebra(&Formula::Atom("R".into(), vec![Var(0), Var(0)])).is_none());
        // vacuous ∃
        assert!(to_algebra(&Formula::exists(9, Formula::atom("R", [0, 1]))).is_none());
    }

    #[test]
    fn translated_queries_are_fully_generic_syntactically() {
        // the translation only uses π (distinct cols), ×, ∪ — i.e. the
        // Corollary 3.2 sub-language; Prop 3.3 via translation.
        let f = Formula::exists(1, Formula::atom("R", [1, 0]).and(Formula::atom("S", [2])))
            .or(Formula::exists(9, Formula::atom("R", [0, 2])).or(Formula::atom("R", [0, 2])));
        // note: inner Exists(9,…) is vacuous → whole thing fails to
        // translate; use the valid part
        let g = Formula::exists(1, Formula::atom("R", [1, 0]).and(Formula::atom("S", [2])));
        assert!(to_algebra(&f).is_none());
        let (q, _) = to_algebra(&g).unwrap();
        // no equality anywhere in the translated query
        let mut uses_eq = false;
        q.visit(&mut |node| {
            if matches!(
                node,
                crate::expr::Query::Select(..)
                    | crate::expr::Query::Join(..)
                    | crate::expr::Query::Intersect(..)
                    | crate::expr::Query::Difference(..)
            ) {
                uses_eq = true;
            }
        });
        assert!(!uses_eq);
    }
}
