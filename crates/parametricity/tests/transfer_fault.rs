//! Fault injection at the `transfer.check` site: an armed fault must
//! surface as the transfer check's structured `Err`, never a panic.
//!
//! Lives in its own integration-test binary because the fault table is
//! process-global.

use genpar_mapping::MappingFamily;
use genpar_parametricity::transfer::transfer_check_unary;
use genpar_value::parse::parse_value;
use genpar_value::{CvType, Value};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn check(s: &str, s2: &str) -> Result<(), String> {
    let family = MappingFamily::atoms(&[(4, 0), (8, 0), (5, 1), (9, 1), (6, 2)]);
    let elem = CvType::domain(0);
    let ident = |v: &Value| v.clone();
    let s = parse_value(s).unwrap();
    let s2 = parse_value(s2).unwrap();
    transfer_check_unary(&family, &elem, &ident, &ident, &s, &s2)
}

#[test]
fn transfer_fault_is_structured_error() {
    let _g = LOCK.lock().unwrap();
    genpar_guard::arm_faults("transfer.check:1").unwrap();
    let err = check("{e, f}", "{a, b}").unwrap_err();
    genpar_guard::disarm_faults();
    assert!(err.contains("transfer.check"), "{err}");
    assert!(err.contains("injected fault"), "{err}");
}

#[test]
fn transfer_succeeds_when_disarmed() {
    let _g = LOCK.lock().unwrap();
    genpar_guard::disarm_faults();
    check("{e, f}", "{a, b}").unwrap();
}

#[test]
fn nth_transfer_fault_spares_earlier_checks() {
    let _g = LOCK.lock().unwrap();
    genpar_guard::arm_faults("transfer.check:2").unwrap();
    check("{e}", "{a}").unwrap(); // hit 1 passes
    let err = check("{e}", "{a}").unwrap_err(); // hit 2 fires
    genpar_guard::disarm_faults();
    assert!(err.contains("hit 2"), "{err}");
}
