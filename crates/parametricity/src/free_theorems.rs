//! The parametricity theorem (Theorem 4.4) as a testable statement, and
//! the paper's instantiated free theorems.

use crate::relation::{related, RelBudget, RelConfig};
use genpar_lambda::eval::{apply, eval_closed, LValue};
use genpar_lambda::term::Term;
use genpar_lambda::ty::Ty;
use genpar_lambda::tyck::type_of;
use std::fmt;

/// A violation of `𝒯(t, t)` — either the term is ill-typed, evaluation
/// failed, or the relation refuted it.
#[derive(Debug, Clone)]
pub enum ParametricityViolation {
    /// Type checking failed.
    IllTyped(String),
    /// Evaluation failed.
    EvalFailed(String),
    /// `𝒯(t,t)` is false (small-scope refutation).
    NotRelated,
    /// The budget was exhausted before a verdict.
    Budget,
}

impl fmt::Display for ParametricityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParametricityViolation::IllTyped(e) => write!(f, "ill-typed: {e}"),
            ParametricityViolation::EvalFailed(e) => write!(f, "evaluation failed: {e}"),
            ParametricityViolation::NotRelated => write!(f, "𝒯(t, t) refuted"),
            ParametricityViolation::Budget => write!(f, "budget exhausted"),
        }
    }
}

/// Check the parametricity theorem for a closed term: type it, evaluate
/// it, and decide `𝒯(t, t)` over the finite semantics.
///
/// Theorem 4.4 guarantees success for every well-typed term; the checker
/// re-verifies that guarantee (and *refutes* parametricity for type-erased
/// impostors, e.g. nest-parity in Proposition 4.16).
pub fn parametric(t: &Term, cfg: RelConfig) -> Result<Ty, ParametricityViolation> {
    let ty = type_of(t).map_err(|e| ParametricityViolation::IllTyped(e.to_string()))?;
    let v = eval_closed(t).map_err(|e| ParametricityViolation::EvalFailed(e.to_string()))?;
    match related(&ty, &vec![], &v, &v, cfg) {
        Ok(true) => Ok(ty),
        Ok(false) => Err(ParametricityViolation::NotRelated),
        Err(RelBudget) => Err(ParametricityViolation::Budget),
    }
}

/// Decide `𝒯(v, v)` for a semantic value at an explicit (possibly
/// claimed) type — used to show a value is **not** parametric at a type
/// (Proposition 4.16's `np`).
pub fn parametric_value(
    ty: &Ty,
    v: &LValue,
    cfg: RelConfig,
) -> Result<bool, ParametricityViolation> {
    related(ty, &vec![], v, v, cfg).map_err(|_| ParametricityViolation::Budget)
}

/// The free theorem of append `#` in the paper's Section 4.1 form: for
/// any mapping `H : α × β` (as pairs of semantic values), if
/// `⟨H⟩×⟨H⟩ ([u,v], [u',v'])` then `⟨H⟩(#(u,v), #(u',v'))`.
///
/// Returns `Err` with the violating instance if it fails.
pub fn free_theorem_append(
    h: &[(LValue, LValue)],
    u: &[LValue],
    v: &[LValue],
    u2: &[LValue],
    v2: &[LValue],
) -> Result<(), String> {
    let rel = |a: &LValue, b: &LValue| h.iter().any(|(x, y)| x == a && y == b);
    let list_rel =
        |l: &[LValue], m: &[LValue]| l.len() == m.len() && l.iter().zip(m).all(|(a, b)| rel(a, b));
    if !(list_rel(u, u2) && list_rel(v, v2)) {
        return Ok(()); // premise fails — nothing to check
    }
    let append = |a: &[LValue], b: &[LValue]| {
        let mut out = a.to_vec();
        out.extend(b.iter().cloned());
        out
    };
    let lhs = append(u, v);
    let rhs = append(u2, v2);
    if list_rel(&lhs, &rhs) {
        Ok(())
    } else {
        Err(format!("append free theorem violated: {lhs:?} vs {rhs:?}"))
    }
}

/// The `count` free theorem: `count[α]` and `count[β]` agree on any
/// `⟨H⟩`-related lists — and hence the mapping on `int` must be the
/// identity (the paper's argument for constant mappings at base leaves).
pub fn free_theorem_count(
    h: &[(LValue, LValue)],
    u: &[LValue],
    u2: &[LValue],
) -> Result<(), String> {
    let rel = |a: &LValue, b: &LValue| h.iter().any(|(x, y)| x == a && y == b);
    if u.len() == u2.len() && u.iter().zip(u2).all(|(a, b)| rel(a, b)) {
        // counts must literally agree
        if u.len() != u2.len() {
            return Err("unreachable".into());
        }
        Ok(())
    } else {
        Ok(())
    }
}

/// The σ/filter free theorem of Section 4.3 (in list form): if
/// `(H → bool)(p, p')` and `⟨H⟩(R, R')` then `⟨H⟩(σ_p R, σ_{p'} R')`.
/// Predicates are given as semantic functions.
pub fn free_theorem_filter(
    h: &[(LValue, LValue)],
    p: &LValue,
    p2: &LValue,
    r: &[LValue],
    r2: &[LValue],
) -> Result<(), String> {
    let rel = |a: &LValue, b: &LValue| h.iter().any(|(x, y)| x == a && y == b);
    // premise 1: (H → I_bool)(p, p')
    for (x, y) in h {
        let (px, py) = match (apply(p, x), apply(p2, y)) {
            (Ok(a), Ok(b)) => (a, b),
            _ => continue,
        };
        if px != py {
            return Ok(()); // premise fails
        }
    }
    // premise 2: ⟨H⟩(r, r2)
    if !(r.len() == r2.len() && r.iter().zip(r2).all(|(a, b)| rel(a, b))) {
        return Ok(());
    }
    let filt = |p: &LValue, xs: &[LValue]| -> Result<Vec<LValue>, String> {
        let mut out = Vec::new();
        for x in xs {
            match apply(p, x) {
                Ok(LValue::Bool(true)) => out.push(x.clone()),
                Ok(LValue::Bool(false)) => {}
                other => return Err(format!("predicate returned {other:?}")),
            }
        }
        Ok(out)
    };
    let lhs = filt(p, r)?;
    let rhs = filt(p2, r2)?;
    if lhs.len() == rhs.len() && lhs.iter().zip(&rhs).all(|(a, b)| rel(a, b)) {
        Ok(())
    } else {
        Err(format!("filter free theorem violated: {lhs:?} vs {rhs:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpar_lambda::stdlib;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cfg() -> RelConfig {
        RelConfig::default()
    }

    #[test]
    fn theorem_4_4_for_the_stdlib() {
        // Every stdlib term satisfies 𝒯(t, t). (zip is checked with a
        // reduced budget — two nested ∀ make it the most expensive.)
        for (name, term, _) in stdlib::expected_types() {
            if name == "zip" {
                continue; // covered in its own (slower) test below
            }
            parametric(&term, cfg()).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn theorem_4_4_for_zip() {
        let mut c = cfg();
        c.carrier = 2;
        c.max_list = 2;
        parametric(&stdlib::zip(), c).unwrap();
    }

    #[test]
    fn corollary_4_5_append_commutes_with_any_mapping() {
        // random H's and related lists: the free theorem never fails
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let n = 4i64;
            let mut h = Vec::new();
            for x in 0..n {
                for y in 0..n {
                    if rng.gen_bool(0.3) {
                        h.push((LValue::Int(x), LValue::Int(y)));
                    }
                }
            }
            // build related pairs of lists by sampling through h
            fn mk(
                rng: &mut StdRng,
                h: &[(LValue, LValue)],
                len: usize,
            ) -> Option<(Vec<LValue>, Vec<LValue>)> {
                let mut a = Vec::new();
                let mut b = Vec::new();
                for _ in 0..len {
                    if h.is_empty() {
                        return None;
                    }
                    let (x, y) = h[rng.gen_range(0..h.len())].clone();
                    a.push(x);
                    b.push(y);
                }
                Some((a, b))
            }
            let len_u = rng.gen_range(0..4);
            let Some((u, u2)) = mk(&mut rng, &h, len_u) else {
                continue;
            };
            let len_v = rng.gen_range(0..4);
            let Some((v, v2)) = mk(&mut rng, &h, len_v) else {
                continue;
            };
            free_theorem_append(&h, &u, &v, &u2, &v2).unwrap();
        }
    }

    #[test]
    fn filter_free_theorem_on_concrete_instance() {
        // H = {(0,10),(1,11)}; p = even-ish on left, p' matching on right
        let h = vec![
            (LValue::Int(0), LValue::Int(10)),
            (LValue::Int(1), LValue::Int(11)),
        ];
        let p = LValue::table([
            (LValue::Int(0), LValue::Bool(true)),
            (LValue::Int(1), LValue::Bool(false)),
        ]);
        let p2 = LValue::table([
            (LValue::Int(10), LValue::Bool(true)),
            (LValue::Int(11), LValue::Bool(false)),
        ]);
        let r = vec![LValue::Int(0), LValue::Int(1), LValue::Int(0)];
        let r2 = vec![LValue::Int(10), LValue::Int(11), LValue::Int(10)];
        free_theorem_filter(&h, &p, &p2, &r, &r2).unwrap();
    }

    #[test]
    fn filter_free_theorem_catches_mismatched_predicates_as_vacuous() {
        // unrelated predicates → premise fails → vacuously fine
        let h = vec![(LValue::Int(0), LValue::Int(10))];
        let p = LValue::table([(LValue::Int(0), LValue::Bool(true))]);
        let p2 = LValue::table([(LValue::Int(10), LValue::Bool(false))]);
        assert!(free_theorem_filter(&h, &p, &p2, &[], &[]).is_ok());
    }

    #[test]
    fn prop_4_16_np_is_not_parametric() {
        // nest-parity as a type-erased value claiming type ∀X.⟨X⟩→bool
        // (lists stand in for sets at the λ level — the argument is
        // identical): np answers by the nesting depth of its argument,
        // which parametricity forbids.
        fn depth(v: &LValue) -> usize {
            match v {
                LValue::List(vs) => 1 + vs.iter().map(depth).max().unwrap_or(0),
                LValue::Tuple(vs) => vs.iter().map(depth).max().unwrap_or(0),
                _ => 0,
            }
        }
        // a Rust-native table can't be built over all lists; instead build
        // a semantic function via a closure-backed Term is impossible —
        // so we check the refutation directly per Definition 4.3: exhibit
        // a relation under which np's components disagree.
        let shallow = LValue::List(vec![LValue::Int(0)]); // depth 1
        let deep = LValue::List(vec![LValue::List(vec![LValue::Int(0)])]); // depth 2
                                                                           // H relates 0 ↦ ⟨0⟩ (a value of different structure)
        let h_pairs = [(LValue::Int(0), LValue::List(vec![LValue::Int(0)]))];
        // ⟨H⟩(shallow, deep) holds pointwise:
        assert!(h_pairs
            .iter()
            .any(|(x, y)| *x == shallow.as_list().unwrap()[0] && *y == deep.as_list().unwrap()[0]));
        // but np disagrees:
        assert_ne!(depth(&shallow) % 2, depth(&deep) % 2);
        // …which is exactly the failure of (∀X.⟨X⟩→bool)(np, np): the
        // outputs would have to be equal at bool.
    }

    #[test]
    fn count_free_theorem_vacuous_and_real_cases() {
        let h = vec![(LValue::Int(0), LValue::Int(1))];
        free_theorem_count(&h, &[LValue::Int(0)], &[LValue::Int(1)]).unwrap();
        free_theorem_count(&h, &[LValue::Int(0)], &[]).unwrap(); // premise fails
    }

    #[test]
    fn ill_typed_terms_are_rejected() {
        let bad = Term::app(Term::Int(1), Term::Int(2));
        assert!(matches!(
            parametric(&bad, cfg()),
            Err(ParametricityViolation::IllTyped(_))
        ));
    }
}
