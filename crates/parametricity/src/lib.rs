#![warn(missing_docs)]
//! # genpar-parametricity — the parametricity theorem, executable
//!
//! Section 4 of the paper relates genericity to Reynolds/Wadler
//! parametricity: every type expression denotes a *mapping constructor*
//! (Definitions 4.2–4.3 extend Section 2's constructors with `→` and
//! `∀`), and the parametricity theorem states `𝒯(l, l)` for every
//! closed term `l : T` of the 2nd-order λ-calculus.
//!
//! * [`relation`] — the logical relation `𝒯` as a decision procedure
//!   over the finite set-theoretic semantics of `genpar-lambda`:
//!   base types are identities, `→` is Definition 4.2 (related inputs ↦
//!   related outputs, decided by enumerating the input relation), `∀` is
//!   Definition 4.3 (quantification over relations, realized by
//!   exhaustive-or-sampled relation environments), `∀X⁼` quantifies over
//!   partial bijections only.
//! * [`free_theorems`] — `parametric(t)`: check `𝒯(t, t)` for a term;
//!   plus the paper's instantiated free theorems (append `#`, `zip`,
//!   `count`, `σ`, `ins`) stated and tested in their Section 4.1 forms,
//!   and the Proposition 4.16 refutation that nest-parity is not
//!   parametric.
//! * [`transfer`] — Section 4.2's list↔set machinery: the `toset`
//!   analogy (Definition 4.7), the `s-to-l` / `l-to-s` / `LtoS` type
//!   classifiers (Definitions 4.8/4.10/4.12), both halves of Lemma 4.6
//!   (constructively), and checkers for Theorem 4.13 / Corollary 4.15
//!   that pull parametricity from list functions to their analogous set
//!   functions (`# ↦ ∪` and friends).

pub mod free_theorems;
pub mod laws;
pub mod naturality;
pub mod relation;
pub mod transfer;

pub use free_theorems::{parametric, ParametricityViolation};
pub use relation::{related, FinRel, RelConfig, RelEnv};
pub use transfer::{LsTy, TypeClass};
