//! Deriving algebraic laws from types, automatically.
//!
//! Section 4.4's closing thought: "many algebraic laws can be derived
//! from parametricity. It follows that, hopefully, type checking and type
//! inference algorithms can be used to verify or discover such properties
//! automatically." This module does exactly that: it pattern-matches a
//! polymorphic set-operation's type ([`crate::transfer::LsTy`]) and
//! *derives* the commutation law the parametricity theorem licenses —
//! `map(f)` being the `rel`-extension of the functional mapping `f`:
//!
//! * `op : ∀X.{X} → {X}`        ⟹ `map(f) ∘ op = op ∘ map(f)`, any `f`;
//! * `op : ∀X.{X} × {X} → {X}`  ⟹ `map(f)(op(a,b)) = op(map(f)a, map(f)b)`;
//! * `op : ∀X.X → {X} → {X}`    ⟹ `map(f)(op(c, s)) = op(f(c), map(f)s)`
//!   (the `ins` shape of Section 4.3);
//! * the same shapes under `∀X⁼` ⟹ the law holds for **injective** `f`
//!   only (set difference is the worked example).
//!
//! Each derived law carries a dynamic checker, so "discovered" laws are
//! immediately validated — and the `∀X⁼` restriction is *witnessed*: the
//! checker finds concrete violations when a non-injective `f` is applied
//! to an equality-bounded operation.

use crate::transfer::LsTy;
use genpar_value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// The shape of a derived commutation law.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LawShape {
    /// `map(f) ∘ op = op ∘ map(f)` for unary set ops.
    Unary,
    /// `map(f)(op(a, b)) = op(map(f) a, map(f) b)` for binary set ops.
    Binary,
    /// `map(f)(op(c, s)) = op(f c, map(f) s)` for element-parameterized
    /// ops (`ins`).
    ElementThenSet,
}

/// A law derived from a type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DerivedLaw {
    /// The commutation shape.
    pub shape: LawShape,
    /// Does the law require `f` injective (the type was `∀X⁼`)?
    pub requires_injective: bool,
}

impl fmt::Display for DerivedLaw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let eq = if self.requires_injective {
            " (for injective f only — ∀X⁼)"
        } else {
            " (for ANY f)"
        };
        match self.shape {
            LawShape::Unary => write!(f, "map(f) ∘ op = op ∘ map(f){eq}"),
            LawShape::Binary => write!(f, "map(f)(op(a,b)) = op(map(f)a, map(f)b){eq}"),
            LawShape::ElementThenSet => write!(f, "map(f)(op(c,s)) = op(f c, map(f)s){eq}"),
        }
    }
}

/// Derive the commutation law for an operation of the given type scheme.
/// `eq_bounded` says whether the (implicit, outermost) quantifier is
/// `∀X⁼`. Returns `None` if the type has none of the recognized shapes.
pub fn derive_law(ty: &LsTy, eq_bounded: bool) -> Option<DerivedLaw> {
    let x = LsTy::var(0);
    let set_x = LsTy::set(x.clone());
    let shape = if *ty == LsTy::arrow(set_x.clone(), set_x.clone()) {
        LawShape::Unary
    } else if *ty == LsTy::arrow(LsTy::prod([set_x.clone(), set_x.clone()]), set_x.clone()) {
        LawShape::Binary
    } else if *ty == LsTy::arrow(x, LsTy::arrow(set_x.clone(), set_x)) {
        LawShape::ElementThenSet
    } else {
        return None;
    };
    Some(DerivedLaw {
        shape,
        requires_injective: eq_bounded,
    })
}

/// `map(f)` on a set value.
fn map_set(f: &dyn Fn(&Value) -> Value, s: &Value) -> Value {
    Value::set(s.as_set().expect("set operand").iter().map(f))
}

/// A violation of a derived law: the two sides differ on an instance.
#[derive(Debug, Clone)]
pub struct LawViolation {
    /// Rendering of the left-hand side.
    pub lhs: String,
    /// Rendering of the right-hand side.
    pub rhs: String,
}

impl fmt::Display for LawViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "law violated: {} ≠ {}", self.lhs, self.rhs)
    }
}

/// Check a unary law instance.
pub fn check_unary(
    op: &dyn Fn(&Value) -> Value,
    f: &dyn Fn(&Value) -> Value,
    s: &Value,
) -> Result<(), LawViolation> {
    let lhs = map_set(f, &op(s));
    let rhs = op(&map_set(f, s));
    if lhs == rhs {
        Ok(())
    } else {
        Err(LawViolation {
            lhs: lhs.to_string(),
            rhs: rhs.to_string(),
        })
    }
}

/// Check a binary law instance.
pub fn check_binary(
    op: &dyn Fn(&Value, &Value) -> Value,
    f: &dyn Fn(&Value) -> Value,
    a: &Value,
    b: &Value,
) -> Result<(), LawViolation> {
    let lhs = map_set(f, &op(a, b));
    let rhs = op(&map_set(f, a), &map_set(f, b));
    if lhs == rhs {
        Ok(())
    } else {
        Err(LawViolation {
            lhs: lhs.to_string(),
            rhs: rhs.to_string(),
        })
    }
}

/// Check an element-then-set (`ins`) law instance.
pub fn check_element_then_set(
    op: &dyn Fn(&Value, &Value) -> Value,
    f: &dyn Fn(&Value) -> Value,
    c: &Value,
    s: &Value,
) -> Result<(), LawViolation> {
    let lhs = map_set(f, &op(c, s));
    let rhs = op(&f(c), &map_set(f, s));
    if lhs == rhs {
        Ok(())
    } else {
        Err(LawViolation {
            lhs: lhs.to_string(),
            rhs: rhs.to_string(),
        })
    }
}

/// The standard operation catalog with their types — the inputs a
/// law-discovery pass would read off a library's signatures.
pub fn standard_catalog() -> Vec<(&'static str, LsTy, bool)> {
    let x = LsTy::var(0);
    let set_x = || LsTy::set(LsTy::var(0));
    vec![
        (
            "∪",
            LsTy::arrow(LsTy::prod([set_x(), set_x()]), set_x()),
            false,
        ),
        (
            "−",
            LsTy::arrow(LsTy::prod([set_x(), set_x()]), set_x()),
            true, // ∀X⁼
        ),
        ("id", LsTy::arrow(set_x(), set_x()), false),
        ("ins", LsTy::arrow(x, LsTy::arrow(set_x(), set_x())), false),
        (
            "∩",
            LsTy::arrow(LsTy::prod([set_x(), set_x()]), set_x()),
            true, // ∀X⁼
        ),
    ]
}

/// Set union/difference/intersection as closures over `Value`.
pub mod ops {
    use super::*;

    /// `∪`.
    pub fn union(a: &Value, b: &Value) -> Value {
        Value::Set(
            a.as_set()
                .unwrap()
                .union(b.as_set().unwrap())
                .cloned()
                .collect::<BTreeSet<_>>(),
        )
    }

    /// `−`.
    pub fn difference(a: &Value, b: &Value) -> Value {
        Value::Set(
            a.as_set()
                .unwrap()
                .difference(b.as_set().unwrap())
                .cloned()
                .collect::<BTreeSet<_>>(),
        )
    }

    /// `∩`.
    pub fn intersection(a: &Value, b: &Value) -> Value {
        Value::Set(
            a.as_set()
                .unwrap()
                .intersection(b.as_set().unwrap())
                .cloned()
                .collect::<BTreeSet<_>>(),
        )
    }

    /// `ins`.
    pub fn ins(c: &Value, s: &Value) -> Value {
        let mut out = s.as_set().unwrap().clone();
        out.insert(c.clone());
        Value::Set(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpar_value::parse::parse_value;
    use proptest::prelude::*;

    #[test]
    fn derivation_matches_shapes() {
        for (name, ty, eq) in standard_catalog() {
            let law = derive_law(&ty, eq).unwrap_or_else(|| panic!("{name} should derive"));
            match name {
                "∪" | "−" | "∩" => assert_eq!(law.shape, LawShape::Binary, "{name}"),
                "id" => assert_eq!(law.shape, LawShape::Unary),
                "ins" => assert_eq!(law.shape, LawShape::ElementThenSet),
                _ => unreachable!(),
            }
            assert_eq!(law.requires_injective, eq, "{name}");
        }
        // unrecognized shapes derive nothing
        assert!(derive_law(&LsTy::arrow(LsTy::var(0), LsTy::bool()), false).is_none());
    }

    #[test]
    fn law_display_names_the_side_condition() {
        let l = derive_law(
            &LsTy::arrow(
                LsTy::prod([LsTy::set(LsTy::var(0)), LsTy::set(LsTy::var(0))]),
                LsTy::set(LsTy::var(0)),
            ),
            true,
        )
        .unwrap();
        assert!(l.to_string().contains("injective"));
    }

    #[test]
    fn union_law_holds_even_for_collapsing_f() {
        // f glues everything — ∪'s law (no ∀X⁼) still holds
        let collapse = |_: &Value| Value::Int(0);
        check_binary(
            &ops::union,
            &collapse,
            &parse_value("{1, 2}").unwrap(),
            &parse_value("{3}").unwrap(),
        )
        .unwrap();
    }

    #[test]
    fn difference_law_breaks_for_collapsing_f_and_holds_for_injective() {
        // the ∀X⁼ side condition is real: collapse breaks −
        let collapse = |_: &Value| Value::Int(0);
        let a = parse_value("{1, 2}").unwrap();
        let b = parse_value("{2}").unwrap();
        assert!(check_binary(&ops::difference, &collapse, &a, &b).is_err());
        // but an injective f commutes
        let inj = |v: &Value| Value::Int(v.as_int().unwrap() * 2 + 1);
        check_binary(&ops::difference, &inj, &a, &b).unwrap();
    }

    #[test]
    fn ins_law_holds_for_any_f() {
        let collapse = |_: &Value| Value::Int(9);
        check_element_then_set(
            &ops::ins,
            &collapse,
            &Value::Int(5),
            &parse_value("{1, 2}").unwrap(),
        )
        .unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// ∪'s derived law never fails, for arbitrary (possibly
        /// collapsing) functions encoded as modular maps.
        #[test]
        fn union_law_prop(xs in proptest::collection::btree_set(0i64..12, 0..8),
                          ys in proptest::collection::btree_set(0i64..12, 0..8),
                          modulus in 1i64..6) {
            let a = Value::set(xs.iter().map(|&n| Value::Int(n)));
            let b = Value::set(ys.iter().map(|&n| Value::Int(n)));
            let f = move |v: &Value| Value::Int(v.as_int().unwrap() % modulus);
            prop_assert!(check_binary(&ops::union, &f, &a, &b).is_ok());
        }

        /// −'s derived law holds for injective f on every instance.
        #[test]
        fn difference_law_injective_prop(xs in proptest::collection::btree_set(0i64..12, 0..8),
                                         ys in proptest::collection::btree_set(0i64..12, 0..8)) {
            let a = Value::set(xs.iter().map(|&n| Value::Int(n)));
            let b = Value::set(ys.iter().map(|&n| Value::Int(n)));
            let inj = |v: &Value| Value::Int(v.as_int().unwrap() * 7 - 3);
            prop_assert!(check_binary(&ops::difference, &inj, &a, &b).is_ok());
            prop_assert!(check_binary(&ops::intersection, &inj, &a, &b).is_ok());
        }

        /// ins's derived law holds for arbitrary f (regular preservation
        /// suffices — the §4.3 contrast with σ₌c).
        #[test]
        fn ins_law_prop(xs in proptest::collection::btree_set(0i64..12, 0..8),
                        c in 0i64..12, modulus in 1i64..6) {
            let s = Value::set(xs.iter().map(|&n| Value::Int(n)));
            let f = move |v: &Value| Value::Int(v.as_int().unwrap() % modulus);
            prop_assert!(check_element_then_set(&ops::ins, &f, &Value::Int(c), &s).is_ok());
        }
    }
}
