//! Naturality of the set-monad operations, from parametricity.
//!
//! The discussion section notes that the core constructs of the monadic
//! algebra of \[5\] (Breazu-Tannen, Buneman, Wong: *Naturally embedded
//! query languages*) "can be expressed using only regular universal
//! quantification and are thus fully generic", and that "their naturality
//! theorem states that their language is parametric". This module makes
//! the naturality laws executable:
//!
//! * `η` (singleton) is natural: `map(f) ∘ η = η ∘ f`,
//! * `μ` (flatten) is natural: `map(f) ∘ μ = μ ∘ map(map(f))`,
//! * `map` is a functor: `map(id) = id`, `map(g ∘ f) = map(g) ∘ map(f)`.
//!
//! Each law is exactly the free theorem of the operation's polymorphic
//! type (`η : ∀X.X→{X}`, `μ : ∀X.{{X}}→{X}`, instantiated at the
//! *functional* mapping `f` — Section 4.4's reading of `map(f)` as
//! `{f}ʳᵉˡ`).

use genpar_value::Value;
use std::collections::BTreeSet;

/// `η(x) = {x}`.
pub fn eta(x: &Value) -> Value {
    Value::set([x.clone()])
}

/// `μ({S₁, …, Sₙ}) = ⋃ Sᵢ` (panics on non-set-of-sets, like the typed
/// operation would).
pub fn mu(s: &Value) -> Value {
    let outer = s.as_set().expect("μ of a set of sets");
    let mut out = BTreeSet::new();
    for inner in outer {
        out.extend(inner.as_set().expect("μ of a set of sets").iter().cloned());
    }
    Value::Set(out)
}

/// `map(f)(S) = {f(x) : x ∈ S}`.
pub fn map_set(f: &dyn Fn(&Value) -> Value, s: &Value) -> Value {
    Value::set(s.as_set().expect("map over a set").iter().map(f))
}

/// Check `map(f)(η(x)) = η(f(x))` for one instance.
pub fn eta_natural(f: &dyn Fn(&Value) -> Value, x: &Value) -> bool {
    map_set(f, &eta(x)) == eta(&f(x))
}

/// Check `map(f)(μ(S)) = μ(map(map(f))(S))` for one instance.
pub fn mu_natural(f: &dyn Fn(&Value) -> Value, s: &Value) -> bool {
    let lhs = map_set(f, &mu(s));
    let rhs = mu(&map_set(&|inner: &Value| map_set(f, inner), s));
    lhs == rhs
}

/// Check the functor laws for one instance:
/// `map(id) = id` and `map(g ∘ f) = map(g) ∘ map(f)`.
pub fn functor_laws(f: &dyn Fn(&Value) -> Value, g: &dyn Fn(&Value) -> Value, s: &Value) -> bool {
    let id_law = map_set(&|v: &Value| v.clone(), s) == *s;
    let comp = map_set(&|v: &Value| g(&f(v)), s);
    let staged = map_set(g, &map_set(f, s));
    id_law && comp == staged
}

/// The three monad laws for (η, μ) — not naturality, but the companion
/// structure \[5\] relies on:
/// `μ ∘ η = id`, `μ ∘ map(η) = id`, `μ ∘ μ = μ ∘ map(μ)`.
pub fn monad_laws(s_flat: &Value, s_nested3: &Value) -> bool {
    // μ(η(S)) = S
    let left_unit = mu(&eta(s_flat)) == *s_flat;
    // μ(map(η)(S)) = S
    let right_unit = mu(&map_set(&eta, s_flat)) == *s_flat;
    // μ(μ(T)) = μ(map(μ)(T)) for T : {{{X}}}
    let assoc = mu(&mu(s_nested3)) == mu(&map_set(&|v: &Value| mu(v), s_nested3));
    left_unit && right_unit && assoc
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpar_value::parse::parse_value;
    use proptest::prelude::*;

    fn shift(v: &Value) -> Value {
        match v {
            Value::Int(n) => Value::Int(n + 10),
            other => other.clone(),
        }
    }

    fn dup(v: &Value) -> Value {
        Value::tuple([v.clone(), v.clone()])
    }

    #[test]
    fn eta_and_mu_basics() {
        assert_eq!(eta(&Value::Int(1)), parse_value("{1}").unwrap());
        assert_eq!(
            mu(&parse_value("{{1, 2}, {2, 3}, {}}").unwrap()),
            parse_value("{1, 2, 3}").unwrap()
        );
        assert_eq!(mu(&Value::empty_set()), Value::empty_set());
    }

    #[test]
    fn naturality_on_examples() {
        assert!(eta_natural(&shift, &Value::Int(5)));
        assert!(mu_natural(&shift, &parse_value("{{1, 2}, {3}}").unwrap()));
        // a non-injective f still works — that is the point of full
        // genericity of η/μ (collapse is fine)
        let collapse = |_: &Value| Value::Int(0);
        assert!(mu_natural(&collapse, &parse_value("{{1}, {2}}").unwrap()));
    }

    #[test]
    fn monad_laws_on_examples() {
        assert!(monad_laws(
            &parse_value("{1, 2, 3}").unwrap(),
            &parse_value("{{{1}, {2}}, {{2, 3}}}").unwrap()
        ));
        assert!(monad_laws(&Value::empty_set(), &Value::empty_set()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn eta_natural_prop(n in -20i64..20) {
            prop_assert!(eta_natural(&shift, &Value::Int(n)));
            prop_assert!(eta_natural(&dup, &Value::Int(n)));
        }

        #[test]
        fn mu_natural_prop(sets in proptest::collection::vec(
            proptest::collection::btree_set(-5i64..5, 0..4), 0..4)) {
            let s = Value::set(sets.iter().map(|inner| {
                Value::set(inner.iter().map(|&n| Value::Int(n)))
            }));
            prop_assert!(mu_natural(&shift, &s));
            prop_assert!(mu_natural(&dup, &s));
            // collapse to a constant — full genericity means even this works
            prop_assert!(mu_natural(&|_| Value::Int(0), &s));
        }

        #[test]
        fn functor_laws_prop(xs in proptest::collection::btree_set(-5i64..5, 0..8)) {
            let s = Value::set(xs.iter().map(|&n| Value::Int(n)));
            prop_assert!(functor_laws(&shift, &dup, &s));
        }

        #[test]
        fn monad_laws_prop(xs in proptest::collection::btree_set(-5i64..5, 0..6)) {
            let flat = Value::set(xs.iter().map(|&n| Value::Int(n)));
            // build a 3-nested value out of the flat one
            let nested3 = Value::set([Value::set([flat.clone()]), Value::empty_set()]);
            prop_assert!(monad_laws(&flat, &nested3));
        }
    }
}
