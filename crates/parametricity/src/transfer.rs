//! Section 4.2: transferring parametricity from lists to sets.
//!
//! The 2nd-order λ-calculus has lists but not sets; the paper bridges the
//! gap with the `toset` analogy (Definition 4.7), the `s-to-l` / `l-to-s`
//! type restrictions (Definitions 4.8/4.10), Lemma 4.6 relating `toset`
//! to the `rel` extension mode, and Theorem 4.13/Corollary 4.15 pulling
//! `𝒯^list(l,l)` down to `𝒯^set(s,s)` for analogous values at `LtoS`
//! types. This module implements the machinery over `genpar-value`
//! complex values and `genpar-mapping` extensions.

use genpar_mapping::extend::{relates, ExtensionMode};
use genpar_mapping::MappingFamily;
use genpar_value::{BaseType, CvType, Value};
use std::fmt;

/// List/set type expressions with function types — the `T^list` / `T^set`
/// expressions of Section 4.2. `List` nodes mark the positions that
/// `related_set_type` turns into `Set`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsTy {
    /// Type variable (by number; all variables are implicitly
    /// ∀-quantified at the outside, Definition 4.12).
    Var(u32),
    /// A base type.
    Base(BaseType),
    /// Product.
    Prod(Vec<LsTy>),
    /// List constructor `⟨…⟩`.
    List(Box<LsTy>),
    /// Set constructor `{…}` (appears in `T^set` forms).
    Set(Box<LsTy>),
    /// Function type.
    Arrow(Box<LsTy>, Box<LsTy>),
}

impl LsTy {
    /// `bool`.
    pub fn bool() -> LsTy {
        LsTy::Base(BaseType::Bool)
    }
    /// Variable shorthand.
    pub fn var(i: u32) -> LsTy {
        LsTy::Var(i)
    }
    /// List shorthand.
    pub fn list(t: LsTy) -> LsTy {
        LsTy::List(Box::new(t))
    }
    /// Set shorthand.
    pub fn set(t: LsTy) -> LsTy {
        LsTy::Set(Box::new(t))
    }
    /// Arrow shorthand.
    pub fn arrow(a: LsTy, b: LsTy) -> LsTy {
        LsTy::Arrow(Box::new(a), Box::new(b))
    }
    /// Product shorthand.
    pub fn prod(ts: impl IntoIterator<Item = LsTy>) -> LsTy {
        LsTy::Prod(ts.into_iter().collect())
    }

    /// `T^list → T^set`: replace every list constructor by a set
    /// constructor ("if every occurrence of ⟨⟩ is replaced by {} we
    /// obtain a pure set type expression"; the types are then *related*).
    pub fn related_set_type(&self) -> LsTy {
        match self {
            LsTy::Var(i) => LsTy::Var(*i),
            LsTy::Base(b) => LsTy::Base(*b),
            LsTy::Prod(ts) => LsTy::Prod(ts.iter().map(LsTy::related_set_type).collect()),
            LsTy::List(t) => LsTy::set(t.related_set_type()),
            LsTy::Set(t) => LsTy::set(t.related_set_type()),
            LsTy::Arrow(a, b) => LsTy::arrow(a.related_set_type(), b.related_set_type()),
        }
    }

    /// Definition 4.8: an **s-to-l** type contains no universal
    /// quantifiers (our `LsTy` has none) and no `⟨⟩` under `→`.
    pub fn is_s_to_l(&self) -> bool {
        fn no_list_under_arrow(t: &LsTy, under_arrow: bool) -> bool {
            match t {
                LsTy::Var(_) | LsTy::Base(_) => true,
                LsTy::Prod(ts) => ts.iter().all(|t| no_list_under_arrow(t, under_arrow)),
                LsTy::List(t) | LsTy::Set(t) => !under_arrow && no_list_under_arrow(t, under_arrow),
                LsTy::Arrow(a, b) => no_list_under_arrow(a, true) && no_list_under_arrow(b, true),
            }
        }
        no_list_under_arrow(self, false)
    }

    /// Definition 4.10: an **l-to-s** type has every arrow's *domain*
    /// s-to-l (and no quantifiers).
    pub fn is_l_to_s(&self) -> bool {
        match self {
            LsTy::Var(_) | LsTy::Base(_) => true,
            LsTy::Prod(ts) => ts.iter().all(LsTy::is_l_to_s),
            LsTy::List(t) | LsTy::Set(t) => t.is_l_to_s(),
            LsTy::Arrow(a, b) => a.is_s_to_l() && b.is_l_to_s(),
        }
    }

    /// Definition 4.12: an **LtoS** type is `∀X⃗. T` with `T` l-to-s;
    /// since `LsTy` keeps quantifiers implicit and outermost, this is
    /// just [`LsTy::is_l_to_s`].
    pub fn is_lto_s(&self) -> bool {
        self.is_l_to_s()
    }

    /// The classification bucket (for audits/examples).
    pub fn classify(&self) -> TypeClass {
        if self.is_s_to_l() {
            TypeClass::StoL
        } else if self.is_l_to_s() {
            TypeClass::LtoS
        } else {
            TypeClass::Neither
        }
    }

    /// Convert a function-free `LsTy` to a [`CvType`] (lists stay lists,
    /// sets stay sets); `None` if an arrow or variable occurs.
    pub fn to_cv_type(&self) -> Option<CvType> {
        match self {
            LsTy::Var(_) | LsTy::Arrow(..) => None,
            LsTy::Base(b) => Some(CvType::Base(*b)),
            LsTy::Prod(ts) => ts
                .iter()
                .map(LsTy::to_cv_type)
                .collect::<Option<Vec<_>>>()
                .map(CvType::Tuple),
            LsTy::List(t) => t.to_cv_type().map(CvType::list),
            LsTy::Set(t) => t.to_cv_type().map(CvType::set),
        }
    }

    /// Substitute a `CvType` for every variable and convert, for checking
    /// values at an instance of the type scheme.
    pub fn instantiate_cv(&self, tau: &CvType) -> Option<CvType> {
        match self {
            LsTy::Var(_) => Some(tau.clone()),
            LsTy::Arrow(..) => None,
            LsTy::Base(b) => Some(CvType::Base(*b)),
            LsTy::Prod(ts) => ts
                .iter()
                .map(|t| t.instantiate_cv(tau))
                .collect::<Option<Vec<_>>>()
                .map(CvType::Tuple),
            LsTy::List(t) => t.instantiate_cv(tau).map(CvType::list),
            LsTy::Set(t) => t.instantiate_cv(tau).map(CvType::set),
        }
    }
}

impl fmt::Display for LsTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsTy::Var(i) => match i {
                0 => write!(f, "X"),
                1 => write!(f, "Y"),
                n => write!(f, "X{n}"),
            },
            LsTy::Base(b) => write!(f, "{b}"),
            LsTy::Prod(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " × ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            LsTy::List(t) => write!(f, "⟨{t}⟩"),
            LsTy::Set(t) => write!(f, "{{{t}}}"),
            LsTy::Arrow(a, b) => match **a {
                LsTy::Arrow(..) => write!(f, "({a}) → {b}"),
                _ => write!(f, "{a} → {b}"),
            },
        }
    }
}

/// The classification of a list type expression (Example 4.14 buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeClass {
    /// s-to-l (hence also l-to-s / LtoS).
    StoL,
    /// LtoS but not s-to-l.
    LtoS,
    /// Not LtoS — the transfer technique does not apply.
    Neither,
}

impl fmt::Display for TypeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeClass::StoL => write!(f, "s-to-l"),
            TypeClass::LtoS => write!(f, "LtoS"),
            TypeClass::Neither => write!(f, "not LtoS"),
        }
    }
}

/// `toset` extended to all nesting levels (the complex-value fragment of
/// Definition 4.7): replace every list by the set of (converted)
/// elements. Total and surjective from list values onto set values.
pub fn toset_deep(v: &Value) -> Value {
    match v {
        Value::List(items) => Value::set(items.iter().map(toset_deep)),
        Value::Set(items) => Value::set(items.iter().map(toset_deep)),
        Value::Bag(items) => Value::bag(
            items
                .iter()
                .flat_map(|(x, n)| std::iter::repeat_n(toset_deep(x), *n)),
        ),
        Value::Tuple(items) => Value::Tuple(items.iter().map(toset_deep).collect()),
        other => other.clone(),
    }
}

/// Are `l` (a list value) and `s` (a set value) **analogous**
/// (Definition 4.7, complex-value fragment)? For function-free types this
/// is exactly `toset_deep(l) == s`.
pub fn analogous(l: &Value, s: &Value) -> bool {
    toset_deep(l) == toset_deep(s)
}

/// Lemma 4.6(1): if `⟨H⟩(l, l')` then `{H}ʳᵉˡ(toset l, toset l')`.
/// Returns the two sets for inspection.
pub fn lemma_4_6_forward(
    family: &MappingFamily,
    elem_ty: &CvType,
    l: &Value,
    l2: &Value,
) -> Option<(Value, Value)> {
    let _sp = genpar_obs::span("transfer.lemma_4_6_forward");
    genpar_obs::counter("transfer.lemma_4_6_forward", 1);
    let list_ty = CvType::list(elem_ty.clone());
    if !relates(family, &list_ty, ExtensionMode::Rel, l, l2) {
        return None;
    }
    let s = l.toset()?;
    let s2 = l2.toset()?;
    let set_ty = CvType::set(elem_ty.clone());
    assert!(
        relates(family, &set_ty, ExtensionMode::Rel, &s, &s2),
        "Lemma 4.6(1) failed: toset images not rel-related"
    );
    Some((s, s2))
}

/// Lemma 4.6(2), constructively: given `{H}ʳᵉˡ(s, s')`, build lists
/// `l, l'` with `toset l = s`, `toset l' = s'` and `⟨H⟩(l, l')`.
///
/// Construction: one position per element of `s` paired with a partner in
/// `s'`, then one position per element of `s'` paired with a partner in
/// `s` — both partner sets are nonempty by the `rel` condition.
pub fn lemma_4_6_backward(
    family: &MappingFamily,
    elem_ty: &CvType,
    s: &Value,
    s2: &Value,
) -> Option<(Value, Value)> {
    let _sp = genpar_obs::span("transfer.lemma_4_6_backward");
    genpar_obs::counter("transfer.lemma_4_6_backward", 1);
    let set_ty = CvType::set(elem_ty.clone());
    if !relates(family, &set_ty, ExtensionMode::Rel, s, s2) {
        return None;
    }
    let (sa, sb) = (s.as_set()?, s2.as_set()?);
    let mut l = Vec::new();
    let mut l2 = Vec::new();
    for x in sa {
        let y = sb
            .iter()
            .find(|y| relates(family, elem_ty, ExtensionMode::Rel, x, y))?;
        l.push(x.clone());
        l2.push(y.clone());
    }
    for y in sb {
        let x = sa
            .iter()
            .find(|x| relates(family, elem_ty, ExtensionMode::Rel, x, y))?;
        l.push(x.clone());
        l2.push(y.clone());
    }
    let lv = Value::List(l);
    let l2v = Value::List(l2);
    debug_assert_eq!(lv.toset().unwrap(), *s);
    debug_assert_eq!(l2v.toset().unwrap(), *s2);
    debug_assert!(relates(
        family,
        &CvType::list(elem_ty.clone()),
        ExtensionMode::Rel,
        &lv,
        &l2v
    ));
    Some((lv, l2v))
}

/// Theorem 4.13 for a concrete analogous pair of unary functions
/// `f_list ↦ f_set` at an LtoS type `⟨X⟩ → ⟨X⟩`-shaped instance: verify
/// that whenever `{H}ʳᵉˡ(s, s')`, also `{H}ʳᵉˡ(f_set s, f_set s')`,
/// *using only* the list function's parametricity — i.e. compute via
/// lists (Lemma 4.9 lift, apply `f_list`, Lemma 4.6(1) descent) and check
/// the direct set-level computation agrees up to `rel`.
pub fn transfer_check_unary(
    family: &MappingFamily,
    elem_ty: &CvType,
    f_list: &dyn Fn(&Value) -> Value,
    f_set: &dyn Fn(&Value) -> Value,
    s: &Value,
    s2: &Value,
) -> Result<(), String> {
    genpar_guard::faultpoint("transfer.check").map_err(|f| f.to_string())?;
    let _sp = genpar_obs::span("transfer.check_unary");
    genpar_obs::counter("transfer.checks", 1);
    let set_ty = CvType::set(elem_ty.clone());
    if !relates(family, &set_ty, ExtensionMode::Rel, s, s2) {
        genpar_obs::counter("transfer.premise_failures", 1);
        return Ok(()); // premise fails
    }
    genpar_obs::counter("transfer.analogous_pairs", 1);
    // lift (Lemma 4.9 via 4.6(2))
    let (l, l2) = lemma_4_6_backward(family, elem_ty, s, s2)
        .ok_or_else(|| "lifting failed despite rel premise".to_string())?;
    // list-level application must produce toset-analogous results
    let fl = f_list(&l);
    let fl2 = f_list(&l2);
    let fs = f_set(s);
    let fs2 = f_set(s2);
    if toset_deep(&fl) != toset_deep(&fs) {
        return Err(format!(
            "f_list and f_set are not analogous: toset({fl}) = {} ≠ {fs}",
            toset_deep(&fl)
        ));
    }
    if toset_deep(&fl2) != toset_deep(&fs2) {
        return Err(format!(
            "f_list and f_set are not analogous on the second input: {fl2} vs {fs2}"
        ));
    }
    // descent: outputs related at the set level (Lemma 4.6(1))
    if relates(family, &set_ty, ExtensionMode::Rel, &fs, &fs2) {
        Ok(())
    } else {
        Err(format!("set outputs not rel-related: {fs} vs {fs2}"))
    }
}

/// Corollary 4.15 instance for `∪`: since `# : ∀X.⟨X⟩×⟨X⟩→⟨X⟩` is LtoS
/// and `# ↦ ∪` (the paper's worked example), `∪` satisfies
/// `(∀X.{X}×{X}→{X})(∪, ∪)`: related input pairs give related unions.
pub fn corollary_4_15_union(
    family: &MappingFamily,
    elem_ty: &CvType,
    r: &Value,
    s: &Value,
    r2: &Value,
    s2: &Value,
) -> Result<(), String> {
    let _sp = genpar_obs::span("transfer.corollary_4_15_union");
    genpar_obs::counter("transfer.corollary_4_15_union", 1);
    let set_ty = CvType::set(elem_ty.clone());
    if !(relates(family, &set_ty, ExtensionMode::Rel, r, r2)
        && relates(family, &set_ty, ExtensionMode::Rel, s, s2))
    {
        genpar_obs::counter("transfer.premise_failures", 1);
        return Ok(());
    }
    let union = |a: &Value, b: &Value| {
        Value::Set(
            a.as_set()
                .unwrap()
                .union(b.as_set().unwrap())
                .cloned()
                .collect(),
        )
    };
    let u1 = union(r, s);
    let u2 = union(r2, s2);
    if relates(family, &set_ty, ExtensionMode::Rel, &u1, &u2) {
        Ok(())
    } else {
        Err(format!("∪ outputs not rel-related: {u1} vs {u2}"))
    }
}

/// The Example 4.14 catalog: named types with their classification.
pub fn example_4_14_catalog() -> Vec<(&'static str, LsTy, TypeClass)> {
    let x = LsTy::var(0);
    let y = LsTy::var(1);
    vec![
        (
            "σ : ∀X.(X → bool) → ⟨X⟩ → ⟨X⟩",
            LsTy::arrow(
                LsTy::arrow(x.clone(), LsTy::bool()),
                LsTy::arrow(LsTy::list(x.clone()), LsTy::list(x.clone())),
            ),
            TypeClass::LtoS,
        ),
        (
            "bad-σ : ∀X.(⟨X⟩ → bool) → ⟨X⟩ → ⟨X⟩",
            LsTy::arrow(
                LsTy::arrow(LsTy::list(x.clone()), LsTy::bool()),
                LsTy::arrow(LsTy::list(x.clone()), LsTy::list(x.clone())),
            ),
            TypeClass::Neither,
        ),
        (
            "fold : ∀X.∀Y.(X → Y → Y) → Y → ⟨X⟩ → Y",
            LsTy::arrow(
                LsTy::arrow(x.clone(), LsTy::arrow(y.clone(), y.clone())),
                LsTy::arrow(y.clone(), LsTy::arrow(LsTy::list(x.clone()), y.clone())),
            ),
            TypeClass::LtoS,
        ),
        (
            "ext : ∀X.∀Y.(X → ⟨Y⟩) → ⟨X⟩ → ⟨Y⟩",
            LsTy::arrow(
                LsTy::arrow(x.clone(), LsTy::list(y.clone())),
                LsTy::arrow(LsTy::list(x.clone()), LsTy::list(y.clone())),
            ),
            TypeClass::Neither,
        ),
        (
            "# : ∀X.⟨X⟩ × ⟨X⟩ → ⟨X⟩",
            LsTy::arrow(
                LsTy::prod([LsTy::list(x.clone()), LsTy::list(x.clone())]),
                LsTy::list(x.clone()),
            ),
            TypeClass::LtoS,
        ),
        (
            "X → bool (s-to-l)",
            LsTy::arrow(x, LsTy::bool()),
            TypeClass::StoL,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpar_value::parse::parse_value;

    fn fam() -> MappingFamily {
        // h of Example 2.2
        MappingFamily::atoms(&[(4, 0), (8, 0), (5, 1), (9, 1), (6, 2)])
    }

    #[test]
    fn example_4_14_classifications_match_paper() {
        for (name, ty, expected) in example_4_14_catalog() {
            assert_eq!(ty.classify(), expected, "{name}");
        }
    }

    #[test]
    fn s_to_l_details() {
        let x = LsTy::var(0);
        assert!(LsTy::arrow(x.clone(), LsTy::bool()).is_s_to_l());
        assert!(!LsTy::arrow(LsTy::list(x.clone()), LsTy::bool()).is_s_to_l());
        assert!(LsTy::list(x.clone()).is_s_to_l()); // list NOT under arrow
        assert!(!LsTy::arrow(x.clone(), LsTy::list(x.clone())).is_s_to_l());
        assert!(LsTy::prod([x.clone(), LsTy::bool()]).is_s_to_l());
    }

    #[test]
    fn related_set_type_swaps_constructors() {
        let t = LsTy::arrow(LsTy::list(LsTy::var(0)), LsTy::list(LsTy::var(0)));
        assert_eq!(
            t.related_set_type(),
            LsTy::arrow(LsTy::set(LsTy::var(0)), LsTy::set(LsTy::var(0)))
        );
    }

    #[test]
    fn toset_deep_flattens_duplicates_at_all_levels() {
        let l = parse_value("[[a, a], [a, a], [b]]").unwrap();
        let s = toset_deep(&l);
        assert_eq!(s, parse_value("{{a}, {b}}").unwrap());
        assert!(analogous(&l, &s));
    }

    #[test]
    fn lemma_4_6_forward_holds() {
        let f = fam();
        let elem = CvType::domain(0);
        let l = parse_value("[e, i, f]").unwrap();
        let l2 = parse_value("[a, a, b]").unwrap();
        let (s, s2) = lemma_4_6_forward(&f, &elem, &l, &l2).unwrap();
        assert_eq!(s, parse_value("{e, i, f}").unwrap());
        assert_eq!(s2, parse_value("{a, b}").unwrap());
    }

    #[test]
    fn lemma_4_6_backward_constructs_witnesses() {
        let f = fam();
        let elem = CvType::domain(0);
        let s = parse_value("{e, i, f}").unwrap();
        let s2 = parse_value("{a, b}").unwrap();
        let (l, l2) = lemma_4_6_backward(&f, &elem, &s, &s2).unwrap();
        assert_eq!(l.toset().unwrap(), s);
        assert_eq!(l2.toset().unwrap(), s2);
        assert_eq!(l.len(), l2.len());
    }

    #[test]
    fn lemma_4_6_backward_fails_on_unrelated_sets() {
        let f = fam();
        let elem = CvType::domain(0);
        let s = parse_value("{e}").unwrap();
        let s2 = parse_value("{c}").unwrap(); // e ↦ a only, not c
        assert!(lemma_4_6_backward(&f, &elem, &s, &s2).is_none());
    }

    #[test]
    fn theorem_4_13_via_identity_and_dedup() {
        // f_list = reverse (parametric), f_set = identity (its analogue):
        // toset(reverse l) = toset l.
        let f = fam();
        let elem = CvType::domain(0);
        let s = parse_value("{e, f}").unwrap();
        let s2 = parse_value("{a, b}").unwrap();
        let reverse = |v: &Value| {
            let mut items = v.as_list().unwrap().to_vec();
            items.reverse();
            Value::List(items)
        };
        let ident = |v: &Value| v.clone();
        transfer_check_unary(&f, &elem, &reverse, &ident, &s, &s2).unwrap();
    }

    #[test]
    fn transfer_detects_non_analogous_pairs() {
        // f_list = reverse, f_set = "drop everything" — not analogous
        let f = fam();
        let elem = CvType::domain(0);
        let s = parse_value("{e}").unwrap();
        let s2 = parse_value("{a}").unwrap();
        let reverse = |v: &Value| v.clone();
        let drop_all = |_: &Value| Value::empty_set();
        assert!(transfer_check_unary(&f, &elem, &reverse, &drop_all, &s, &s2).is_err());
    }

    #[test]
    fn concat_maps_to_flatten_under_toset() {
        // concat ↦ μ (flatten): toset(concat ll) = μ(toset-deep ll)
        let ll = parse_value("[[e, i], [], [f]]").unwrap();
        let concat = |v: &Value| -> Value {
            Value::List(
                v.as_list()
                    .unwrap()
                    .iter()
                    .flat_map(|l| l.as_list().unwrap().iter().cloned())
                    .collect(),
            )
        };
        let flatten = |v: &Value| -> Value {
            Value::Set(
                v.as_set()
                    .unwrap()
                    .iter()
                    .flat_map(|s| s.as_set().unwrap().iter().cloned())
                    .collect(),
            )
        };
        let lhs = toset_deep(&concat(&ll));
        let rhs = flatten(&toset_deep(&ll));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn transfer_flatten_via_lists() {
        // Theorem 4.13 instance at {{X}} → {X}: flatten inherits rel
        // invariance from concat's parametricity.
        let f = fam();
        let elem = CvType::set(CvType::domain(0));
        let s = parse_value("{{e, i}, {f}}").unwrap();
        let s2 = parse_value("{{a}, {b}}").unwrap();
        let set_ty = CvType::set(elem.clone());
        if relates(&f, &set_ty, ExtensionMode::Rel, &s, &s2) {
            let flatten = |v: &Value| -> Value {
                Value::Set(
                    v.as_set()
                        .unwrap()
                        .iter()
                        .flat_map(|x| x.as_set().unwrap().iter().cloned())
                        .collect(),
                )
            };
            let o1 = flatten(&s);
            let o2 = flatten(&s2);
            assert!(relates(
                &f,
                &CvType::set(CvType::domain(0)),
                ExtensionMode::Rel,
                &o1,
                &o2
            ));
        } else {
            panic!("fixture sets should be rel-related");
        }
    }

    #[test]
    fn corollary_4_15_union_instances() {
        let f = fam();
        let elem = CvType::domain(0);
        let r = parse_value("{e, i}").unwrap();
        let s = parse_value("{f}").unwrap();
        let r2 = parse_value("{a}").unwrap();
        let s2 = parse_value("{b}").unwrap();
        corollary_4_15_union(&f, &elem, &r, &s, &r2, &s2).unwrap();
    }

    #[test]
    fn lsty_to_cv_type() {
        let t = LsTy::prod([
            LsTy::list(LsTy::bool()),
            LsTy::set(LsTy::Base(BaseType::Int)),
        ]);
        assert_eq!(
            t.to_cv_type(),
            Some(CvType::tuple([
                CvType::list(CvType::bool()),
                CvType::set(CvType::int())
            ]))
        );
        assert_eq!(LsTy::var(0).to_cv_type(), None);
        assert_eq!(
            LsTy::list(LsTy::var(0)).instantiate_cv(&CvType::int()),
            Some(CvType::list(CvType::int()))
        );
    }

    #[test]
    fn display_types() {
        let (name, ty, _) = &example_4_14_catalog()[0];
        assert!(name.contains('σ'));
        assert_eq!(ty.to_string(), "(X → bool) → ⟨X⟩ → ⟨X⟩");
    }
}
