//! The logical relation `𝒯` of Definitions 4.2–4.3 over the finite
//! semantics.

use genpar_lambda::eval::{apply, LValue};
use genpar_lambda::ty::{BaseTy, Ty};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A finite relation between two finite carriers of semantic values — the
/// interpretation of a type variable.
#[derive(Debug, Clone, PartialEq)]
pub struct FinRel {
    /// Carrier of the left type α.
    pub left: Vec<LValue>,
    /// Carrier of the right type β.
    pub right: Vec<LValue>,
    /// The related pairs.
    pub pairs: Vec<(LValue, LValue)>,
}

impl FinRel {
    /// The identity relation on a carrier.
    pub fn identity(carrier: Vec<LValue>) -> FinRel {
        let pairs = carrier.iter().map(|v| (v.clone(), v.clone())).collect();
        FinRel {
            left: carrier.clone(),
            right: carrier,
            pairs,
        }
    }

    /// Does the relation hold?
    pub fn holds(&self, a: &LValue, b: &LValue) -> bool {
        self.pairs.iter().any(|(x, y)| x == a && y == b)
    }

    /// Is this a partial bijection (the `∀X⁼` case)?
    pub fn is_partial_bijection(&self) -> bool {
        for (i, (x1, y1)) in self.pairs.iter().enumerate() {
            for (x2, y2) in &self.pairs[i + 1..] {
                if (x1 == x2) != (y1 == y2) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for FinRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, b)) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({a:?},{b:?})")?;
        }
        write!(f, "}}")
    }
}

/// A relation environment: interpretations for the free type variables,
/// innermost binder last (indexing mirrors `Ty::Var`'s de Bruijn scheme).
pub type RelEnv = Vec<FinRel>;

/// Parameters of the decision procedure.
#[derive(Debug, Clone, Copy)]
pub struct RelConfig {
    /// Carrier size for type variables (elements are `Int` values).
    pub carrier: usize,
    /// How many relations to try per `∀` (exhaustive when the space
    /// `2^(carrier²)` is ≤ this, sampled otherwise).
    pub forall_samples: usize,
    /// Maximum list length enumerated at list-typed `→` inputs.
    pub max_list: usize,
    /// Hard cap on enumerated domains.
    pub max_dom: usize,
    /// RNG seed for sampled quantification.
    pub seed: u64,
}

impl Default for RelConfig {
    fn default() -> Self {
        RelConfig {
            carrier: 2,
            forall_samples: 60,
            max_list: 2,
            max_dom: 4096,
            seed: 0xFEED,
        }
    }
}

/// The relation failed to be decided within the budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelBudget;

impl fmt::Display for RelBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "logical-relation budget exhausted")
    }
}

impl std::error::Error for RelBudget {}

/// Decide `𝒯(v₁, v₂)` at type `ty` under `env`.
///
/// `∀` is approximated by exhaustive/sampled quantification over
/// relations between `Int` carriers of size `cfg.carrier` — sound for
/// refutation (a found violation is real) and complete in the small-scope
/// sense for verification.
pub fn related(
    ty: &Ty,
    env: &RelEnv,
    v1: &LValue,
    v2: &LValue,
    cfg: RelConfig,
) -> Result<bool, RelBudget> {
    match ty {
        Ty::Var(i) => {
            let r = env
                .iter()
                .rev()
                .nth(*i)
                .unwrap_or_else(|| panic!("unbound type variable {i} in relation env"));
            Ok(r.holds(v1, v2))
        }
        Ty::Base(_) => Ok(v1 == v2),
        Ty::Prod(ts) => {
            let (a, b) = match (v1.as_tuple(), v2.as_tuple()) {
                (Some(a), Some(b)) if a.len() == ts.len() && b.len() == ts.len() => (a, b),
                _ => return Ok(false),
            };
            for ((t, x), y) in ts.iter().zip(a).zip(b) {
                if !related(t, env, x, y, cfg)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Ty::List(t) => {
            let (a, b) = match (v1.as_list(), v2.as_list()) {
                (Some(a), Some(b)) if a.len() == b.len() => (a, b),
                _ => return Ok(false),
            };
            for (x, y) in a.iter().zip(b) {
                if !related(t, env, x, y, cfg)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Ty::Arrow(a, b) => {
            if !v1.is_function() || !v2.is_function() {
                return Ok(false);
            }
            for (x, y) in enumerate_relation(a, env, cfg)? {
                let (fx, gy) = match (apply(v1, &x), apply(v2, &y)) {
                    (Ok(fx), Ok(gy)) => (fx, gy),
                    // a table miss means the argument escaped the
                    // enumerated carrier — treat as outside the domain
                    _ => continue,
                };
                if !related(b, env, &fx, &gy, cfg)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Ty::Forall { eq_bounded, body } => {
            // v1, v2 must be type closures; type erasure means their
            // α-components are the forced bodies.
            let f1 = force_tyclosure(v1)?;
            let f2 = force_tyclosure(v2)?;
            for rel in quantifier_relations(*eq_bounded, cfg) {
                let mut env2 = env.clone();
                env2.push(rel);
                if !related(body, &env2, &f1, &f2, cfg)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

fn force_tyclosure(v: &LValue) -> Result<LValue, RelBudget> {
    match v {
        LValue::TyClosure { env, body } => {
            genpar_lambda::eval::eval(body, env).map_err(|_| RelBudget)
        }
        other => Ok(other.clone()),
    }
}

/// Enumerate the pairs of the relation at `ty` under `env` — the inputs
/// the `→` case must quantify over.
pub fn enumerate_relation(
    ty: &Ty,
    env: &RelEnv,
    cfg: RelConfig,
) -> Result<Vec<(LValue, LValue)>, RelBudget> {
    let left = enumerate_side(ty, env, cfg, Side::Left)?;
    let right = enumerate_side(ty, env, cfg, Side::Right)?;
    if left.len().saturating_mul(right.len()) > cfg.max_dom * 4 {
        return Err(RelBudget);
    }
    let mut out = Vec::new();
    for x in &left {
        for y in &right {
            if related(ty, env, x, y, cfg)? {
                out.push((x.clone(), y.clone()));
            }
        }
    }
    Ok(out)
}

#[derive(Clone, Copy, PartialEq)]
enum Side {
    Left,
    Right,
}

/// Enumerate one side's carrier of `ty` (type variables contribute their
/// left/right carriers).
fn enumerate_side(
    ty: &Ty,
    env: &RelEnv,
    cfg: RelConfig,
    side: Side,
) -> Result<Vec<LValue>, RelBudget> {
    let out = match ty {
        Ty::Var(i) => {
            let r = env.iter().rev().nth(*i).ok_or(RelBudget)?;
            match side {
                Side::Left => r.left.clone(),
                Side::Right => r.right.clone(),
            }
        }
        Ty::Base(BaseTy::Bool) => vec![LValue::Bool(false), LValue::Bool(true)],
        Ty::Base(BaseTy::Int) => (0..cfg.carrier as i64).map(LValue::Int).collect(),
        Ty::Prod(ts) => {
            let mut acc: Vec<Vec<LValue>> = vec![Vec::new()];
            for t in ts {
                let vs = enumerate_side(t, env, cfg, side)?;
                let mut next = Vec::with_capacity(acc.len() * vs.len());
                for prefix in &acc {
                    for v in &vs {
                        let mut row = prefix.clone();
                        row.push(v.clone());
                        next.push(row);
                    }
                }
                if next.len() > cfg.max_dom {
                    return Err(RelBudget);
                }
                acc = next;
            }
            acc.into_iter().map(LValue::Tuple).collect()
        }
        Ty::List(t) => {
            let elems = enumerate_side(t, env, cfg, side)?;
            let mut out: Vec<Vec<LValue>> = vec![Vec::new()];
            let mut frontier: Vec<Vec<LValue>> = vec![Vec::new()];
            for _ in 0..cfg.max_list {
                let mut next = Vec::new();
                for prefix in &frontier {
                    for v in &elems {
                        let mut l = prefix.clone();
                        l.push(v.clone());
                        next.push(l);
                    }
                }
                out.extend(next.iter().cloned());
                if out.len() > cfg.max_dom {
                    return Err(RelBudget);
                }
                frontier = next;
            }
            out.into_iter().map(LValue::List).collect()
        }
        Ty::Arrow(a, b) => {
            // tables from one side's domain to the same side's codomain
            let dom = enumerate_side(a, env, cfg, side)?;
            let cod = enumerate_side(b, env, cfg, side)?;
            if dom.is_empty() {
                return Ok(vec![LValue::table([])]);
            }
            if cod.is_empty() {
                return Ok(Vec::new());
            }
            let total = (cod.len() as u64)
                .checked_pow(dom.len() as u32)
                .ok_or(RelBudget)?;
            if total as usize > cfg.max_dom {
                return Err(RelBudget);
            }
            let mut out = Vec::with_capacity(total as usize);
            for code in 0..total {
                let mut c = code;
                let mut table = Vec::with_capacity(dom.len());
                for x in &dom {
                    table.push((x.clone(), cod[(c % cod.len() as u64) as usize].clone()));
                    c /= cod.len() as u64;
                }
                out.push(LValue::table(table));
            }
            out
        }
        Ty::Forall { .. } => return Err(RelBudget),
    };
    if out.len() > cfg.max_dom {
        return Err(RelBudget);
    }
    Ok(out)
}

/// The relations a `∀` quantifies over: exhaustive when feasible, sampled
/// otherwise; `eq_bounded` restricts to partial bijections.
///
/// Carriers are `Int` values `0..carrier` on both sides (the relation is
/// still free to be any subset — the carriers merely name the abstract
/// elements, as Section 4.2 does when it "chooses base types
/// arbitrarily").
pub fn quantifier_relations(eq_bounded: bool, cfg: RelConfig) -> Vec<FinRel> {
    let carrier: Vec<LValue> = (0..cfg.carrier as i64).map(LValue::Int).collect();
    let n = carrier.len();
    let bits = n * n;
    let mut out = Vec::new();
    // exhaustive when the subset space is small (carrier ≤ 3 → ≤ 512
    // relations); sampled beyond that
    if bits <= 9 {
        // exhaustive over all subsets of carrier × carrier
        for mask in 0u64..(1u64 << bits) {
            let mut pairs = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if mask & (1 << (i * n + j)) != 0 {
                        pairs.push((carrier[i].clone(), carrier[j].clone()));
                    }
                }
            }
            let rel = FinRel {
                left: carrier.clone(),
                right: carrier.clone(),
                pairs,
            };
            if !eq_bounded || rel.is_partial_bijection() {
                out.push(rel);
            }
        }
    } else {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        out.push(FinRel::identity(carrier.clone()));
        for _ in 0..cfg.forall_samples {
            let mut pairs = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if rng.gen_bool(0.4) {
                        pairs.push((carrier[i].clone(), carrier[j].clone()));
                    }
                }
            }
            let rel = FinRel {
                left: carrier.clone(),
                right: carrier.clone(),
                pairs,
            };
            if !eq_bounded || rel.is_partial_bijection() {
                out.push(rel);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpar_lambda::eval::eval_closed;
    use genpar_lambda::stdlib;
    use genpar_lambda::term::Term;

    fn cfg() -> RelConfig {
        RelConfig::default()
    }

    #[test]
    fn base_relation_is_identity() {
        assert!(related(&Ty::int(), &vec![], &LValue::Int(3), &LValue::Int(3), cfg()).unwrap());
        assert!(!related(&Ty::int(), &vec![], &LValue::Int(3), &LValue::Int(4), cfg()).unwrap());
    }

    #[test]
    fn var_relation_uses_env() {
        let r = FinRel {
            left: vec![LValue::Int(0)],
            right: vec![LValue::Int(7)],
            pairs: vec![(LValue::Int(0), LValue::Int(7))],
        };
        let env = vec![r];
        assert!(related(&Ty::Var(0), &env, &LValue::Int(0), &LValue::Int(7), cfg()).unwrap());
        assert!(!related(&Ty::Var(0), &env, &LValue::Int(7), &LValue::Int(0), cfg()).unwrap());
    }

    #[test]
    fn lists_relate_pointwise_equal_length() {
        let r = FinRel {
            left: vec![LValue::Int(0)],
            right: vec![LValue::Int(1)],
            pairs: vec![(LValue::Int(0), LValue::Int(1))],
        };
        let env = vec![r];
        let t = Ty::list(Ty::Var(0));
        let l0 = LValue::List(vec![LValue::Int(0), LValue::Int(0)]);
        let l1 = LValue::List(vec![LValue::Int(1), LValue::Int(1)]);
        let l1s = LValue::List(vec![LValue::Int(1)]);
        assert!(related(&t, &env, &l0, &l1, cfg()).unwrap());
        assert!(!related(&t, &env, &l0, &l1s, cfg()).unwrap());
    }

    #[test]
    fn arrow_relation_definition_4_2() {
        // f, g : bool → bool; f = id, g = id → related
        let id_table = || {
            LValue::table([
                (LValue::Bool(false), LValue::Bool(false)),
                (LValue::Bool(true), LValue::Bool(true)),
            ])
        };
        let neg_table = LValue::table([
            (LValue::Bool(false), LValue::Bool(true)),
            (LValue::Bool(true), LValue::Bool(false)),
        ]);
        let t = Ty::arrow(Ty::bool(), Ty::bool());
        assert!(related(&t, &vec![], &id_table(), &id_table(), cfg()).unwrap());
        assert!(!related(&t, &vec![], &id_table(), &neg_table, cfg()).unwrap());
    }

    #[test]
    fn identity_term_is_parametric_at_its_type() {
        let v = eval_closed(&stdlib::id()).unwrap();
        let ty = genpar_lambda::tyck::type_of(&stdlib::id()).unwrap();
        assert!(related(&ty, &vec![], &v, &v, cfg()).unwrap());
    }

    #[test]
    fn constant_function_is_not_parametric_at_identity_type() {
        // ΛX. λx:X. x is the ONLY inhabitant of ∀X.X→X; a type-erased
        // cheat that returns a fixed Int is not related to itself.
        let cheat = Term::tylam(Term::lam(Ty::Var(0), Term::Int(0)));
        // (ill-typed as ∀X.X→X, but evaluable — parametricity rejects it)
        let v = eval_closed(&cheat).unwrap();
        let ty = Ty::forall(Ty::arrow(Ty::Var(0), Ty::Var(0)));
        assert!(!related(&ty, &vec![], &v, &v, cfg()).unwrap());
    }

    #[test]
    fn eq_bounded_quantifier_only_sees_partial_bijections() {
        for rel in quantifier_relations(true, cfg()) {
            assert!(rel.is_partial_bijection());
        }
        // the unbounded quantifier sees non-bijections too
        assert!(quantifier_relations(false, cfg())
            .iter()
            .any(|r| !r.is_partial_bijection()));
    }

    #[test]
    fn enumerate_relation_filters_pairs() {
        let r = FinRel {
            left: vec![LValue::Int(0), LValue::Int(1)],
            right: vec![LValue::Int(5)],
            pairs: vec![(LValue::Int(0), LValue::Int(5))],
        };
        let env = vec![r];
        let pairs = enumerate_relation(&Ty::Var(0), &env, cfg()).unwrap();
        assert_eq!(pairs.len(), 1);
        let pairs2 = enumerate_relation(&Ty::pair(Ty::Var(0), Ty::Var(0)), &env, cfg()).unwrap();
        assert_eq!(pairs2.len(), 1); // ((0,0),(5,5))
    }

    #[test]
    fn budget_errors_surface() {
        let mut c = cfg();
        c.max_dom = 2;
        let t = Ty::arrow(Ty::pair(Ty::int(), Ty::int()), Ty::bool());
        let v = LValue::table([]);
        assert_eq!(related(&t, &vec![], &v, &v, c), Err(RelBudget));
    }
}
