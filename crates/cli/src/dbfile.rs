//! The `.gdb` database file format: `name = <value literal>` per line.

use crate::CliError;
use genpar_algebra::Db;
use genpar_value::parse::parse_value;

/// Parse a database file's contents. Errors carry the 1-based line
/// number and the byte offset of the offending line, so a bad `.gdb`
/// file pinpoints itself even under concatenation or generation.
pub fn parse_db(contents: &str) -> Result<Db, CliError> {
    let mut db = Db::with_standard_int();
    let mut offset = 0usize;
    for (lineno, raw) in contents.lines().enumerate() {
        let line_at = offset;
        offset += raw.len() + 1; // +1 for the newline split off by lines()
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            return Err(CliError::parse(format!(
                "db file line {} (byte {line_at}): expected `name = value`, got {raw:?}",
                lineno + 1
            )));
        };
        let name = name.trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(CliError::parse(format!(
                "db file line {} (byte {line_at}): bad relation name {name:?}",
                lineno + 1
            )));
        }
        let v = parse_value(value.trim()).map_err(|e| {
            CliError::parse(format!("db file line {} (byte {line_at}): {e}", lineno + 1))
        })?;
        db.set(name, v);
    }
    Ok(db)
}

/// Load a database from a path.
pub fn load_db(path: &str) -> Result<Db, CliError> {
    let contents = std::fs::read_to_string(path)?;
    parse_db(&contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpar_value::Value;

    #[test]
    fn parses_relations_and_comments() {
        let db = parse_db("# Example 2.2\nR = {(e, f), (f, g)}\n\nS = {(a)}\ncounts = {1, 2, 3}\n")
            .unwrap();
        assert_eq!(db.get("R").unwrap().len(), 2);
        assert_eq!(db.get("S").unwrap().len(), 1);
        assert_eq!(
            db.get("counts").unwrap(),
            &Value::set([Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert!(db.get("missing").is_none());
    }

    #[test]
    fn reports_bad_lines() {
        assert!(parse_db("just words").is_err());
        assert!(parse_db("R = {oops").is_err());
        assert!(parse_db("bad name! = {}").is_err());
        let err = match parse_db("R = {}\nS = {1,\n") {
            Err(e) => e,
            Ok(_) => panic!("expected a parse error"),
        };
        assert!(err.message.contains("line 2"), "{err}");
        // the byte offset points at the start of the offending line
        assert!(err.message.contains("byte 7"), "{err}");
        assert_eq!(err.kind, crate::ErrorKind::Parse);
    }

    #[test]
    fn empty_input_is_empty_db() {
        let db = parse_db("").unwrap();
        assert_eq!(db.relations().count(), 0);
    }
}
