//! `genpar serve` and `genpar bench-serve`: the resident query service
//! and its closed-loop load harness.
//!
//! [`ServeState`] is the bridge between the protocol-agnostic server in
//! `genpar-serve` and this crate's command internals: it loads the
//! database, catalog, calibration, and observed-statistics store ONCE,
//! keeps them resident, and executes each request through the same
//! functions the one-shot CLI uses ([`commands::run_with`],
//! [`commands::explain_with`], [`commands::profile_with`]) — so a served
//! response's `output` is byte-identical to the one-shot command by
//! construction, not by testing alone.

use crate::commands::{
    self, catalog_from_db, explain_with, load_calibration, load_stats, parse_q,
    persist_morsel_rows, profile_with, resolve_workers, run_with,
};
use crate::{dbfile, CliError};
use genpar_engine::Catalog;
use genpar_obs::Json;
use genpar_optimizer::{Calibration, RuleSet, StatsStore};
use genpar_serve::loadgen::{run_bench, BenchSpec};
use genpar_serve::protocol::Op;
use genpar_serve::server::{HandlerError, QueryHandler, ServeConfig};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Resident server state: everything a request needs, loaded once.
pub struct ServeState {
    db: genpar_algebra::Db,
    catalog: Catalog,
    rules: RuleSet,
    cal: Calibration,
    cal_path: Option<String>,
    stats_path: Option<String>,
    stats_key: String,
    stats: RwLock<StatsStore>,
    default_workers: usize,
}

impl ServeState {
    /// Load the database, calibration, and statistics store; returns the
    /// state plus any load warnings (corrupt-file quarantines).
    pub fn load(
        db_path: &str,
        calibration: Option<&str>,
        stats_path: Option<&str>,
        default_workers: usize,
    ) -> Result<(ServeState, Vec<String>), CliError> {
        let db = dbfile::load_db(db_path)?;
        let catalog = catalog_from_db(&db)?;
        let (cal, cal_warning) = load_calibration(calibration)?;
        let (store, stats_warning) = load_stats(stats_path);
        let warnings: Vec<String> = [cal_warning, stats_warning].into_iter().flatten().collect();
        Ok((
            ServeState {
                db,
                catalog,
                rules: commands::build_rules(None)?,
                cal,
                cal_path: calibration.map(str::to_string),
                stats_path: stats_path.map(str::to_string),
                stats_key: commands::stats_catalog_key(Some(db_path)).to_string(),
                stats: RwLock::new(store.unwrap_or_default()),
                default_workers,
            },
            warnings,
        ))
    }

    fn stats_read(&self) -> std::sync::RwLockReadGuard<'_, StatsStore> {
        match self.stats.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn explain(&self, query: &str, workers: Option<usize>) -> Result<String, CliError> {
        let q = parse_q(query)?;
        let w = resolve_workers(workers.or(Some(self.default_workers)));
        let guard = self.stats_read();
        let obs_stats = self
            .stats_path
            .as_deref()
            .and_then(|_| guard.catalog(&self.stats_key));
        let stats_note = self
            .stats_path
            .as_deref()
            .map(|p| (p, self.stats_key.as_str()));
        explain_with(
            &q,
            &self.catalog,
            w,
            &self.cal,
            obs_stats,
            stats_note,
            &[],
            &self.rules,
        )
    }

    // concurrent profiles need no gate: each runs under its request's
    // private obs scope, so snapshots are disjoint by construction
    fn profile(&self, query: &str, workers: Option<usize>) -> Result<String, CliError> {
        let q = parse_q(query)?;
        let w = resolve_workers(workers.or(Some(self.default_workers)));
        // consult a snapshot of the resident store, harvest through the
        // locked on-disk read-fold-write, then refresh the resident copy
        let consult = self.stats_read().clone();
        let outcome = profile_with(
            &q,
            &self.catalog,
            &self.rules,
            false,
            w,
            None,
            false,
            &self.cal,
            Some(&consult),
            self.stats_path.as_deref(),
            &self.stats_key,
            None,
            &[],
        )?;
        if let Some(written) = outcome.written_store {
            match self.stats.write() {
                Ok(mut g) => *g = written,
                Err(poisoned) => *poisoned.into_inner() = written,
            }
        }
        Ok(outcome.output)
    }
}

impl QueryHandler for ServeState {
    fn execute(&self, op: Op, query: &str, workers: Option<usize>) -> Result<String, HandlerError> {
        let result = match op {
            Op::Run => run_with(
                query,
                &self.db,
                &self.catalog,
                workers.or(Some(self.default_workers)),
            ),
            Op::Explain => self.explain(query, workers),
            Op::Profile => self.profile(query, workers),
            // stats/ping/shutdown are answered by the server itself
            _ => Err(CliError::internal(format!(
                "op {:?} is not a query",
                op.name()
            ))),
        };
        result.map_err(|e| HandlerError {
            kind: e.kind.name().to_string(),
            message: e.message,
        })
    }

    fn flush(&self) -> Vec<String> {
        let mut warnings = Vec::new();
        if let Some(p) = self.stats_path.as_deref() {
            // save() prunes, so flush a clone rather than the resident copy
            let mut store = self.stats_read().clone();
            if let Err(e) = store.save(p) {
                warnings.push(format!("stats flush to {p} failed: {e}"));
            }
        }
        if let Some(p) = self.cal_path.as_deref() {
            if let Err(e) = persist_morsel_rows(p) {
                warnings.push(format!("calibration flush to {p} failed: {e}"));
            }
        }
        warnings
    }
}

/// `genpar serve <db.gdb> --port P ...`: run the resident service until
/// a graceful shutdown (SIGINT/SIGTERM or `{"op":"shutdown"}`) drains
/// it. Exits 0 with a drain summary.
#[allow(clippy::too_many_arguments)]
pub fn serve_cmd(
    db: &str,
    port: u16,
    workers: Option<usize>,
    tenant_budget: Option<&str>,
    max_inflight: Option<usize>,
    queue_cap: Option<usize>,
    calibration: Option<&str>,
    stats: Option<&str>,
    timeout_ms: Option<u64>,
) -> Result<String, CliError> {
    let w = resolve_workers(workers);
    let budget = tenant_budget
        .map(|spec| {
            genpar_guard::ExecBudget::parse(spec)
                .map_err(|e| CliError::usage(format!("bad --tenant-budget: {e}")))
        })
        .transpose()?;
    let (state, warnings) = ServeState::load(db, calibration, stats, w)?;
    for warning in &warnings {
        eprintln!("genpar serve: warning: {warning}");
    }
    let cfg = ServeConfig {
        port,
        workers: w,
        // enough concurrency to keep the pool busy, small enough that
        // overload queues (and then sheds) instead of thrashing
        max_inflight: max_inflight.unwrap_or_else(|| w.max(2) * 2),
        queue_cap: queue_cap.unwrap_or(16),
        tenant_budget: budget,
        default_timeout_ms: timeout_ms,
    };
    genpar_serve::server::serve(&cfg, Arc::new(state)).map_err(CliError::runtime)
}

/// The query mix `bench-serve` drives: one of each parallel route (plain
/// partitioned shapes, every combiner, a per-round fixpoint), filtered
/// to the relations the target database actually defines.
const BENCH_QUERIES: &[&str] = &[
    "pi[$1](R)",
    "select[$1=$2](R)",
    "union(R, S)",
    "diff(R, S)",
    "pi[$1,$4](join[$2=$1](R, S))",
    "count(R)",
    "sum[$2](R)",
    "fix[X](E, pi[$1,$4](join[$2=$1](X, E)))",
];

/// `genpar bench-serve --port P --db FILE --clients N --duration S`:
/// the closed-loop load harness. Computes each query's one-shot output
/// in-process first, drives real socket clients against the live
/// server (spread over `tenant_count` tenants so per-tenant roll-ups
/// are exercised), asserts every `ok` response byte-identical, and
/// writes a `BENCH_serve.json` schema v2 report (flat totals plus a
/// `tenants` map of per-tenant latency quantiles) for bench-compare.
pub fn bench_serve_cmd(
    db: &str,
    port: u16,
    clients: usize,
    duration_ms: u64,
    out: &str,
    tenant: &str,
    tenant_count: usize,
) -> Result<String, CliError> {
    let dbv = dbfile::load_db(db)?;
    let catalog = catalog_from_db(&dbv)?;
    let defined: std::collections::BTreeSet<&str> =
        catalog.tables().map(|t| t.name.as_str()).collect();
    let mut queries = Vec::new();
    for text in BENCH_QUERIES {
        let q = parse_q(text)?;
        if !q.rel_names().iter().all(|n| defined.contains(n.as_str())) {
            continue;
        }
        // serial one-shot output is THE baseline: the serial-vs-parallel
        // differential oracle already guarantees route-independence, so
        // any served divergence is a serve-layer bug
        let expected = run_with(text, &dbv, &catalog, Some(1))?;
        queries.push((text.to_string(), expected));
    }
    if queries.is_empty() {
        return Err(CliError::usage(format!(
            "bench-serve: {db} defines none of the bench relations (R, S, E)"
        )));
    }
    let n_queries = queries.len();
    // N > 1 tenants get numbered names; N == 1 keeps the plain name so
    // single-tenant runs read naturally in the report
    let tenants: Vec<String> = if tenant_count.max(1) > 1 {
        (1..=tenant_count)
            .map(|i| format!("{tenant}-{i}"))
            .collect()
    } else {
        vec![tenant.to_string()]
    };
    let spec = BenchSpec {
        addr: format!("127.0.0.1:{port}"),
        clients: clients.max(1),
        duration: Duration::from_millis(duration_ms),
        tenants,
        queries,
    };
    let report = run_bench(&spec).map_err(CliError::runtime)?;

    let max_us = report.latencies_us.last().copied().unwrap_or(0);
    let tenants_json = Json::Obj(
        report
            .tenants
            .iter()
            .map(|(name, t)| {
                (
                    name.clone(),
                    Json::obj([
                        ("offered", Json::Int(t.offered as i128)),
                        ("completed", Json::Int(t.completed as i128)),
                        ("shed", Json::Int(t.shed as i128)),
                        ("budget_exceeded", Json::Int(t.budget_exceeded as i128)),
                        ("errors", Json::Int(t.errors as i128)),
                        (
                            "latency_us",
                            Json::obj([
                                ("p50", Json::Int(t.percentile_us(50.0) as i128)),
                                ("p95", Json::Int(t.percentile_us(95.0) as i128)),
                                ("p99", Json::Int(t.percentile_us(99.0) as i128)),
                                (
                                    "max",
                                    Json::Int(t.latencies_us.last().copied().unwrap_or(0) as i128),
                                ),
                            ]),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    let doc = Json::obj([
        ("bench", Json::str("serve")),
        ("schema_version", Json::Int(2)),
        ("clients", Json::Int(spec.clients as i128)),
        (
            "duration_ms",
            Json::Int(report.elapsed.as_millis().min(u64::MAX as u128) as i128),
        ),
        ("queries", Json::Int(n_queries as i128)),
        ("offered", Json::Int(report.offered as i128)),
        ("completed", Json::Int(report.completed as i128)),
        ("shed", Json::Int(report.shed as i128)),
        ("budget_exceeded", Json::Int(report.budget_exceeded as i128)),
        ("errors", Json::Int(report.errors as i128)),
        ("throughput_rps", Json::Num(report.throughput_rps())),
        (
            "latency_us",
            Json::obj([
                ("p50", Json::Int(report.percentile_us(50.0) as i128)),
                ("p95", Json::Int(report.percentile_us(95.0) as i128)),
                ("p99", Json::Int(report.percentile_us(99.0) as i128)),
                ("max", Json::Int(max_us as i128)),
            ]),
        ),
        ("tenants", tenants_json),
        ("byte_identical", Json::Bool(report.mismatches == 0)),
        ("mismatches", Json::Int(report.mismatches as i128)),
    ]);
    std::fs::write(out, format!("{doc}\n"))
        .map_err(|e| CliError::runtime(format!("cannot write {out}: {e}")))?;

    if report.mismatches > 0 {
        return Err(CliError::internal(format!(
            "bench-serve: {} response(s) diverged from one-shot CLI output; first: {}",
            report.mismatches,
            report
                .first_mismatch
                .as_deref()
                .unwrap_or("(sample unavailable)")
        )));
    }
    if report.completed == 0 {
        return Err(CliError::runtime(format!(
            "bench-serve: no request completed against 127.0.0.1:{port} — is the server up?"
        )));
    }
    let mut summary = format!(
        "bench-serve: {} clients x {:.1}s against 127.0.0.1:{port} ({n_queries} queries, {} tenants)\n\
         offered {} / completed {} / shed {} / budget {} / errors {}\n\
         throughput {:.1} req/s, latency p50 {}us p95 {}us p99 {}us max {max_us}us\n",
        spec.clients,
        report.elapsed.as_secs_f64(),
        spec.tenants.len(),
        report.offered,
        report.completed,
        report.shed,
        report.budget_exceeded,
        report.errors,
        report.throughput_rps(),
        report.percentile_us(50.0),
        report.percentile_us(95.0),
        report.percentile_us(99.0),
    );
    for (name, t) in &report.tenants {
        summary.push_str(&format!(
            "  tenant {name}: completed {} / shed {} / budget {}, p50 {}us p95 {}us p99 {}us\n",
            t.completed,
            t.shed,
            t.budget_exceeded,
            t.percentile_us(50.0),
            t.percentile_us(95.0),
            t.percentile_us(99.0),
        ));
    }
    summary.push_str(&format!(
        "every response byte-identical to one-shot output; report written to {out}\n"
    ));
    Ok(summary)
}
