#![warn(missing_docs)]
// Execution paths must fail structurally, never unwrap (tests exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # genpar-cli — command-line access to the genericity toolkit
//!
//! The library half of the `genpar` binary: command parsing, the database
//! file format, and the command implementations (testable without a
//! process boundary).
//!
//! ```text
//! genpar classify '<query>'                    static classification + trace
//! genpar check    '<query>' [--mode M] [--class C]   dynamic invariance check
//! genpar probe    '<query>' [--mode M]         tightest-class ladder
//! genpar run      '<query>' --db FILE          evaluate against a database
//! genpar optimize '<query>' [--db FILE] [--union-key R,S:$1]
//! genpar explain  '<query>' [--db FILE] [--union-key R,S:$1]
//! genpar profile  '<query>' [--db FILE] [--union-key R,S:$1] [--json]
//! genpar audit                                 classify the paper's query catalog
//! ```
//!
//! All commands accept `--quiet` (or `GENPAR_OBS=off`) to disable the
//! observability layer entirely.
//!
//! Database files bind relation names to complex-value literals:
//!
//! ```text
//! # Example 2.2
//! R = {(e, f), (i, f), (e, j), (i, j), (f, g), (j, g)}
//! S = {(a, b)}
//! ```

pub mod commands;
pub mod dbfile;
pub mod serve_cmd;

use std::fmt;

/// What went wrong, at the granularity the process exit code reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Bad command line, flags, or environment spec (exit 2).
    Usage,
    /// Query text or database file failed to parse (exit 3).
    Parse,
    /// An [`genpar_guard::ExecBudget`] cap was crossed (exit 4).
    Budget,
    /// An injected fault fired or a panic was caught at the execution
    /// boundary (exit 5).
    Internal,
    /// Any other runtime failure — unknown relation, IO, shape errors
    /// (exit 1).
    Runtime,
}

impl ErrorKind {
    /// The process exit code for this kind.
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorKind::Runtime => 1,
            ErrorKind::Usage => 2,
            ErrorKind::Parse => 3,
            ErrorKind::Budget => 4,
            ErrorKind::Internal => 5,
        }
    }

    /// The kind's name on the serve wire protocol (`error.kind`).
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Runtime => "runtime",
            ErrorKind::Usage => "usage",
            ErrorKind::Parse => "parse",
            ErrorKind::Budget => "budget",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A CLI-level error: a category (which fixes the exit code) plus a
/// rendered message.
#[derive(Debug)]
pub struct CliError {
    /// The error category.
    pub kind: ErrorKind,
    /// Human-readable message (printed to stderr).
    pub message: String,
}

impl CliError {
    /// A bad-usage error (exit 2).
    pub fn usage(message: impl Into<String>) -> CliError {
        CliError {
            kind: ErrorKind::Usage,
            message: message.into(),
        }
    }

    /// A parse error (exit 3).
    pub fn parse(message: impl Into<String>) -> CliError {
        CliError {
            kind: ErrorKind::Parse,
            message: message.into(),
        }
    }

    /// A budget-exceeded error (exit 4).
    pub fn budget(message: impl Into<String>) -> CliError {
        CliError {
            kind: ErrorKind::Budget,
            message: message.into(),
        }
    }

    /// An internal error — injected fault or caught panic (exit 5).
    pub fn internal(message: impl Into<String>) -> CliError {
        CliError {
            kind: ErrorKind::Internal,
            message: message.into(),
        }
    }

    /// Any other runtime error (exit 1).
    pub fn runtime(message: impl Into<String>) -> CliError {
        CliError {
            kind: ErrorKind::Runtime,
            message: message.into(),
        }
    }

    /// The process exit code for this error.
    pub fn exit_code(&self) -> i32 {
        self.kind.exit_code()
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::runtime(format!("io error: {e}"))
    }
}

impl From<genpar_algebra::eval::EvalError> for CliError {
    fn from(e: genpar_algebra::eval::EvalError) -> Self {
        use genpar_algebra::eval::EvalError;
        match &e {
            EvalError::BudgetExceeded { .. } => CliError::budget(e.to_string()),
            EvalError::Fault(_) => CliError::internal(e.to_string()),
            _ => CliError::runtime(e.to_string()),
        }
    }
}

impl From<genpar_engine::plan::ExecError> for CliError {
    fn from(e: genpar_engine::plan::ExecError) -> Self {
        use genpar_engine::plan::ExecError;
        match &e {
            ExecError::Budget { .. } => CliError::budget(e.to_string()),
            ExecError::Fault(_) | ExecError::Internal(_) => CliError::internal(e.to_string()),
            _ => CliError::runtime(e.to_string()),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "genpar — genericity & parametricity toolkit (PODS'96 reproduction)

USAGE:
  genpar classify '<query>'
  genpar check    '<query>' [--mode rel|strong] [--class all|total-surjective|functional|injective|bijective]
  genpar probe    '<query>' [--mode rel|strong] [--arity N]
  genpar run      '<query>' --db FILE [--parallel N] [--timeout MS]
  genpar optimize '<query>' [--db FILE] [--union-key R,S:$N]
  genpar explain  '<query>' [--db FILE] [--union-key R,S:$N] [--parallel N] [--calibration FILE]
                  [--stats FILE]
  genpar profile  '<query>' [--db FILE] [--union-key R,S:$N] [--json] [--parallel N]
                  [--trace FILE] [--timeline] [--calibration FILE] [--stats FILE] [--timeout MS]
  genpar calibrate [--bench FILE] [--out FILE]
  genpar stats    show|reset [--file FILE]
  genpar chaos    [--seed N] [--cases M]
  genpar serve    <db.gdb> --port P [--parallel N] [--tenant-budget SPEC] [--max-inflight N]
                  [--queue N] [--calibration FILE] [--stats FILE] [--timeout MS]
  genpar bench-serve --port P --db FILE [--clients N] [--duration S] [--out FILE] [--tenant T]
                  [--tenants N]
  genpar audit

  --quiet (any command) or GENPAR_OBS=off disables observability.
  --parallel N (or GENPAR_PARALLEL=N) runs partition-safe queries on N
  worker threads; root-level count/sum/even run as partition-local
  accumulators with a serial combine, and root-level fix runs each
  round's body on the morsel pool (semi-naive deltas). Queries the
  genericity checker cannot certify fall back to serial evaluation
  (recorded as an exec.fallback event).
  --trace FILE exports the run's spans/events as Chrome trace_event
  JSON (load in chrome://tracing or Perfetto; .jsonl ext for JSONL).
  --timeline (or GENPAR_TIMELINE=1) records real begin/end instants in
  per-worker ring buffers, so --trace emits a true timeline — morsel
  scheduling, steals, fixpoint-round barriers on per-worker lanes,
  stamped with a fresh query id per executor entry. --trace implies it.
  --calibration FILE loads measured cost-model parameters (see
  `genpar calibrate`, which fits them from BENCH_parallel.json).
  --stats FILE (explain/profile) loads a persistent observed-statistics
  store: per-plan-shape cardinality EWMAs override the static model's
  guesses once an entry has >= 3 samples (explain marks each node
  `static` or `observed(n=..)`). `profile --stats` also harvests the
  run's plan.node_stats events back into FILE, so estimates improve
  run over run. Stats only ever change the chosen *route* — answers
  are identical with stats on or off. `genpar stats show|reset`
  inspects or clears the store (default STATS.json).
  GENPAR_MORSEL=fixed:N pins the auto-tuned morsel size. `profile
  --calibration FILE` writes the converged morsel size back into the
  file (key `morsel_rows`); later runs preseed the tuner from it
  (GENPAR_MORSEL always wins over the persisted seed).
  --timeout MS (run/profile) arms a wall-clock deadline; crossing it
  ends the command as a budget breach (exit 4, resource wall_ms).
  GENPAR_RETRY=N caps in-place re-runs of faulted morsels and fixpoint
  rounds (default 2, 0 disables); repeated faults quarantine the
  worker, and only an exhausted ladder degrades the query to serial.
  GENPAR_FAULTS=site:nth|* arms deterministic fault injection at a
  known site (unknown sites are usage errors naming the bad token).
  `genpar serve` keeps the database, calibration and statistics store
  resident and answers a line-oriented JSON protocol on 127.0.0.1:PORT
  (one request per line: {\"op\": \"run\"|\"explain\"|\"profile\"|\"stats\"|
  \"ping\"|\"shutdown\", \"query\": ..., \"tenant\": ..., \"timeout_ms\": ...,
  \"workers\": ...}). --tenant-budget SPEC (the GENPAR_BUDGET grammar)
  gives every tenant its own cumulative quota pool — exhausting it
  yields structured budget_exceeded responses while other tenants keep
  running. --max-inflight / --queue bound admission: past both, requests
  are shed with an `overloaded` response instead of degrading everyone.
  SIGINT (or the shutdown op) drains in-flight queries, flushes state
  files through the checksummed writer, and exits 0.
  `genpar bench-serve` drives a live server with N closed-loop socket
  clients for S seconds, asserts every response byte-identical to the
  one-shot CLI, and writes BENCH_serve.json schema v2 (flat latency
  percentiles, throughput, shed count, plus a per-tenant `tenants`
  map) for bench-compare. --tenants N spreads the clients over N
  numbered tenants (default 2; `T-1`..`T-N` from --tenant's T).
  The serve `stats` op takes optional \"tenant\"/\"query_id\" fields
  filtering over the per-tenant obs roll-ups retained by the scoped
  registry (each request records into its own scope, rolled up into
  the process totals on completion).
  `genpar chaos` replays --cases seeded fault storms (morsel, merge,
  fixpoint-round, combine, retry and persistence faults) and fails
  loudly if any recovered answer differs from fault-free serial
  evaluation.

QUERY SYNTAX (columns are 1-based):
  R | empty | lit[{(a,b)}]
  pi[$1,$2](q)        select[$1=$2](q)      select[$1=7](q)
  select[even($1)](q) hat[$1=$2](q)         map[id|$N|cols($..)|const(v)|name](q)
  union(q,q) intersect(q,q) diff(q,q) product(q,q) join[$1=$1](q,q)
  nest[$1](q) unnest[$2](q)
  insert[(v)](q) singleton(q) flatten(q) powerset(q)
  eqadom(q) adom(q) even(q) np(q) complement(q)
  count(q) sum[$N](q) fix[X](init, step)

DB FILE: lines of `name = <value literal>`; `#` comments.";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `classify <query>`
    Classify {
        /// The query text.
        query: String,
    },
    /// `check <query> ...`
    Check {
        /// The query text.
        query: String,
        /// `rel` or `strong`.
        mode: String,
        /// Mapping-class name.
        class: String,
    },
    /// `probe <query> ...`
    Probe {
        /// The query text.
        query: String,
        /// `rel` or `strong`.
        mode: String,
        /// Assumed arity of the input relations.
        arity: usize,
    },
    /// `run <query> --db FILE [--parallel N] [--timeout MS]`
    Run {
        /// The query text.
        query: String,
        /// Path to a `.gdb` database file.
        db: String,
        /// Worker threads from `--parallel` (`None` defers to
        /// `GENPAR_PARALLEL`, then serial).
        workers: Option<usize>,
        /// Wall-clock deadline in milliseconds (`--timeout`); crossing
        /// it is a budget breach (exit 4).
        timeout_ms: Option<u64>,
    },
    /// `optimize <query> ...`
    Optimize {
        /// The query text.
        query: String,
        /// Optional `.gdb` file for cardinalities.
        db: Option<String>,
        /// Optional `R,S:$N` union-key assertion.
        union_key: Option<String>,
    },
    /// `explain <query> ...` — rewrite trace, blocked rules, chosen plan.
    Explain {
        /// The query text.
        query: String,
        /// Optional `.gdb` file for cardinalities.
        db: Option<String>,
        /// Optional `R,S:$N` union-key assertion.
        union_key: Option<String>,
        /// Worker threads from `--parallel` (`None` defers to
        /// `GENPAR_PARALLEL`, then serial).
        workers: Option<usize>,
        /// Optional calibration file for the parallel cost model.
        calibration: Option<String>,
        /// Optional observed-statistics store consulted by the cost
        /// model (entries with enough samples override static guesses).
        stats: Option<String>,
    },
    /// `profile <query> ...` — run the query and dump the obs snapshot.
    Profile {
        /// The query text.
        query: String,
        /// Optional `.gdb` file to run against.
        db: Option<String>,
        /// Optional `R,S:$N` union-key assertion.
        union_key: Option<String>,
        /// Emit the snapshot as JSON instead of a tree.
        json: bool,
        /// Worker threads from `--parallel` (`None` defers to
        /// `GENPAR_PARALLEL`, then serial).
        workers: Option<usize>,
        /// Write the run's spans/events as a Chrome `trace_event` file
        /// (`.jsonl` extension switches to JSONL).
        trace: Option<String>,
        /// Record real begin/end instants in the per-worker timeline
        /// rings for this run (`--trace` implies it).
        timeline: bool,
        /// Optional calibration file for the parallel cost model.
        calibration: Option<String>,
        /// Optional observed-statistics store: consulted for routing
        /// before the run, harvested from the run's `plan.node_stats`
        /// events and written back after it.
        stats: Option<String>,
        /// Wall-clock deadline in milliseconds (`--timeout`); crossing
        /// it is a budget breach (exit 4).
        timeout_ms: Option<u64>,
    },
    /// `calibrate` — fit the parallel cost model from a bench JSON and
    /// write a calibration file.
    Calibrate {
        /// Bench results to fit from (default `BENCH_parallel.json`).
        bench: String,
        /// Calibration file to write (default `CALIBRATION.json`).
        out: String,
    },
    /// `stats show|reset` — inspect or clear an observed-statistics
    /// store file.
    Stats {
        /// `show` or `reset`.
        action: String,
        /// Store file (default `STATS.json`).
        file: String,
    },
    /// `chaos` — the built-in chaos oracle: replay deterministic fault
    /// storms over random queries and assert the recovered answers stay
    /// byte-identical to fault-free serial evaluation.
    Chaos {
        /// Deterministic seed for the storm generator.
        seed: u64,
        /// Number of cases to run (default 64).
        cases: u32,
    },
    /// `serve <db.gdb> --port P` — the resident multi-tenant query
    /// service (line-oriented JSON over TCP).
    Serve {
        /// Path to the `.gdb` database file held resident.
        db: String,
        /// Port to bind on 127.0.0.1 (0 = ephemeral, announced on stderr).
        port: u16,
        /// Worker slots in the process-wide morsel pool (`--parallel`;
        /// `None` defers to `GENPAR_PARALLEL`, then serial).
        workers: Option<usize>,
        /// Per-tenant quota spec (`--tenant-budget`, the `GENPAR_BUDGET`
        /// grammar); `None` = unmetered tenants.
        tenant_budget: Option<String>,
        /// Queries executing concurrently before arrivals queue
        /// (`--max-inflight`; defaults to twice the worker count).
        max_inflight: Option<usize>,
        /// Queued requests beyond which arrivals are shed (`--queue`).
        queue_cap: Option<usize>,
        /// Calibration file held resident (`--calibration`).
        calibration: Option<String>,
        /// Observed-statistics store held resident (`--stats`).
        stats: Option<String>,
        /// Default per-request wall deadline (`--timeout`), overridable
        /// per request via the protocol's `timeout_ms` field.
        timeout_ms: Option<u64>,
    },
    /// `bench-serve --port P --db FILE` — closed-loop load harness
    /// against a live server.
    BenchServe {
        /// The `.gdb` file the server is serving (used to compute the
        /// one-shot baseline outputs in-process).
        db: String,
        /// Server port on 127.0.0.1.
        port: u16,
        /// Concurrent closed-loop clients (`--clients`).
        clients: usize,
        /// Run duration in milliseconds (`--duration` takes seconds).
        duration_ms: u64,
        /// Report file to write (`--out`, default `BENCH_serve.json`).
        out: String,
        /// Tenant name stamped on every request (`--tenant`); with
        /// `tenants > 1` it becomes the prefix of the numbered names.
        tenant: String,
        /// How many tenants to spread the clients over (`--tenants`,
        /// default 2 so the per-tenant report is populated).
        tenants: usize,
    },
    /// `audit` — classify the built-in paper catalog.
    Audit,
    /// `--help` or no args.
    Help,
}

/// Parse argv (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let mut rest: Vec<&String> = it.collect();

    fn take_switch(rest: &mut Vec<&String>, flag: &str) -> bool {
        match rest.iter().position(|a| a.as_str() == flag) {
            Some(idx) => {
                rest.remove(idx);
                true
            }
            None => false,
        }
    }

    fn take_flag(rest: &mut Vec<&String>, flag: &str) -> Option<String> {
        let idx = rest.iter().position(|a| a.as_str() == flag)?;
        if idx + 1 < rest.len() {
            let val = rest[idx + 1].clone();
            rest.drain(idx..=idx + 1);
            Some(val)
        } else {
            rest.remove(idx);
            None
        }
    }

    fn take_workers(rest: &mut Vec<&String>) -> Result<Option<usize>, CliError> {
        take_flag(rest, "--parallel")
            .map(|w| {
                w.parse::<usize>()
                    .map_err(|e| CliError::usage(format!("bad --parallel: {e}")))
            })
            .transpose()
    }

    fn take_timeout(rest: &mut Vec<&String>) -> Result<Option<u64>, CliError> {
        let present = rest.iter().any(|a| a.as_str() == "--timeout");
        match take_flag(rest, "--timeout") {
            Some(ms) => ms
                .parse::<u64>()
                .map(Some)
                .map_err(|e| CliError::usage(format!("bad --timeout {ms:?}: {e}"))),
            None if present => Err(CliError::usage("--timeout needs a value in milliseconds")),
            None => Ok(None),
        }
    }

    match cmd.as_str() {
        "--help" | "-h" | "help" => Ok(Command::Help),
        "audit" => Ok(Command::Audit),
        "classify" => {
            let query = rest
                .first()
                .ok_or_else(|| CliError::usage("classify needs a query"))?
                .to_string();
            Ok(Command::Classify { query })
        }
        "check" => {
            let mode = take_flag(&mut rest, "--mode").unwrap_or_else(|| "rel".into());
            let class = take_flag(&mut rest, "--class").unwrap_or_else(|| "all".into());
            let query = rest
                .first()
                .ok_or_else(|| CliError::usage("check needs a query"))?
                .to_string();
            Ok(Command::Check { query, mode, class })
        }
        "probe" => {
            let mode = take_flag(&mut rest, "--mode").unwrap_or_else(|| "rel".into());
            let arity = take_flag(&mut rest, "--arity")
                .map(|a| {
                    a.parse::<usize>()
                        .map_err(|e| CliError::usage(format!("bad --arity: {e}")))
                })
                .transpose()?
                .unwrap_or(2);
            let query = rest
                .first()
                .ok_or_else(|| CliError::usage("probe needs a query"))?
                .to_string();
            Ok(Command::Probe { query, mode, arity })
        }
        "run" => {
            let db = take_flag(&mut rest, "--db")
                .ok_or_else(|| CliError::usage("run needs --db FILE"))?;
            let workers = take_workers(&mut rest)?;
            let timeout_ms = take_timeout(&mut rest)?;
            let query = rest
                .first()
                .ok_or_else(|| CliError::usage("run needs a query"))?
                .to_string();
            Ok(Command::Run {
                query,
                db,
                workers,
                timeout_ms,
            })
        }
        "optimize" => {
            let db = take_flag(&mut rest, "--db");
            let union_key = take_flag(&mut rest, "--union-key");
            let query = rest
                .first()
                .ok_or_else(|| CliError::usage("optimize needs a query"))?
                .to_string();
            Ok(Command::Optimize {
                query,
                db,
                union_key,
            })
        }
        "explain" => {
            let db = take_flag(&mut rest, "--db");
            let union_key = take_flag(&mut rest, "--union-key");
            let workers = take_workers(&mut rest)?;
            let calibration = take_flag(&mut rest, "--calibration");
            let stats = take_flag(&mut rest, "--stats");
            let query = rest
                .first()
                .ok_or_else(|| CliError::usage("explain needs a query"))?
                .to_string();
            Ok(Command::Explain {
                query,
                db,
                union_key,
                workers,
                calibration,
                stats,
            })
        }
        "profile" => {
            let db = take_flag(&mut rest, "--db");
            let union_key = take_flag(&mut rest, "--union-key");
            let json = take_switch(&mut rest, "--json");
            let workers = take_workers(&mut rest)?;
            let trace = take_flag(&mut rest, "--trace");
            let timeline = take_switch(&mut rest, "--timeline");
            let calibration = take_flag(&mut rest, "--calibration");
            let stats = take_flag(&mut rest, "--stats");
            let timeout_ms = take_timeout(&mut rest)?;
            let query = rest
                .first()
                .ok_or_else(|| CliError::usage("profile needs a query"))?
                .to_string();
            Ok(Command::Profile {
                query,
                db,
                union_key,
                json,
                workers,
                trace,
                timeline,
                calibration,
                stats,
                timeout_ms,
            })
        }
        "calibrate" => {
            let bench =
                take_flag(&mut rest, "--bench").unwrap_or_else(|| "BENCH_parallel.json".into());
            let out = take_flag(&mut rest, "--out").unwrap_or_else(|| "CALIBRATION.json".into());
            if let Some(stray) = rest.first() {
                return Err(CliError::usage(format!(
                    "calibrate takes no positional arguments (got {stray:?})"
                )));
            }
            Ok(Command::Calibrate { bench, out })
        }
        "chaos" => {
            let seed = take_flag(&mut rest, "--seed")
                .map(|s| {
                    s.parse::<u64>()
                        .map_err(|e| CliError::usage(format!("bad --seed {s:?}: {e}")))
                })
                .transpose()?
                .unwrap_or(0);
            let cases = take_flag(&mut rest, "--cases")
                .map(|s| {
                    s.parse::<u32>()
                        .map_err(|e| CliError::usage(format!("bad --cases {s:?}: {e}")))
                })
                .transpose()?
                .unwrap_or(64);
            if cases == 0 {
                return Err(CliError::usage("--cases must be at least 1"));
            }
            if let Some(stray) = rest.first() {
                return Err(CliError::usage(format!(
                    "chaos takes no positional arguments (got {stray:?})"
                )));
            }
            Ok(Command::Chaos { seed, cases })
        }
        "serve" => {
            fn take_parsed<T: std::str::FromStr>(
                rest: &mut Vec<&String>,
                flag: &str,
            ) -> Result<Option<T>, CliError>
            where
                T::Err: std::fmt::Display,
            {
                let present = rest.iter().any(|a| a.as_str() == flag);
                match take_flag(rest, flag) {
                    Some(v) => v
                        .parse::<T>()
                        .map(Some)
                        .map_err(|e| CliError::usage(format!("bad {flag} {v:?}: {e}"))),
                    None if present => Err(CliError::usage(format!("{flag} needs a value"))),
                    None => Ok(None),
                }
            }
            let port = take_parsed::<u16>(&mut rest, "--port")?
                .ok_or_else(|| CliError::usage("serve needs --port P (0 = ephemeral)"))?;
            let workers = take_workers(&mut rest)?;
            let tenant_budget = take_flag(&mut rest, "--tenant-budget");
            let max_inflight = take_parsed::<usize>(&mut rest, "--max-inflight")?;
            let queue_cap = take_parsed::<usize>(&mut rest, "--queue")?;
            let calibration = take_flag(&mut rest, "--calibration");
            let stats = take_flag(&mut rest, "--stats");
            let timeout_ms = take_timeout(&mut rest)?;
            let db = rest
                .first()
                .ok_or_else(|| CliError::usage("serve needs a db file"))?
                .to_string();
            if let Some(stray) = rest.get(1) {
                return Err(CliError::usage(format!(
                    "serve takes one db file; unexpected argument {stray:?}"
                )));
            }
            Ok(Command::Serve {
                db,
                port,
                workers,
                tenant_budget,
                max_inflight,
                queue_cap,
                calibration,
                stats,
                timeout_ms,
            })
        }
        "bench-serve" => {
            let port = take_flag(&mut rest, "--port")
                .ok_or_else(|| CliError::usage("bench-serve needs --port P"))?;
            let port = port
                .parse::<u16>()
                .map_err(|e| CliError::usage(format!("bad --port {port:?}: {e}")))?;
            let db = take_flag(&mut rest, "--db")
                .ok_or_else(|| CliError::usage("bench-serve needs --db FILE"))?;
            let clients = take_flag(&mut rest, "--clients")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|e| CliError::usage(format!("bad --clients {v:?}: {e}")))
                })
                .transpose()?
                .unwrap_or(4);
            if clients == 0 {
                return Err(CliError::usage("--clients must be at least 1"));
            }
            let duration_ms = match take_flag(&mut rest, "--duration") {
                Some(v) => {
                    let secs = v
                        .parse::<f64>()
                        .map_err(|e| CliError::usage(format!("bad --duration {v:?}: {e}")))?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err(CliError::usage(
                            "--duration must be a positive number of seconds",
                        ));
                    }
                    (secs * 1000.0) as u64
                }
                None => 2000,
            };
            let out = take_flag(&mut rest, "--out").unwrap_or_else(|| "BENCH_serve.json".into());
            let tenant = take_flag(&mut rest, "--tenant").unwrap_or_else(|| "bench".into());
            let tenants = take_flag(&mut rest, "--tenants")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|e| CliError::usage(format!("bad --tenants {v:?}: {e}")))
                })
                .transpose()?
                .unwrap_or(2);
            if tenants == 0 {
                return Err(CliError::usage("--tenants must be at least 1"));
            }
            if let Some(stray) = rest.first() {
                return Err(CliError::usage(format!(
                    "bench-serve takes no positional arguments (got {stray:?})"
                )));
            }
            Ok(Command::BenchServe {
                db,
                port,
                clients,
                duration_ms,
                out,
                tenant,
                tenants,
            })
        }
        "stats" => {
            let file = take_flag(&mut rest, "--file").unwrap_or_else(|| "STATS.json".into());
            let action = rest
                .first()
                .map(|s| s.to_string())
                .ok_or_else(|| CliError::usage("stats needs an action: show|reset"))?;
            if action != "show" && action != "reset" {
                return Err(CliError::usage(format!(
                    "stats action must be show or reset (got {action:?})"
                )));
            }
            Ok(Command::Stats { action, file })
        }
        other => Err(CliError::usage(format!(
            "unknown command '{other}' (try --help)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_commands() {
        assert_eq!(parse_args(&argv(&[])).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv(&["audit"])).unwrap(), Command::Audit);
        assert_eq!(
            parse_args(&argv(&["classify", "pi[$1](R)"])).unwrap(),
            Command::Classify {
                query: "pi[$1](R)".into()
            }
        );
        assert_eq!(
            parse_args(&argv(&["check", "--mode", "strong", "R"])).unwrap(),
            Command::Check {
                query: "R".into(),
                mode: "strong".into(),
                class: "all".into()
            }
        );
        assert_eq!(
            parse_args(&argv(&["run", "--db", "x.gdb", "R"])).unwrap(),
            Command::Run {
                query: "R".into(),
                db: "x.gdb".into(),
                workers: None,
                timeout_ms: None
            }
        );
        assert_eq!(
            parse_args(&argv(&["run", "--db", "x.gdb", "--parallel", "4", "R"])).unwrap(),
            Command::Run {
                query: "R".into(),
                db: "x.gdb".into(),
                workers: Some(4),
                timeout_ms: None
            }
        );
        assert_eq!(
            parse_args(&argv(&["run", "--db", "x.gdb", "--timeout", "2500", "R"])).unwrap(),
            Command::Run {
                query: "R".into(),
                db: "x.gdb".into(),
                workers: None,
                timeout_ms: Some(2500)
            }
        );
        assert_eq!(
            parse_args(&argv(&["chaos"])).unwrap(),
            Command::Chaos { seed: 0, cases: 64 }
        );
        assert_eq!(
            parse_args(&argv(&["chaos", "--seed", "7", "--cases", "16"])).unwrap(),
            Command::Chaos { seed: 7, cases: 16 }
        );
        assert_eq!(
            parse_args(&argv(&["optimize", "--union-key", "R,S:$1", "diff(R,S)"])).unwrap(),
            Command::Optimize {
                query: "diff(R,S)".into(),
                db: None,
                union_key: Some("R,S:$1".into())
            }
        );
        assert_eq!(
            parse_args(&argv(&["explain", "pi[$1](union(R, S))"])).unwrap(),
            Command::Explain {
                query: "pi[$1](union(R, S))".into(),
                db: None,
                union_key: None,
                workers: None,
                calibration: None,
                stats: None
            }
        );
        assert_eq!(
            parse_args(&argv(&["profile", "--json", "--db", "x.gdb", "R"])).unwrap(),
            Command::Profile {
                query: "R".into(),
                db: Some("x.gdb".into()),
                union_key: None,
                json: true,
                workers: None,
                trace: None,
                timeline: false,
                calibration: None,
                stats: None,
                timeout_ms: None
            }
        );
        assert_eq!(
            parse_args(&argv(&["profile", "--parallel", "8", "R"])).unwrap(),
            Command::Profile {
                query: "R".into(),
                db: None,
                union_key: None,
                json: false,
                workers: Some(8),
                trace: None,
                timeline: false,
                calibration: None,
                stats: None,
                timeout_ms: None
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "profile",
                "--trace",
                "out.json",
                "--calibration",
                "cal.json",
                "R"
            ]))
            .unwrap(),
            Command::Profile {
                query: "R".into(),
                db: None,
                union_key: None,
                json: false,
                workers: None,
                trace: Some("out.json".into()),
                timeline: false,
                calibration: Some("cal.json".into()),
                stats: None,
                timeout_ms: None
            }
        );
        assert_eq!(
            parse_args(&argv(&["calibrate"])).unwrap(),
            Command::Calibrate {
                bench: "BENCH_parallel.json".into(),
                out: "CALIBRATION.json".into()
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "calibrate",
                "--bench",
                "b.json",
                "--out",
                "c.json"
            ]))
            .unwrap(),
            Command::Calibrate {
                bench: "b.json".into(),
                out: "c.json".into()
            }
        );
        assert_eq!(
            parse_args(&argv(&["serve", "--port", "7070", "x.gdb"])).unwrap(),
            Command::Serve {
                db: "x.gdb".into(),
                port: 7070,
                workers: None,
                tenant_budget: None,
                max_inflight: None,
                queue_cap: None,
                calibration: None,
                stats: None,
                timeout_ms: None
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "serve",
                "x.gdb",
                "--port",
                "7070",
                "--parallel",
                "4",
                "--tenant-budget",
                "cells=1000",
                "--max-inflight",
                "8",
                "--queue",
                "32",
                "--stats",
                "STATS.json",
                "--timeout",
                "500"
            ]))
            .unwrap(),
            Command::Serve {
                db: "x.gdb".into(),
                port: 7070,
                workers: Some(4),
                tenant_budget: Some("cells=1000".into()),
                max_inflight: Some(8),
                queue_cap: Some(32),
                calibration: None,
                stats: Some("STATS.json".into()),
                timeout_ms: Some(500)
            }
        );
        assert_eq!(
            parse_args(&argv(&["bench-serve", "--port", "7070", "--db", "x.gdb"])).unwrap(),
            Command::BenchServe {
                db: "x.gdb".into(),
                port: 7070,
                clients: 4,
                duration_ms: 2000,
                out: "BENCH_serve.json".into(),
                tenant: "bench".into(),
                tenants: 2
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "bench-serve",
                "--port",
                "7070",
                "--db",
                "x.gdb",
                "--clients",
                "8",
                "--duration",
                "1.5",
                "--out",
                "o.json",
                "--tenant",
                "t1",
                "--tenants",
                "3"
            ]))
            .unwrap(),
            Command::BenchServe {
                db: "x.gdb".into(),
                port: 7070,
                clients: 8,
                duration_ms: 1500,
                out: "o.json".into(),
                tenant: "t1".into(),
                tenants: 3
            }
        );
        assert!(parse_args(&argv(&[
            "bench-serve",
            "--port",
            "7070",
            "--db",
            "x.gdb",
            "--tenants",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse_args(&argv(&["classify"])).is_err());
        assert!(parse_args(&argv(&["explain"])).is_err());
        assert!(parse_args(&argv(&["profile", "--json"])).is_err());
        assert!(parse_args(&argv(&["run", "R"])).is_err());
        assert!(parse_args(&argv(&["frobnicate"])).is_err());
        assert!(parse_args(&argv(&["probe", "--arity", "x", "R"])).is_err());
        assert!(parse_args(&argv(&["run", "--db", "x.gdb", "--parallel", "many", "R"])).is_err());
        assert!(parse_args(&argv(&["calibrate", "stray-arg"])).is_err());
        // --timeout parsing is strict: missing or non-numeric values are
        // usage errors naming the bad token, never silently ignored
        assert!(parse_args(&argv(&["run", "--db", "x.gdb", "--timeout", "soon", "R"])).is_err());
        let err = parse_args(&argv(&["run", "--db", "x.gdb", "--timeout", "-5", "R"])).unwrap_err();
        assert!(err.message.contains("-5"), "{}", err.message);
        assert_eq!(err.kind, ErrorKind::Usage);
        assert!(parse_args(&argv(&["run", "--db", "x.gdb", "R", "--timeout"])).is_err());
        assert!(parse_args(&argv(&["chaos", "--seed", "NaN"])).is_err());
        assert!(parse_args(&argv(&["chaos", "--cases", "0"])).is_err());
        assert!(parse_args(&argv(&["chaos", "stray"])).is_err());
        // serve requires a port and a database; both omissions are usage
        // errors naming what is missing
        assert!(parse_args(&argv(&["serve", "x.gdb"])).is_err());
        assert!(parse_args(&argv(&["serve", "--port", "7070"])).is_err());
        assert!(parse_args(&argv(&["serve", "--port", "notaport", "x.gdb"])).is_err());
        assert!(parse_args(&argv(&["serve", "--port", "7070", "a.gdb", "b.gdb"])).is_err());
        // bench-serve: port and db are required; clients must be positive;
        // duration is seconds and must be a positive finite number
        assert!(parse_args(&argv(&["bench-serve", "--db", "x.gdb"])).is_err());
        assert!(parse_args(&argv(&["bench-serve", "--port", "7070"])).is_err());
        assert!(parse_args(&argv(&[
            "bench-serve",
            "--port",
            "7070",
            "--db",
            "x.gdb",
            "--clients",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&argv(&[
            "bench-serve",
            "--port",
            "7070",
            "--db",
            "x.gdb",
            "--duration",
            "-1"
        ]))
        .is_err());
        assert!(parse_args(&argv(&[
            "bench-serve",
            "--port",
            "7070",
            "--db",
            "x.gdb",
            "stray"
        ]))
        .is_err());
    }
}
