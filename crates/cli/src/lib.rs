#![warn(missing_docs)]
//! # genpar-cli — command-line access to the genericity toolkit
//!
//! The library half of the `genpar` binary: command parsing, the database
//! file format, and the command implementations (testable without a
//! process boundary).
//!
//! ```text
//! genpar classify '<query>'                    static classification + trace
//! genpar check    '<query>' [--mode M] [--class C]   dynamic invariance check
//! genpar probe    '<query>' [--mode M]         tightest-class ladder
//! genpar run      '<query>' --db FILE          evaluate against a database
//! genpar optimize '<query>' [--db FILE] [--union-key R,S:$1]
//! genpar explain  '<query>' [--db FILE] [--union-key R,S:$1]
//! genpar profile  '<query>' [--db FILE] [--union-key R,S:$1] [--json]
//! genpar audit                                 classify the paper's query catalog
//! ```
//!
//! All commands accept `--quiet` (or `GENPAR_OBS=off`) to disable the
//! observability layer entirely.
//!
//! Database files bind relation names to complex-value literals:
//!
//! ```text
//! # Example 2.2
//! R = {(e, f), (i, f), (e, j), (i, j), (f, g), (j, g)}
//! S = {(a, b)}
//! ```

pub mod commands;
pub mod dbfile;

use std::fmt;

/// A CLI-level error (bad usage, parse failure, IO).
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io error: {e}"))
    }
}

/// Usage text.
pub const USAGE: &str = "genpar — genericity & parametricity toolkit (PODS'96 reproduction)

USAGE:
  genpar classify '<query>'
  genpar check    '<query>' [--mode rel|strong] [--class all|total-surjective|functional|injective|bijective]
  genpar probe    '<query>' [--mode rel|strong] [--arity N]
  genpar run      '<query>' --db FILE
  genpar optimize '<query>' [--db FILE] [--union-key R,S:$N]
  genpar explain  '<query>' [--db FILE] [--union-key R,S:$N]
  genpar profile  '<query>' [--db FILE] [--union-key R,S:$N] [--json]
  genpar audit

  --quiet (any command) or GENPAR_OBS=off disables observability.

QUERY SYNTAX (columns are 1-based):
  R | empty | lit[{(a,b)}]
  pi[$1,$2](q)        select[$1=$2](q)      select[$1=7](q)
  select[even($1)](q) hat[$1=$2](q)         map[id|$N|cols($..)|const(v)|name](q)
  union(q,q) intersect(q,q) diff(q,q) product(q,q) join[$1=$1](q,q)
  nest[$1](q) unnest[$2](q)
  insert[(v)](q) singleton(q) flatten(q) powerset(q)
  eqadom(q) adom(q) even(q) np(q) complement(q)

DB FILE: lines of `name = <value literal>`; `#` comments.";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `classify <query>`
    Classify {
        /// The query text.
        query: String,
    },
    /// `check <query> ...`
    Check {
        /// The query text.
        query: String,
        /// `rel` or `strong`.
        mode: String,
        /// Mapping-class name.
        class: String,
    },
    /// `probe <query> ...`
    Probe {
        /// The query text.
        query: String,
        /// `rel` or `strong`.
        mode: String,
        /// Assumed arity of the input relations.
        arity: usize,
    },
    /// `run <query> --db FILE`
    Run {
        /// The query text.
        query: String,
        /// Path to a `.gdb` database file.
        db: String,
    },
    /// `optimize <query> ...`
    Optimize {
        /// The query text.
        query: String,
        /// Optional `.gdb` file for cardinalities.
        db: Option<String>,
        /// Optional `R,S:$N` union-key assertion.
        union_key: Option<String>,
    },
    /// `explain <query> ...` — rewrite trace, blocked rules, chosen plan.
    Explain {
        /// The query text.
        query: String,
        /// Optional `.gdb` file for cardinalities.
        db: Option<String>,
        /// Optional `R,S:$N` union-key assertion.
        union_key: Option<String>,
    },
    /// `profile <query> ...` — run the query and dump the obs snapshot.
    Profile {
        /// The query text.
        query: String,
        /// Optional `.gdb` file to run against.
        db: Option<String>,
        /// Optional `R,S:$N` union-key assertion.
        union_key: Option<String>,
        /// Emit the snapshot as JSON instead of a tree.
        json: bool,
    },
    /// `audit` — classify the built-in paper catalog.
    Audit,
    /// `--help` or no args.
    Help,
}

/// Parse argv (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let mut rest: Vec<&String> = it.collect();

    fn take_switch(rest: &mut Vec<&String>, flag: &str) -> bool {
        match rest.iter().position(|a| a.as_str() == flag) {
            Some(idx) => {
                rest.remove(idx);
                true
            }
            None => false,
        }
    }

    fn take_flag(rest: &mut Vec<&String>, flag: &str) -> Option<String> {
        let idx = rest.iter().position(|a| a.as_str() == flag)?;
        if idx + 1 < rest.len() {
            let val = rest[idx + 1].clone();
            rest.drain(idx..=idx + 1);
            Some(val)
        } else {
            rest.remove(idx);
            None
        }
    }

    match cmd.as_str() {
        "--help" | "-h" | "help" => Ok(Command::Help),
        "audit" => Ok(Command::Audit),
        "classify" => {
            let query = rest
                .first()
                .ok_or_else(|| CliError("classify needs a query".into()))?
                .to_string();
            Ok(Command::Classify { query })
        }
        "check" => {
            let mode = take_flag(&mut rest, "--mode").unwrap_or_else(|| "rel".into());
            let class = take_flag(&mut rest, "--class").unwrap_or_else(|| "all".into());
            let query = rest
                .first()
                .ok_or_else(|| CliError("check needs a query".into()))?
                .to_string();
            Ok(Command::Check { query, mode, class })
        }
        "probe" => {
            let mode = take_flag(&mut rest, "--mode").unwrap_or_else(|| "rel".into());
            let arity = take_flag(&mut rest, "--arity")
                .map(|a| {
                    a.parse::<usize>()
                        .map_err(|e| CliError(format!("bad --arity: {e}")))
                })
                .transpose()?
                .unwrap_or(2);
            let query = rest
                .first()
                .ok_or_else(|| CliError("probe needs a query".into()))?
                .to_string();
            Ok(Command::Probe { query, mode, arity })
        }
        "run" => {
            let db = take_flag(&mut rest, "--db")
                .ok_or_else(|| CliError("run needs --db FILE".into()))?;
            let query = rest
                .first()
                .ok_or_else(|| CliError("run needs a query".into()))?
                .to_string();
            Ok(Command::Run { query, db })
        }
        "optimize" => {
            let db = take_flag(&mut rest, "--db");
            let union_key = take_flag(&mut rest, "--union-key");
            let query = rest
                .first()
                .ok_or_else(|| CliError("optimize needs a query".into()))?
                .to_string();
            Ok(Command::Optimize {
                query,
                db,
                union_key,
            })
        }
        "explain" => {
            let db = take_flag(&mut rest, "--db");
            let union_key = take_flag(&mut rest, "--union-key");
            let query = rest
                .first()
                .ok_or_else(|| CliError("explain needs a query".into()))?
                .to_string();
            Ok(Command::Explain {
                query,
                db,
                union_key,
            })
        }
        "profile" => {
            let db = take_flag(&mut rest, "--db");
            let union_key = take_flag(&mut rest, "--union-key");
            let json = take_switch(&mut rest, "--json");
            let query = rest
                .first()
                .ok_or_else(|| CliError("profile needs a query".into()))?
                .to_string();
            Ok(Command::Profile {
                query,
                db,
                union_key,
                json,
            })
        }
        other => Err(CliError(format!("unknown command '{other}' (try --help)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_commands() {
        assert_eq!(parse_args(&argv(&[])).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv(&["audit"])).unwrap(), Command::Audit);
        assert_eq!(
            parse_args(&argv(&["classify", "pi[$1](R)"])).unwrap(),
            Command::Classify {
                query: "pi[$1](R)".into()
            }
        );
        assert_eq!(
            parse_args(&argv(&["check", "--mode", "strong", "R"])).unwrap(),
            Command::Check {
                query: "R".into(),
                mode: "strong".into(),
                class: "all".into()
            }
        );
        assert_eq!(
            parse_args(&argv(&["run", "--db", "x.gdb", "R"])).unwrap(),
            Command::Run {
                query: "R".into(),
                db: "x.gdb".into()
            }
        );
        assert_eq!(
            parse_args(&argv(&["optimize", "--union-key", "R,S:$1", "diff(R,S)"])).unwrap(),
            Command::Optimize {
                query: "diff(R,S)".into(),
                db: None,
                union_key: Some("R,S:$1".into())
            }
        );
        assert_eq!(
            parse_args(&argv(&["explain", "pi[$1](union(R, S))"])).unwrap(),
            Command::Explain {
                query: "pi[$1](union(R, S))".into(),
                db: None,
                union_key: None
            }
        );
        assert_eq!(
            parse_args(&argv(&["profile", "--json", "--db", "x.gdb", "R"])).unwrap(),
            Command::Profile {
                query: "R".into(),
                db: Some("x.gdb".into()),
                union_key: None,
                json: true
            }
        );
        assert_eq!(
            parse_args(&argv(&["profile", "R"])).unwrap(),
            Command::Profile {
                query: "R".into(),
                db: None,
                union_key: None,
                json: false
            }
        );
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse_args(&argv(&["classify"])).is_err());
        assert!(parse_args(&argv(&["explain"])).is_err());
        assert!(parse_args(&argv(&["profile", "--json"])).is_err());
        assert!(parse_args(&argv(&["run", "R"])).is_err());
        assert!(parse_args(&argv(&["frobnicate"])).is_err());
        assert!(parse_args(&argv(&["probe", "--arity", "x", "R"])).is_err());
    }
}
