//! Command implementations. Each returns the text to print, so the
//! commands are directly testable.

use crate::{dbfile, CliError, Command, USAGE};
use genpar_algebra::parse::parse_query;
use genpar_algebra::Query;
use genpar_core::check::{check_invariance, AlgebraQuery, CheckConfig};
use genpar_core::hierarchy::equality_usage;
use genpar_core::infer_requirements;
use genpar_core::probe::probe_tightest;
use genpar_core::{partition_safety, PartitionSafety};
use genpar_engine::{Catalog, Schema, Table};
use genpar_exec::ExecConfig;
use genpar_mapping::{ExtensionMode, MappingClass};
use genpar_optimizer::Constraints;
use genpar_optimizer::{
    estimate_nodes, estimate_nodes_with_sources, optimize_costed,
    optimize_costed_parallel_with_stats, route_costs_with_stats, Calibration, RuleSet, StatsStore,
};
use genpar_value::{BaseType, CvType, DomainId};
use std::fmt::Write as _;

/// Schema version stamped into `profile --json` output (v1 was the
/// unversioned pre-histogram shape, v2 added histograms/misestimate; v3
/// adds the `timeline` and `stats` blocks — see DESIGN.md §10, §12).
pub const PROFILE_SCHEMA_VERSION: i64 = 3;

/// Execute a parsed command.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Classify { query } => classify(query),
        Command::Check { query, mode, class } => check(query, mode, class),
        Command::Probe { query, mode, arity } => probe(query, mode, *arity),
        Command::Run {
            query,
            db,
            workers,
            timeout_ms,
        } => run(query, db, *workers, *timeout_ms),
        Command::Optimize {
            query,
            db,
            union_key,
        } => optimize_cmd(query, db.as_deref(), union_key.as_deref()),
        Command::Explain {
            query,
            db,
            union_key,
            workers,
            calibration,
            stats,
        } => explain_cmd(
            query,
            db.as_deref(),
            union_key.as_deref(),
            *workers,
            calibration.as_deref(),
            stats.as_deref(),
        ),
        Command::Profile {
            query,
            db,
            union_key,
            json,
            workers,
            trace,
            timeline,
            calibration,
            stats,
            timeout_ms,
        } => profile_cmd(
            query,
            db.as_deref(),
            union_key.as_deref(),
            *json,
            *workers,
            trace.as_deref(),
            *timeline,
            calibration.as_deref(),
            stats.as_deref(),
            *timeout_ms,
        ),
        Command::Calibrate { bench, out } => calibrate_cmd(bench, out),
        Command::Serve {
            db,
            port,
            workers,
            tenant_budget,
            max_inflight,
            queue_cap,
            calibration,
            stats,
            timeout_ms,
        } => crate::serve_cmd::serve_cmd(
            db,
            *port,
            *workers,
            tenant_budget.as_deref(),
            *max_inflight,
            *queue_cap,
            calibration.as_deref(),
            stats.as_deref(),
            *timeout_ms,
        ),
        Command::BenchServe {
            db,
            port,
            clients,
            duration_ms,
            out,
            tenant,
            tenants,
        } => crate::serve_cmd::bench_serve_cmd(
            db,
            *port,
            *clients,
            *duration_ms,
            out,
            tenant,
            *tenants,
        ),
        Command::Stats { action, file } => stats_cmd(action, file),
        Command::Chaos { seed, cases } => chaos_cmd(*seed, *cases),
        Command::Audit => audit(),
    }
}

/// The key a database contributes its observed statistics under: the
/// `.gdb` path when given, else the shared nominal synthetic catalog.
/// Stats from one database never steer estimates for another.
pub(crate) fn stats_catalog_key(db_path: Option<&str>) -> &str {
    db_path.unwrap_or("nominal")
}

/// Load an observed-statistics store (`--stats FILE`) through the
/// robustness ladder's persistence rung: a missing file is an empty
/// store (first run bootstraps it); a corrupt file — torn write, failed
/// checksum, JSON damage, wrong schema — is quarantined to
/// `<path>.corrupt` and the store regenerates empty, with the warning
/// returned so the command surfaces it. Never an error, never a panic,
/// never a *silent* fresh start.
pub(crate) fn load_stats(path: Option<&str>) -> (Option<StatsStore>, Option<String>) {
    match path {
        Some(p) => {
            let (store, warning) = StatsStore::load_or_quarantine(p);
            (Some(store), warning)
        }
        None => (None, None),
    }
}

/// Load a calibration file, or the built-in default when none is given.
/// A persisted `morsel_rows` key (written by `profile --calibration`)
/// preseeds the global morsel tuner — unless `GENPAR_MORSEL` overrides.
/// A **missing** file is an error (the user named it); a **corrupt** one
/// is quarantined to `<path>.corrupt` and the default calibration rides
/// in its place, with the warning returned for the command to print.
pub(crate) fn load_calibration(
    path: Option<&str>,
) -> Result<(Calibration, Option<String>), CliError> {
    let Some(p) = path else {
        return Ok((Calibration::default(), None));
    };
    let attempt = (|| -> Result<Calibration, String> {
        let text = match genpar_optimizer::persist::read_payload(p) {
            Ok(Some(t)) => t,
            Ok(None) => return Err(format!("cannot read calibration file {p}: file not found")),
            Err(e) => return Err(e),
        };
        let j = genpar_obs::Json::parse(&text).map_err(|e| format!("calibration file {p}: {e}"))?;
        if let Some(rows) = j.get("morsel_rows").and_then(|v| v.as_int()) {
            if rows > 0 {
                genpar_exec::tune::preseed(rows as usize);
            }
        }
        Calibration::from_json(&j)
    })();
    match attempt {
        Ok(cal) => Ok((cal, None)),
        // missing: a named calibration that does not exist is a real
        // error — defaults would silently misprice every route
        Err(reason) if !std::path::Path::new(p).exists() => Err(CliError::runtime(reason)),
        // corrupt: quarantine, regenerate from the default, warn loudly
        Err(reason) => {
            let warning = match genpar_optimizer::persist::quarantine_file(p, &reason) {
                Ok(corrupt) => format!(
                    "calibration file {p} is corrupt ({reason}); \
                     quarantined to {corrupt}, using the default calibration"
                ),
                Err(e) => format!(
                    "calibration file {p} is corrupt ({reason}); \
                     quarantine failed ({e}), using the default calibration"
                ),
            };
            Ok((Calibration::default(), Some(warning)))
        }
    }
}

/// Write the tuner's converged morsel size into a calibration file's
/// `morsel_rows` key, preserving every other key (inverse of the
/// preseed in [`load_calibration`]). The write goes through the
/// crash-safe temp-file + fsync + rename protocol.
pub(crate) fn persist_morsel_rows(path: &str) -> Result<usize, CliError> {
    let text = match genpar_optimizer::persist::read_payload(path) {
        Ok(Some(t)) => t,
        // the file was quarantined (or never existed): restart it from
        // the default calibration so the tuner seed still persists
        Ok(None) => format!("{}\n", Calibration::default().to_json()),
        Err(e) => return Err(CliError::runtime(e)),
    };
    let mut j = genpar_obs::Json::parse(&text)
        .map_err(|e| CliError::runtime(format!("calibration file {path}: {e}")))?;
    let rows = genpar_exec::tune::tuner().rows();
    if let genpar_obs::Json::Obj(fields) = &mut j {
        match fields.iter_mut().find(|(k, _)| k == "morsel_rows") {
            Some((_, v)) => *v = genpar_obs::Json::Int(rows as i128),
            None => fields.push((
                "morsel_rows".to_string(),
                genpar_obs::Json::Int(rows as i128),
            )),
        }
    }
    genpar_optimizer::persist::save_atomic(path, &format!("{j}\n")).map_err(CliError::runtime)?;
    Ok(rows)
}

/// Render collected load warnings as the `warning:`-prefixed lines the
/// text commands prepend to their output.
fn warning_lines(warnings: &[String]) -> String {
    warnings
        .iter()
        .map(|w| format!("warning: {w}\n"))
        .collect::<String>()
}

/// Classify the built-in catalog of paper queries.
fn audit() -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:<26} {:<46} strong-mode class",
        "query", "equality use", "rel-mode class"
    );
    let _ = writeln!(out, "{}", "-".repeat(140));
    for (name, q) in genpar_algebra::catalog::all_named() {
        let inf = infer_requirements(&q);
        let _ = writeln!(
            out,
            "{:<22} {:<26} {:<46} {}",
            name,
            equality_usage(&q).to_string(),
            inf.rel.to_string(),
            inf.strong
        );
    }
    Ok(out)
}

pub(crate) fn parse_q(query: &str) -> Result<Query, CliError> {
    parse_query(query).map_err(|e| CliError::parse(e.to_string()))
}

fn parse_mode(mode: &str) -> Result<ExtensionMode, CliError> {
    match mode {
        "rel" => Ok(ExtensionMode::Rel),
        "strong" => Ok(ExtensionMode::Strong),
        other => Err(CliError::usage(format!(
            "unknown mode '{other}' (rel|strong)"
        ))),
    }
}

fn parse_class(class: &str) -> Result<MappingClass, CliError> {
    match class {
        "all" => Ok(MappingClass::all()),
        "total-surjective" => Ok(MappingClass::total_surjective()),
        "functional" => Ok(MappingClass::functional()),
        "injective" => Ok(MappingClass::injective()),
        "bijective" => Ok(MappingClass::bijective()),
        other => Err(CliError::usage(format!(
            "unknown class '{other}' (all|total-surjective|functional|injective|bijective)"
        ))),
    }
}

fn rel_ty(arity: usize) -> CvType {
    CvType::relation(BaseType::Domain(DomainId(0)), arity)
}

/// Infer the query's output type assuming every referenced relation is a
/// binary relation of `arity` atoms (falls back to the input type when
/// inference fails, e.g. on opaque map functions).
fn output_type_of(q: &Query, arity: usize) -> CvType {
    let mut env = genpar_algebra::types::TypeEnv::new();
    for name in q.rel_names() {
        env.insert(name, rel_ty(arity));
    }
    genpar_algebra::types::infer_type(q, &env).unwrap_or_else(|_| rel_ty(arity))
}

fn classify(query: &str) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let inf = infer_requirements(&q);
    let mut out = String::new();
    let _ = writeln!(out, "query:          {q}");
    let _ = writeln!(out, "equality usage: {}", equality_usage(&q));
    let _ = writeln!(out, "rel mode:       {}", inf.rel);
    let _ = writeln!(out, "strong mode:    {}", inf.strong);
    let _ = writeln!(out, "\nderivation:");
    for line in &inf.trace {
        let _ = writeln!(out, "  • {line}");
    }
    Ok(out)
}

fn check(query: &str, mode: &str, class: &str) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let mode = parse_mode(mode)?;
    let mc = parse_class(class)?;
    let out_ty = output_type_of(&q, 2);
    let aq = AlgebraQuery::new(q);
    let cfg = CheckConfig {
        mode,
        ..Default::default()
    };
    let outcome = check_invariance(&aq, &rel_ty(2), &out_ty, &mc, &cfg);
    Ok(match outcome {
        genpar_core::check::CheckOutcome::Invariant { families, pairs, skipped } => format!(
            "INVARIANT: no violation across {families} families / {pairs} related input pairs ({skipped} skipped)\n"
        ),
        genpar_core::check::CheckOutcome::Counterexample(cx) => {
            format!("REFUTED:\n  {cx}\n")
        }
        genpar_core::check::CheckOutcome::Aborted(reason) => {
            return Err(CliError::internal(format!("check aborted: {reason}")))
        }
    })
}

fn probe(query: &str, mode: &str, arity: usize) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let mode = parse_mode(mode)?;
    let out_ty = output_type_of(&q, arity);
    let aq = AlgebraQuery::new(q);
    let cfg = CheckConfig {
        mode,
        families: 40,
        inputs_per_family: 30,
        ..Default::default()
    };
    let report = probe_tightest(&aq, &rel_ty(arity), &out_ty, &cfg);
    if let Some(reason) = report.rungs.iter().find_map(|(_, o)| o.aborted()) {
        return Err(CliError::internal(format!("probe aborted: {reason}")));
    }
    let mut out = report.to_string();
    match report.tightest() {
        Some(rung) => {
            let _ = writeln!(out, "tightest class found: generic w.r.t. {rung} mappings");
        }
        None => {
            let _ = writeln!(out, "no rung of the ladder holds — the query is not even classically generic at this shape");
        }
    }
    Ok(out)
}

/// Resolve the worker count: explicit `--parallel` wins, then the
/// `GENPAR_PARALLEL` environment variable, then serial.
pub(crate) fn resolve_workers(workers: Option<usize>) -> usize {
    workers
        .unwrap_or_else(|| ExecConfig::from_env().workers)
        .max(1)
}

fn run(
    query: &str,
    db_path: &str,
    workers: Option<usize>,
    timeout_ms: Option<u64>,
) -> Result<String, CliError> {
    // the wall deadline rides the budget machinery: every charge_* call
    // (serial interpreter and parallel meter alike) checks it, so a
    // breach surfaces as a structured budget error — exit 4, wall_ms
    let _wall =
        timeout_ms.map(|ms| genpar_guard::arm_wall_deadline(std::time::Duration::from_millis(ms)));
    let db = dbfile::load_db(db_path)?;
    let catalog = catalog_from_db(&db)?;
    run_with(query, &db, &catalog, workers)
}

/// The `run` body over preloaded data: the one-shot path above loads the
/// `.gdb` from disk first; `genpar serve` calls this directly with its
/// resident database and catalog, which is what makes served `run`
/// output byte-identical to the one-shot CLI *by construction*.
pub(crate) fn run_with(
    query: &str,
    db: &genpar_algebra::Db,
    catalog: &Catalog,
    workers: Option<usize>,
) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let w = resolve_workers(workers);
    if w > 1 {
        // The partition-safety gate: queries the genericity checker
        // certifies run on the parallel executor — plainly partitioned,
        // as per-round fixpoint evaluation, or through a combiner.
        // Everything else takes the serial interpreter below, with a
        // recorded fallback.
        let verdict = partition_safety(&q);
        if verdict.parallel_eligible() {
            let cfg = ExecConfig::serial().with_workers(w);
            let (v, _stats, _route) =
                genpar_exec::eval_query(&q, catalog, &cfg).map_err(CliError::from)?;
            return Ok(format!("{v}\n"));
        }
        if let PartitionSafety::Unsafe { op, reason } = verdict {
            genpar_exec::note_fallback(op, reason);
        }
    }
    let v = genpar_algebra::eval::eval(&q, db).map_err(CliError::from)?;
    Ok(format!("{v}\n"))
}

/// Build an execution/costing catalog from a loaded database (real
/// cardinalities, one table per relation).
pub(crate) fn catalog_from_db(db: &genpar_algebra::Db) -> Result<Catalog, CliError> {
    let mut cat = Catalog::new();
    for (name, v) in db.relations() {
        let arity = v
            .as_set()
            .and_then(|s| s.iter().next())
            .and_then(|t| t.as_tuple())
            .map(|t| t.len())
            .unwrap_or(2);
        let table = Table::try_from_value(
            name.clone(),
            Schema::uniform(CvType::domain(0), arity),
            &normalize_rel(v, arity),
        )
        .map_err(CliError::runtime)?;
        cat.add(table);
    }
    Ok(cat)
}

/// Build an execution/costing catalog: from a `.gdb` file (real
/// cardinalities) when given, else nominal 1000-row binary tables for
/// every relation the query mentions.
fn build_catalog(q: &Query, db_path: Option<&str>) -> Result<Catalog, CliError> {
    match db_path {
        Some(p) => {
            let db = dbfile::load_db(p)?;
            catalog_from_db(&db)
        }
        None => {
            let mut cat = Catalog::new();
            for name in q.rel_names() {
                let mut t = Table::new(name, Schema::uniform(CvType::int(), 2));
                for i in 0..1000 {
                    t.insert(vec![
                        genpar_value::Value::Int(i),
                        genpar_value::Value::Int(i % 37),
                    ]);
                }
                cat.add(t);
            }
            Ok(cat)
        }
    }
}

/// Parse an `R,S:$N` union-key assertion into rewrite constraints.
pub(crate) fn build_rules(union_key: Option<&str>) -> Result<RuleSet, CliError> {
    let mut constraints = Constraints::none();
    if let Some(spec) = union_key {
        // "R,S:$1"
        let (tables, col) = spec
            .split_once(':')
            .ok_or_else(|| CliError::usage("--union-key wants R,S:$N"))?;
        let col = col
            .strip_prefix('$')
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .ok_or_else(|| CliError::usage("--union-key wants a 1-based $N column"))?;
        constraints =
            constraints.with_union_key(tables.split(',').map(|s| s.trim().to_string()), [col - 1]);
    }
    Ok(RuleSet::with_constraints(constraints))
}

fn optimize_cmd(
    query: &str,
    db_path: Option<&str>,
    union_key: Option<&str>,
) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let catalog = build_catalog(&q, db_path)?;
    let rules = build_rules(union_key)?;
    let (chosen, trace, base_est, new_est) = optimize_costed(&q, &rules, &catalog);
    let mut out = String::new();
    let _ = writeln!(out, "original:  {q}");
    let _ = writeln!(out, "optimized: {chosen}");
    if trace.steps.is_empty() {
        let _ = writeln!(out, "(no profitable rewrite)");
    } else {
        let _ = write!(out, "{trace}");
    }
    let _ = writeln!(
        out,
        "estimated cost: {:.0} → {:.0} cells",
        base_est.cost, new_est.cost
    );
    Ok(out)
}

/// Look up a field of an obs event by key, rendered as text.
fn event_field(e: &genpar_obs::Event, key: &str) -> String {
    e.fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.to_string())
        .unwrap_or_default()
}

/// `explain`: the full optimizer story for one query — which Section 4.4
/// rewrites fired (with their genericity justifications), which matched
/// but were blocked by a side condition, what the cost model decided, and
/// the physical plan that would run.
fn explain_cmd(
    query: &str,
    db_path: Option<&str>,
    union_key: Option<&str>,
    workers: Option<usize>,
    calibration: Option<&str>,
    stats_path: Option<&str>,
) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let w = resolve_workers(workers);
    let catalog = build_catalog(&q, db_path)?;
    let rules = build_rules(union_key)?;
    let (cal, cal_warning) = load_calibration(calibration)?;
    let (store, stats_warning) = load_stats(stats_path);
    let warnings: Vec<String> = [cal_warning, stats_warning].into_iter().flatten().collect();
    let stats_key = stats_catalog_key(db_path);
    let obs_stats = store.as_ref().and_then(|s| s.catalog(stats_key));
    let stats_note = stats_path.map(|p| (p, stats_key));
    explain_with(
        &q, &catalog, w, &cal, obs_stats, stats_note, &warnings, &rules,
    )
}

/// The `explain` body over preloaded data (catalog, calibration,
/// statistics). The one-shot wrapper above loads everything from disk;
/// `genpar serve` calls this with its resident copies. Rewrite/plan
/// events are attributed to this query through a private obs scope —
/// nothing global is reset, so a resident server's cumulative counters
/// survive every `explain`.
/// One `explain` line for a σ/map expression: either the compiled
/// program (with the partition certificate it carries at run time) or
/// the paper-citing refusal explaining why the AST walker keeps it —
/// ineligibility is reported in the same voice as the partition gate,
/// never silently.
fn vm_line(
    expr: String,
    compiled: Result<genpar_algebra::vm::Program, genpar_algebra::vm::Ineligible>,
    cert: Option<&genpar_core::SafetyCert>,
) -> String {
    match compiled {
        Ok(prog) => match cert {
            Some(c) => {
                let prog = prog.with_cert(&c.to_string());
                format!("  {expr}: program of {} [cert: {c}]", prog.describe())
            }
            None => format!(
                "  {expr}: program of {} [uncertified route]",
                prog.describe()
            ),
        },
        Err(inel) => format!("  {expr}: AST walker — {inel}"),
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn explain_with(
    q: &Query,
    catalog: &Catalog,
    w: usize,
    cal: &Calibration,
    obs_stats: Option<&genpar_optimizer::CatalogStats>,
    stats_note: Option<(&str, &str)>,
    warnings: &[String],
    rules: &RuleSet,
) -> Result<String, CliError> {
    let obs_scope = genpar_obs::Scope::anonymous();
    let (chosen, trace, base_est, new_est) = {
        let _g = obs_scope.enter();
        optimize_costed_parallel_with_stats(q, rules, catalog, w, cal, obs_stats)
    };
    let snap = obs_scope.snapshot();

    let mut out = warning_lines(warnings);
    let _ = writeln!(out, "query:     {q}");
    let _ = writeln!(out, "optimized: {chosen}");
    if let Some((p, key)) = stats_note {
        let entries = obs_stats.map(|c| c.entries.len()).unwrap_or(0);
        let _ = writeln!(
            out,
            "stats:     {p} (catalog '{key}', {entries} observed entries)"
        );
    }
    let _ = writeln!(out);
    if trace.steps.is_empty() {
        // distinguish "nothing matched" from "matched but cost-rejected"
        let rejected = snap.events.iter().any(|e| {
            e.kind == "optimizer.plan_choice"
                && event_field(e, "chosen") == "original"
                && event_field(e, "steps") != "0"
        });
        if rejected {
            let _ = writeln!(
                out,
                "rewrites fired but the cost model kept the original plan."
            );
        } else {
            let _ = writeln!(out, "no rewrite fired.");
        }
    } else {
        let _ = writeln!(out, "rewrite trace:");
        let _ = write!(out, "{trace}");
    }
    // blocked rewrites: pattern matched, genericity side condition failed
    let mut blocked: Vec<String> = Vec::new();
    for e in snap
        .events
        .iter()
        .filter(|e| e.kind == "optimizer.rewrite" && event_field(e, "fired") == "false")
    {
        let line = format!(
            "  ✗ {}  blocked: {}\n      on {}",
            event_field(e, "rule"),
            event_field(e, "blocked_by"),
            event_field(e, "expr"),
        );
        if !blocked.contains(&line) {
            blocked.push(line);
        }
    }
    if !blocked.is_empty() {
        let _ = writeln!(out, "blocked rewrites:");
        for line in &blocked {
            let _ = writeln!(out, "{line}");
        }
    }
    let _ = writeln!(
        out,
        "estimated cost: {:.0} → {:.0} cells",
        base_est.cost, new_est.cost
    );
    let _ = writeln!(out, "\nparallel execution ({w} workers):");
    let serial_hint = |out: &mut String, w: usize| {
        if w > 1 {
            let _ = writeln!(out, "  would run on {w} worker threads");
        } else {
            let _ = writeln!(out, "  (serial: pass --parallel N or set GENPAR_PARALLEL)");
        }
    };
    let safety = partition_safety(&chosen);
    match &safety {
        PartitionSafety::Safe(cert) => {
            let _ = writeln!(out, "  partition-safe: {cert}");
            serial_hint(&mut out, w);
        }
        PartitionSafety::FixpointRoundSafe { body_cert } => {
            let _ = writeln!(
                out,
                "  fixpoint round-safe: per-round body certified: {body_cert}"
            );
            let _ = writeln!(
                out,
                "  each round's body runs on the morsel pool; deltas are canonically merged (semi-naive when the body is delta-linear)"
            );
            serial_hint(&mut out, w);
        }
        PartitionSafety::Combiner { op, cert } => {
            let _ = writeln!(
                out,
                "  combiner '{op}': partition-local accumulators + serial combine (cf. Lemma 2.12 — the aggregate itself is not partition-distributive, its partial sums are)"
            );
            let _ = writeln!(out, "  input {cert}");
            serial_hint(&mut out, w);
        }
        PartitionSafety::Unsafe { op, reason } => {
            let _ = writeln!(out, "  falls back to serial: '{op}' — {reason}");
        }
    }
    let _ = writeln!(out, "\nbytecode vm:");
    if !genpar_algebra::vm::enabled() {
        let _ = writeln!(
            out,
            "  disabled ({}=0): the AST walker evaluates every expression",
            genpar_algebra::vm::VM_ENV
        );
    } else {
        let cert = safety.certificate();
        let mut vm_lines: Vec<String> = Vec::new();
        chosen.visit(&mut |n| match n {
            Query::Select(p, _) => vm_lines.push(vm_line(
                format!("σ[{p:?}]"),
                genpar_algebra::vm::compile_pred(p),
                cert,
            )),
            Query::Map(f, _) => vm_lines.push(vm_line(
                format!("map({f:?})"),
                genpar_algebra::vm::compile_fn(f),
                cert,
            )),
            _ => {}
        });
        if vm_lines.is_empty() {
            let _ = writeln!(
                out,
                "  no compiled programs (plan has no σ/map expressions)"
            );
        }
        for line in vm_lines {
            let _ = writeln!(out, "{line}");
        }
    }
    // both routes, costed under the (possibly measured) calibration and
    // any observed statistics — stats can flip this choice, never the
    // answer
    let rc = route_costs_with_stats(&chosen, catalog, w, cal, obs_stats);
    let _ = writeln!(
        out,
        "\nroute costs (calibration: {:.3}/worker overhead, {:.0} cells startup):",
        cal.overhead_per_worker, cal.startup_cost_cells
    );
    let _ = writeln!(out, "  serial route:   {:.0} cells", rc.serial.cost);
    if w > 1 && rc.safe {
        let _ = writeln!(
            out,
            "  parallel route: {:.0} cells ({} workers)",
            rc.parallel.cost, rc.workers
        );
        let route = if rc.choose_parallel {
            "parallel"
        } else {
            "serial"
        };
        let _ = writeln!(
            out,
            "  chosen route:   {route} (margin {:.0} cells)",
            rc.margin_cells.abs()
        );
        match rc.crossover_cost_cells {
            Some(c) => {
                let _ = writeln!(
                    out,
                    "  crossover:      parallel pays above {c:.0} cells of serial cost"
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  crossover:      none — coordination overhead exceeds the ideal speedup at this width"
                );
            }
        }
    } else {
        let reason = if w <= 1 {
            "serial requested"
        } else {
            "gate refused the parallel route"
        };
        let _ = writeln!(out, "  parallel route: unavailable ({reason})");
        let _ = writeln!(out, "  chosen route:   serial");
    }
    let _ = writeln!(out, "\nchosen plan:");
    match genpar_engine::lower(&chosen) {
        Some(plan) => {
            for line in plan.to_string().lines() {
                let _ = writeln!(out, "  {line}");
            }
            let _ = writeln!(out, "\nestimated rows per operator:");
            for (op, est, src) in estimate_nodes_with_sources(&chosen, catalog, obs_stats) {
                let _ = writeln!(out, "  {op:<18} ~{:.0} rows  [{src}]", est.rows);
            }
        }
        None => {
            let _ = writeln!(
                out,
                "  (complex-value query — not lowerable to the flat physical engine)"
            );
        }
    }
    Ok(out)
}

/// Sum the `rows_out` recorded by `plan.*` spans, per operator name.
fn span_rows_by_op(
    nodes: &[genpar_obs::SpanNode],
    acc: &mut std::collections::BTreeMap<String, u64>,
) {
    for n in nodes {
        if n.name.starts_with("plan.") {
            if let Some(r) = n.fields.get("rows_out") {
                *acc.entry(n.name.clone()).or_insert(0) += r;
            }
        }
        span_rows_by_op(&n.children, acc);
    }
}

/// Per-operator actual-vs-estimated rows: the optimizer's per-node
/// cardinality predictions paired against the `rows_out` the executor's
/// spans recorded. Only operators present on both sides are reported.
fn misestimate_rows(
    chosen: &Query,
    catalog: &Catalog,
    snap: &genpar_obs::Snapshot,
) -> Vec<(String, f64, u64, f64)> {
    let mut est: std::collections::BTreeMap<&'static str, f64> = std::collections::BTreeMap::new();
    for (op, e) in estimate_nodes(chosen, catalog) {
        *est.entry(op).or_insert(0.0) += e.rows;
    }
    let mut actual = std::collections::BTreeMap::new();
    span_rows_by_op(&snap.spans, &mut actual);
    actual
        .into_iter()
        .filter_map(|(op, rows)| {
            let e = *est.get(op.as_str())?;
            let ratio = rows as f64 / e.max(1.0);
            Some((op, e, rows, ratio))
        })
        .collect()
}

/// `profile`: optimize and execute the query with a fresh obs registry,
/// then dump the metrics snapshot (span tree, counters, events,
/// histograms, per-operator misestimates) as an ASCII tree or JSON.
/// `--trace FILE` additionally exports the run as Chrome `trace_event`
/// JSON (or JSONL for a `.jsonl` path) — with the timeline recorder on
/// (`--timeline`, implied by `--trace`) that is a true timeline of real
/// begin/end instants on per-worker lanes. `--stats FILE` consults the
/// observed-statistics store for routing and harvests this run's
/// `plan.node_stats` events back into it.
#[allow(clippy::too_many_arguments)]
fn profile_cmd(
    query: &str,
    db_path: Option<&str>,
    union_key: Option<&str>,
    json: bool,
    workers: Option<usize>,
    trace_path: Option<&str>,
    timeline: bool,
    calibration: Option<&str>,
    stats_path: Option<&str>,
    timeout_ms: Option<u64>,
) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let _wall =
        timeout_ms.map(|ms| genpar_guard::arm_wall_deadline(std::time::Duration::from_millis(ms)));
    let w = resolve_workers(workers);
    let catalog = build_catalog(&q, db_path)?;
    let rules = build_rules(union_key)?;
    let (cal, cal_warning) = load_calibration(calibration)?;
    let (store, stats_warning) = load_stats(stats_path);
    let warnings: Vec<String> = [cal_warning, stats_warning].into_iter().flatten().collect();
    let outcome = profile_with(
        &q,
        &catalog,
        &rules,
        json,
        w,
        trace_path,
        timeline,
        &cal,
        store.as_ref(),
        stats_path,
        stats_catalog_key(db_path),
        calibration,
        &warnings,
    )?;
    Ok(outcome.output)
}

/// What a profile run produced: the rendered report, plus the
/// statistics store as written to disk after the harvest (so a resident
/// caller — `genpar serve` — can refresh its in-memory copy).
pub(crate) struct ProfileOutcome {
    /// The rendered report (tree or JSON).
    pub output: String,
    /// The store state written by the harvest, when one happened.
    pub written_store: Option<StatsStore>,
}

/// The `profile` body over preloaded data. The one-shot wrapper above
/// loads catalog/calibration/statistics from disk; `genpar serve` calls
/// this with its resident copies. The harvest goes through
/// [`StatsStore::harvest_into`], which re-reads the on-disk store under
/// the process persistence lock before folding — concurrent profilers
/// (two serve sessions, or serve plus a one-shot CLI) cannot lose each
/// other's samples. Resets the process obs registry so the snapshot
/// attributes events to this query alone.
#[allow(clippy::too_many_arguments)]
pub(crate) fn profile_with(
    q: &Query,
    catalog: &Catalog,
    rules: &RuleSet,
    json: bool,
    w: usize,
    trace_path: Option<&str>,
    timeline: bool,
    cal: &Calibration,
    consult: Option<&StatsStore>,
    stats_path: Option<&str>,
    stats_key: &str,
    morsel_out: Option<&str>,
    warnings: &[String],
) -> Result<ProfileOutcome, CliError> {
    let obs_stats_owned = consult.and_then(|s| s.catalog(stats_key)).cloned();
    let obs_stats = obs_stats_owned.as_ref();
    // a trace export without the recorder would fall back to the
    // synthetic layout, so --trace implies --timeline for this run; the
    // previous flag state (e.g. GENPAR_TIMELINE) is restored afterwards
    let prev_timeline = genpar_obs::timeline::enabled();
    // an ambient GENPAR_TIMELINE=1 gets the same reporting as --timeline
    let want_timeline = timeline || trace_path.is_some() || prev_timeline;
    if want_timeline {
        genpar_obs::timeline::set_enabled(true);
    }
    // attribute this run's instrumentation to a private obs scope instead
    // of resetting the process registry: the snapshot below sees exactly
    // this query, concurrent profiles see theirs, and on drop the scope
    // rolls up into the parent so cumulative totals are preserved
    let obs_scope = genpar_obs::Scope::anonymous();
    let scope_guard = obs_scope.enter();
    let (chosen, _trace, _base, new_est) =
        optimize_costed_parallel_with_stats(q, rules, catalog, w, cal, obs_stats);
    let mut stats = genpar_engine::plan::ExecStats::default();
    if w > 1 && partition_safety(&chosen).parallel_eligible() {
        // certified: plain partitioning, per-round fixpoint, or combiner
        // — eval_query picks the same route the executor would
        let cfg = ExecConfig::default().with_workers(w);
        let (_, s, _route) =
            genpar_exec::eval_query(&chosen, catalog, &cfg).map_err(CliError::from)?;
        stats = s;
        stats.est_rows_out = new_est.rows.round().max(0.0) as u64;
    } else {
        match genpar_engine::lower(&chosen) {
            Some(plan) => {
                if w > 1 {
                    if let PartitionSafety::Unsafe { op, reason } = partition_safety(&chosen) {
                        genpar_exec::note_fallback(op, reason);
                    }
                }
                let (_, s) = plan.execute(catalog).map_err(CliError::from)?;
                stats = s;
                // pair the model's prediction with the observed result size
                stats.est_rows_out = new_est.rows.round().max(0.0) as u64;
            }
            None => {
                if w > 1 {
                    if let PartitionSafety::Unsafe { op, reason } = partition_safety(&chosen) {
                        genpar_exec::note_fallback(op, reason);
                    }
                }
                // complex-value query: fall back to the algebra interpreter
                // over the catalog's relations
                let mut db = genpar_algebra::eval::Db::with_standard_int();
                for t in catalog.tables() {
                    db.set(t.name.clone(), t.to_value());
                }
                genpar_algebra::eval::eval(&chosen, &db).map_err(CliError::from)?;
            }
        }
    }
    drop(scope_guard);
    let snap = obs_scope.snapshot();
    let mut tl = genpar_obs::timeline::snapshot();
    if obs_scope.query_id() != 0 {
        // served request: the process timeline is shared with concurrent
        // queries — keep only the records stamped with this query's id
        tl = tl.for_query(obs_scope.query_id());
    }
    if want_timeline {
        genpar_obs::timeline::set_enabled(prev_timeline);
    }
    let mis = misestimate_rows(&chosen, catalog, &snap);

    if let Some(path) = trace_path {
        let text = if path.ends_with(".jsonl") {
            genpar_obs::trace::jsonl(&snap, &tl)
        } else {
            genpar_obs::trace::chrome_trace_string(&snap, &tl)
        };
        std::fs::write(path, text)
            .map_err(|e| CliError::runtime(format!("cannot write trace file {path}: {e}")))?;
    }

    // fold this run's per-node row counts back into the store, so the
    // next run's estimates are observed rather than guessed; the
    // read-fold-write cycle runs under the persistence lock, so a
    // concurrent harvester's samples are folded in, never overwritten
    let mut written_store = None;
    let harvested = match stats_path {
        Some(p) => {
            let (folded, written) =
                StatsStore::harvest_into(p, stats_key, &snap).map_err(CliError::runtime)?;
            written_store = Some(written);
            Some(folded)
        }
        None => None,
    };

    // persist the converged morsel size so the next run starts tuned
    let persisted_morsel = match morsel_out {
        Some(p) => Some(persist_morsel_rows(p)?),
        None => None,
    };

    if json {
        let mut j = snap.to_json();
        if let genpar_obs::Json::Obj(fields) = &mut j {
            fields.insert(
                0,
                (
                    "schema_version".to_string(),
                    genpar_obs::Json::Int(PROFILE_SCHEMA_VERSION as i128),
                ),
            );
            let mis_json = genpar_obs::Json::Obj(
                mis.iter()
                    .map(|(op, est, actual, ratio)| {
                        (
                            op.clone(),
                            genpar_obs::Json::obj([
                                ("est_rows", genpar_obs::Json::Num(*est)),
                                ("actual_rows", genpar_obs::Json::Int(*actual as i128)),
                                ("ratio", genpar_obs::Json::Num(*ratio)),
                            ]),
                        )
                    })
                    .collect(),
            );
            fields.push(("misestimate".to_string(), mis_json));
            fields.push((
                "result".to_string(),
                genpar_obs::Json::obj([
                    ("rows_out", genpar_obs::Json::Int(stats.rows_out as i128)),
                    (
                        "est_rows_out",
                        genpar_obs::Json::Int(stats.est_rows_out as i128),
                    ),
                ]),
            ));
            if let Some(path) = trace_path {
                fields.push(("trace_file".to_string(), genpar_obs::Json::str(path)));
            }
            if want_timeline {
                fields.push((
                    "timeline".to_string(),
                    genpar_obs::Json::obj([
                        ("events", genpar_obs::Json::Int(tl.events.len() as i128)),
                        ("written", genpar_obs::Json::Int(tl.written as i128)),
                        ("dropped", genpar_obs::Json::Int(tl.dropped as i128)),
                        (
                            "capacity_per_thread",
                            genpar_obs::Json::Int(tl.capacity_per_thread as i128),
                        ),
                    ]),
                ));
            }
            if let (Some(p), Some(folded)) = (stats_path, harvested) {
                fields.push((
                    "stats".to_string(),
                    genpar_obs::Json::obj([
                        ("file", genpar_obs::Json::str(p)),
                        ("catalog", genpar_obs::Json::str(stats_key)),
                        ("harvested", genpar_obs::Json::Int(folded as i128)),
                    ]),
                ));
            }
            if let Some(rows) = persisted_morsel {
                fields.push((
                    "morsel_rows_persisted".to_string(),
                    genpar_obs::Json::Int(rows as i128),
                ));
            }
            if !warnings.is_empty() {
                fields.push((
                    "warnings".to_string(),
                    genpar_obs::Json::Arr(
                        warnings
                            .iter()
                            .map(|w| genpar_obs::Json::str(w.as_str()))
                            .collect(),
                    ),
                ));
            }
        }
        Ok(ProfileOutcome {
            output: format!("{j}\n"),
            written_store,
        })
    } else {
        let mut out = format!(
            "{}query: {q}\n\n{}",
            warning_lines(warnings),
            snap.render_tree()
        );
        if !mis.is_empty() {
            let _ = writeln!(out, "misestimate (actual / estimated rows):");
            for (op, est, actual, ratio) in &mis {
                let _ = writeln!(out, "  {op:<18} {actual} / ~{est:.0}  (x{ratio:.2})");
            }
        }
        if want_timeline {
            let _ = writeln!(
                out,
                "timeline: {} events recorded ({} dropped by the per-thread rings)",
                tl.events.len(),
                tl.dropped
            );
        }
        if let Some(path) = trace_path {
            let _ = writeln!(out, "trace written to {path}");
        }
        if let (Some(p), Some(folded)) = (stats_path, harvested) {
            let _ = writeln!(
                out,
                "stats: harvested {folded} node observations into {p} (catalog '{stats_key}')"
            );
        }
        if let (Some(rows), Some(p)) = (persisted_morsel, morsel_out) {
            let _ = writeln!(out, "morsel size {rows} persisted to {p}");
        }
        Ok(ProfileOutcome {
            output: out,
            written_store,
        })
    }
}

/// `calibrate`: fit the parallel cost model from a `BENCH_parallel.json`
/// document and write the calibration file `explain`/`profile` load with
/// `--calibration`.
fn calibrate_cmd(bench_path: &str, out_path: &str) -> Result<String, CliError> {
    let text = std::fs::read_to_string(bench_path)
        .map_err(|e| CliError::runtime(format!("cannot read bench file {bench_path}: {e}")))?;
    let bench = genpar_obs::Json::parse(&text)
        .map_err(|e| CliError::parse(format!("bench file {bench_path}: {e}")))?;
    let mut cal = Calibration::default()
        .fit_from_bench(&bench)
        .map_err(CliError::runtime)?;
    // fewer than two hardware threads cannot produce real contention —
    // the fit is arithmetic on noise. Persist the flag so every later
    // consumer of CALIBRATION.json sees it, not just this terminal.
    let hw = bench
        .get("hardware_threads")
        .and_then(|v| v.as_int())
        .unwrap_or(0);
    if hw < 2 {
        cal.unreliable = true;
    }
    genpar_optimizer::persist::save_atomic(out_path, &format!("{}\n", cal.to_json()))
        .map_err(CliError::runtime)?;
    let mut out = String::new();
    let _ = writeln!(out, "fitted from {bench_path}:");
    let _ = writeln!(
        out,
        "  overhead_per_worker: {:.4} (was {:.4} by default)",
        cal.overhead_per_worker,
        Calibration::default().overhead_per_worker
    );
    let _ = writeln!(out, "  startup_cost_cells:  {:.0}", cal.startup_cost_cells);
    for wkr in [2usize, 4, 8] {
        match cal.crossover_cost_cells(wkr) {
            Some(c) => {
                let _ = writeln!(
                    out,
                    "  crossover @ {wkr} workers: parallel pays above {c:.0} cells"
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  crossover @ {wkr} workers: none — parallel never wins at this width"
                );
            }
        }
    }
    if cal.unreliable {
        let _ = writeln!(
            out,
            "  WARNING: bench ran on {hw} hardware thread(s); speedups (and this fit) are unreliable"
        );
        let _ = writeln!(out, "  unreliable: true (persisted in {out_path})");
    }
    let _ = writeln!(out, "wrote {out_path}");
    Ok(out)
}

/// `genpar stats show|reset`: inspect or clear an observed-statistics
/// store file without running a query.
fn stats_cmd(action: &str, file: &str) -> Result<String, CliError> {
    match action {
        "reset" => {
            let mut empty = StatsStore::new();
            empty.save(file).map_err(CliError::runtime)?;
            Ok(format!("reset {file} (0 catalogs)\n"))
        }
        "show" => {
            let store = StatsStore::load(file).map_err(CliError::runtime)?;
            let mut out = String::new();
            let _ = writeln!(out, "{file}: {} catalog(s)", store.catalogs.len());
            for (key, cat) in &store.catalogs {
                let _ = writeln!(out, "\ncatalog '{key}' ({} entries):", cat.entries.len());
                let _ = writeln!(
                    out,
                    "  {:<18} {:<16} {:>7} {:>10} {:>12} {:>20}",
                    "op", "fingerprint", "samples", "selectivity", "rows_ewma", "rows min/last/max"
                );
                // highest-sample entries first — the ones steering routes
                let mut ranked: Vec<_> = cat.entries.iter().collect();
                ranked.sort_by(|(fa, a), (fb, b)| b.samples.cmp(&a.samples).then(fa.cmp(fb)));
                for (fp, e) in ranked {
                    let _ = writeln!(
                        out,
                        "  {:<18} {fp:016x} {:>7} {:>10.4} {:>12.1} {:>20}",
                        e.op,
                        e.samples,
                        e.selectivity,
                        e.rows_ewma,
                        format!("{}/{}/{}", e.rows_min, e.rows_last, e.rows_max),
                    );
                }
            }
            Ok(out)
        }
        other => Err(CliError::usage(format!(
            "stats action must be show or reset (got {other:?})"
        ))),
    }
}

/// The fault sites a chaos storm may arm. All of them sit on the
/// recovery ladder: nth-hit faults are retried in place, persistent
/// faults quarantine workers and ultimately degrade the query to the
/// serial interpreter — never a wrong answer, never a panic.
const CHAOS_SITES: &[&str] = &[
    "exec.morsel",
    "exec.merge",
    "exec.fixpoint_round",
    "exec.combine",
    "exec.retry",
];

/// The query pool a chaos case draws from: plain partitioned shapes,
/// every combiner, and a per-round fixpoint — one of each route the
/// parallel executor can take.
const CHAOS_QUERIES: &[&str] = &[
    "pi[$1](R)",
    "select[$1=$2](R)",
    "union(R, S)",
    "diff(R, S)",
    "pi[$1,$4](join[$2=$1](R, S))",
    "count(R)",
    "sum[$2](R)",
    "even(R)",
    "fix[X](E, pi[$1,$4](join[$2=$1](X, E)))",
];

/// `genpar chaos [--seed N] [--cases M]`: the chaos oracle as a
/// subcommand. Each case deterministically derives a random catalog,
/// query, worker width and multi-site fault storm from the seed,
/// computes the fault-free serial answer, replays the query under the
/// storm, and fails loudly (exit 5, with the repro seed) if the
/// recovered answer differs — plus a torn-write drill proving corrupt
/// state files are quarantined and regenerated. Exit 0 means every
/// recovery rung preserved byte-identical answers.
fn chaos_cmd(seed: u64, cases: u32) -> Result<String, CliError> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let queries: Vec<Query> = CHAOS_QUERIES
        .iter()
        .map(|q| parse_q(q))
        .collect::<Result<_, _>>()?;
    // the storm owns the process-global fault table for the whole loop
    genpar_guard::disarm_faults();
    let (mut recovered, mut degraded) = (0u32, 0u32);
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(
            seed ^ (case as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(1),
        );
        // a small random catalog: R/S binary tables and a chain E
        let mut catalog = Catalog::new();
        for name in ["R", "S"] {
            let rows = rng.gen_range(10..120i64);
            let modulus = rng.gen_range(2..9i64);
            let mut t = Table::new(name, Schema::uniform(CvType::int(), 2));
            for i in 0..rows {
                t.insert(vec![
                    genpar_value::Value::Int(i),
                    genpar_value::Value::Int(i % modulus),
                ]);
            }
            catalog.add(t);
        }
        let mut e = Table::new("E", Schema::uniform(CvType::int(), 2));
        for i in 0..rng.gen_range(3..12) {
            e.insert(vec![
                genpar_value::Value::Int(i),
                genpar_value::Value::Int(i + 1),
            ]);
        }
        catalog.add(e);
        let q = &queries[rng.gen_range(0..queries.len())];
        // the fault-free serial truth for this case
        let (truth, _, _) =
            genpar_exec::eval_query(q, &catalog, &ExecConfig::serial()).map_err(|e| {
                CliError::internal(format!("chaos case {case}: clean serial run failed: {e}"))
            })?;
        // a storm: one to three sites, each nth-hit or persistent
        let storm: Vec<String> = (0..rng.gen_range(1..4usize))
            .map(|_| {
                let site = CHAOS_SITES[rng.gen_range(0..CHAOS_SITES.len())];
                if rng.gen_bool(0.3) {
                    format!("{site}:*")
                } else {
                    format!("{site}:{}", rng.gen_range(1..6))
                }
            })
            .collect();
        let spec = storm.join(",");
        genpar_guard::arm_faults(&spec)
            .map_err(|e| CliError::internal(format!("chaos case {case}: bad storm spec: {e}")))?;
        let cfg = ExecConfig::serial()
            .with_workers(if rng.gen_bool(0.5) { 2 } else { 4 })
            .with_morsel_rows(rng.gen_range(4..48));
        let result = genpar_exec::eval_query(q, &catalog, &cfg);
        genpar_guard::disarm_faults();
        let repro = format!("repro: genpar chaos --seed {seed} --cases {}", case + 1);
        match result {
            Ok((v, _, route)) => {
                if v != truth {
                    return Err(CliError::internal(format!(
                        "chaos case {case}: answer diverged under storm \"{spec}\" on {q}\n  \
                         got:      {v}\n  expected: {truth}\n  {repro}"
                    )));
                }
                match route {
                    genpar_exec::ExecRoute::Fallback { .. } => degraded += 1,
                    _ => recovered += 1,
                }
            }
            Err(e) => {
                return Err(CliError::internal(format!(
                    "chaos case {case}: the ladder must degrade, never error — \
                     storm \"{spec}\" on {q} returned: {e}\n  {repro}"
                )))
            }
        }
    }

    // torn-write drill: injected persistence faults must leave the old
    // file intact, and a torn file must quarantine + regenerate
    let dir = std::env::temp_dir().join(format!("genpar-chaos-{}-{seed}", std::process::id()));
    std::fs::create_dir_all(&dir)
        .map_err(|e| CliError::runtime(format!("cannot create {}: {e}", dir.display())))?;
    let state = dir.join("STATS.json");
    let state_path = state.to_string_lossy().into_owned();
    let mut store = StatsStore::new();
    for _ in 0..3 {
        store
            .catalog_mut("chaos")
            .observe(7, "plan.Filter", 100, 10);
    }
    store.save(&state_path).map_err(CliError::runtime)?;
    genpar_guard::arm_faults("io.persist:1").map_err(|e| CliError::internal(e.to_string()))?;
    let fault_write = store.save(&state_path);
    genpar_guard::disarm_faults();
    if fault_write.is_ok() {
        return Err(CliError::internal(
            "chaos: injected io.persist fault did not surface from save".to_string(),
        ));
    }
    let (reloaded, warning) = StatsStore::load_or_quarantine(&state_path);
    if warning.is_some() || reloaded.catalogs.is_empty() {
        return Err(CliError::internal(
            "chaos: a failed save must leave the previous state file intact".to_string(),
        ));
    }
    // now tear the file mid-payload and prove the load quarantines it
    let text = std::fs::read_to_string(&state)
        .map_err(|e| CliError::runtime(format!("cannot read {state_path}: {e}")))?;
    std::fs::write(&state, &text[..text.len() / 2])
        .map_err(|e| CliError::runtime(format!("cannot tear {state_path}: {e}")))?;
    let (regenerated, warning) = StatsStore::load_or_quarantine(&state_path);
    let corrupt = format!("{state_path}.corrupt");
    if warning.is_none()
        || !regenerated.catalogs.is_empty()
        || !std::path::Path::new(&corrupt).exists()
    {
        return Err(CliError::internal(format!(
            "chaos: torn {state_path} was not quarantined and regenerated"
        )));
    }
    let _ = std::fs::remove_dir_all(&dir);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos: {cases} case(s) with seed {seed} — every answer byte-identical to serial"
    );
    let _ = writeln!(
        out,
        "  routes: {recovered} recovered on the parallel path, {degraded} degraded to serial"
    );
    let _ = writeln!(
        out,
        "  persistence: torn-write drill quarantined and regenerated the state file"
    );
    Ok(out)
}

/// Coerce a relation value to uniform-arity tuples (pad/skip oddballs) so
/// it can be loaded into a schema'd table.
fn normalize_rel(v: &genpar_value::Value, arity: usize) -> genpar_value::Value {
    match v.as_set() {
        Some(s) => genpar_value::Value::set(
            s.iter()
                .filter(|t| t.as_tuple().is_some_and(|tt| tt.len() == arity))
                .cloned(),
        ),
        None => genpar_value::Value::empty_set(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The obs registry is process-global; tests that reset + snapshot it
    /// serialize here so a concurrent reset cannot wipe their events.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn obs_guard() -> std::sync::MutexGuard<'static, ()> {
        match OBS_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn classify_reports_both_modes() {
        let out = classify("hat[$1=$2](R)").unwrap();
        assert!(out.contains("rel mode"), "{out}");
        assert!(out.contains("fully generic"), "{out}");
        assert!(out.contains("injective"), "{out}");
        assert!(out.contains('•'), "{out}");
    }

    #[test]
    fn check_refutes_q4_and_verifies_q3() {
        let out = check("select[$1=$2](R)", "rel", "all").unwrap();
        assert!(out.starts_with("REFUTED"), "{out}");
        let out = check("pi[$1,$2](R)", "rel", "all").unwrap();
        assert!(out.starts_with("INVARIANT"), "{out}");
        let out = check("select[$1=$2](R)", "rel", "injective").unwrap();
        assert!(out.starts_with("INVARIANT"), "{out}");
        // type inference lets non-arity-preserving queries check cleanly:
        // π$1 has a 1-column output and is invariant for all mappings
        let out = check("pi[$1](R)", "rel", "all").unwrap();
        assert!(out.starts_with("INVARIANT"), "{out}");
        // even returns bool — also typed correctly now
        let out = check("even(R)", "rel", "injective").unwrap();
        assert!(out.starts_with("INVARIANT"), "{out}");
        let out = check("even(R)", "rel", "all").unwrap();
        assert!(out.starts_with("REFUTED"), "{out}");
    }

    #[test]
    fn probe_finds_q4_rung() {
        let out = probe("select[$1=$2](R)", "rel", 2).unwrap();
        assert!(out.contains("tightest class found"), "{out}");
        assert!(out.contains("injective"), "{out}");
    }

    #[test]
    fn run_evaluates_against_db_file() {
        let dir = std::env::temp_dir().join("genpar_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ex22.gdb");
        std::fs::write(&path, "R = {(e, f), (f, g)}\n").unwrap();
        let out = run(
            "pi[$1,$4](join[$2=$1](R, R))",
            path.to_str().unwrap(),
            Some(1),
            None,
        )
        .unwrap();
        assert_eq!(out.trim(), "{(e, g)}");
    }

    #[test]
    fn run_parallel_matches_serial_output() {
        let dir = std::env::temp_dir().join("genpar_cli_test_par");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("par.gdb");
        let mut body = String::from("R = {");
        for i in 0..50 {
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&format!("({i}, {})", i % 7));
        }
        body.push_str("}\nS = {(1, 9), (2, 9), (3, 9)}\n");
        std::fs::write(&path, body).unwrap();
        let p = path.to_str().unwrap();
        for q in [
            "R",
            "pi[$1](R)",
            "select[$1=$2](R)",
            "union(R, S)",
            "diff(R, S)",
            "pi[$1,$4](join[$2=$1](R, S))",
        ] {
            let serial = run(q, p, Some(1), None).unwrap();
            let parallel = run(q, p, Some(4), None).unwrap();
            assert_eq!(serial, parallel, "parity broke on {q}");
        }
    }

    #[test]
    fn run_parallel_falls_back_on_uncertified_queries() {
        let dir = std::env::temp_dir().join("genpar_cli_test_fb");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fb.gdb");
        std::fs::write(&path, "R = {(1, 2), (2, 3)}\n").unwrap();
        let p = path.to_str().unwrap();
        let _g = obs_guard();
        genpar_obs::reset();
        let out = run("powerset(R)", p, Some(4), None).unwrap();
        assert!(out.contains("{(1, 2)}"), "{out}");
        let snap = genpar_obs::snapshot();
        let ev = snap
            .events
            .iter()
            .find(|e| e.kind == "exec.fallback")
            .expect("fallback event recorded");
        assert_eq!(event_field(ev, "op"), "powerset");
        // the gate's refusal reason rides along on the fallback event so
        // traces and explain agree on *why* the parallel route was refused
        assert!(
            event_field(ev, "reason").contains("straddle"),
            "fallback event carries the gate refusal reason: {ev:?}"
        );
        assert_eq!(event_field(ev, "mode"), "serial");
    }

    #[test]
    fn run_parallel_combiner_and_fixpoint_do_not_fall_back() {
        let dir = std::env::temp_dir().join("genpar_cli_test_comb");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("comb.gdb");
        std::fs::write(
            &path,
            "R = {(1, 2), (2, 3)}\nE = {(0, 1), (1, 2), (2, 3), (3, 4)}\n",
        )
        .unwrap();
        let p = path.to_str().unwrap();
        let _g = obs_guard();
        genpar_obs::reset();
        // root-level aggregates take the combiner route at 4 workers —
        // `even(R)` no longer degrades to serial (the acceptance bar)
        assert_eq!(run("even(R)", p, Some(4), None).unwrap().trim(), "true");
        assert_eq!(run("count(R)", p, Some(4), None).unwrap().trim(), "2");
        assert_eq!(run("sum[$1](R)", p, Some(4), None).unwrap().trim(), "3");
        // a distributive-body fixpoint runs per-round on the pool
        let fix = "fix[X](E, pi[$1,$4](join[$2=$1](X, E)))";
        let serial = run(fix, p, Some(1), None).unwrap();
        let parallel = run(fix, p, Some(4), None).unwrap();
        assert_eq!(serial, parallel, "fixpoint parity broke");
        let snap = genpar_obs::snapshot();
        assert!(
            snap.events.iter().all(|e| e.kind != "exec.fallback"),
            "no fallback events on certified inputs: {:?}",
            snap.events
        );
    }

    #[test]
    fn optimize_traces_rewrites() {
        let out = optimize_cmd("pi[$1](union(R, S))", None, None).unwrap();
        assert!(out.contains("ProjectThroughUnion"), "{out}");
        assert!(out.contains("estimated cost"), "{out}");
        // difference push only with the key flag
        let out = optimize_cmd("pi[$1](diff(R, S))", None, None).unwrap();
        assert!(out.contains("no profitable rewrite"), "{out}");
    }

    #[test]
    fn explain_shows_trace_and_plan() {
        let _g = obs_guard();
        let out = explain_cmd("pi[$1](union(R, S))", None, None, Some(1), None, None).unwrap();
        assert!(out.contains("ProjectThroughUnion"), "{out}");
        assert!(out.contains("Cor 4.15"), "{out}");
        assert!(out.contains("chosen plan:"), "{out}");
        assert!(out.contains("Scan R"), "{out}");
        assert!(out.contains("estimated cost"), "{out}");
        // the parallel section names the gate verdict even when serial
        assert!(out.contains("partition-safe"), "{out}");
    }

    #[test]
    fn explain_reports_parallel_route_and_fallback() {
        let _g = obs_guard();
        let out = explain_cmd("pi[$1](union(R, S))", None, None, Some(4), None, None).unwrap();
        assert!(out.contains("parallel execution (4 workers)"), "{out}");
        assert!(out.contains("would run on 4 worker threads"), "{out}");
        // both route costs are printed with the calibrated model
        assert!(out.contains("route costs"), "{out}");
        assert!(out.contains("serial route:"), "{out}");
        assert!(out.contains("parallel route:"), "{out}");
        assert!(out.contains("chosen route:"), "{out}");
        assert!(out.contains("crossover"), "{out}");
        // per-operator cardinality estimates back the misestimate report
        assert!(out.contains("estimated rows per operator:"), "{out}");
        assert!(out.contains("plan.Scan"), "{out}");
        let out = explain_cmd("powerset(R)", None, None, Some(4), None, None).unwrap();
        assert!(out.contains("falls back to serial: 'powerset'"), "{out}");
        assert!(out.contains("straddle"), "{out}");
        assert!(out.contains("gate refused the parallel route"), "{out}");
    }

    #[test]
    fn explain_cites_the_combiner_certificate_not_a_refusal() {
        let _g = obs_guard();
        // `even` used to be refused with the Lemma 2.12 *pitfall*; now the
        // same lemma backs its combiner certificate — explain must cite
        // the certificate, print both route costs, and show no fallback
        let out = explain_cmd("even(R)", None, None, Some(4), None, None).unwrap();
        assert!(out.contains("combiner 'even'"), "{out}");
        assert!(out.contains("Lemma 2.12"), "{out}");
        assert!(out.contains("partition-local accumulators"), "{out}");
        assert!(!out.contains("falls back to serial"), "{out}");
        assert!(!out.contains("gate refused"), "{out}");
        assert!(out.contains("serial route:"), "{out}");
        assert!(out.contains("parallel route:"), "{out}");
        assert!(out.contains("chosen route:"), "{out}");
        let out = explain_cmd("count(pi[$1](R))", None, None, Some(4), None, None).unwrap();
        assert!(out.contains("combiner 'count'"), "{out}");
    }

    #[test]
    fn explain_reports_the_per_round_fixpoint_certificate() {
        let _g = obs_guard();
        let q = "fix[X](E, pi[$1,$4](join[$2=$1](X, E)))";
        let out = explain_cmd(q, None, None, Some(4), None, None).unwrap();
        assert!(out.contains("fixpoint round-safe"), "{out}");
        assert!(out.contains("per-round body certified"), "{out}");
        assert!(out.contains("morsel pool"), "{out}");
        assert!(!out.contains("falls back to serial"), "{out}");
        // both routes costed: the parallel one pays per-round startup
        assert!(out.contains("serial route:"), "{out}");
        assert!(out.contains("parallel route:"), "{out}");
        // a fixpoint whose body uses a whole-set operator is refused
        let out = explain_cmd("fix[X](E, powerset(X))", None, None, Some(4), None, None).unwrap();
        assert!(out.contains("falls back to serial"), "{out}");
    }

    #[test]
    fn explain_reports_blocked_difference_push() {
        let _g = obs_guard();
        // without the union-key assertion the Prop 3.4 side condition
        // fails: the rule must show up as blocked, not fired
        let out = explain_cmd("pi[$1](diff(R, S))", None, None, Some(1), None, None).unwrap();
        assert!(out.contains("blocked rewrites:"), "{out}");
        assert!(out.contains("ProjectThroughDifference"), "{out}");
        assert!(out.contains("Prop 3.4"), "{out}");
        // with the assertion the rule fires, but on narrow 2-column
        // tables the cost model keeps the original (the Series C
        // crossover) — explain must say so instead of "no rewrite fired"
        let out = explain_cmd(
            "pi[$1](diff(R, S))",
            None,
            Some("R,S:$1"),
            Some(1),
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("cost model kept the original"), "{out}");
        assert!(!out.contains("no rewrite fired"), "{out}");
    }

    #[test]
    fn explain_reports_vm_programs_and_refusals() {
        let _g = obs_guard();
        // pin the switch regardless of the GENPAR_VM the test process
        // inherited (the CI vm job runs the whole workspace with it off)
        let vm_was = genpar_algebra::vm::enabled();
        genpar_algebra::vm::set_enabled(true);
        // an eligible σ compiles; the line carries the certificate the
        // program is stamped with at run time
        let out = explain_cmd("select[even($1)](R)", None, None, Some(2), None, None).unwrap();
        assert!(out.contains("bytecode vm:"), "{out}");
        assert!(out.contains("program of"), "{out}");
        assert!(out.contains("[cert:"), "{out}");
        // a plan with no σ/map expressions says so instead of going quiet
        let out = explain_cmd("pi[$1](R)", None, None, Some(2), None, None).unwrap();
        assert!(out.contains("no compiled programs"), "{out}");
        // an ineligible expression gets the paper-citing refusal — the
        // same voice as the partition gate, never a silent AST path
        let line = vm_line(
            "map(<custom>)".to_string(),
            genpar_algebra::vm::compile_fn(&genpar_algebra::ValueFn::custom(|v| v.clone())),
            None,
        );
        assert!(line.contains("AST walker"), "{line}");
        assert!(line.contains("Section 4.4"), "{line}");
        // the kill switch is reported loudly, not inferred from absence
        genpar_algebra::vm::set_enabled(false);
        let out = explain_cmd("select[even($1)](R)", None, None, Some(2), None, None);
        genpar_algebra::vm::set_enabled(vm_was);
        let out = out.unwrap();
        assert!(out.contains("disabled (GENPAR_VM=0)"), "{out}");
    }

    #[test]
    fn profile_renders_tree_and_json() {
        let _g = obs_guard();
        let out = profile_cmd(
            "pi[$1](union(R, S))",
            None,
            None,
            false,
            Some(1),
            None,
            false,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("spans:"), "{out}");
        assert!(out.contains("engine.execute"), "{out}");
        assert!(out.contains("counters:"), "{out}");
        assert!(
            out.contains("misestimate (actual / estimated rows):"),
            "{out}"
        );
        let out = profile_cmd(
            "pi[$1](union(R, S))",
            None,
            None,
            true,
            Some(1),
            None,
            false,
            None,
            None,
            None,
        )
        .unwrap();
        let parsed = genpar_obs::Json::parse(&out).expect("profile --json emits valid JSON");
        assert!(parsed.get("counters").is_some(), "{out}");
        assert!(parsed.get("spans").is_some(), "{out}");
        // S2: the JSON schema is versioned so downstream tooling can detect drift
        match parsed.get("schema_version") {
            Some(genpar_obs::Json::Int(v)) => assert_eq!(*v, PROFILE_SCHEMA_VERSION as i128),
            other => panic!("schema_version missing or not an int: {other:?}"),
        }
        // per-operator misestimate report: actual vs estimated rows
        let mis = parsed.get("misestimate").expect("misestimate key present");
        match mis {
            genpar_obs::Json::Obj(entries) => {
                assert!(!entries.is_empty(), "misestimate has per-op entries: {out}");
                assert!(
                    entries.iter().all(|(k, _)| k.starts_with("plan.")),
                    "misestimate keys are plan operators: {out}"
                );
                let (_, first) = &entries[0];
                assert!(first.get("est_rows").is_some(), "{out}");
                assert!(first.get("actual_rows").is_some(), "{out}");
                assert!(first.get("ratio").is_some(), "{out}");
            }
            other => panic!("misestimate is not an object: {other:?}"),
        }
        // the result block pairs observed output size with the prediction
        let result = parsed.get("result").expect("result key present");
        assert!(result.get("rows_out").is_some(), "{out}");
        assert!(result.get("est_rows_out").is_some(), "{out}");
    }

    #[test]
    fn profile_parallel_uses_the_executor() {
        let _g = obs_guard();
        let out = profile_cmd(
            "pi[$1](union(R, S))",
            None,
            None,
            false,
            Some(4),
            None,
            false,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("exec.parallel"), "{out}");
        assert!(out.contains("exec.worker"), "{out}");
        // every morsel is timed into the latency histogram
        assert!(out.contains("histograms:"), "{out}");
        assert!(out.contains("exec.morsel_us"), "{out}");
    }

    #[test]
    fn profile_exports_a_chrome_trace() {
        let dir = std::env::temp_dir().join("genpar_cli_test_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let p = path.to_str().unwrap();
        let _g = obs_guard();
        let out = profile_cmd(
            "pi[$1](union(R, S))",
            None,
            None,
            false,
            Some(4),
            Some(p),
            false,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains(&format!("trace written to {p}")), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let trace = genpar_obs::Json::parse(&text).expect("trace file is valid JSON");
        let events = trace
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        assert!(!events.is_empty(), "trace has events");
        // the parallel section shows up as a named span in the trace
        assert!(
            events
                .iter()
                .any(|e| { e.get("name").and_then(|n| n.as_str()) == Some("exec.parallel") }),
            "exec.parallel span exported: {text}"
        );
        // the JSON form also points at the trace file
        let out = profile_cmd(
            "pi[$1](union(R, S))",
            None,
            None,
            true,
            Some(4),
            Some(p),
            false,
            None,
            None,
            None,
        )
        .unwrap();
        let parsed = genpar_obs::Json::parse(&out).unwrap();
        assert_eq!(
            parsed.get("trace_file").and_then(|v| v.as_str()),
            Some(p),
            "{out}"
        );
    }

    #[test]
    fn profile_exports_jsonl_traces() {
        let dir = std::env::temp_dir().join("genpar_cli_test_trace_jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let p = path.to_str().unwrap();
        let _g = obs_guard();
        profile_cmd(
            "pi[$1](union(R, S))",
            None,
            None,
            false,
            Some(1),
            Some(p),
            false,
            None,
            None,
            None,
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = 0;
        for line in text.lines() {
            genpar_obs::Json::parse(line).expect("each JSONL line is valid JSON");
            lines += 1;
        }
        assert!(lines > 0, "JSONL trace is non-empty");
    }

    #[test]
    fn calibrate_fits_the_bench_and_explain_loads_it() {
        let dir = std::env::temp_dir().join("genpar_cli_test_cal");
        std::fs::create_dir_all(&dir).unwrap();
        let bench = dir.join("bench.json");
        let out_file = dir.join("cal.json");
        // synthetic speedups from the model with c = 0.05, s = 0:
        // speedup(w) = 1 / (1/w + 0.05 (w-1))
        std::fs::write(
            &bench,
            r#"{"bench": "parallel_speedup", "hardware_threads": 8, "results": [
                {"workers": 1, "median_us": 1000, "speedup": 1.0},
                {"workers": 2, "median_us": 550, "speedup": 1.8182},
                {"workers": 4, "median_us": 400, "speedup": 2.5},
                {"workers": 8, "median_us": 475, "speedup": 2.1053}
            ]}"#,
        )
        .unwrap();
        let b = bench.to_str().unwrap();
        let o = out_file.to_str().unwrap();
        let out = calibrate_cmd(b, o).unwrap();
        assert!(out.contains("overhead_per_worker: 0.05"), "{out}");
        assert!(out.contains(&format!("wrote {o}")), "{out}");
        // hardware_threads >= 2, so no reliability warning
        assert!(!out.contains("WARNING"), "{out}");
        let cal = Calibration::from_file(o).expect("written calibration round-trips");
        assert!(
            (cal.overhead_per_worker - 0.05).abs() < 5e-3,
            "fitted c = {}",
            cal.overhead_per_worker
        );
        // explain picks the fitted calibration up via --calibration
        let _g = obs_guard();
        let out = explain_cmd("pi[$1](union(R, S))", None, None, Some(4), Some(o), None).unwrap();
        assert!(
            out.contains("route costs (calibration: 0.050/worker"),
            "{out}"
        );
    }

    #[test]
    fn calibrate_warns_on_single_threaded_benches() {
        let dir = std::env::temp_dir().join("genpar_cli_test_cal_warn");
        std::fs::create_dir_all(&dir).unwrap();
        let bench = dir.join("bench.json");
        let out_file = dir.join("cal.json");
        std::fs::write(
            &bench,
            r#"{"bench": "parallel_speedup", "hardware_threads": 1, "results": [
                {"workers": 1, "median_us": 1000, "speedup": 1.0},
                {"workers": 4, "median_us": 950, "speedup": 1.05}
            ]}"#,
        )
        .unwrap();
        let out = calibrate_cmd(bench.to_str().unwrap(), out_file.to_str().unwrap()).unwrap();
        assert!(out.contains("WARNING"), "{out}");
        assert!(out.contains("1 hardware thread"), "{out}");
        // satellite: the flag is persisted in the file, not just printed
        assert!(out.contains("unreliable: true"), "{out}");
        let cal = Calibration::from_file(out_file.to_str().unwrap()).unwrap();
        assert!(cal.unreliable, "unreliable flag must ride in the JSON");
        let text = genpar_optimizer::persist::read_payload(out_file.to_str().unwrap())
            .unwrap()
            .unwrap();
        let j = genpar_obs::Json::parse(&text).unwrap();
        assert!(
            matches!(j.get("unreliable"), Some(genpar_obs::Json::Bool(true))),
            "{text}"
        );
    }

    #[test]
    fn stats_cmd_resets_and_shows_the_store() {
        let dir = std::env::temp_dir().join("genpar_cli_test_stats_cmd");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("STATS.json");
        let f = file.to_str().unwrap();
        let out = stats_cmd("reset", f).unwrap();
        assert!(out.contains("reset"), "{out}");
        let out = stats_cmd("show", f).unwrap();
        assert!(out.contains("0 catalog(s)"), "{out}");
        // seed an entry past the trust threshold and show it
        let mut store = StatsStore::load(f).unwrap();
        for _ in 0..3 {
            store
                .catalog_mut("nominal")
                .observe(0xabc, "plan.Filter", 100, 10);
        }
        store.save(f).unwrap();
        let out = stats_cmd("show", f).unwrap();
        assert!(out.contains("catalog 'nominal' (1 entries)"), "{out}");
        assert!(out.contains("plan.Filter"), "{out}");
        assert!(out.contains("0000000000000abc"), "{out}");
        assert!(stats_cmd("frobnicate", f).is_err());
        // a malformed store is a loud error, not a silent fresh start
        std::fs::write(&file, "{\"schema_version\": 99}").unwrap();
        assert!(stats_cmd("show", f).is_err());
    }

    #[test]
    fn profile_harvests_stats_and_explain_consumes_them() {
        let dir = std::env::temp_dir().join("genpar_cli_test_stats_loop");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("STATS.json");
        let f = file.to_str().unwrap();
        let _ = std::fs::remove_file(&file);
        let _g = obs_guard();
        // three profiled runs harvest plan.node_stats past MIN_SAMPLES
        for i in 0..3 {
            let out = profile_cmd(
                "select[$1=$2](R)",
                None,
                None,
                false,
                Some(1),
                None,
                false,
                None,
                Some(f),
                None,
            )
            .unwrap();
            assert!(
                out.contains("node observations into"),
                "run {i} harvested: {out}"
            );
        }
        let store = StatsStore::load(f).unwrap();
        let cat = store.catalog("nominal").expect("nominal catalog exists");
        assert!(
            cat.entries.values().any(|e| e.samples >= 3),
            "entries matured: {:?}",
            cat.entries
        );
        // explain now marks matured nodes observed — and keeps static for
        // plan shapes the store has never seen (disjoint relation S)
        let out = explain_cmd("select[$1=$2](R)", None, None, Some(1), None, Some(f)).unwrap();
        assert!(out.contains("observed(n="), "{out}");
        assert!(out.contains(&format!("stats:     {f}")), "{out}");
        let out = explain_cmd("pi[$1](S)", None, None, Some(1), None, Some(f)).unwrap();
        assert!(!out.contains("observed(n="), "{out}");
        assert!(out.contains("[static]"), "{out}");
        // the JSON profile reports the harvest block
        let out = profile_cmd(
            "select[$1=$2](R)",
            None,
            None,
            true,
            Some(1),
            None,
            false,
            None,
            Some(f),
            None,
        )
        .unwrap();
        let parsed = genpar_obs::Json::parse(&out).unwrap();
        let stats = parsed.get("stats").expect("stats block present");
        assert_eq!(
            stats.get("catalog").and_then(|v| v.as_str()),
            Some("nominal")
        );
        assert!(stats.get("harvested").and_then(|v| v.as_int()).unwrap_or(0) > 0);
    }

    #[test]
    fn profile_timeline_records_real_instants() {
        let _g = obs_guard();
        let prev = genpar_obs::timeline::enabled();
        // --timeline alone (no trace) records and reports, then restores
        let out = profile_cmd(
            "pi[$1](union(R, S))",
            None,
            None,
            false,
            Some(4),
            None,
            true,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("timeline:"), "{out}");
        assert_eq!(genpar_obs::timeline::enabled(), prev, "flag restored");
        // JSON form carries the timeline block
        let out = profile_cmd(
            "pi[$1](union(R, S))",
            None,
            None,
            true,
            Some(4),
            None,
            true,
            None,
            None,
            None,
        )
        .unwrap();
        let parsed = genpar_obs::Json::parse(&out).unwrap();
        let tl = parsed.get("timeline").expect("timeline block present");
        assert!(
            tl.get("events").and_then(|v| v.as_int()).unwrap_or(0) > 0,
            "timeline recorded events: {out}"
        );
        assert_eq!(
            parsed.get("schema_version").and_then(|v| v.as_int()),
            Some(PROFILE_SCHEMA_VERSION as i128)
        );
    }

    #[test]
    fn profile_trace_emits_true_begin_end_pairs() {
        let dir = std::env::temp_dir().join("genpar_cli_test_trace_tl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let p = path.to_str().unwrap();
        let _g = obs_guard();
        // --trace implies --timeline: the export must be real B/E pairs,
        // not the synthetic flame layout of complete (ph: X) events
        profile_cmd(
            "pi[$1](union(R, S))",
            None,
            None,
            false,
            Some(4),
            Some(p),
            false,
            None,
            None,
            None,
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let trace = genpar_obs::Json::parse(&text).unwrap();
        let events = trace
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        let ph = |e: &genpar_obs::Json| {
            e.get("ph")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string()
        };
        let begins = events.iter().filter(|e| ph(e) == "B").count();
        let ends = events.iter().filter(|e| ph(e) == "E").count();
        assert!(begins > 0, "true-timeline B events present: {text}");
        assert_eq!(begins, ends, "B/E balanced: {text}");
        // worker lanes: morsel spans land on tid >= 1 (lane = wid + 1)
        assert!(
            events.iter().any(|e| {
                ph(e) == "B" && e.get("tid").and_then(|v| v.as_int()).unwrap_or(0) >= 1
            }),
            "per-worker lanes present: {text}"
        );
        // every B event carries the query id stamped at executor entry
        assert!(
            events.iter().filter(|e| ph(e) == "B").all(|e| {
                e.get("args")
                    .and_then(|a| a.get("query"))
                    .and_then(|v| v.as_int())
                    .is_some()
            }),
            "B events carry query ids: {text}"
        );
    }

    #[test]
    fn profile_falls_back_to_the_interpreter() {
        let _g = obs_guard();
        // adom is complex-valued — not lowerable to the flat engine
        let out = profile_cmd(
            "adom(R)",
            None,
            None,
            false,
            Some(1),
            None,
            false,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("counters:"), "{out}");
        // at 4 workers the gate refuses it and records the fallback
        let out = profile_cmd(
            "adom(R)",
            None,
            None,
            false,
            Some(4),
            None,
            false,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("exec.fallback"), "{out}");
    }

    #[test]
    fn profile_parallel_combiner_and_fixpoint_routes() {
        let _g = obs_guard();
        // at 4 workers `even` takes the combiner route: combine span and
        // histogram in the profile, no fallback anywhere
        let out = profile_cmd(
            "even(R)",
            None,
            None,
            false,
            Some(4),
            None,
            false,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("exec.combine"), "{out}");
        assert!(!out.contains("exec.fallback"), "{out}");
        // a fixpoint profile shows the per-round spans and histogram
        let dir = std::env::temp_dir().join("genpar_cli_test_fixprof");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fix.gdb");
        std::fs::write(&path, "E = {(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)}\n").unwrap();
        let out = profile_cmd(
            "fix[X](E, pi[$1,$4](join[$2=$1](X, E)))",
            Some(path.to_str().unwrap()),
            None,
            false,
            Some(4),
            None,
            false,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("exec.fixpoint"), "{out}");
        assert!(out.contains("exec.fixpoint_round_us"), "{out}");
        assert!(!out.contains("exec.fallback"), "{out}");
    }

    #[test]
    fn profile_persists_the_converged_morsel_size() {
        let dir = std::env::temp_dir().join("genpar_cli_test_morsel");
        std::fs::create_dir_all(&dir).unwrap();
        let cal_path = dir.join("cal.json");
        std::fs::write(
            &cal_path,
            "{\"schema_version\": 2, \"overhead_per_worker\": 0.04, \"startup_cost_cells\": 10.0}\n",
        )
        .unwrap();
        let c = cal_path.to_str().unwrap();
        let _g = obs_guard();
        let out = profile_cmd(
            "pi[$1](union(R, S))",
            None,
            None,
            false,
            Some(4),
            None,
            false,
            Some(c),
            None,
            None,
        )
        .unwrap();
        assert!(out.contains(&format!("persisted to {c}")), "{out}");
        // round trip: the file gained morsel_rows and kept every other key
        let text = genpar_optimizer::persist::read_payload(c).unwrap().unwrap();
        let j = genpar_obs::Json::parse(&text).unwrap();
        let rows = j
            .get("morsel_rows")
            .and_then(|v| v.as_int())
            .expect("morsel_rows persisted");
        assert!(rows > 0, "persisted a positive morsel size: {text}");
        // the calibration parameters survive and the file still loads
        // (unknown keys are ignored by the calibration parser, and the
        // startup preseed path reads the same file back)
        let cal = load_calibration(Some(c)).unwrap().0;
        assert!((cal.overhead_per_worker - 0.04).abs() < 1e-9, "{text}");
        assert!((cal.startup_cost_cells - 10.0).abs() < 1e-9, "{text}");
        // persisting again overwrites in place rather than duplicating
        let out2 = profile_cmd(
            "pi[$1](union(R, S))",
            None,
            None,
            false,
            Some(4),
            None,
            false,
            Some(c),
            None,
            None,
        )
        .unwrap();
        assert!(out2.contains("persisted to"), "{out2}");
        let text2 = std::fs::read_to_string(&cal_path).unwrap();
        assert_eq!(
            text2.matches("morsel_rows").count(),
            1,
            "one morsel_rows key after re-persist: {text2}"
        );
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(classify("pi[$0](R)").is_err());
        assert!(check("R", "sideways", "all").is_err());
        assert!(check("R", "rel", "weird").is_err());
        assert!(run("R", "/nonexistent/path.gdb", Some(1), None).is_err());
        assert!(optimize_cmd("diff(R,S)", None, Some("R,S")).is_err());
        assert!(optimize_cmd("diff(R,S)", None, Some("R,S:$0")).is_err());
    }

    #[test]
    fn audit_prints_the_catalog() {
        let out = audit().unwrap();
        assert!(out.contains("Q4"), "{out}");
        assert!(out.contains("eq_adom"), "{out}");
        assert!(out.contains("fully generic"), "{out}");
    }

    #[test]
    fn execute_dispatches() {
        let out = execute(&Command::Help).unwrap();
        assert!(out.contains("USAGE"));
        let out = execute(&Command::Classify { query: "R".into() }).unwrap();
        assert!(out.contains("fully generic"));
    }

    #[test]
    fn corrupt_stats_file_is_quarantined_and_explain_still_runs() {
        let _g = obs_guard();
        let dir = std::env::temp_dir().join("genpar_cli_test_corrupt_stats");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("STATS.json");
        let s = path.to_str().unwrap();
        // a healthy file first, then tear it mid-payload
        let mut store = StatsStore::new();
        store.catalog_mut("x").observe(1, "plan.Filter", 100, 10);
        store.save(s).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 8]).unwrap();
        let _ = std::fs::remove_file(dir.join("STATS.json.corrupt"));
        let out = explain_cmd("pi[$1](union(R, S))", None, None, None, None, Some(s)).unwrap();
        assert!(out.starts_with("warning: "), "{out}");
        assert!(out.contains("corrupt"), "{out}");
        assert!(out.contains("quarantined"), "{out}");
        // the torn file moved aside; explain proceeded with fresh stats
        assert!(dir.join("STATS.json.corrupt").exists());
        assert!(!path.exists());
        assert!(out.contains("chosen plan"), "{out}");
    }

    #[test]
    fn corrupt_calibration_quarantines_to_default_but_missing_errors() {
        let _g = obs_guard();
        let dir = std::env::temp_dir().join("genpar_cli_test_corrupt_cal");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cal.json");
        let c = path.to_str().unwrap();
        // corrupt: checksum header that does not match the payload
        std::fs::write(
            &path,
            "#genpar-checksum: 0000000000000000\n{\"schema_version\": 2}\n",
        )
        .unwrap();
        let _ = std::fs::remove_file(dir.join("cal.json.corrupt"));
        let (cal, warning) = load_calibration(Some(c)).unwrap();
        let w = warning.expect("corrupt calibration must warn");
        assert!(w.contains("corrupt"), "{w}");
        assert!(w.contains("default calibration"), "{w}");
        assert!(dir.join("cal.json.corrupt").exists());
        assert_eq!(
            cal.overhead_per_worker,
            Calibration::default().overhead_per_worker
        );
        // missing is a hard error: the user named a file that is not there
        let missing = dir.join("nope.json");
        let err = load_calibration(Some(missing.to_str().unwrap())).unwrap_err();
        assert!(err.message.contains("cannot read"), "{}", err.message);
    }

    #[test]
    fn chaos_smoke_runs_a_few_cases_clean() {
        let _g = obs_guard();
        let out = chaos_cmd(42, 6).unwrap();
        assert!(out.contains("6 case(s) with seed 42"), "{out}");
        assert!(out.contains("byte-identical"), "{out}");
        assert!(out.contains("torn-write drill"), "{out}");
    }
}
