//! Command implementations. Each returns the text to print, so the
//! commands are directly testable.

use crate::{dbfile, CliError, Command, USAGE};
use genpar_algebra::parse::parse_query;
use genpar_algebra::Query;
use genpar_core::check::{check_invariance, AlgebraQuery, CheckConfig};
use genpar_core::hierarchy::equality_usage;
use genpar_core::infer_requirements;
use genpar_core::probe::probe_tightest;
use genpar_core::{partition_safety, PartitionSafety};
use genpar_engine::{Catalog, Schema, Table};
use genpar_exec::{EvalParallel, ExecConfig};
use genpar_mapping::{ExtensionMode, MappingClass};
use genpar_optimizer::{optimize_costed, optimize_costed_parallel, Constraints, RuleSet};
use genpar_value::{BaseType, CvType, DomainId};
use std::fmt::Write as _;

/// Execute a parsed command.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Classify { query } => classify(query),
        Command::Check { query, mode, class } => check(query, mode, class),
        Command::Probe { query, mode, arity } => probe(query, mode, *arity),
        Command::Run { query, db, workers } => run(query, db, *workers),
        Command::Optimize {
            query,
            db,
            union_key,
        } => optimize_cmd(query, db.as_deref(), union_key.as_deref()),
        Command::Explain {
            query,
            db,
            union_key,
            workers,
        } => explain_cmd(query, db.as_deref(), union_key.as_deref(), *workers),
        Command::Profile {
            query,
            db,
            union_key,
            json,
            workers,
        } => profile_cmd(query, db.as_deref(), union_key.as_deref(), *json, *workers),
        Command::Audit => audit(),
    }
}

/// Classify the built-in catalog of paper queries.
fn audit() -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:<26} {:<46} strong-mode class",
        "query", "equality use", "rel-mode class"
    );
    let _ = writeln!(out, "{}", "-".repeat(140));
    for (name, q) in genpar_algebra::catalog::all_named() {
        let inf = infer_requirements(&q);
        let _ = writeln!(
            out,
            "{:<22} {:<26} {:<46} {}",
            name,
            equality_usage(&q).to_string(),
            inf.rel.to_string(),
            inf.strong
        );
    }
    Ok(out)
}

fn parse_q(query: &str) -> Result<Query, CliError> {
    parse_query(query).map_err(|e| CliError::parse(e.to_string()))
}

fn parse_mode(mode: &str) -> Result<ExtensionMode, CliError> {
    match mode {
        "rel" => Ok(ExtensionMode::Rel),
        "strong" => Ok(ExtensionMode::Strong),
        other => Err(CliError::usage(format!(
            "unknown mode '{other}' (rel|strong)"
        ))),
    }
}

fn parse_class(class: &str) -> Result<MappingClass, CliError> {
    match class {
        "all" => Ok(MappingClass::all()),
        "total-surjective" => Ok(MappingClass::total_surjective()),
        "functional" => Ok(MappingClass::functional()),
        "injective" => Ok(MappingClass::injective()),
        "bijective" => Ok(MappingClass::bijective()),
        other => Err(CliError::usage(format!(
            "unknown class '{other}' (all|total-surjective|functional|injective|bijective)"
        ))),
    }
}

fn rel_ty(arity: usize) -> CvType {
    CvType::relation(BaseType::Domain(DomainId(0)), arity)
}

/// Infer the query's output type assuming every referenced relation is a
/// binary relation of `arity` atoms (falls back to the input type when
/// inference fails, e.g. on opaque map functions).
fn output_type_of(q: &Query, arity: usize) -> CvType {
    let mut env = genpar_algebra::types::TypeEnv::new();
    for name in q.rel_names() {
        env.insert(name, rel_ty(arity));
    }
    genpar_algebra::types::infer_type(q, &env).unwrap_or_else(|_| rel_ty(arity))
}

fn classify(query: &str) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let inf = infer_requirements(&q);
    let mut out = String::new();
    let _ = writeln!(out, "query:          {q}");
    let _ = writeln!(out, "equality usage: {}", equality_usage(&q));
    let _ = writeln!(out, "rel mode:       {}", inf.rel);
    let _ = writeln!(out, "strong mode:    {}", inf.strong);
    let _ = writeln!(out, "\nderivation:");
    for line in &inf.trace {
        let _ = writeln!(out, "  • {line}");
    }
    Ok(out)
}

fn check(query: &str, mode: &str, class: &str) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let mode = parse_mode(mode)?;
    let mc = parse_class(class)?;
    let out_ty = output_type_of(&q, 2);
    let aq = AlgebraQuery::new(q);
    let cfg = CheckConfig {
        mode,
        ..Default::default()
    };
    let outcome = check_invariance(&aq, &rel_ty(2), &out_ty, &mc, &cfg);
    Ok(match outcome {
        genpar_core::check::CheckOutcome::Invariant { families, pairs, skipped } => format!(
            "INVARIANT: no violation across {families} families / {pairs} related input pairs ({skipped} skipped)\n"
        ),
        genpar_core::check::CheckOutcome::Counterexample(cx) => {
            format!("REFUTED:\n  {cx}\n")
        }
        genpar_core::check::CheckOutcome::Aborted(reason) => {
            return Err(CliError::internal(format!("check aborted: {reason}")))
        }
    })
}

fn probe(query: &str, mode: &str, arity: usize) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let mode = parse_mode(mode)?;
    let out_ty = output_type_of(&q, arity);
    let aq = AlgebraQuery::new(q);
    let cfg = CheckConfig {
        mode,
        families: 40,
        inputs_per_family: 30,
        ..Default::default()
    };
    let report = probe_tightest(&aq, &rel_ty(arity), &out_ty, &cfg);
    if let Some(reason) = report.rungs.iter().find_map(|(_, o)| o.aborted()) {
        return Err(CliError::internal(format!("probe aborted: {reason}")));
    }
    let mut out = report.to_string();
    match report.tightest() {
        Some(rung) => {
            let _ = writeln!(out, "tightest class found: generic w.r.t. {rung} mappings");
        }
        None => {
            let _ = writeln!(out, "no rung of the ladder holds — the query is not even classically generic at this shape");
        }
    }
    Ok(out)
}

/// Resolve the worker count: explicit `--parallel` wins, then the
/// `GENPAR_PARALLEL` environment variable, then serial.
fn resolve_workers(workers: Option<usize>) -> usize {
    workers
        .unwrap_or_else(|| ExecConfig::from_env().workers)
        .max(1)
}

fn run(query: &str, db_path: &str, workers: Option<usize>) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let w = resolve_workers(workers);
    if w > 1 {
        // The partition-safety gate: only queries the genericity checker
        // certifies may run on the parallel executor. Everything else
        // takes the serial interpreter below, with a recorded fallback.
        match partition_safety(&q) {
            PartitionSafety::Safe(_) => {
                if let Some(plan) = genpar_engine::lower(&q) {
                    let catalog = build_catalog(&q, Some(db_path))?;
                    let cfg = ExecConfig::serial().with_workers(w);
                    let (rows, _stats) =
                        plan.eval_parallel(&catalog, &cfg).map_err(CliError::from)?;
                    return Ok(format!("{}\n", genpar_value::rows_to_value(rows)));
                }
                genpar_exec::note_fallback("lit", "literal rows are not flat tuples");
            }
            PartitionSafety::Unsafe { op, reason } => {
                genpar_exec::note_fallback(op, reason);
            }
        }
    }
    let db = dbfile::load_db(db_path)?;
    let v = genpar_algebra::eval::eval(&q, &db).map_err(CliError::from)?;
    Ok(format!("{v}\n"))
}

/// Build an execution/costing catalog: from a `.gdb` file (real
/// cardinalities) when given, else nominal 1000-row binary tables for
/// every relation the query mentions.
fn build_catalog(q: &Query, db_path: Option<&str>) -> Result<Catalog, CliError> {
    match db_path {
        Some(p) => {
            let db = dbfile::load_db(p)?;
            let mut cat = Catalog::new();
            for (name, v) in db.relations() {
                let arity = v
                    .as_set()
                    .and_then(|s| s.iter().next())
                    .and_then(|t| t.as_tuple())
                    .map(|t| t.len())
                    .unwrap_or(2);
                let table = Table::try_from_value(
                    name.clone(),
                    Schema::uniform(CvType::domain(0), arity),
                    &normalize_rel(v, arity),
                )
                .map_err(CliError::runtime)?;
                cat.add(table);
            }
            Ok(cat)
        }
        None => {
            let mut cat = Catalog::new();
            for name in q.rel_names() {
                let mut t = Table::new(name, Schema::uniform(CvType::int(), 2));
                for i in 0..1000 {
                    t.insert(vec![
                        genpar_value::Value::Int(i),
                        genpar_value::Value::Int(i % 37),
                    ]);
                }
                cat.add(t);
            }
            Ok(cat)
        }
    }
}

/// Parse an `R,S:$N` union-key assertion into rewrite constraints.
fn build_rules(union_key: Option<&str>) -> Result<RuleSet, CliError> {
    let mut constraints = Constraints::none();
    if let Some(spec) = union_key {
        // "R,S:$1"
        let (tables, col) = spec
            .split_once(':')
            .ok_or_else(|| CliError::usage("--union-key wants R,S:$N"))?;
        let col = col
            .strip_prefix('$')
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .ok_or_else(|| CliError::usage("--union-key wants a 1-based $N column"))?;
        constraints =
            constraints.with_union_key(tables.split(',').map(|s| s.trim().to_string()), [col - 1]);
    }
    Ok(RuleSet::with_constraints(constraints))
}

fn optimize_cmd(
    query: &str,
    db_path: Option<&str>,
    union_key: Option<&str>,
) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let catalog = build_catalog(&q, db_path)?;
    let rules = build_rules(union_key)?;
    let (chosen, trace, base_est, new_est) = optimize_costed(&q, &rules, &catalog);
    let mut out = String::new();
    let _ = writeln!(out, "original:  {q}");
    let _ = writeln!(out, "optimized: {chosen}");
    if trace.steps.is_empty() {
        let _ = writeln!(out, "(no profitable rewrite)");
    } else {
        let _ = write!(out, "{trace}");
    }
    let _ = writeln!(
        out,
        "estimated cost: {:.0} → {:.0} cells",
        base_est.cost, new_est.cost
    );
    Ok(out)
}

/// Look up a field of an obs event by key, rendered as text.
fn event_field(e: &genpar_obs::Event, key: &str) -> String {
    e.fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.to_string())
        .unwrap_or_default()
}

/// `explain`: the full optimizer story for one query — which Section 4.4
/// rewrites fired (with their genericity justifications), which matched
/// but were blocked by a side condition, what the cost model decided, and
/// the physical plan that would run.
fn explain_cmd(
    query: &str,
    db_path: Option<&str>,
    union_key: Option<&str>,
    workers: Option<usize>,
) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let w = resolve_workers(workers);
    let catalog = build_catalog(&q, db_path)?;
    let rules = build_rules(union_key)?;
    genpar_obs::reset();
    let (chosen, trace, base_est, new_est) = optimize_costed_parallel(&q, &rules, &catalog, w);
    let snap = genpar_obs::snapshot();

    let mut out = String::new();
    let _ = writeln!(out, "query:     {q}");
    let _ = writeln!(out, "optimized: {chosen}");
    let _ = writeln!(out);
    if trace.steps.is_empty() {
        // distinguish "nothing matched" from "matched but cost-rejected"
        let rejected = snap.events.iter().any(|e| {
            e.kind == "optimizer.plan_choice"
                && event_field(e, "chosen") == "original"
                && event_field(e, "steps") != "0"
        });
        if rejected {
            let _ = writeln!(
                out,
                "rewrites fired but the cost model kept the original plan."
            );
        } else {
            let _ = writeln!(out, "no rewrite fired.");
        }
    } else {
        let _ = writeln!(out, "rewrite trace:");
        let _ = write!(out, "{trace}");
    }
    // blocked rewrites: pattern matched, genericity side condition failed
    let mut blocked: Vec<String> = Vec::new();
    for e in snap
        .events
        .iter()
        .filter(|e| e.kind == "optimizer.rewrite" && event_field(e, "fired") == "false")
    {
        let line = format!(
            "  ✗ {}  blocked: {}\n      on {}",
            event_field(e, "rule"),
            event_field(e, "blocked_by"),
            event_field(e, "expr"),
        );
        if !blocked.contains(&line) {
            blocked.push(line);
        }
    }
    if !blocked.is_empty() {
        let _ = writeln!(out, "blocked rewrites:");
        for line in &blocked {
            let _ = writeln!(out, "{line}");
        }
    }
    let _ = writeln!(
        out,
        "estimated cost: {:.0} → {:.0} cells",
        base_est.cost, new_est.cost
    );
    let _ = writeln!(out, "\nparallel execution ({w} workers):");
    match partition_safety(&chosen) {
        PartitionSafety::Safe(cert) => {
            let _ = writeln!(out, "  partition-safe: {cert}");
            if w > 1 {
                let _ = writeln!(out, "  would run on {w} worker threads");
            } else {
                let _ = writeln!(out, "  (serial: pass --parallel N or set GENPAR_PARALLEL)");
            }
        }
        PartitionSafety::Unsafe { op, reason } => {
            let _ = writeln!(out, "  falls back to serial: '{op}' — {reason}");
        }
    }
    let _ = writeln!(out, "\nchosen plan:");
    match genpar_engine::lower(&chosen) {
        Some(plan) => {
            for line in plan.to_string().lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        None => {
            let _ = writeln!(
                out,
                "  (complex-value query — not lowerable to the flat physical engine)"
            );
        }
    }
    Ok(out)
}

/// `profile`: optimize and execute the query with a fresh obs registry,
/// then dump the metrics snapshot (span tree, counters, events) as an
/// ASCII tree or JSON.
fn profile_cmd(
    query: &str,
    db_path: Option<&str>,
    union_key: Option<&str>,
    json: bool,
    workers: Option<usize>,
) -> Result<String, CliError> {
    let q = parse_q(query)?;
    let w = resolve_workers(workers);
    let catalog = build_catalog(&q, db_path)?;
    let rules = build_rules(union_key)?;
    genpar_obs::reset();
    let (chosen, _trace, _base, _new) = optimize_costed_parallel(&q, &rules, &catalog, w);
    match genpar_engine::lower(&chosen) {
        Some(plan) => {
            if w > 1 && partition_safety(&chosen).is_safe() {
                let cfg = ExecConfig::serial().with_workers(w);
                plan.eval_parallel(&catalog, &cfg).map_err(CliError::from)?;
            } else {
                if w > 1 {
                    if let PartitionSafety::Unsafe { op, reason } = partition_safety(&chosen) {
                        genpar_exec::note_fallback(op, reason);
                    }
                }
                plan.execute(&catalog).map_err(CliError::from)?;
            }
        }
        None => {
            if w > 1 {
                match partition_safety(&chosen) {
                    PartitionSafety::Unsafe { op, reason } => {
                        genpar_exec::note_fallback(op, reason)
                    }
                    PartitionSafety::Safe(_) => {
                        genpar_exec::note_fallback("lit", "literal rows are not flat tuples")
                    }
                }
            }
            // complex-value query: fall back to the algebra interpreter
            // over the catalog's relations
            let mut db = genpar_algebra::eval::Db::with_standard_int();
            for t in catalog.tables() {
                db.set(t.name.clone(), t.to_value());
            }
            genpar_algebra::eval::eval(&chosen, &db).map_err(CliError::from)?;
        }
    }
    let snap = genpar_obs::snapshot();
    if json {
        Ok(format!("{}\n", snap.to_json_string()))
    } else {
        Ok(format!("query: {q}\n\n{}", snap.render_tree()))
    }
}

/// Coerce a relation value to uniform-arity tuples (pad/skip oddballs) so
/// it can be loaded into a schema'd table.
fn normalize_rel(v: &genpar_value::Value, arity: usize) -> genpar_value::Value {
    match v.as_set() {
        Some(s) => genpar_value::Value::set(
            s.iter()
                .filter(|t| t.as_tuple().is_some_and(|tt| tt.len() == arity))
                .cloned(),
        ),
        None => genpar_value::Value::empty_set(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The obs registry is process-global; tests that reset + snapshot it
    /// serialize here so a concurrent reset cannot wipe their events.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn obs_guard() -> std::sync::MutexGuard<'static, ()> {
        match OBS_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn classify_reports_both_modes() {
        let out = classify("hat[$1=$2](R)").unwrap();
        assert!(out.contains("rel mode"), "{out}");
        assert!(out.contains("fully generic"), "{out}");
        assert!(out.contains("injective"), "{out}");
        assert!(out.contains('•'), "{out}");
    }

    #[test]
    fn check_refutes_q4_and_verifies_q3() {
        let out = check("select[$1=$2](R)", "rel", "all").unwrap();
        assert!(out.starts_with("REFUTED"), "{out}");
        let out = check("pi[$1,$2](R)", "rel", "all").unwrap();
        assert!(out.starts_with("INVARIANT"), "{out}");
        let out = check("select[$1=$2](R)", "rel", "injective").unwrap();
        assert!(out.starts_with("INVARIANT"), "{out}");
        // type inference lets non-arity-preserving queries check cleanly:
        // π$1 has a 1-column output and is invariant for all mappings
        let out = check("pi[$1](R)", "rel", "all").unwrap();
        assert!(out.starts_with("INVARIANT"), "{out}");
        // even returns bool — also typed correctly now
        let out = check("even(R)", "rel", "injective").unwrap();
        assert!(out.starts_with("INVARIANT"), "{out}");
        let out = check("even(R)", "rel", "all").unwrap();
        assert!(out.starts_with("REFUTED"), "{out}");
    }

    #[test]
    fn probe_finds_q4_rung() {
        let out = probe("select[$1=$2](R)", "rel", 2).unwrap();
        assert!(out.contains("tightest class found"), "{out}");
        assert!(out.contains("injective"), "{out}");
    }

    #[test]
    fn run_evaluates_against_db_file() {
        let dir = std::env::temp_dir().join("genpar_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ex22.gdb");
        std::fs::write(&path, "R = {(e, f), (f, g)}\n").unwrap();
        let out = run(
            "pi[$1,$4](join[$2=$1](R, R))",
            path.to_str().unwrap(),
            Some(1),
        )
        .unwrap();
        assert_eq!(out.trim(), "{(e, g)}");
    }

    #[test]
    fn run_parallel_matches_serial_output() {
        let dir = std::env::temp_dir().join("genpar_cli_test_par");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("par.gdb");
        let mut body = String::from("R = {");
        for i in 0..50 {
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&format!("({i}, {})", i % 7));
        }
        body.push_str("}\nS = {(1, 9), (2, 9), (3, 9)}\n");
        std::fs::write(&path, body).unwrap();
        let p = path.to_str().unwrap();
        for q in [
            "R",
            "pi[$1](R)",
            "select[$1=$2](R)",
            "union(R, S)",
            "diff(R, S)",
            "pi[$1,$4](join[$2=$1](R, S))",
        ] {
            let serial = run(q, p, Some(1)).unwrap();
            let parallel = run(q, p, Some(4)).unwrap();
            assert_eq!(serial, parallel, "parity broke on {q}");
        }
    }

    #[test]
    fn run_parallel_falls_back_on_uncertified_queries() {
        let dir = std::env::temp_dir().join("genpar_cli_test_fb");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fb.gdb");
        std::fs::write(&path, "R = {(1, 2), (2, 3)}\n").unwrap();
        let p = path.to_str().unwrap();
        let _g = obs_guard();
        genpar_obs::reset();
        let out = run("even(R)", p, Some(4)).unwrap();
        assert_eq!(out.trim(), "true");
        let snap = genpar_obs::snapshot();
        let ev = snap
            .events
            .iter()
            .find(|e| e.kind == "exec.fallback")
            .expect("fallback event recorded");
        assert_eq!(event_field(ev, "op"), "even");
    }

    #[test]
    fn optimize_traces_rewrites() {
        let out = optimize_cmd("pi[$1](union(R, S))", None, None).unwrap();
        assert!(out.contains("ProjectThroughUnion"), "{out}");
        assert!(out.contains("estimated cost"), "{out}");
        // difference push only with the key flag
        let out = optimize_cmd("pi[$1](diff(R, S))", None, None).unwrap();
        assert!(out.contains("no profitable rewrite"), "{out}");
    }

    #[test]
    fn explain_shows_trace_and_plan() {
        let _g = obs_guard();
        let out = explain_cmd("pi[$1](union(R, S))", None, None, Some(1)).unwrap();
        assert!(out.contains("ProjectThroughUnion"), "{out}");
        assert!(out.contains("Cor 4.15"), "{out}");
        assert!(out.contains("chosen plan:"), "{out}");
        assert!(out.contains("Scan R"), "{out}");
        assert!(out.contains("estimated cost"), "{out}");
        // the parallel section names the gate verdict even when serial
        assert!(out.contains("partition-safe"), "{out}");
    }

    #[test]
    fn explain_reports_parallel_route_and_fallback() {
        let _g = obs_guard();
        let out = explain_cmd("pi[$1](union(R, S))", None, None, Some(4)).unwrap();
        assert!(out.contains("parallel execution (4 workers)"), "{out}");
        assert!(out.contains("would run on 4 worker threads"), "{out}");
        let out = explain_cmd("even(R)", None, None, Some(4)).unwrap();
        assert!(out.contains("falls back to serial: 'even'"), "{out}");
        assert!(out.contains("Lemma 2.12"), "{out}");
    }

    #[test]
    fn explain_reports_blocked_difference_push() {
        let _g = obs_guard();
        // without the union-key assertion the Prop 3.4 side condition
        // fails: the rule must show up as blocked, not fired
        let out = explain_cmd("pi[$1](diff(R, S))", None, None, Some(1)).unwrap();
        assert!(out.contains("blocked rewrites:"), "{out}");
        assert!(out.contains("ProjectThroughDifference"), "{out}");
        assert!(out.contains("Prop 3.4"), "{out}");
        // with the assertion the rule fires, but on narrow 2-column
        // tables the cost model keeps the original (the Series C
        // crossover) — explain must say so instead of "no rewrite fired"
        let out = explain_cmd("pi[$1](diff(R, S))", None, Some("R,S:$1"), Some(1)).unwrap();
        assert!(out.contains("cost model kept the original"), "{out}");
        assert!(!out.contains("no rewrite fired"), "{out}");
    }

    #[test]
    fn profile_renders_tree_and_json() {
        let _g = obs_guard();
        let out = profile_cmd("pi[$1](union(R, S))", None, None, false, Some(1)).unwrap();
        assert!(out.contains("spans:"), "{out}");
        assert!(out.contains("engine.execute"), "{out}");
        assert!(out.contains("counters:"), "{out}");
        let out = profile_cmd("pi[$1](union(R, S))", None, None, true, Some(1)).unwrap();
        let parsed = genpar_obs::Json::parse(&out).expect("profile --json emits valid JSON");
        assert!(parsed.get("counters").is_some(), "{out}");
        assert!(parsed.get("spans").is_some(), "{out}");
    }

    #[test]
    fn profile_parallel_uses_the_executor() {
        let _g = obs_guard();
        let out = profile_cmd("pi[$1](union(R, S))", None, None, false, Some(4)).unwrap();
        assert!(out.contains("exec.parallel"), "{out}");
        assert!(out.contains("exec.worker"), "{out}");
    }

    #[test]
    fn profile_falls_back_to_the_interpreter() {
        let _g = obs_guard();
        // powerset is complex-valued — not lowerable to the flat engine
        let out = profile_cmd("even(R)", None, None, false, Some(1)).unwrap();
        assert!(out.contains("counters:"), "{out}");
        // at 4 workers the gate refuses it and records the fallback
        let out = profile_cmd("even(R)", None, None, false, Some(4)).unwrap();
        assert!(out.contains("exec.fallback"), "{out}");
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(classify("pi[$0](R)").is_err());
        assert!(check("R", "sideways", "all").is_err());
        assert!(check("R", "rel", "weird").is_err());
        assert!(run("R", "/nonexistent/path.gdb", Some(1)).is_err());
        assert!(optimize_cmd("diff(R,S)", None, Some("R,S")).is_err());
        assert!(optimize_cmd("diff(R,S)", None, Some("R,S:$0")).is_err());
    }

    #[test]
    fn audit_prints_the_catalog() {
        let out = audit().unwrap();
        assert!(out.contains("Q4"), "{out}");
        assert!(out.contains("eq_adom"), "{out}");
        assert!(out.contains("fully generic"), "{out}");
    }

    #[test]
    fn execute_dispatches() {
        let out = execute(&Command::Help).unwrap();
        assert!(out.contains("USAGE"));
        let out = execute(&Command::Classify { query: "R".into() }).unwrap();
        assert!(out.contains("fully generic"));
    }
}
