//! The `genpar` binary. See [`genpar_cli`] for the library half.

use genpar_cli::{commands, parse_args};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // --quiet (anywhere on the line) disables the observability layer,
    // like GENPAR_OBS=off, before any command runs.
    if args.iter().any(|a| a == "--quiet") {
        args.retain(|a| a != "--quiet");
        genpar_obs::set_enabled(false);
    }
    match parse_args(&args).and_then(|cmd| commands::execute(&cmd)) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
