#![deny(clippy::unwrap_used, clippy::expect_used)]
//! The `genpar` binary. See [`genpar_cli`] for the library half.
//!
//! Exit codes: 0 success, 1 runtime error, 2 usage error, 3 parse
//! error, 4 budget exceeded, 5 internal error (injected fault or
//! caught panic).

use genpar_cli::{commands, parse_args, CliError};

fn fail(e: &CliError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(e.exit_code());
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // --quiet (anywhere on the line) disables the observability layer,
    // like GENPAR_OBS=off, before any command runs.
    if args.iter().any(|a| a == "--quiet") {
        args.retain(|a| a != "--quiet");
        genpar_obs::set_enabled(false);
    }

    // GENPAR_FAULTS=site:nth[,...] arms the fault-injection harness.
    // (FaultSpecError already names the env var in its rendering.)
    if let Err(e) = genpar_guard::arm_faults_from_env() {
        fail(&CliError::usage(e.to_string()));
    }

    // GENPAR_BUDGET=rows=N,cells=N,steps=N,depth=N,powerset=N arms an
    // execution budget for the whole command. The scope must outlive
    // execution, so it is held here.
    let budget = match std::env::var(genpar_guard::BUDGET_ENV) {
        Ok(spec) => match genpar_guard::ExecBudget::parse(&spec) {
            Ok(b) => Some(b),
            Err(e) => fail(&CliError::usage(format!(
                "bad {}: {e}",
                genpar_guard::BUDGET_ENV
            ))),
        },
        Err(_) => None,
    };
    let _scope = budget.map(|b| b.enter());

    // Panic boundary: anything that unwinds out of command execution
    // becomes an internal error with exit code 5, never an abort trace.
    let result =
        genpar_guard::catch_panics(|| parse_args(&args).and_then(|cmd| commands::execute(&cmd)));
    match result {
        Ok(Ok(out)) => print!("{out}"),
        Ok(Err(e)) => fail(&e),
        Err(panic_msg) => fail(&CliError::internal(format!("internal error: {panic_msg}"))),
    }
}
