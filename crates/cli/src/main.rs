//! The `genpar` binary. See [`genpar_cli`] for the library half.

use genpar_cli::{commands, parse_args};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|cmd| commands::execute(&cmd)) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
