//! Integration: the quickstart flow from README.md — `explain` and
//! `profile` against the Example 2.2 database must tell the Section 4.4
//! optimization story end to end.

use genpar_cli::{commands, parse_args};

fn example_db() -> String {
    format!(
        "{}/../../examples/data/example_2_2.gdb",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// `profile` resets and snapshots the process-global obs registry;
/// concurrent tests must not interleave their runs.
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn obs_guard() -> std::sync::MutexGuard<'static, ()> {
    match OBS_LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn run(args: &[&str]) -> String {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let cmd = parse_args(&argv).expect("args parse");
    commands::execute(&cmd).expect("command runs")
}

#[test]
fn explain_example_2_2_names_section_4_4_rules() {
    let db = example_db();
    let out = run(&["explain", "pi[$1](union(r1, r3))", "--db", &db]);
    // the fired rule, by name and by justification
    assert!(out.contains("ProjectThroughUnion"), "{out}");
    assert!(out.contains("Cor 4.15"), "{out}");
    // the cost model's verdict and the physical plan it implies
    assert!(out.contains("estimated cost"), "{out}");
    assert!(out.contains("chosen plan:"), "{out}");
    assert!(out.contains("Scan r1"), "{out}");
    assert!(out.contains("Scan r3"), "{out}");
}

#[test]
fn explain_example_2_2_blocks_difference_push_without_key() {
    let db = example_db();
    let out = run(&["explain", "pi[$1](diff(r1, r3))", "--db", &db]);
    assert!(out.contains("blocked rewrites:"), "{out}");
    assert!(out.contains("ProjectThroughDifference"), "{out}");
    assert!(out.contains("Prop 3.4"), "{out}");
}

#[test]
fn profile_example_2_2_reports_engine_counters() {
    let _g = obs_guard();
    let db = example_db();
    // pin serial: this test is about the serial engine's counters, and
    // must not flip routes when CI exports GENPAR_PARALLEL
    let out = run(&[
        "profile",
        "pi[$1](union(r1, r3))",
        "--db",
        &db,
        "--json",
        "--parallel",
        "1",
    ]);
    let j = genpar_obs::Json::parse(&out).expect("profile --json is valid JSON");
    let counters = j.get("counters").expect("counters object");
    let scanned = counters
        .get("engine.rows_scanned")
        .and_then(|v| v.as_int())
        .expect("engine.rows_scanned recorded");
    assert!(scanned > 0, "{out}");
    assert!(
        counters
            .get("optimizer.rules_fired")
            .and_then(|v| v.as_int())
            == Some(1),
        "{out}"
    );
}

#[test]
fn profile_example_2_2_parallel_reports_exec_counters() {
    let _g = obs_guard();
    let db = example_db();
    let out = run(&[
        "profile",
        "pi[$1](union(r1, r3))",
        "--db",
        &db,
        "--json",
        "--parallel",
        "4",
    ]);
    let j = genpar_obs::Json::parse(&out).expect("profile --json is valid JSON");
    let counters = j.get("counters").expect("counters object");
    let executions = counters
        .get("exec.executions")
        .and_then(|v| v.as_int())
        .expect("exec.executions recorded");
    assert!(executions > 0, "{out}");
    // the profile schema is versioned (S2) and reports misestimates
    assert_eq!(
        j.get("schema_version").and_then(|v| v.as_int()),
        Some(commands::PROFILE_SCHEMA_VERSION as i128),
        "{out}"
    );
    assert!(j.get("misestimate").is_some(), "{out}");
}

#[test]
fn explain_example_2_2_uncertified_query_states_the_refusal_reason() {
    let _g = obs_guard();
    let db = example_db();
    // `adom` is not partition-safe: the active domain is a whole-input
    // property. The explain output must surface the gate's reason, and
    // the same reason must ride on the exec.fallback event a profile run
    // records.
    let out = run(&["explain", "adom(r1)", "--db", &db, "--parallel", "4"]);
    assert!(out.contains("falls back to serial: 'adom'"), "{out}");
    assert!(out.contains("whole-input property"), "{out}");
    assert!(out.contains("gate refused the parallel route"), "{out}");

    let out = run(&[
        "profile",
        "adom(r1)",
        "--db",
        &db,
        "--json",
        "--parallel",
        "4",
    ]);
    let j = genpar_obs::Json::parse(&out).expect("profile --json is valid JSON");
    let events = j
        .get("events")
        .and_then(|e| e.as_arr())
        .expect("events array");
    let fallback = events
        .iter()
        .find(|e| e.get("kind").and_then(|k| k.as_str()) == Some("exec.fallback"))
        .expect("fallback event recorded");
    let fields = fallback.get("fields").expect("fallback fields");
    assert_eq!(
        fields.get("op").and_then(|v| v.as_str()),
        Some("adom"),
        "{out}"
    );
    let reason = fields
        .get("reason")
        .and_then(|v| v.as_str())
        .expect("fallback reason field");
    assert!(reason.contains("whole-input property"), "{out}");
}

#[test]
fn explain_example_2_2_even_now_earns_a_combiner_certificate() {
    let _g = obs_guard();
    let db = example_db();
    // `even` used to be the canonical refusal (its naive "xor the
    // partition parities" parallelization is the Lemma 2.12 pitfall);
    // the combiner class certifies it instead — partition-local counts,
    // one serial combine — and explain cites that certificate.
    let out = run(&["explain", "even(r1)", "--db", &db, "--parallel", "4"]);
    assert!(out.contains("combiner 'even'"), "{out}");
    assert!(out.contains("Lemma 2.12"), "{out}");
    assert!(!out.contains("falls back to serial"), "{out}");

    // and run answers through the combiner route, no fallback event
    let out = run(&["run", "even(r1)", "--db", &db, "--parallel", "4"]);
    assert_eq!(out.trim(), "true", "Example 2.2's r1 has 6 tuples");
}
