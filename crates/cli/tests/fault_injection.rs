//! End-to-end robustness tests: spawn the real `genpar` binary with
//! `GENPAR_FAULTS` / `GENPAR_BUDGET` armed and assert every injected
//! fault or budget breach becomes a rendered stderr message with the
//! documented exit code — never a panic trace.
//!
//! Each test is its own process spawn, so the process-global fault
//! table never crosses tests.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU32, Ordering};

fn genpar() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_genpar"));
    // The CI parallel job exports these globally; tests pin their own.
    cmd.env_remove("GENPAR_FAULTS")
        .env_remove("GENPAR_BUDGET")
        .env_remove("GENPAR_PARALLEL");
    cmd
}

/// Write a temp `.gdb` file and return its path.
fn write_db(contents: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("genpar-fault-test-{}-{n}.gdb", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

fn small_db() -> PathBuf {
    write_db("R = {(1, 2), (2, 3), (3, 4)}\nS = {(1, 9)}\n")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// No panic traces may reach the user, under any failure.
fn assert_no_panic(out: &Output) {
    let err = stderr_of(out);
    assert!(
        !err.contains("panicked at") && !err.contains("RUST_BACKTRACE"),
        "panic leaked to stderr: {err}"
    );
}

fn assert_fault_exit(out: &Output, site: &str) {
    assert_no_panic(out);
    assert_eq!(
        out.status.code(),
        Some(5),
        "expected internal-error exit 5 for fault at {site}; stderr: {}",
        stderr_of(out)
    );
    let err = stderr_of(out);
    assert!(err.starts_with("error:"), "unrendered stderr: {err}");
    assert!(err.contains(site), "message should name the site: {err}");
}

#[test]
fn algebra_eval_fault_exits_5() {
    let db = small_db();
    let out = genpar()
        .env("GENPAR_FAULTS", "algebra.eval:1")
        .args(["run", "--db", db.to_str().unwrap(), "R"])
        .output()
        .unwrap();
    assert_fault_exit(&out, "algebra.eval");
}

#[test]
fn engine_scan_fault_exits_5() {
    let db = small_db();
    let out = genpar()
        .env("GENPAR_FAULTS", "engine.scan:1")
        .args(["profile", "--db", db.to_str().unwrap(), "R"])
        .output()
        .unwrap();
    assert_fault_exit(&out, "engine.scan");
}

#[test]
fn engine_execute_fault_exits_5() {
    let db = small_db();
    let out = genpar()
        .env("GENPAR_FAULTS", "engine.execute:1")
        .args(["profile", "--db", db.to_str().unwrap(), "R"])
        .output()
        .unwrap();
    assert_fault_exit(&out, "engine.execute");
}

#[test]
fn checker_invariance_fault_exits_5() {
    let out = genpar()
        .env("GENPAR_FAULTS", "checker.invariance:1")
        .args(["check", "pi[$1](R)"])
        .output()
        .unwrap();
    assert_fault_exit(&out, "checker.invariance");
}

#[test]
fn probe_reports_checker_fault() {
    // probe runs the checker once per rung; fault the first invocation.
    let out = genpar()
        .env("GENPAR_FAULTS", "checker.invariance:1")
        .args(["probe", "pi[$1](R)"])
        .output()
        .unwrap();
    assert_fault_exit(&out, "checker.invariance");
}

#[test]
fn optimizer_rewrite_fault_degrades_to_success() {
    // Graceful degradation: the optimizer falls back to the original
    // plan, so the command still succeeds (exit 0) and the trace is
    // empty rather than the process failing.
    let out = genpar()
        .env("GENPAR_FAULTS", "optimizer.rewrite:1")
        .args(["optimize", "pi[$1](union(R, S))"])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(
        out.status.code(),
        Some(0),
        "degraded optimizer should still succeed; stderr: {}",
        stderr_of(&out)
    );
}

#[test]
fn optimizer_cost_fault_degrades_to_success() {
    let out = genpar()
        .env("GENPAR_FAULTS", "optimizer.cost:1")
        .args(["optimize", "pi[$1](union(R, S))"])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
}

#[test]
fn unfired_fault_leaves_command_untouched() {
    let db = small_db();
    // nth=9 is never reached: the command must behave normally.
    let out = genpar()
        .env("GENPAR_FAULTS", "engine.scan:9")
        .args(["run", "--db", db.to_str().unwrap(), "R"])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
}

#[test]
fn bad_fault_spec_is_usage_error() {
    let out = genpar()
        .env("GENPAR_FAULTS", "no spaces allowed:x")
        .args(["classify", "R"])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("GENPAR_FAULTS"));
}

#[test]
fn bad_budget_spec_is_usage_error() {
    let out = genpar()
        .env("GENPAR_BUDGET", "rows=lots")
        .args(["classify", "R"])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("GENPAR_BUDGET"));
}

#[test]
fn powerset_of_30_exceeds_default_budget() {
    // The powerset cap is always armed (default 20 elements); a
    // 30-element input must exit 4 with a structured message, promptly.
    let elems: Vec<String> = (1..=30).map(|i| i.to_string()).collect();
    let db = write_db(&format!("R = {{{}}}\n", elems.join(", ")));
    let out = genpar()
        .args(["run", "--db", db.to_str().unwrap(), "powerset(R)"])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(4), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("budget exceeded"), "{err}");
    assert!(err.contains("powerset"), "{err}");
    assert!(err.contains("30"), "{err}");
}

#[test]
fn env_budget_rows_cap_exits_4() {
    let db = small_db();
    let out = genpar()
        .env("GENPAR_BUDGET", "rows=2")
        .args(["run", "--db", db.to_str().unwrap(), "R"])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(4), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("budget exceeded"));
}

#[test]
fn env_budget_steps_deadline_exits_4() {
    let db = small_db();
    let out = genpar()
        .env("GENPAR_BUDGET", "steps=1")
        .args(["run", "--db", db.to_str().unwrap(), "product(R, S)"])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(4), "stderr: {}", stderr_of(&out));
}

#[test]
fn parallel_morsel_fault_recovers_via_retry() {
    // The recovery ladder, end to end: a single injected morsel fault is
    // retried in place, the query stays on the parallel path (no
    // serial fallback), and the answer matches the fault-free run.
    let db = small_db();
    let query = "pi[$1](select[$2=$2](R))";
    let clean = genpar()
        .args(["run", "--db", db.to_str().unwrap(), query])
        .output()
        .unwrap();
    assert_eq!(clean.status.code(), Some(0), "{}", stderr_of(&clean));
    let out = genpar()
        .env("GENPAR_FAULTS", "exec.morsel:1")
        .args([
            "run",
            "--db",
            db.to_str().unwrap(),
            "--parallel",
            "4",
            query,
        ])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(
        out.status.code(),
        Some(0),
        "a single morsel fault must be retried, not fatal; stderr: {}",
        stderr_of(&out)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&clean.stdout),
        "retried run must produce the fault-free answer"
    );
    // profile --json exposes the counters: the retry rung fired, the
    // serial-fallback rung did not.
    let prof = genpar()
        .env("GENPAR_FAULTS", "exec.morsel:1")
        .args([
            "profile",
            "--db",
            db.to_str().unwrap(),
            "--parallel",
            "4",
            "--json",
            query,
        ])
        .output()
        .unwrap();
    assert_no_panic(&prof);
    assert_eq!(prof.status.code(), Some(0), "{}", stderr_of(&prof));
    let json = String::from_utf8_lossy(&prof.stdout);
    assert!(
        json.contains("exec.degrade_step.retry"),
        "retry counter missing from profile: {json}"
    );
    assert!(
        !json.contains("exec.fallbacks"),
        "single fault must not reach the serial-fallback rung: {json}"
    );
}

#[test]
fn persistent_parallel_fault_degrades_to_serial_answer() {
    // Exhausting the ladder (every hit of the site faults) must still
    // answer — degraded to the serial interpreter, byte-identical.
    let db = small_db();
    let query = "pi[$1](select[$2=$2](R))";
    let clean = genpar()
        .args(["run", "--db", db.to_str().unwrap(), query])
        .output()
        .unwrap();
    let out = genpar()
        .env("GENPAR_FAULTS", "exec.morsel:*")
        .args([
            "run",
            "--db",
            db.to_str().unwrap(),
            "--parallel",
            "4",
            query,
        ])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&clean.stdout),
        "degraded run must produce the fault-free answer"
    );
}

#[test]
fn unknown_fault_site_is_usage_error_naming_the_token() {
    let out = genpar()
        .env("GENPAR_FAULTS", "exec.morsel:1,engine.scna:2")
        .args(["classify", "R"])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("engine.scna"), "must name the bad site: {err}");
    assert!(err.contains("GENPAR_FAULTS"), "{err}");
}

#[test]
fn bad_fault_nth_is_usage_error_naming_the_token() {
    let out = genpar()
        .env("GENPAR_FAULTS", "engine.scan:soon")
        .args(["classify", "R"])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("soon"), "must name the bad count: {err}");
}

#[test]
fn timeout_flag_exits_4_with_wall_resource() {
    // A deliberately heavy query under a 1 ms deadline: the watchdog
    // cancels it through the budget machinery (exit 4, resource
    // wall_ms), never a panic or a hang.
    let elems: Vec<String> = (1..=300).map(|i| format!("({i}, {})", i % 7)).collect();
    let db = write_db(&format!("R = {{{0}}}\nS = {{{0}}}\n", elems.join(", ")));
    let out = genpar()
        .args([
            "run",
            "--db",
            db.to_str().unwrap(),
            "--timeout",
            "1",
            "product(R, S)",
        ])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(
        out.status.code(),
        Some(4),
        "wall deadline is a budget breach; stderr: {}",
        stderr_of(&out)
    );
    let err = stderr_of(&out);
    assert!(err.contains("wall_ms"), "must name the resource: {err}");
}

#[test]
fn generous_timeout_leaves_the_answer_alone() {
    let db = small_db();
    let plain = genpar()
        .args(["run", "--db", db.to_str().unwrap(), "R"])
        .output()
        .unwrap();
    let timed = genpar()
        .args([
            "run",
            "--db",
            db.to_str().unwrap(),
            "--timeout",
            "60000",
            "R",
        ])
        .output()
        .unwrap();
    assert_no_panic(&timed);
    assert_eq!(
        timed.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&timed)
    );
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&timed.stdout)
    );
}

#[test]
fn chaos_subcommand_passes_a_fixed_seed_storm() {
    let out = genpar()
        .args(["chaos", "--seed", "7", "--cases", "8"])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("8 case(s) with seed 7"), "{text}");
    assert!(text.contains("byte-identical"), "{text}");
}

#[test]
fn parallel_env_var_output_matches_serial() {
    let db = small_db();
    let query = "pi[$1,$4](join[$1=$1](R, S))";
    let serial = genpar()
        .args(["run", "--db", db.to_str().unwrap(), query])
        .output()
        .unwrap();
    assert_eq!(serial.status.code(), Some(0), "{}", stderr_of(&serial));
    let parallel = genpar()
        .env("GENPAR_PARALLEL", "4")
        .args(["run", "--db", db.to_str().unwrap(), query])
        .output()
        .unwrap();
    assert_no_panic(&parallel);
    assert_eq!(parallel.status.code(), Some(0), "{}", stderr_of(&parallel));
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&parallel.stdout),
        "GENPAR_PARALLEL=4 must not change the answer"
    );
}

#[test]
fn bad_parallel_flag_is_usage_error() {
    let db = small_db();
    let out = genpar()
        .args([
            "run",
            "--db",
            db.to_str().unwrap(),
            "--parallel",
            "zero?",
            "R",
        ])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
}

#[test]
fn parse_error_exits_3_and_usage_exits_2() {
    let out = genpar().args(["classify", "pi[$1]((("]).output().unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr_of(&out));

    let out = genpar().args(["frobnicate"]).output().unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));

    let db = write_db("R = not-a-value\n");
    let out = genpar()
        .args(["run", "--db", db.to_str().unwrap(), "R"])
        .output()
        .unwrap();
    assert_no_panic(&out);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("byte"), "{}", stderr_of(&out));
}
