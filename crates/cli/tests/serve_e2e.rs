//! End-to-end tests for `genpar serve`: spawn the real binary as a
//! resident server on an ephemeral port, drive it over raw TCP, and
//! assert the three contracts the subsystem makes:
//!
//! * served `output` is byte-identical to the one-shot CLI's stdout,
//! * SIGINT mid-load drains in-flight work and flushes state files
//!   through the checksummed atomic writer (exit 0, file verifies),
//! * an exhausted tenant is isolated — its `budget_exceeded` never
//!   leaks onto a neighbor running the identical query.

// the vendored proptest! macro is expansion-hungry at the default limit
#![recursion_limit = "256"]

use genpar_obs::Json;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

fn genpar() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_genpar"));
    // The CI parallel job exports these globally; tests pin their own.
    cmd.env_remove("GENPAR_FAULTS")
        .env_remove("GENPAR_BUDGET")
        .env_remove("GENPAR_PARALLEL");
    cmd
}

fn tmp_path(stem: &str, ext: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "genpar-serve-{stem}-{}-{n}.{ext}",
        std::process::id()
    ))
}

fn write_db(contents: &str) -> PathBuf {
    let path = tmp_path("db", "gdb");
    std::fs::write(&path, contents).unwrap();
    path
}

fn small_db() -> PathBuf {
    write_db("R = {(1, 2), (2, 3), (3, 4), (4, 5)}\nS = {(1, 9), (2, 8)}\n")
}

/// A spawned `genpar serve` child plus the address parsed from its
/// stderr readiness line.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(db: &std::path::Path, extra: &[&str]) -> Server {
        let mut cmd = genpar();
        cmd.args([
            "serve",
            db.to_str().unwrap(),
            "--port",
            "0",
            "--parallel",
            "2",
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
        let mut child = cmd.spawn().unwrap();
        let mut reader = BufReader::new(child.stderr.take().unwrap());
        let mut addr = None;
        let mut line = String::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            if let Some(rest) = line.split("listening on ").nth(1) {
                addr = rest.split_whitespace().next().map(str::to_string);
                break;
            }
        }
        // keep draining stderr so the server can never block on the pipe
        std::thread::spawn(move || {
            let mut sink = String::new();
            while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                sink.clear();
            }
        });
        Server {
            addr: addr.expect("server never printed its readiness line"),
            child,
        }
    }

    fn port(&self) -> String {
        self.addr.rsplit(':').next().unwrap().to_string()
    }

    fn connect(&self) -> Conn {
        Conn::open(&self.addr)
    }

    fn interrupt(&self) {
        // no libc crate: reach the signal through the coreutils binary
        let pid = self.child.id().to_string();
        let status = Command::new("kill").args(["-INT", &pid]).status().unwrap();
        assert!(status.success(), "kill -INT {pid} failed");
    }

    fn wait(mut self) -> std::process::ExitStatus {
        self.child.wait().unwrap()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // failure-path cleanup; a no-op once the child has been reaped
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One client connection speaking the line-oriented JSON protocol.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let writer = stream.try_clone().unwrap();
                    return Conn {
                        reader: BufReader::new(stream),
                        writer,
                    };
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("cannot connect to {addr}: {e}"),
            }
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
        let mut resp = String::new();
        self.reader.read_line(&mut resp).unwrap();
        Json::parse(resp.trim()).unwrap_or_else(|e| panic!("bad response {resp:?}: {e}"))
    }
}

fn status_of(j: &Json) -> String {
    j.get("status")
        .and_then(|v| v.as_str())
        .unwrap_or("(no status)")
        .to_string()
}

fn output_of(j: &Json) -> String {
    j.get("output")
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| panic!("response has no output: {j}"))
        .to_string()
}

fn one_shot(db: &std::path::Path, subcommand: &str, query: &str) -> String {
    // match the spawned server's pool (--parallel 2): a served request
    // without a workers hint defaults to the server's worker count, and
    // the explain text names it
    one_shot_at(db, subcommand, "2", query)
}

fn one_shot_at(db: &std::path::Path, subcommand: &str, parallel: &str, query: &str) -> String {
    let out = genpar()
        .args([
            subcommand,
            "--db",
            db.to_str().unwrap(),
            "--parallel",
            parallel,
            query,
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "one-shot {subcommand} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn served_responses_are_byte_identical_to_one_shot_output() {
    let db = small_db();
    let server = Server::spawn(&db, &[]);
    let mut conn = server.connect();

    let ping = conn.request(r#"{"op": "ping"}"#);
    assert_eq!(status_of(&ping), "ok");

    for (op, query) in [
        ("run", "pi[$1,$4](join[$2=$1](R, S))"),
        ("run", "diff(R, S)"),
        ("run", "count(R)"),
        ("explain", "pi[$1](union(R, S))"),
    ] {
        let expected = one_shot(&db, if op == "run" { "run" } else { "explain" }, query);
        let req = Json::obj([("op", Json::str(op)), ("query", Json::str(query))]);
        let resp = conn.request(&req.to_string());
        assert_eq!(status_of(&resp), "ok", "{resp}");
        assert_eq!(
            output_of(&resp),
            expected,
            "served {op} output diverged from one-shot CLI for {query}"
        );
    }

    // a parse failure is a structured response on the same connection,
    // never a disconnect — and the connection still works afterwards
    let bad = conn.request(r#"{"op": "run", "query": "pi[$1]((("}"#);
    assert_eq!(status_of(&bad), "error");
    let again = conn.request(r#"{"op": "ping"}"#);
    assert_eq!(status_of(&again), "ok");

    let ack = conn.request(r#"{"op": "shutdown"}"#);
    assert_eq!(status_of(&ack), "ok");
    let code = server.wait();
    assert_eq!(code.code(), Some(0), "graceful shutdown must exit 0");
}

#[test]
fn bench_serve_closed_loop_reports_byte_identity() {
    let db = small_db();
    let server = Server::spawn(&db, &[]);
    let report_path = tmp_path("bench", "json");

    let out = genpar()
        .args([
            "bench-serve",
            "--port",
            &server.port(),
            "--db",
            db.to_str().unwrap(),
            "--clients",
            "4",
            "--duration",
            "1",
            "--out",
            report_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "bench-serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let doc = Json::parse(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(doc.get("bench").and_then(|v| v.as_str()), Some("serve"));
    assert_eq!(doc.get("mismatches").and_then(|v| v.as_int()), Some(0));
    assert!(
        doc.get("completed").and_then(|v| v.as_int()).unwrap_or(0) > 0,
        "no requests completed: {doc}"
    );

    let mut conn = server.connect();
    conn.request(r#"{"op": "shutdown"}"#);
    assert_eq!(server.wait().code(), Some(0));
}

#[test]
fn sigint_mid_load_drains_and_flushes_checksummed_state() {
    let db = small_db();
    let stats_path = tmp_path("stats", "json");
    let stats = stats_path.to_str().unwrap().to_string();
    let server = Server::spawn(&db, &["--stats", &stats]);
    let addr = server.addr.clone();

    // real load: two clients looping profile (which harvests into the
    // stats store) while the signal lands mid-flight
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut conn = Conn::open(&addr);
                let until = Instant::now() + Duration::from_secs(10);
                let mut served = 0u32;
                while Instant::now() < until {
                    writeln!(
                        conn.writer,
                        r#"{{"op": "profile", "query": "pi[$1,$4](join[$2=$1](R, S))"}}"#
                    )
                    .ok();
                    conn.writer.flush().ok();
                    let mut resp = String::new();
                    match conn.reader.read_line(&mut resp) {
                        Ok(0) | Err(_) => break, // server drained: done
                        Ok(_) => {
                            let j = Json::parse(resp.trim()).unwrap();
                            match status_of(&j).as_str() {
                                "ok" => served += 1,
                                "shutting_down" => break,
                                other => panic!("unexpected status {other}: {j}"),
                            }
                        }
                    }
                }
                served
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(400));
    server.interrupt();

    let code = server.wait();
    assert_eq!(
        code.code(),
        Some(0),
        "SIGINT must drain and exit 0, not die on the signal"
    );
    let served: u32 = clients.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(served > 0, "no request completed before the interrupt");

    // the flushed stats file must carry the checksum header AND verify
    let text = std::fs::read_to_string(&stats_path).unwrap();
    assert!(
        text.starts_with(genpar_optimizer::persist::CHECKSUM_MAGIC),
        "flushed stats file is missing its checksum header: {text}"
    );
    let payload = genpar_optimizer::persist::read_payload(&stats)
        .expect("flushed stats file must pass checksum verification")
        .expect("stats file must exist after drain");
    assert!(
        Json::parse(&payload).is_ok(),
        "flushed stats payload is not JSON: {payload}"
    );
}

/// Collapse every wall-clock artifact in a profile rendering while
/// keeping its structure: digit runs (with their decimal points) become
/// `#`, the time-unit suffix after a collapsed number becomes `T` (a
/// duration near a unit boundary renders as `999.8µs` in one process and
/// `1.0ms` in another), and runs of spaces collapse (column alignment
/// widens with the digits). Everything else — span tree shape, names,
/// counter names, event fields — must survive verbatim.
fn normalize_profile(text: &str) -> String {
    let mut out = String::new();
    let mut in_num = false;
    let mut in_space = false;
    for c in text.chars() {
        if c.is_ascii_digit() || (c == '.' && in_num) {
            if !in_num {
                out.push('#');
            }
            in_num = true;
            in_space = false;
        } else if c == ' ' {
            if !in_space {
                out.push(' ');
            }
            in_num = false;
            in_space = true;
        } else {
            out.push(c);
            in_num = false;
            in_space = false;
        }
    }
    for unit in ["#ns", "#µs", "#ms", "#s"] {
        out = out.replace(unit, "#T");
    }
    out
}

/// The `counters:` section of a profile rendering, raw — counters are
/// deterministic (no wall-clock), so this part must match byte-for-byte
/// where the span timings above it cannot.
fn counters_section(text: &str) -> &str {
    let start = text
        .find("\ncounters:")
        .unwrap_or_else(|| panic!("profile output has no counters section: {text}"));
    let rest = &text[start + 1..];
    match rest.find("\nevents") {
        Some(end) => &rest[..end],
        None => rest,
    }
}

/// The regression this PR fixes: served `explain`/`profile` used to
/// `reset()` the process-global registry to attribute records to one
/// query, silently zeroing the server's own cumulative counters. Now
/// they snapshot a private scope instead, so `stats` keeps counting.
#[test]
fn served_stats_stay_cumulative_across_explain_and_profile() {
    let db = small_db();
    let server = Server::spawn(&db, &[]);
    let mut conn = server.connect();

    for _ in 0..2 {
        let resp = conn.request(r#"{"op": "run", "query": "pi[$1](R)", "tenant": "acme"}"#);
        assert_eq!(status_of(&resp), "ok", "{resp}");
    }
    let admitted = |j: &Json| {
        j.get("admitted")
            .and_then(|v| v.as_int())
            .unwrap_or_else(|| panic!("stats response has no admitted count: {j}"))
    };
    let stats0 = conn.request(r#"{"op": "stats"}"#);
    assert_eq!(status_of(&stats0), "ok", "{stats0}");
    let before = admitted(&stats0);
    assert!(before >= 2, "two admitted runs are missing: {stats0}");

    let ex = conn.request(r#"{"op": "explain", "query": "pi[$1](union(R, S))"}"#);
    assert_eq!(status_of(&ex), "ok", "{ex}");
    let prof = conn.request(r#"{"op": "profile", "query": "count(R)", "tenant": "acme"}"#);
    assert_eq!(status_of(&prof), "ok", "{prof}");

    let stats1 = conn.request(r#"{"op": "stats"}"#);
    assert_eq!(
        admitted(&stats1),
        before + 2,
        "explain/profile must never reset cumulative server counters: {stats1}"
    );

    // the retained per-tenant roll-ups behind the new stats filters:
    // 2 runs + 1 profile were served under "acme"
    let filtered = conn.request(r#"{"op": "stats", "tenant": "acme"}"#);
    let roll = filtered
        .get("tenant_rollup")
        .unwrap_or_else(|| panic!("stats with a tenant filter has no tenant_rollup: {filtered}"));
    assert_eq!(
        roll.get("queries").and_then(|v| v.as_int()),
        Some(3),
        "{roll}"
    );
    assert_eq!(roll.get("tenant").and_then(|v| v.as_str()), Some("acme"));

    // the per-query roll-up is addressable by the id the response named
    let qid = prof
        .get("query_id")
        .and_then(|v| v.as_int())
        .unwrap_or_else(|| panic!("profile response has no query_id: {prof}"));
    let by_id = conn.request(&format!(r#"{{"op": "stats", "query_id": {qid}}}"#));
    let qroll = by_id
        .get("query_rollup")
        .unwrap_or_else(|| panic!("stats with a query_id filter has no query_rollup: {by_id}"));
    assert_eq!(qroll.get("tenant").and_then(|v| v.as_str()), Some("acme"));
    assert_eq!(qroll.get("query_id").and_then(|v| v.as_int()), Some(qid));

    // an unknown tenant is a null roll-up, not an error
    let none = conn.request(r#"{"op": "stats", "tenant": "nobody"}"#);
    assert_eq!(none.get("tenant_rollup"), Some(&Json::Null), "{none}");

    let ack = conn.request(r#"{"op": "shutdown"}"#);
    assert_eq!(status_of(&ack), "ok");
    assert_eq!(server.wait().code(), Some(0));
}

/// Two profiles racing through one server must return disjoint
/// snapshots: each response identical to the one-shot CLI profile of
/// the same query (modulo wall-clock digits), with the deterministic
/// counters section matching byte-for-byte. Before per-request scopes
/// this needed a profile mutex; now the race itself is the test.
#[test]
fn concurrent_served_profiles_return_disjoint_one_shot_identical_snapshots() {
    let db = small_db();
    let join_q = "pi[$1,$4](join[$2=$1](R, S))";
    let count_q = "count(R)";
    // one-shot expectations at the worker count the requests will pin
    let expected_join = one_shot_at(&db, "profile", "1", join_q);
    let expected_count = one_shot_at(&db, "profile", "1", count_q);

    let server = Server::spawn(&db, &[]);
    let barrier = std::sync::Barrier::new(2);
    let [served_join, served_count] = std::thread::scope(|s| {
        [(join_q, "tenant-join"), (count_q, "tenant-count")]
            .map(|(query, tenant)| {
                let (server, barrier) = (&server, &barrier);
                s.spawn(move || {
                    let mut conn = server.connect();
                    let req = Json::obj([
                        ("op", Json::str("profile")),
                        ("query", Json::str(query)),
                        ("tenant", Json::str(tenant)),
                        ("workers", Json::Int(1)),
                    ]);
                    barrier.wait();
                    let resp = conn.request(&req.to_string());
                    assert_eq!(status_of(&resp), "ok", "{resp}");
                    output_of(&resp)
                })
            })
            .map(|h| h.join().unwrap())
    });

    for (served, expected, other_span) in [
        (&served_join, &expected_join, "alg.Count"),
        (&served_count, &expected_count, "alg.Join"),
    ] {
        assert_eq!(
            normalize_profile(served),
            normalize_profile(expected),
            "a served profile racing a sibling diverged from the one-shot CLI"
        );
        assert_eq!(
            counters_section(served),
            counters_section(expected),
            "deterministic counters leaked between concurrent profile scopes"
        );
        assert!(
            !served.contains(other_span),
            "the sibling query's span tree leaked into this snapshot: {served}"
        );
    }

    let mut conn = server.connect();
    let ack = conn.request(r#"{"op": "shutdown"}"#);
    assert_eq!(status_of(&ack), "ok");
    assert_eq!(server.wait().code(), Some(0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Per-tenant budget isolation: one tenant exhausting its quota
    /// must keep getting `budget_exceeded` while a second tenant's
    /// identical query succeeds byte-identically. Each case runs its
    /// own server (quotas are cumulative for the life of a process) and
    /// fresh tenant names, with the query drawn by proptest.
    #[test]
    fn exhausted_tenant_never_starves_its_neighbors(qi in 0..3usize) {
        static CASE: AtomicU32 = AtomicU32::new(0);
        let queries = ["pi[$1](R)", "select[$1=$2](R)", "union(R, S)"];
        let query = queries[qi];
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let hog = format!("hog-{case}");
        let bystander = format!("bystander-{case}");

        let db = small_db();
        let server = Server::spawn(&db, &["--tenant-budget", "cells=400"]);
        let mut conn = server.connect();
        let req = |tenant: &str| {
            Json::obj([
                ("op", Json::str("run")),
                ("query", Json::str(query)),
                ("tenant", Json::str(tenant)),
            ])
            .to_string()
        };

        // drive the hog into its quota; capture its first good output
        let mut expected = None;
        let mut exhausted = false;
        for _ in 0..200 {
            let resp = conn.request(&req(&hog));
            match status_of(&resp).as_str() {
                "ok" => {
                    let out = output_of(&resp);
                    if let Some(prev) = &expected {
                        prop_assert_eq!(prev, &out, "output changed under quota pressure");
                    }
                    expected = Some(out);
                }
                "budget_exceeded" => {
                    exhausted = true;
                    break;
                }
                other => prop_assert!(false, "unexpected status {}: {}", other, resp),
            }
        }
        prop_assert!(exhausted, "hog never hit its quota within 200 requests");
        let expected = match expected {
            Some(e) => e,
            None => {
                prop_assert!(false, "quota must allow at least one request");
                unreachable!()
            }
        };

        // the bystander's identical query still succeeds, byte-identical
        let resp = conn.request(&req(&bystander));
        prop_assert_eq!(&status_of(&resp), "ok", "bystander was starved: {}", resp);
        prop_assert_eq!(output_of(&resp), expected);

        // and the hog stays exhausted — quotas are cumulative, not reset
        let resp = conn.request(&req(&hog));
        prop_assert_eq!(
            &status_of(&resp),
            "budget_exceeded",
            "quota forgot: {}",
            resp
        );

        let ack = conn.request(r#"{"op": "shutdown"}"#);
        prop_assert_eq!(&status_of(&ack), "ok");
        prop_assert_eq!(server.wait().code(), Some(0));
    }
}
