#![warn(missing_docs)]
//! # genpar-value — the complex-value data model
//!
//! This crate implements the data model of Section 2 of Beeri, Milo &
//! Ta-Shma, *On Genericity and Parametricity* (PODS 1996):
//!
//! * a **signature** Σ of base types — interpreted (`bool`, `int`, `str`)
//!   and uninterpreted named domains of atoms — together with interpreted
//!   functions and predicates over them ([`base::Signature`]);
//! * **complex value types** (Definition 2.1): trees whose leaves are base
//!   types and whose internal nodes are the type constructors `×` (tuple),
//!   `{}` (set), `⟅⟆` (bag) and `⟨⟩` (list) ([`ty::CvType`]);
//! * **type expressions** (Definition 2.7): the same trees with type
//!   variables at (some of) the leaves ([`ty::TypeExpr`]), substitution and
//!   *associated types*;
//! * **complex values** ([`value::Value`]) with a total order (so sets and
//!   bags have a canonical representation), dynamic type checking, active
//!   domains, and exhaustive enumeration of all values of a type over a
//!   finite universe — the finite-model substrate on which the genericity
//!   and parametricity checkers operate.
//!
//! The paper allows infinite complex values (its footnote 2); this crate
//! materializes only finite values. Every *negative* claim in the paper is
//! witnessed by a finite counterexample, and every *positive* claim is
//! checked on finite models plus verified symbolically by the classifier in
//! `genpar-core`, so the restriction is harmless (see DESIGN.md §1).

pub mod base;
pub mod display;
pub mod enumerate;
pub mod parse;
pub mod random;
pub mod ty;
pub mod value;

pub use base::{Atom, BaseType, DomainId, InterpFn, InterpPred, Signature};
pub use display::{canonical_order, canonical_rows, rows_to_value};
pub use ty::{CvType, TyVar, TypeExpr};
pub use value::{TypeError, Value};
