//! Exhaustive enumeration of the inhabitants of a complex-value type over a
//! finite universe.
//!
//! Genericity (Definition 2.9) and parametricity (Theorem 4.4) are
//! ∀-statements over all values and mappings. On *finite* base domains all
//! value spaces except lists/bags are finite, so the checkers in
//! `genpar-core` and `genpar-parametricity` can decide these statements by
//! enumeration (small-scope model checking) and refute them with concrete
//! counterexamples. Lists and bags are unbounded in length, so enumeration
//! takes an explicit length bound.

use crate::base::BaseType;
use crate::ty::CvType;
use crate::value::Value;
use std::collections::BTreeMap;

/// A finite universe: the inhabitants allowed for each base type.
///
/// Interpreted types get finite windows (`int` ∈ `int_range`, fixed string
/// pool); each uninterpreted domain `d` gets atoms `0..atoms(d)`.
#[derive(Debug, Clone)]
pub struct Universe {
    /// Inclusive range of integers in the universe.
    pub int_range: (i64, i64),
    /// Strings in the universe.
    pub strings: Vec<String>,
    /// Number of atoms per domain id.
    pub atoms: BTreeMap<u32, u32>,
}

impl Universe {
    /// A universe with atoms `0..n` in domain 0, integers `0..=max_int`,
    /// and no strings — sufficient for all of the paper's examples.
    pub fn atoms_and_ints(n_atoms: u32, max_int: i64) -> Self {
        let mut atoms = BTreeMap::new();
        atoms.insert(0, n_atoms);
        Universe {
            int_range: (0, max_int),
            strings: Vec::new(),
            atoms,
        }
    }

    /// A universe with only `n` atoms in domain 0 (the classical
    /// uninterpreted setting).
    pub fn atoms_only(n: u32) -> Self {
        Universe::atoms_and_ints(n, -1).with_int_range(1, 0) // empty int range
    }

    /// Replace the integer range.
    pub fn with_int_range(mut self, lo: i64, hi: i64) -> Self {
        self.int_range = (lo, hi);
        self
    }

    /// Add a domain with `n` atoms.
    pub fn with_domain(mut self, domain: u32, n: u32) -> Self {
        self.atoms.insert(domain, n);
        self
    }

    /// Add strings to the universe.
    pub fn with_strings(mut self, ss: impl IntoIterator<Item = String>) -> Self {
        self.strings.extend(ss);
        self
    }

    /// The inhabitants of a base type in this universe.
    pub fn base_values(&self, b: BaseType) -> Vec<Value> {
        match b {
            BaseType::Bool => vec![Value::Bool(false), Value::Bool(true)],
            BaseType::Int => (self.int_range.0..=self.int_range.1)
                .map(Value::Int)
                .collect(),
            BaseType::Str => self.strings.iter().cloned().map(Value::Str).collect(),
            BaseType::Domain(d) => {
                let n = self.atoms.get(&d.0).copied().unwrap_or(0);
                (0..n).map(|i| Value::atom(d.0, i)).collect()
            }
        }
    }
}

/// Bounds that keep enumeration of unbounded constructors finite.
#[derive(Debug, Clone, Copy)]
pub struct EnumLimits {
    /// Maximum list length and maximum bag cardinality (with multiplicity).
    pub max_seq_len: usize,
    /// Hard cap on the number of values produced per type; enumeration
    /// returns `None` when a type has more inhabitants than this (so
    /// callers can fall back to sampling).
    pub max_values: usize,
}

impl Default for EnumLimits {
    fn default() -> Self {
        EnumLimits {
            max_seq_len: 3,
            max_values: 100_000,
        }
    }
}

/// Enumerate every inhabitant of `ty` over `universe`, subject to
/// `limits`. Returns `None` if the space exceeds `limits.max_values`
/// (sets of sets explode quickly: a type with `n` inhabitants has `2ⁿ`
/// sets).
pub fn enumerate(ty: &CvType, universe: &Universe, limits: EnumLimits) -> Option<Vec<Value>> {
    match ty {
        CvType::Base(b) => {
            let vs = universe.base_values(*b);
            (vs.len() <= limits.max_values).then_some(vs)
        }
        CvType::Tuple(ts) => {
            let parts: Vec<Vec<Value>> = ts
                .iter()
                .map(|t| enumerate(t, universe, limits))
                .collect::<Option<_>>()?;
            let mut total: usize = 1;
            for p in &parts {
                total = total.checked_mul(p.len())?;
                if total > limits.max_values {
                    return None;
                }
            }
            let mut out = vec![Vec::new()];
            for p in &parts {
                let mut next = Vec::with_capacity(out.len() * p.len());
                for prefix in &out {
                    for v in p {
                        let mut row = prefix.clone();
                        row.push(v.clone());
                        next.push(row);
                    }
                }
                out = next;
            }
            Some(out.into_iter().map(Value::Tuple).collect())
        }
        CvType::Set(t) => {
            let elems = enumerate(t, universe, limits)?;
            if elems.len() >= usize::BITS as usize || (1usize << elems.len()) > limits.max_values {
                return None;
            }
            let n = elems.len();
            let mut out = Vec::with_capacity(1 << n);
            for mask in 0u64..(1u64 << n) {
                let s = elems
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, v)| v.clone())
                    .collect();
                out.push(Value::Set(s));
            }
            Some(out)
        }
        CvType::List(t) => {
            let elems = enumerate(t, universe, limits)?;
            let mut out: Vec<Vec<Value>> = vec![Vec::new()];
            let mut frontier: Vec<Vec<Value>> = vec![Vec::new()];
            for _ in 0..limits.max_seq_len {
                let mut next = Vec::new();
                for prefix in &frontier {
                    for v in &elems {
                        let mut l = prefix.clone();
                        l.push(v.clone());
                        next.push(l);
                    }
                }
                out.extend(next.iter().cloned());
                if out.len() > limits.max_values {
                    return None;
                }
                frontier = next;
            }
            Some(out.into_iter().map(Value::List).collect())
        }
        CvType::Bag(t) => {
            // Bags of size ≤ max_seq_len = sorted lists; enumerate lists
            // and keep the sorted ones to avoid duplicates.
            let elems = enumerate(t, universe, limits)?;
            let lists = enumerate(&CvType::list((**t).clone()), universe, limits)?;
            let _ = elems;
            let mut out: Vec<Value> = lists
                .into_iter()
                .filter_map(|l| match l {
                    Value::List(items) => {
                        let sorted = items.windows(2).all(|w| w[0] <= w[1]);
                        sorted.then(|| Value::bag(items))
                    }
                    _ => None,
                })
                .collect();
            out.sort();
            out.dedup();
            (out.len() <= limits.max_values).then_some(out)
        }
    }
}

/// Count the inhabitants without materializing them, where finitely
/// countable under the same limits. (`None` = over budget.)
pub fn count(ty: &CvType, universe: &Universe, limits: EnumLimits) -> Option<usize> {
    enumerate(ty, universe, limits).map(|v| v.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_base_types() {
        let u = Universe::atoms_and_ints(3, 1);
        assert_eq!(
            enumerate(&CvType::bool(), &u, EnumLimits::default())
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            enumerate(&CvType::int(), &u, EnumLimits::default())
                .unwrap()
                .len(),
            2 // 0..=1
        );
        assert_eq!(
            enumerate(&CvType::domain(0), &u, EnumLimits::default())
                .unwrap()
                .len(),
            3
        );
        // unregistered domain is empty
        assert_eq!(
            enumerate(&CvType::domain(9), &u, EnumLimits::default())
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn enumerates_tuples_as_products() {
        let u = Universe::atoms_only(3);
        let t = CvType::tuple([CvType::domain(0), CvType::domain(0)]);
        let vs = enumerate(&t, &u, EnumLimits::default()).unwrap();
        assert_eq!(vs.len(), 9);
        // all distinct
        let mut sorted = vs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 9);
    }

    #[test]
    fn enumerates_sets_as_powerset() {
        let u = Universe::atoms_only(3);
        let t = CvType::set(CvType::domain(0));
        let vs = enumerate(&t, &u, EnumLimits::default()).unwrap();
        assert_eq!(vs.len(), 8); // 2^3
        assert!(vs.contains(&Value::empty_set()));
    }

    #[test]
    fn enumerates_nested_sets() {
        let u = Universe::atoms_only(2);
        let t = CvType::set(CvType::set(CvType::domain(0)));
        let vs = enumerate(&t, &u, EnumLimits::default()).unwrap();
        assert_eq!(vs.len(), 16); // 2^(2^2)
    }

    #[test]
    fn enumerates_lists_up_to_length() {
        let u = Universe::atoms_only(2);
        let t = CvType::list(CvType::domain(0));
        let limits = EnumLimits {
            max_seq_len: 2,
            ..Default::default()
        };
        let vs = enumerate(&t, &u, limits).unwrap();
        // lengths 0,1,2 → 1 + 2 + 4
        assert_eq!(vs.len(), 7);
    }

    #[test]
    fn enumerates_bags_without_duplicates() {
        let u = Universe::atoms_only(2);
        let t = CvType::bag(CvType::domain(0));
        let limits = EnumLimits {
            max_seq_len: 2,
            ..Default::default()
        };
        let vs = enumerate(&t, &u, limits).unwrap();
        // multisets over {a,b} of size ≤ 2: {}, {a}, {b}, {a,a}, {a,b}, {b,b}
        assert_eq!(vs.len(), 6);
        let mut sorted = vs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn respects_budget() {
        let u = Universe::atoms_only(10);
        let t = CvType::set(CvType::set(CvType::domain(0)));
        let limits = EnumLimits {
            max_seq_len: 3,
            max_values: 1000,
        };
        assert_eq!(enumerate(&t, &u, limits), None);
        assert_eq!(count(&t, &u, limits), None);
    }

    #[test]
    fn all_enumerated_values_typecheck() {
        let u = Universe::atoms_and_ints(2, 1);
        let t = CvType::set(CvType::tuple([CvType::domain(0), CvType::int()]));
        for v in enumerate(&t, &u, EnumLimits::default()).unwrap() {
            assert!(v.has_type(&t), "{v} : {t}");
        }
    }
}
