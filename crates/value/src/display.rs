//! Human-readable rendering of complex values, mirroring the paper's
//! notation: tuples `(a, b)`, sets `{…}`, bags `⟅…⟆`, lists `⟨…⟩`.

use crate::value::Value;
use std::fmt;

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Atom(a) => write!(f, "{a}"),
            Value::Tuple(vs) => {
                write!(f, "(")?;
                join(f, vs.iter())?;
                write!(f, ")")
            }
            Value::Set(vs) => {
                write!(f, "{{")?;
                join(f, vs.iter())?;
                write!(f, "}}")
            }
            Value::Bag(vs) => {
                write!(f, "⟅")?;
                let mut first = true;
                for (v, n) in vs {
                    for _ in 0..*n {
                        if !first {
                            write!(f, ", ")?;
                        }
                        first = false;
                        write!(f, "{v}")?;
                    }
                }
                write!(f, "⟆")
            }
            Value::List(vs) => {
                write!(f, "⟨")?;
                join(f, vs.iter())?;
                write!(f, "⟩")
            }
        }
    }
}

fn join<'a>(f: &mut fmt::Formatter<'_>, items: impl Iterator<Item = &'a Value>) -> fmt::Result {
    for (i, v) in items.enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paper_notation() {
        let v = Value::set([
            Value::tuple([Value::atom(0, 0), Value::atom(0, 1)]),
            Value::tuple([Value::atom(0, 1), Value::atom(0, 2)]),
        ]);
        assert_eq!(v.to_string(), "{(a, b), (b, c)}");
    }

    #[test]
    fn renders_lists_and_bags() {
        assert_eq!(
            Value::list([Value::Int(1), Value::Int(2)]).to_string(),
            "⟨1, 2⟩"
        );
        assert_eq!(
            Value::bag([Value::Int(1), Value::Int(1), Value::Int(3)]).to_string(),
            "⟅1, 1, 3⟆"
        );
    }

    #[test]
    fn renders_scalars() {
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::unit().to_string(), "()");
        assert_eq!(Value::empty_set().to_string(), "{}");
    }
}
