//! Human-readable rendering of complex values, mirroring the paper's
//! notation: tuples `(a, b)`, sets `{…}`, bags `⟅…⟆`, lists `⟨…⟩`.
//!
//! Multisets (sets and bags) render in **canonical order** — the derived
//! total `Ord` on [`Value`] — through the single [`canonical_order`]
//! choke point. Producers that hold rows in arbitrary order (a parallel
//! executor's per-worker partitions, hash-partitioned merge output) go
//! through [`canonical_rows`] / [`rows_to_value`] before anything is
//! rendered or compared, so serial and parallel evaluations of the same
//! query display — and `==` — identically.

use crate::value::Value;
use std::fmt;

/// Sort a multiset's elements into the one canonical display order (the
/// derived total order on [`Value`]). Every multiset rendering in the
/// workspace routes through here; do not iterate a hash-ordered
/// container straight into user output.
pub fn canonical_order<'a>(items: impl IntoIterator<Item = &'a Value>) -> Vec<&'a Value> {
    let mut v: Vec<&Value> = items.into_iter().collect();
    v.sort();
    v
}

/// Canonicalize a multiset of rows under set semantics: sorted by the
/// derived `Ord` on `Vec<Value>`, duplicates removed. The helper that
/// makes a parallel executor's arbitrarily-ordered partition merge
/// byte-identical to the serial evaluator's `BTreeSet` iteration.
pub fn canonical_rows(rows: impl IntoIterator<Item = Vec<Value>>) -> Vec<Vec<Value>> {
    let mut v: Vec<Vec<Value>> = rows.into_iter().collect();
    v.sort();
    v.dedup();
    v
}

/// Wrap rows as the canonical set-of-tuples [`Value`] — the relation
/// shape every evaluator in the workspace reports. Equal multisets of
/// rows produce `Value`-equal (and identically rendered) results no
/// matter what order the rows arrive in.
pub fn rows_to_value(rows: impl IntoIterator<Item = Vec<Value>>) -> Value {
    Value::set(rows.into_iter().map(Value::Tuple))
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Atom(a) => write!(f, "{a}"),
            Value::Tuple(vs) => {
                write!(f, "(")?;
                join(f, vs.iter())?;
                write!(f, ")")
            }
            Value::Set(vs) => {
                write!(f, "{{")?;
                join(f, canonical_order(vs.iter()).into_iter())?;
                write!(f, "}}")
            }
            Value::Bag(vs) => {
                write!(f, "⟅")?;
                let mut first = true;
                for v in canonical_order(vs.keys()) {
                    for _ in 0..vs[v] {
                        if !first {
                            write!(f, ", ")?;
                        }
                        first = false;
                        write!(f, "{v}")?;
                    }
                }
                write!(f, "⟆")
            }
            Value::List(vs) => {
                write!(f, "⟨")?;
                join(f, vs.iter())?;
                write!(f, "⟩")
            }
        }
    }
}

fn join<'a>(f: &mut fmt::Formatter<'_>, items: impl Iterator<Item = &'a Value>) -> fmt::Result {
    for (i, v) in items.enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paper_notation() {
        let v = Value::set([
            Value::tuple([Value::atom(0, 0), Value::atom(0, 1)]),
            Value::tuple([Value::atom(0, 1), Value::atom(0, 2)]),
        ]);
        assert_eq!(v.to_string(), "{(a, b), (b, c)}");
    }

    #[test]
    fn renders_lists_and_bags() {
        assert_eq!(
            Value::list([Value::Int(1), Value::Int(2)]).to_string(),
            "⟨1, 2⟩"
        );
        assert_eq!(
            Value::bag([Value::Int(1), Value::Int(1), Value::Int(3)]).to_string(),
            "⟅1, 1, 3⟆"
        );
    }

    #[test]
    fn canonical_rows_sorts_and_dedups() {
        let rows = vec![
            vec![Value::Int(3)],
            vec![Value::Int(1)],
            vec![Value::Int(3)],
            vec![Value::Int(2)],
        ];
        assert_eq!(
            canonical_rows(rows),
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)]
            ]
        );
    }

    #[test]
    fn rows_to_value_is_order_insensitive() {
        let a = rows_to_value(vec![vec![Value::Int(2)], vec![Value::Int(1)]]);
        let b = rows_to_value(vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Int(1)],
        ]);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "{(1), (2)}");
    }

    #[test]
    fn renders_scalars() {
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::unit().to_string(), "()");
        assert_eq!(Value::empty_set().to_string(), "{}");
    }
}
