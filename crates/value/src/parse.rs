//! A small parser for complex-value literals, used by tests and examples
//! to state instances in notation close to the paper's.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! value   := scalar | tuple | set | bag | list
//! scalar  := int | "true" | "false" | string | atom
//! atom    := 'a'..'z'            (atom of domain 0: a=0, b=1, …)
//!          | 'D' nat '#' nat     (atom of arbitrary domain)
//! tuple   := '(' [value {',' value}] ')'
//! set     := '{' [value {',' value}] '}'
//! list    := '[' [value {',' value}] ']'   or  '⟨' … '⟩'
//! bag     := '{|' [value {',' value}] '|}' or  '⟅' … '⟆'
//! string  := '"' chars '"'
//! ```

use crate::value::Value;
use std::fmt;

/// A parse error with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complex-value literal.
pub fn parse_value(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        s: input.as_bytes(),
        pos: 0,
        src: input,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump_char(&mut self) -> Option<char> {
        let c = self.peek_char()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek_char() == Some(c) {
            self.bump_char();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek_char() {
            None => Err(self.err("unexpected end of input")),
            Some('(') => self.seq('(', ')', Value::Tuple),
            Some('{') if self.starts_with("{|") => {
                self.pos += 2;
                self.bag_body("|}")
            }
            Some('{') => self.seq('{', '}', Value::set),
            Some('⟅') => {
                self.bump_char();
                self.bag_body("⟆")
            }
            Some('[') => self.seq('[', ']', Value::List),
            Some('⟨') => self.seq('⟨', '⟩', Value::List),
            Some('"') => self.string(),
            Some(c) if c.is_ascii_digit() || c == '-' => self.int(),
            Some('t') if self.starts_with("true") => {
                self.pos += 4;
                Ok(Value::Bool(true))
            }
            Some('f') if self.starts_with("false") => {
                self.pos += 5;
                Ok(Value::Bool(false))
            }
            Some('D') => self.qualified_atom(),
            Some(c) if c.is_ascii_lowercase() => {
                self.bump_char();
                Ok(Value::atom(0, c as u32 - 'a' as u32))
            }
            Some(c) => Err(self.err(format!("unexpected character '{c}'"))),
        }
    }

    fn seq(
        &mut self,
        open: char,
        close: char,
        build: impl FnOnce(Vec<Value>) -> Value,
    ) -> Result<Value, ParseError> {
        self.expect(open)?;
        let items = self.items(close)?;
        Ok(build(items))
    }

    fn bag_body(&mut self, close: &str) -> Result<Value, ParseError> {
        let mut items = Vec::new();
        self.skip_ws();
        if !self.starts_with(close) {
            loop {
                items.push(self.value()?);
                self.skip_ws();
                if !self.eat(',') {
                    break;
                }
            }
        }
        self.skip_ws();
        if self.starts_with(close) {
            self.pos += close.len();
            Ok(Value::bag(items))
        } else {
            Err(self.err(format!("expected '{close}'")))
        }
    }

    fn items(&mut self, close: char) -> Result<Vec<Value>, ParseError> {
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(close) {
            return Ok(items);
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(',') {
                continue;
            }
            self.expect(close)?;
            return Ok(items);
        }
    }

    fn string(&mut self) -> Result<Value, ParseError> {
        self.expect('"')?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let s = self.src[start..self.pos].to_string();
                self.pos += 1;
                return Ok(Value::Str(s));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn int(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.src[start..self.pos]
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| self.err(format!("bad integer: {e}")))
    }

    fn nat(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.src[start..self.pos]
            .parse::<u32>()
            .map_err(|e| self.err(format!("bad number: {e}")))
    }

    fn qualified_atom(&mut self) -> Result<Value, ParseError> {
        self.expect('D')?;
        let dom = self.nat()?;
        self.expect('#')?;
        let id = self.nat()?;
        Ok(Value::atom(dom, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_relation() {
        // r2 = {(a,b),(b,c)} from Example 2.2
        let v = parse_value("{(a, b), (b, c)}").unwrap();
        assert_eq!(v, Value::atom_relation(&[(0, 1), (1, 2)]));
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_value("42").unwrap(), Value::Int(42));
        assert_eq!(parse_value("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("false").unwrap(), Value::Bool(false));
        assert_eq!(parse_value("\"hi\"").unwrap(), Value::str("hi"));
        assert_eq!(parse_value("e").unwrap(), Value::atom(0, 4));
        assert_eq!(parse_value("D2#5").unwrap(), Value::atom(2, 5));
    }

    #[test]
    fn parses_collections() {
        assert_eq!(
            parse_value("[1, 2, 2]").unwrap(),
            Value::list([Value::Int(1), Value::Int(2), Value::Int(2)])
        );
        assert_eq!(
            parse_value("⟨1, 2⟩").unwrap(),
            Value::list([Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            parse_value("{|1, 1, 2|}").unwrap(),
            Value::bag([Value::Int(1), Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            parse_value("⟅1, 1⟆").unwrap(),
            Value::bag([Value::Int(1), Value::Int(1)])
        );
        assert_eq!(parse_value("{}").unwrap(), Value::empty_set());
        assert_eq!(parse_value("()").unwrap(), Value::unit());
        assert_eq!(parse_value("{| |}").unwrap(), Value::bag([]));
    }

    #[test]
    fn parses_nesting() {
        let v = parse_value("{{a}, {}}").unwrap();
        assert_eq!(
            v,
            Value::set([Value::set([Value::atom(0, 0)]), Value::empty_set()])
        );
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in [
            "{(a, b), (b, c)}",
            "⟨1, 2, 3⟩",
            "(true, {1, 2}, ⟨⟩)",
            "⟅1, 1, 2⟆",
            "{}",
        ] {
            let v = parse_value(s).unwrap();
            assert_eq!(parse_value(&v.to_string()).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("").is_err());
        assert!(parse_value("{1, 2").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("(1,]").is_err());
        assert!(parse_value("\"open").is_err());
        assert!(parse_value("D1").is_err());
        assert!(parse_value("Z").is_err());
    }
}
