//! Random generation of complex values, for property-based testing and
//! workload generation.

use crate::enumerate::Universe;
use crate::ty::CvType;
use crate::value::Value;
use rand::Rng;

/// Parameters controlling random value generation.
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// Maximum cardinality of generated sets/bags/lists.
    pub max_collection: usize,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams { max_collection: 6 }
    }
}

/// Generate a uniformly-ish random value of `ty` over `universe`.
///
/// Returns `None` when a base type has no inhabitants in the universe (an
/// empty domain cannot produce a leaf value, although `{}`/`⟨⟩` of such
/// element types are still produced for collection types).
pub fn random_value<R: Rng + ?Sized>(
    rng: &mut R,
    ty: &CvType,
    universe: &Universe,
    params: GenParams,
) -> Option<Value> {
    match ty {
        CvType::Base(b) => {
            let vs = universe.base_values(*b);
            if vs.is_empty() {
                return None;
            }
            Some(vs[rng.gen_range(0..vs.len())].clone())
        }
        CvType::Tuple(ts) => ts
            .iter()
            .map(|t| random_value(rng, t, universe, params))
            .collect::<Option<Vec<_>>>()
            .map(Value::Tuple),
        CvType::Set(t) => {
            let n = rng.gen_range(0..=params.max_collection);
            let mut items = Vec::new();
            for _ in 0..n {
                if let Some(v) = random_value(rng, t, universe, params) {
                    items.push(v);
                }
            }
            Some(Value::set(items))
        }
        CvType::Bag(t) => {
            let n = rng.gen_range(0..=params.max_collection);
            let mut items = Vec::new();
            for _ in 0..n {
                if let Some(v) = random_value(rng, t, universe, params) {
                    items.push(v);
                }
            }
            Some(Value::bag(items))
        }
        CvType::List(t) => {
            let n = rng.gen_range(0..=params.max_collection);
            let mut items = Vec::new();
            for _ in 0..n {
                if let Some(v) = random_value(rng, t, universe, params) {
                    items.push(v);
                }
            }
            Some(Value::List(items))
        }
    }
}

/// Generate a random flat relation (set of `arity`-tuples of atoms from
/// domain 0) with about `size` tuples — the common workload shape.
pub fn random_relation<R: Rng + ?Sized>(
    rng: &mut R,
    arity: usize,
    size: usize,
    n_atoms: u32,
) -> Value {
    let mut tuples = Vec::with_capacity(size);
    for _ in 0..size {
        tuples.push(Value::tuple(
            (0..arity).map(|_| Value::atom(0, rng.gen_range(0..n_atoms))),
        ));
    }
    Value::set(tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_values_typecheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = Universe::atoms_and_ints(4, 3);
        let tys = [
            CvType::int(),
            CvType::set(CvType::domain(0)),
            CvType::tuple([CvType::bool(), CvType::list(CvType::int())]),
            CvType::set(CvType::set(CvType::domain(0))),
            CvType::bag(CvType::int()),
        ];
        for ty in &tys {
            for _ in 0..50 {
                let v = random_value(&mut rng, ty, &u, GenParams::default()).unwrap();
                assert!(v.has_type(ty), "{v} : {ty}");
            }
        }
    }

    #[test]
    fn empty_domain_yields_none_for_leaf() {
        let mut rng = StdRng::seed_from_u64(2);
        let u = Universe::atoms_only(0);
        assert_eq!(
            random_value(&mut rng, &CvType::domain(0), &u, GenParams::default()),
            None
        );
        // but a set over the empty domain is the empty set
        let v = random_value(
            &mut rng,
            &CvType::set(CvType::domain(0)),
            &u,
            GenParams::default(),
        )
        .unwrap();
        assert_eq!(v, Value::empty_set());
    }

    #[test]
    fn random_relation_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = random_relation(&mut rng, 2, 100, 10);
        let t = CvType::relation(crate::BaseType::Domain(crate::DomainId(0)), 2);
        assert!(r.has_type(&t));
        assert!(r.len() <= 100);
        assert!(r.len() > 50); // collisions exist but are rare at 10 atoms? no: 100 draws over 100 pairs collide a lot; just sanity-check non-trivial
    }

    #[test]
    fn deterministic_under_seed() {
        let u = Universe::atoms_and_ints(4, 3);
        let ty = CvType::set(CvType::tuple([CvType::domain(0), CvType::int()]));
        let a = random_value(&mut StdRng::seed_from_u64(7), &ty, &u, GenParams::default());
        let b = random_value(&mut StdRng::seed_from_u64(7), &ty, &u, GenParams::default());
        assert_eq!(a, b);
    }
}
