//! Complex values and dynamic type checking.

use crate::base::{Atom, BaseType};
use crate::ty::CvType;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A finite complex value.
///
/// Values form the carrier of every domain construction in the paper:
/// databases are tuples of complex values, queries are functions from
/// complex values to complex values, and the mappings of Section 2.2 relate
/// complex values of associated types.
///
/// `Value` carries a derived total order, which gives sets and bags a
/// canonical normal form (`BTreeSet`/`BTreeMap`) — two equal sets always
/// have identical representations, so `==` is true set equality.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A string.
    Str(String),
    /// An uninterpreted atom.
    Atom(Atom),
    /// An n-ary tuple; `Tuple(vec![])` is the unit value.
    Tuple(Vec<Value>),
    /// A finite set.
    Set(BTreeSet<Value>),
    /// A finite bag: element ↦ multiplicity ≥ 1.
    Bag(BTreeMap<Value, usize>),
    /// A finite list.
    List(Vec<Value>),
}

/// A dynamic type error: a value did not inhabit the expected type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// The expected type.
    pub expected: CvType,
    /// Rendering of the offending (sub)value.
    pub found: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {} does not have type {}",
            self.found, self.expected
        )
    }
}

impl std::error::Error for TypeError {}

impl Value {
    /// The unit value `()`.
    pub fn unit() -> Self {
        Value::Tuple(Vec::new())
    }

    /// Shorthand for an atom of domain `dom`.
    pub fn atom(dom: u32, id: u32) -> Self {
        Value::Atom(Atom::new(crate::DomainId(dom), id))
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Build a set value from an iterator.
    pub fn set(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Set(items.into_iter().collect())
    }

    /// Build a list value from an iterator.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Self {
        Value::List(items.into_iter().collect())
    }

    /// Build a tuple value from an iterator.
    pub fn tuple(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Tuple(items.into_iter().collect())
    }

    /// Build a bag value from an iterator of elements (multiplicities
    /// accumulate).
    pub fn bag(items: impl IntoIterator<Item = Value>) -> Self {
        let mut m: BTreeMap<Value, usize> = BTreeMap::new();
        for v in items {
            *m.entry(v).or_insert(0) += 1;
        }
        Value::Bag(m)
    }

    /// Build a flat binary relation of atoms in domain 0 from `(id, id)`
    /// pairs — the shape of the paper's running examples r₁, r₂, r₃.
    pub fn atom_relation(pairs: &[(u32, u32)]) -> Self {
        Value::set(
            pairs
                .iter()
                .map(|&(x, y)| Value::tuple([Value::atom(0, x), Value::atom(0, y)])),
        )
    }

    /// The empty set.
    pub fn empty_set() -> Self {
        Value::Set(BTreeSet::new())
    }

    /// Is this the empty set?
    pub fn is_empty_set(&self) -> bool {
        matches!(self, Value::Set(s) if s.is_empty())
    }

    /// Number of elements for collections; tuple width for tuples; 1 for
    /// base values. Bag size counts multiplicities.
    pub fn len(&self) -> usize {
        match self {
            Value::Set(s) => s.len(),
            Value::Bag(b) => b.values().sum(),
            Value::List(l) => l.len(),
            Value::Tuple(t) => t.len(),
            _ => 1,
        }
    }

    /// True for empty collections / 0-tuples.
    pub fn is_empty(&self) -> bool {
        match self {
            Value::Set(s) => s.is_empty(),
            Value::Bag(b) => b.is_empty(),
            Value::List(l) => l.is_empty(),
            Value::Tuple(t) => t.is_empty(),
            _ => false,
        }
    }

    /// Dynamic type check: does this value inhabit `ty`?
    pub fn has_type(&self, ty: &CvType) -> bool {
        self.check_type(ty).is_ok()
    }

    /// Dynamic type check with an error describing the first mismatch.
    pub fn check_type(&self, ty: &CvType) -> Result<(), TypeError> {
        let err = || TypeError {
            expected: ty.clone(),
            found: self.to_string(),
        };
        match (self, ty) {
            (Value::Bool(_), CvType::Base(BaseType::Bool))
            | (Value::Int(_), CvType::Base(BaseType::Int))
            | (Value::Str(_), CvType::Base(BaseType::Str)) => Ok(()),
            (Value::Atom(a), CvType::Base(BaseType::Domain(d))) if a.domain == *d => Ok(()),
            (Value::Tuple(vs), CvType::Tuple(ts)) if vs.len() == ts.len() => {
                vs.iter().zip(ts).try_for_each(|(v, t)| v.check_type(t))
            }
            (Value::Set(vs), CvType::Set(t)) => vs.iter().try_for_each(|v| v.check_type(t)),
            (Value::Bag(vs), CvType::Bag(t)) => vs.keys().try_for_each(|v| v.check_type(t)),
            (Value::List(vs), CvType::List(t)) => vs.iter().try_for_each(|v| v.check_type(t)),
            _ => Err(err()),
        }
    }

    /// The *active domain* of the value: the set of base values (booleans,
    /// integers, strings, atoms) occurring anywhere inside it
    /// (Section 3.3). Returned in sorted order without duplicates.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        self.collect_adom(&mut out);
        out
    }

    fn collect_adom(&self, out: &mut BTreeSet<Value>) {
        match self {
            Value::Bool(_) | Value::Int(_) | Value::Str(_) | Value::Atom(_) => {
                out.insert(self.clone());
            }
            Value::Tuple(vs) | Value::List(vs) => vs.iter().for_each(|v| v.collect_adom(out)),
            Value::Set(vs) => vs.iter().for_each(|v| v.collect_adom(out)),
            Value::Bag(vs) => vs.keys().for_each(|v| v.collect_adom(out)),
        }
    }

    /// Set-constructor nesting depth along the deepest path: atoms have
    /// depth 0, `{v}` has depth `1 + depth(v)`. Used by the nest-parity
    /// query of Proposition 4.16.
    pub fn set_nesting_depth(&self) -> usize {
        match self {
            Value::Set(s) => 1 + s.iter().map(Value::set_nesting_depth).max().unwrap_or(0),
            Value::Tuple(vs) | Value::List(vs) => {
                vs.iter().map(Value::set_nesting_depth).max().unwrap_or(0)
            }
            Value::Bag(b) => b.keys().map(Value::set_nesting_depth).max().unwrap_or(0),
            _ => 0,
        }
    }

    /// Project component `i` from a tuple value (0-based).
    pub fn project(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Tuple(vs) => vs.get(i),
            _ => None,
        }
    }

    /// Iterate over a set value's elements, if this is a set.
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the elements of a list value.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Borrow the components of a tuple value.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// Borrow the entries of a bag value.
    pub fn as_bag(&self) -> Option<&BTreeMap<Value, usize>> {
        match self {
            Value::Bag(b) => Some(b),
            _ => None,
        }
    }

    /// Extract a bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract an int, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Is this a base (non-constructed) value?
    pub fn is_base(&self) -> bool {
        matches!(
            self,
            Value::Bool(_) | Value::Int(_) | Value::Str(_) | Value::Atom(_)
        )
    }

    /// The most specific type of a base value; `None` for constructed
    /// values (whose element types are not inferable when empty).
    pub fn base_type(&self) -> Option<BaseType> {
        match self {
            Value::Bool(_) => Some(BaseType::Bool),
            Value::Int(_) => Some(BaseType::Int),
            Value::Str(_) => Some(BaseType::Str),
            Value::Atom(a) => Some(BaseType::Domain(a.domain)),
            _ => None,
        }
    }

    /// Convert a list value to the set of its elements (`toset` of
    /// Section 4.2, at the outermost level only; the nested version lives
    /// in `genpar-parametricity`).
    pub fn toset(&self) -> Option<Value> {
        self.as_list().map(|l| Value::set(l.iter().cloned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::CvType;

    fn r1() -> Value {
        // Example 2.2: r1 = {(e,f),(i,f),(e,j),(i,j),(f,g),(j,g)}
        // letters: a=0 ... e=4, f=5, g=6, i=8, j=9
        Value::atom_relation(&[(4, 5), (8, 5), (4, 9), (8, 9), (5, 6), (9, 6)])
    }

    #[test]
    fn set_is_canonical() {
        let s1 = Value::set([Value::Int(2), Value::Int(1), Value::Int(2)]);
        let s2 = Value::set([Value::Int(1), Value::Int(2)]);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 2);
    }

    #[test]
    fn bag_counts_multiplicity() {
        let b = Value::bag([Value::Int(1), Value::Int(1), Value::Int(2)]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.as_bag().unwrap()[&Value::Int(1)], 2);
    }

    #[test]
    fn list_preserves_order_and_duplicates() {
        let l = Value::list([Value::Int(2), Value::Int(1), Value::Int(2)]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.as_list().unwrap()[0], Value::Int(2));
        assert_ne!(
            l,
            Value::list([Value::Int(1), Value::Int(2), Value::Int(2)])
        );
    }

    #[test]
    fn type_check_accepts_well_typed() {
        let t = CvType::relation(BaseType::Domain(crate::DomainId(0)), 2);
        assert!(r1().has_type(&t));
    }

    #[test]
    fn type_check_rejects_wrong_arity() {
        let t = CvType::relation(BaseType::Domain(crate::DomainId(0)), 3);
        assert!(!r1().has_type(&t));
    }

    #[test]
    fn type_check_rejects_wrong_domain() {
        let t = CvType::relation(BaseType::Domain(crate::DomainId(1)), 2);
        let err = r1().check_type(&t).unwrap_err();
        // the error points at the innermost mismatching leaf
        assert_eq!(err.expected, CvType::domain(1));
    }

    #[test]
    fn type_check_rejects_base_mismatch() {
        assert!(!Value::Int(1).has_type(&CvType::bool()));
        assert!(Value::Bool(true).has_type(&CvType::bool()));
        assert!(Value::str("x").has_type(&CvType::str()));
        assert!(!Value::str("x").has_type(&CvType::int()));
    }

    #[test]
    fn empty_set_inhabits_every_set_type() {
        assert!(Value::empty_set().has_type(&CvType::set(CvType::int())));
        assert!(Value::empty_set().has_type(&CvType::set(CvType::set(CvType::bool()))));
        assert!(!Value::empty_set().has_type(&CvType::int()));
    }

    #[test]
    fn unit_value_and_type() {
        assert!(Value::unit().has_type(&CvType::tuple([])));
        assert!(Value::unit().is_empty());
    }

    #[test]
    fn active_domain_collects_leaves() {
        let v = Value::tuple([
            Value::Int(1),
            Value::set([Value::Int(2), Value::atom(0, 0)]),
            Value::list([Value::Int(1)]),
        ]);
        let adom = v.active_domain();
        assert_eq!(
            adom.into_iter().collect::<Vec<_>>(),
            vec![Value::Int(1), Value::Int(2), Value::atom(0, 0)]
        );
    }

    #[test]
    fn active_domain_of_r1_has_five_atoms() {
        // adom(r1) = {e, f, g, i, j}
        assert_eq!(r1().active_domain().len(), 5);
    }

    #[test]
    fn set_nesting_depth() {
        assert_eq!(Value::Int(3).set_nesting_depth(), 0);
        assert_eq!(Value::set([Value::Int(3)]).set_nesting_depth(), 1);
        assert_eq!(
            Value::set([Value::set([Value::Int(3)])]).set_nesting_depth(),
            2
        );
        // nesting passes through tuples and lists
        assert_eq!(
            Value::tuple([Value::set([Value::Int(1)])]).set_nesting_depth(),
            1
        );
        assert_eq!(Value::empty_set().set_nesting_depth(), 1);
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let mut vs = vec![
            Value::set([Value::Int(2)]),
            Value::Int(5),
            Value::Bool(true),
            Value::list([Value::Int(1)]),
            Value::atom(0, 1),
        ];
        vs.sort();
        let again = {
            let mut w = vs.clone();
            w.sort();
            w
        };
        assert_eq!(vs, again);
    }

    #[test]
    fn toset_on_list() {
        let l = Value::list([Value::Int(2), Value::Int(1), Value::Int(2)]);
        assert_eq!(l.toset(), Some(Value::set([Value::Int(1), Value::Int(2)])));
        assert_eq!(Value::Int(1).toset(), None);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(9).as_int(), Some(9));
        assert_eq!(Value::Int(9).as_bool(), None);
        let t = Value::tuple([Value::Int(1), Value::Int(2)]);
        assert_eq!(t.project(1), Some(&Value::Int(2)));
        assert_eq!(t.project(2), None);
        assert!(Value::Int(1).is_base());
        assert!(!t.is_base());
        assert_eq!(
            Value::atom(3, 7).base_type(),
            Some(BaseType::Domain(crate::DomainId(3)))
        );
        assert_eq!(t.base_type(), None);
    }
}
