//! Complex value types (Definition 2.1) and type expressions
//! (Definition 2.7).

use crate::base::BaseType;
use std::fmt;

/// A complex value type over a signature Σ (Definition 2.1): a tree whose
/// leaves are base types and whose internal nodes are the type constructors
/// `×` (products/tuples), `{}` (sets), `⟅⟆` (bags) and `⟨⟩` (lists).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CvType {
    /// A base type leaf.
    Base(BaseType),
    /// Product of `n` types (n-ary tuples). `Tuple(vec![])` is the unit
    /// type with the single value `()`.
    Tuple(Vec<CvType>),
    /// Finite sets of elements of the inner type.
    Set(Box<CvType>),
    /// Finite bags (multisets) of elements of the inner type.
    Bag(Box<CvType>),
    /// Finite lists of elements of the inner type.
    List(Box<CvType>),
}

impl CvType {
    /// Shorthand for `Base(BaseType::Bool)`.
    pub fn bool() -> Self {
        CvType::Base(BaseType::Bool)
    }
    /// Shorthand for `Base(BaseType::Int)`.
    pub fn int() -> Self {
        CvType::Base(BaseType::Int)
    }
    /// Shorthand for `Base(BaseType::Str)`.
    pub fn str() -> Self {
        CvType::Base(BaseType::Str)
    }
    /// Shorthand for a domain leaf.
    pub fn domain(id: u32) -> Self {
        CvType::Base(BaseType::Domain(crate::DomainId(id)))
    }
    /// Shorthand for `Set(t)`.
    pub fn set(t: CvType) -> Self {
        CvType::Set(Box::new(t))
    }
    /// Shorthand for `Bag(t)`.
    pub fn bag(t: CvType) -> Self {
        CvType::Bag(Box::new(t))
    }
    /// Shorthand for `List(t)`.
    pub fn list(t: CvType) -> Self {
        CvType::List(Box::new(t))
    }
    /// Shorthand for a product type.
    pub fn tuple(ts: impl IntoIterator<Item = CvType>) -> Self {
        CvType::Tuple(ts.into_iter().collect())
    }
    /// The type of flat `n`-ary relations over one base type: `{b × … × b}`.
    pub fn relation(b: BaseType, arity: usize) -> Self {
        CvType::set(CvType::tuple(std::iter::repeat_n(CvType::Base(b), arity)))
    }

    /// Does the type contain a set constructor anywhere?
    /// (Proposition 2.8(ii) hinges on this.)
    pub fn contains_set(&self) -> bool {
        match self {
            CvType::Base(_) => false,
            CvType::Set(_) => true,
            CvType::Tuple(ts) => ts.iter().any(CvType::contains_set),
            CvType::Bag(t) | CvType::List(t) => t.contains_set(),
        }
    }

    /// Does the type contain a bag or list constructor anywhere?
    pub fn contains_collection(&self) -> bool {
        match self {
            CvType::Base(_) => false,
            CvType::Set(_) | CvType::Bag(_) | CvType::List(_) => true,
            CvType::Tuple(ts) => ts.iter().any(CvType::contains_collection),
        }
    }

    /// Maximum constructor-nesting depth; a base type has depth 0.
    pub fn depth(&self) -> usize {
        match self {
            CvType::Base(_) => 0,
            CvType::Tuple(ts) => 1 + ts.iter().map(CvType::depth).max().unwrap_or(0),
            CvType::Set(t) | CvType::Bag(t) | CvType::List(t) => 1 + t.depth(),
        }
    }

    /// All base types occurring at the leaves, in left-to-right order and
    /// with duplicates.
    pub fn leaves(&self) -> Vec<BaseType> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<BaseType>) {
        match self {
            CvType::Base(b) => out.push(*b),
            CvType::Tuple(ts) => ts.iter().for_each(|t| t.collect_leaves(out)),
            CvType::Set(t) | CvType::Bag(t) | CvType::List(t) => t.collect_leaves(out),
        }
    }

    /// The `n`-fold nested set type `{ⁿ self}ⁿ` used by the nest-parity
    /// query of Proposition 4.16.
    pub fn nested_set(self, n: usize) -> CvType {
        (0..n).fold(self, |t, _| CvType::set(t))
    }
}

impl fmt::Display for CvType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CvType::Base(b) => write!(f, "{b}"),
            CvType::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " × ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            CvType::Set(t) => write!(f, "{{{t}}}"),
            CvType::Bag(t) => write!(f, "⟅{t}⟆"),
            CvType::List(t) => write!(f, "⟨{t}⟩"),
        }
    }
}

/// A type variable appearing in a [`TypeExpr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TyVar(pub u32);

impl fmt::Display for TyVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // X, Y, Z, X3, X4, ...
        match self.0 {
            0 => write!(f, "X"),
            1 => write!(f, "Y"),
            2 => write!(f, "Z"),
            n => write!(f, "X{n}"),
        }
    }
}

/// A type expression `T(X₁,…,Xₙ)` (Definition 2.7): a tree with type
/// variables (and possibly base types) at the leaves and the complex-value
/// type constructors at internal nodes.
///
/// Substituting concrete base types for the variables yields *associated
/// types*; substituting mappings yields the extended mapping constructors
/// of `genpar-mapping`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TypeExpr {
    /// A type-variable leaf.
    Var(TyVar),
    /// A constant base-type leaf (allowed by Section 4's generalization;
    /// corresponds to the identity mapping on that base type).
    Base(BaseType),
    /// Product.
    Tuple(Vec<TypeExpr>),
    /// Set.
    Set(Box<TypeExpr>),
    /// Bag.
    Bag(Box<TypeExpr>),
    /// List.
    List(Box<TypeExpr>),
}

impl TypeExpr {
    /// Shorthand for `Var(TyVar(i))`.
    pub fn var(i: u32) -> Self {
        TypeExpr::Var(TyVar(i))
    }
    /// Shorthand for `Set(t)`.
    pub fn set(t: TypeExpr) -> Self {
        TypeExpr::Set(Box::new(t))
    }
    /// Shorthand for `Bag(t)`.
    pub fn bag(t: TypeExpr) -> Self {
        TypeExpr::Bag(Box::new(t))
    }
    /// Shorthand for `List(t)`.
    pub fn list(t: TypeExpr) -> Self {
        TypeExpr::List(Box::new(t))
    }
    /// Shorthand for a product.
    pub fn tuple(ts: impl IntoIterator<Item = TypeExpr>) -> Self {
        TypeExpr::Tuple(ts.into_iter().collect())
    }
    /// The type expression of flat `arity`-ary relations over one variable:
    /// `{X × … × X}`.
    pub fn relation(v: TyVar, arity: usize) -> Self {
        TypeExpr::set(TypeExpr::tuple(std::iter::repeat_n(
            TypeExpr::Var(v),
            arity,
        )))
    }

    /// The set of variables occurring in the expression, sorted.
    pub fn vars(&self) -> Vec<TyVar> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<TyVar>) {
        match self {
            TypeExpr::Var(v) => out.push(*v),
            TypeExpr::Base(_) => {}
            TypeExpr::Tuple(ts) => ts.iter().for_each(|t| t.collect_vars(out)),
            TypeExpr::Set(t) | TypeExpr::Bag(t) | TypeExpr::List(t) => t.collect_vars(out),
        }
    }

    /// `T(τ₁/X₁,…,τₙ/Xₙ)`: substitute concrete types for variables. The
    /// function `subst` gives the type for each variable; variables not in
    /// its domain are an error, so it returns `Option`.
    pub fn substitute(&self, subst: &dyn Fn(TyVar) -> Option<CvType>) -> Option<CvType> {
        match self {
            TypeExpr::Var(v) => subst(*v),
            TypeExpr::Base(b) => Some(CvType::Base(*b)),
            TypeExpr::Tuple(ts) => ts
                .iter()
                .map(|t| t.substitute(subst))
                .collect::<Option<Vec<_>>>()
                .map(CvType::Tuple),
            TypeExpr::Set(t) => t.substitute(subst).map(CvType::set),
            TypeExpr::Bag(t) => t.substitute(subst).map(CvType::bag),
            TypeExpr::List(t) => t.substitute(subst).map(CvType::list),
        }
    }

    /// Substitute a single type for *all* variables (the common unary
    /// case `T(τ/X)`).
    pub fn instantiate(&self, tau: &CvType) -> CvType {
        self.substitute(&|_| Some(tau.clone()))
            .expect("closure is total")
    }

    /// Is the expression ground (variable-free)? A ground expression is a
    /// plain [`CvType`].
    pub fn is_ground(&self) -> bool {
        self.vars().is_empty()
    }

    /// View a ground expression as a [`CvType`].
    pub fn to_cv_type(&self) -> Option<CvType> {
        self.substitute(&|_| None)
    }

    /// Embed a [`CvType`] as a variable-free type expression.
    pub fn from_cv_type(t: &CvType) -> TypeExpr {
        match t {
            CvType::Base(b) => TypeExpr::Base(*b),
            CvType::Tuple(ts) => TypeExpr::Tuple(ts.iter().map(TypeExpr::from_cv_type).collect()),
            CvType::Set(t) => TypeExpr::set(TypeExpr::from_cv_type(t)),
            CvType::Bag(t) => TypeExpr::bag(TypeExpr::from_cv_type(t)),
            CvType::List(t) => TypeExpr::list(TypeExpr::from_cv_type(t)),
        }
    }
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Var(v) => write!(f, "{v}"),
            TypeExpr::Base(b) => write!(f, "{b}"),
            TypeExpr::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " × ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            TypeExpr::Set(t) => write!(f, "{{{t}}}"),
            TypeExpr::Bag(t) => write!(f, "⟅{t}⟆"),
            TypeExpr::List(t) => write!(f, "⟨{t}⟩"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_type_shape() {
        let t = CvType::relation(BaseType::Int, 2);
        assert_eq!(
            t,
            CvType::set(CvType::tuple([CvType::int(), CvType::int()]))
        );
        assert_eq!(t.to_string(), "{(int × int)}");
    }

    #[test]
    fn contains_set_detection() {
        assert!(!CvType::int().contains_set());
        assert!(CvType::set(CvType::int()).contains_set());
        assert!(CvType::tuple([CvType::int(), CvType::set(CvType::int())]).contains_set());
        assert!(CvType::list(CvType::set(CvType::int())).contains_set());
        assert!(!CvType::list(CvType::bag(CvType::int())).contains_set());
        assert!(CvType::list(CvType::bag(CvType::int())).contains_collection());
        assert!(!CvType::tuple([CvType::int()]).contains_collection());
    }

    #[test]
    fn depth_counts_constructors() {
        assert_eq!(CvType::int().depth(), 0);
        assert_eq!(CvType::set(CvType::int()).depth(), 1);
        assert_eq!(
            CvType::set(CvType::tuple([CvType::int(), CvType::int()])).depth(),
            2
        );
        assert_eq!(CvType::int().nested_set(5).depth(), 5);
    }

    #[test]
    fn leaves_in_order() {
        let t = CvType::tuple([CvType::int(), CvType::set(CvType::domain(0)), CvType::int()]);
        assert_eq!(
            t.leaves(),
            vec![
                BaseType::Int,
                BaseType::Domain(crate::DomainId(0)),
                BaseType::Int
            ]
        );
    }

    #[test]
    fn type_expr_substitution_associated_types() {
        // T(X) = {X × X}; associated types T(int), T(D0).
        let t = TypeExpr::relation(TyVar(0), 2);
        assert_eq!(
            t.instantiate(&CvType::int()),
            CvType::relation(BaseType::Int, 2)
        );
        assert_eq!(
            t.instantiate(&CvType::domain(0)),
            CvType::relation(BaseType::Domain(crate::DomainId(0)), 2)
        );
    }

    #[test]
    fn type_expr_multi_var_substitution() {
        // T(X, Y) = {X × Y}
        let t = TypeExpr::set(TypeExpr::tuple([TypeExpr::var(0), TypeExpr::var(1)]));
        assert_eq!(t.vars(), vec![TyVar(0), TyVar(1)]);
        let got = t
            .substitute(&|v| {
                Some(if v == TyVar(0) {
                    CvType::int()
                } else {
                    CvType::str()
                })
            })
            .unwrap();
        assert_eq!(
            got,
            CvType::set(CvType::tuple([CvType::int(), CvType::str()]))
        );
    }

    #[test]
    fn substitution_fails_on_unbound_var() {
        let t = TypeExpr::var(3);
        assert_eq!(t.substitute(&|_| None), None);
        assert!(!t.is_ground());
    }

    #[test]
    fn ground_roundtrip() {
        let t = CvType::set(CvType::tuple([CvType::int(), CvType::bool()]));
        let e = TypeExpr::from_cv_type(&t);
        assert!(e.is_ground());
        assert_eq!(e.to_cv_type(), Some(t));
    }

    #[test]
    fn display_type_expr() {
        let t = TypeExpr::set(TypeExpr::tuple([TypeExpr::var(0), TypeExpr::var(1)]));
        assert_eq!(t.to_string(), "{(X × Y)}");
        assert_eq!(TypeExpr::list(TypeExpr::var(2)).to_string(), "⟨Z⟩");
        assert_eq!(TypeExpr::bag(TypeExpr::var(3)).to_string(), "⟅X3⟆");
    }
}
