//! Base types, atoms and signatures.
//!
//! The paper assumes "a database instance may be defined over a signature Σ,
//! namely a collection of base types with interpreted functions and
//! predicates", where Σ always contains `bool` (Section 2, first
//! paragraph). Classical genericity treats data values as *uninterpreted*;
//! the paper's generalization keeps several interpreted base types (`int`
//! with `even`, `>`, constants such as `7`, …) side by side with abstract
//! domains of uninterpreted atoms. We model both.

use std::fmt;

/// Boxed implementation of an interpreted function symbol.
pub type FnImpl = Box<dyn Fn(&[crate::Value]) -> crate::Value + Send + Sync>;
/// Boxed implementation of an interpreted predicate symbol.
pub type PredImpl = Box<dyn Fn(&[crate::Value]) -> bool + Send + Sync>;

/// Identifier of an uninterpreted base domain within a [`Signature`].
///
/// The classical relational model has a single abstract domain; the paper
/// explicitly generalizes "from one (almost) abstract domain to many
/// domains" (Section 5), so domains are first-class and values carry the
/// domain they belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// An uninterpreted element of an abstract domain.
///
/// Atoms have identity (so equality is decidable *by the implementation*)
/// but carry no interpreted structure: no ordering, arithmetic or
/// user-visible predicates apply to them. Whether a *query* is allowed to
/// observe atom equality is exactly what distinguishes the genericity
/// classes of Section 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// The domain this atom belongs to.
    pub domain: DomainId,
    /// Identity of the atom within its domain.
    pub id: u32,
}

impl Atom {
    /// Create an atom `id` of `domain`.
    pub const fn new(domain: DomainId, id: u32) -> Self {
        Atom { domain, id }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Small ids print as letters for readability in examples that
        // mirror the paper (a, b, c, ...); larger ids as `D0#17`.
        if self.domain.0 == 0 && self.id < 26 {
            write!(f, "{}", (b'a' + self.id as u8) as char)
        } else {
            write!(f, "{}#{}", self.domain, self.id)
        }
    }
}

/// A base type: one of the interpreted types `bool`, `int`, `str`, or an
/// uninterpreted abstract domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BaseType {
    /// The boolean type, required by the paper to be part of every Σ.
    Bool,
    /// Interpreted integers (with `=`, `<`, `even`, constants, ...).
    Int,
    /// Interpreted strings.
    Str,
    /// An uninterpreted domain of atoms.
    Domain(DomainId),
}

impl BaseType {
    /// True if this base type is interpreted (has functions/predicates
    /// beyond bare identity of representation).
    pub fn is_interpreted(&self) -> bool {
        !matches!(self, BaseType::Domain(_))
    }
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Bool => write!(f, "bool"),
            BaseType::Int => write!(f, "int"),
            BaseType::Str => write!(f, "str"),
            BaseType::Domain(d) => write!(f, "{d}"),
        }
    }
}

/// An interpreted function symbol of a signature: a named total function
/// from a tuple of base-typed arguments to a base-typed result.
///
/// Section 2.5 defines when a mapping *preserves* a function `f`: `f` must
/// be invariant under the extended mapping. `genpar-mapping` consumes this
/// struct to implement that check.
pub struct InterpFn {
    /// The function's name (e.g. `succ`).
    pub name: String,
    /// Argument base types.
    pub args: Vec<BaseType>,
    /// Result base type.
    pub result: BaseType,
    /// The interpretation. Arguments are values of the base types in
    /// `args`; the implementation may assume they are well-typed.
    pub eval: FnImpl,
}

impl fmt::Debug for InterpFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InterpFn")
            .field("name", &self.name)
            .field("args", &self.args)
            .field("result", &self.result)
            .finish_non_exhaustive()
    }
}

/// An interpreted predicate symbol of a signature.
///
/// The paper gives predicates two readings (Section 2.5): as possibly
/// infinite sets of tuples, or as boolean-valued functions. It adopts the
/// functional view (with mappings required to be the identity on `bool`),
/// and so do we.
pub struct InterpPred {
    /// The predicate's name (e.g. `even`, `<`).
    pub name: String,
    /// Argument base types.
    pub args: Vec<BaseType>,
    /// The interpretation.
    pub eval: PredImpl,
}

impl fmt::Debug for InterpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InterpPred")
            .field("name", &self.name)
            .field("args", &self.args)
            .finish_non_exhaustive()
    }
}

/// A signature Σ: the base types available to a data model instance,
/// together with their interpreted functions and predicates.
///
/// `bool`, `int` and `str` are always present (the paper requires at least
/// `bool`); uninterpreted domains are registered by name.
#[derive(Debug, Default)]
pub struct Signature {
    domains: Vec<String>,
    functions: Vec<InterpFn>,
    predicates: Vec<InterpPred>,
}

impl Signature {
    /// An empty signature: `bool`/`int`/`str` only, no abstract domains,
    /// no interpreted symbols.
    pub fn new() -> Self {
        Signature::default()
    }

    /// A signature with `n` anonymous abstract domains `D0..Dn-1` and no
    /// interpreted symbols — the classical setting of [2, 7] generalized
    /// to many domains.
    pub fn with_domains(n: usize) -> Self {
        let mut s = Signature::new();
        for i in 0..n {
            s.add_domain(format!("D{i}"));
        }
        s
    }

    /// Register a fresh uninterpreted domain and return its id.
    pub fn add_domain(&mut self, name: impl Into<String>) -> DomainId {
        let id = DomainId(self.domains.len() as u32);
        self.domains.push(name.into());
        id
    }

    /// Number of registered abstract domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Name of a registered domain.
    pub fn domain_name(&self, id: DomainId) -> Option<&str> {
        self.domains.get(id.0 as usize).map(String::as_str)
    }

    /// Register an interpreted function symbol.
    pub fn add_function(&mut self, f: InterpFn) {
        self.functions.push(f);
    }

    /// Register an interpreted predicate symbol.
    pub fn add_predicate(&mut self, p: InterpPred) {
        self.predicates.push(p);
    }

    /// Look up an interpreted function by name.
    pub fn function(&self, name: &str) -> Option<&InterpFn> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Look up an interpreted predicate by name.
    pub fn predicate(&self, name: &str) -> Option<&InterpPred> {
        self.predicates.iter().find(|p| p.name == name)
    }

    /// All interpreted functions.
    pub fn functions(&self) -> &[InterpFn] {
        &self.functions
    }

    /// All interpreted predicates.
    pub fn predicates(&self) -> &[InterpPred] {
        &self.predicates
    }

    /// The standard arithmetic signature used throughout the paper's
    /// examples: `int` with the predicates `even`, `<` and the unary
    /// predicate `=7` ("=₇" of Section 2.5), plus the successor function.
    pub fn standard_int() -> Self {
        use crate::Value;
        let mut s = Signature::new();
        s.add_predicate(InterpPred {
            name: "even".into(),
            args: vec![BaseType::Int],
            eval: Box::new(|vs: &[Value]| match vs {
                [Value::Int(n)] => n % 2 == 0,
                _ => false,
            }),
        });
        s.add_predicate(InterpPred {
            name: "lt".into(),
            args: vec![BaseType::Int, BaseType::Int],
            eval: Box::new(|vs: &[Value]| match vs {
                [Value::Int(a), Value::Int(b)] => a < b,
                _ => false,
            }),
        });
        s.add_predicate(InterpPred {
            name: "eq7".into(),
            args: vec![BaseType::Int],
            eval: Box::new(|vs: &[Value]| matches!(vs, [Value::Int(7)])),
        });
        s.add_function(InterpFn {
            name: "succ".into(),
            args: vec![BaseType::Int],
            result: BaseType::Int,
            eval: Box::new(|vs: &[Value]| match vs {
                [Value::Int(n)] => Value::Int(n + 1),
                _ => Value::Int(0),
            }),
        });
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn atoms_have_identity_and_order() {
        let d = DomainId(0);
        let a = Atom::new(d, 0);
        let b = Atom::new(d, 1);
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(a, Atom::new(d, 0));
    }

    #[test]
    fn atoms_in_different_domains_differ() {
        let a = Atom::new(DomainId(0), 3);
        let b = Atom::new(DomainId(1), 3);
        assert_ne!(a, b);
    }

    #[test]
    fn atom_display_letters() {
        assert_eq!(Atom::new(DomainId(0), 0).to_string(), "a");
        assert_eq!(Atom::new(DomainId(0), 2).to_string(), "c");
        assert_eq!(Atom::new(DomainId(1), 2).to_string(), "D1#2");
    }

    #[test]
    fn signature_registers_domains() {
        let mut s = Signature::new();
        let d0 = s.add_domain("people");
        let d1 = s.add_domain("cities");
        assert_eq!(d0, DomainId(0));
        assert_eq!(d1, DomainId(1));
        assert_eq!(s.domain_name(d0), Some("people"));
        assert_eq!(s.domain_name(d1), Some("cities"));
        assert_eq!(s.domain_name(DomainId(2)), None);
        assert_eq!(s.domain_count(), 2);
    }

    #[test]
    fn with_domains_names_sequentially() {
        let s = Signature::with_domains(3);
        assert_eq!(s.domain_count(), 3);
        assert_eq!(s.domain_name(DomainId(2)), Some("D2"));
    }

    #[test]
    fn standard_int_signature_symbols() {
        let s = Signature::standard_int();
        let even = s.predicate("even").unwrap();
        assert!((even.eval)(&[Value::Int(4)]));
        assert!(!(even.eval)(&[Value::Int(7)]));
        let eq7 = s.predicate("eq7").unwrap();
        assert!((eq7.eval)(&[Value::Int(7)]));
        assert!(!(eq7.eval)(&[Value::Int(8)]));
        let lt = s.predicate("lt").unwrap();
        assert!((lt.eval)(&[Value::Int(1), Value::Int(2)]));
        assert!(!(lt.eval)(&[Value::Int(2), Value::Int(2)]));
        let succ = s.function("succ").unwrap();
        assert_eq!((succ.eval)(&[Value::Int(41)]), Value::Int(42));
        assert!(s.predicate("odd").is_none());
        assert!(s.function("pred").is_none());
    }

    #[test]
    fn interpreted_flags() {
        assert!(BaseType::Int.is_interpreted());
        assert!(BaseType::Bool.is_interpreted());
        assert!(BaseType::Str.is_interpreted());
        assert!(!BaseType::Domain(DomainId(0)).is_interpreted());
    }
}
