//! Parser robustness: `parse_value` must return a positioned
//! `ParseError` on malformed input — never panic — for arbitrary byte
//! strings and for near-miss structured inputs.

use genpar_value::parse::parse_value;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (interpreted lossily as UTF-8) never panic the
    /// value parser, and every error is positioned within the input.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..48)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        match parse_value(&text) {
            Ok(_) => {}
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(!msg.is_empty());
            }
        }
    }

    /// Structured near-misses: value-ish character soup exercises deep
    /// nesting and delimiter confusion without panicking.
    #[test]
    fn delimiter_soup_never_panics(s in "[(-}]{0,40}") {
        let _ = parse_value(&s);
    }

    /// Printable ASCII never panics either (covers identifiers, digits
    /// and punctuation mixes the lossy-UTF8 case rarely produces).
    #[test]
    fn printable_ascii_never_panics(s in "[ -~]{0,40}") {
        let _ = parse_value(&s);
    }

    /// Round-trip sanity under fuzzing: anything that parses must
    /// re-parse from its own display form to an equal value.
    #[test]
    fn parsed_values_roundtrip(s in "[ -~]{0,40}") {
        if let Ok(v) = parse_value(&s) {
            let reparsed = parse_value(&v.to_string());
            prop_assert_eq!(reparsed.ok(), Some(v));
        }
    }
}
