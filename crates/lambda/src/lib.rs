#![warn(missing_docs)]
//! # genpar-lambda — the 2nd-order λ-calculus (System F)
//!
//! Section 4.1 of the paper works in the 2nd-order λ-calculus of Reynolds
//! and Girard "with products and lists added" — "an expressive language
//! with a polymorphic type system … more expressive than all current query
//! languages of interest". This crate implements it:
//!
//! * [`ty::Ty`] — types: base types, type variables (de Bruijn), `→`, `∀`
//!   (optionally **equality-bounded**, the paper's `∀X⁼` of Section 4.1,
//!   used by list/set difference), products, lists;
//! * [`term::Term`] — terms: λ-abstraction, application, type abstraction
//!   `ΛX.e`, type application `e[τ]`, tuples, list constructors, `foldr`,
//!   conditionals, and an `eq` primitive available only at
//!   equality-admissible types;
//! * [`tyck`] — a syntax-directed type checker;
//! * [`eval`] — a call-by-value normalizer with closures, plus *table
//!   functions* (finite function graphs) so that semantic function spaces
//!   can be enumerated;
//! * [`semantics`] — the "simple (set-theoretic) typed semantic domain" of
//!   Section 4.2: exhaustive enumeration of the inhabitants of a
//!   monomorphic type over a finite universe (function spaces included);
//! * [`stdlib`] — the paper's running example terms: `I`, append `#`,
//!   `zip`, `count`, `fold`, `map`, filter/σ, `ins`, `reverse`, and
//!   equality-bounded list difference.
//!
//! The logical-relations interpretation of types (Definitions 4.2–4.3)
//! and the parametricity checker live in `genpar-parametricity`, which
//! builds on this crate.

pub mod church;
pub mod eval;
pub mod semantics;
pub mod stdlib;
pub mod term;
pub mod ty;
pub mod tyck;

pub use eval::{eval_closed, LValue};
pub use term::Term;
pub use ty::{BaseTy, Ty};
pub use tyck::{type_of, TyckError};
