//! The finite set-theoretic semantic domain of Section 4.2.
//!
//! "We use a simple (set-theoretic) typed semantic domain … the domain for
//! `α → β` includes all functions from the domain of `α` to that of `β`."
//! Over finite universes every monomorphic type (here: without `∀`) has a
//! finitely enumerable domain — function spaces become [`LValue::Table`]s
//! — which is what makes the logical relation of Definitions 4.2–4.3
//! decidable in `genpar-parametricity`.

use crate::eval::LValue;
use crate::ty::{BaseTy, Ty};

/// Enumeration parameters: the finite universe.
#[derive(Debug, Clone, Copy)]
pub struct SemUniverse {
    /// Integers `0..n_ints` inhabit `int` (they double as abstract
    /// elements when a type variable is instantiated at `int`).
    pub n_ints: i64,
    /// Maximum list length enumerated.
    pub max_list: usize,
    /// Hard cap on domain size (function spaces explode as `|B|^|A|`);
    /// enumeration returns `None` beyond it.
    pub max_dom: usize,
}

impl Default for SemUniverse {
    fn default() -> Self {
        SemUniverse {
            n_ints: 3,
            max_list: 2,
            max_dom: 4096,
        }
    }
}

/// Enumerate all inhabitants of a `∀`-free closed type over the universe.
/// Type variables are not allowed (instantiate first); returns `None` if
/// the domain exceeds `max_dom` or the type contains `Var`/`Forall`.
pub fn enumerate_domain(ty: &Ty, u: SemUniverse) -> Option<Vec<LValue>> {
    let out = match ty {
        Ty::Var(_) | Ty::Forall { .. } => return None,
        Ty::Base(BaseTy::Bool) => vec![LValue::Bool(false), LValue::Bool(true)],
        Ty::Base(BaseTy::Int) => (0..u.n_ints).map(LValue::Int).collect(),
        Ty::Prod(ts) => {
            let parts: Vec<Vec<LValue>> = ts
                .iter()
                .map(|t| enumerate_domain(t, u))
                .collect::<Option<_>>()?;
            let mut acc: Vec<Vec<LValue>> = vec![Vec::new()];
            for p in &parts {
                let mut next = Vec::with_capacity(acc.len() * p.len());
                for prefix in &acc {
                    for v in p {
                        let mut row = prefix.clone();
                        row.push(v.clone());
                        next.push(row);
                    }
                }
                if next.len() > u.max_dom {
                    return None;
                }
                acc = next;
            }
            acc.into_iter().map(LValue::Tuple).collect()
        }
        Ty::List(t) => {
            let elems = enumerate_domain(t, u)?;
            let mut out: Vec<Vec<LValue>> = vec![Vec::new()];
            let mut frontier: Vec<Vec<LValue>> = vec![Vec::new()];
            for _ in 0..u.max_list {
                let mut next = Vec::new();
                for prefix in &frontier {
                    for v in &elems {
                        let mut l = prefix.clone();
                        l.push(v.clone());
                        next.push(l);
                    }
                }
                out.extend(next.iter().cloned());
                if out.len() > u.max_dom {
                    return None;
                }
                frontier = next;
            }
            out.into_iter().map(LValue::List).collect()
        }
        Ty::Arrow(a, b) => {
            let dom = enumerate_domain(a, u)?;
            let cod = enumerate_domain(b, u)?;
            if dom.is_empty() {
                return Some(vec![LValue::table([])]);
            }
            if cod.is_empty() {
                return Some(Vec::new());
            }
            // |cod|^|dom| tables
            let total = (cod.len() as u64).checked_pow(dom.len() as u32)?;
            if total as usize > u.max_dom {
                return None;
            }
            let mut out = Vec::with_capacity(total as usize);
            for code in 0..total {
                let mut c = code;
                let mut table = Vec::with_capacity(dom.len());
                for x in &dom {
                    table.push((x.clone(), cod[(c % cod.len() as u64) as usize].clone()));
                    c /= cod.len() as u64;
                }
                out.push(LValue::table(table));
            }
            out
        }
    };
    (out.len() <= u.max_dom).then_some(out)
}

/// Size of a type's domain, if enumerable under the universe.
pub fn domain_size(ty: &Ty, u: SemUniverse) -> Option<usize> {
    enumerate_domain(ty, u).map(|v| v.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::apply;

    #[test]
    fn base_domains() {
        let u = SemUniverse::default();
        assert_eq!(domain_size(&Ty::bool(), u), Some(2));
        assert_eq!(domain_size(&Ty::int(), u), Some(3));
    }

    #[test]
    fn product_domains_multiply() {
        let u = SemUniverse::default();
        assert_eq!(domain_size(&Ty::pair(Ty::bool(), Ty::int()), u), Some(6));
        assert_eq!(domain_size(&Ty::prod([]), u), Some(1)); // unit
    }

    #[test]
    fn list_domains_sum_lengths() {
        let u = SemUniverse {
            n_ints: 2,
            max_list: 2,
            max_dom: 4096,
        };
        // lengths 0,1,2 over 2 elements: 1 + 2 + 4 = 7
        assert_eq!(domain_size(&Ty::list(Ty::int()), u), Some(7));
    }

    #[test]
    fn function_domains_exponentiate() {
        let u = SemUniverse {
            n_ints: 2,
            max_list: 1,
            max_dom: 4096,
        };
        // bool → int(2): 2^2 = 4
        assert_eq!(domain_size(&Ty::arrow(Ty::bool(), Ty::int()), u), Some(4));
        // all 4 tables are distinct and applicable
        let fns = enumerate_domain(&Ty::arrow(Ty::bool(), Ty::int()), u).unwrap();
        for f in &fns {
            apply(f, &LValue::Bool(true)).unwrap();
            apply(f, &LValue::Bool(false)).unwrap();
        }
    }

    #[test]
    fn empty_domain_function_space() {
        // int(0) → bool has exactly one function (the empty table)
        let u = SemUniverse {
            n_ints: 0,
            max_list: 1,
            max_dom: 64,
        };
        assert_eq!(domain_size(&Ty::arrow(Ty::int(), Ty::bool()), u), Some(1));
        // bool → int(0) has none
        assert_eq!(domain_size(&Ty::arrow(Ty::bool(), Ty::int()), u), Some(0));
    }

    #[test]
    fn budget_respected() {
        let u = SemUniverse {
            n_ints: 4,
            max_list: 3,
            max_dom: 100,
        };
        // int(4) → int(4): 4^4 = 256 > 100
        assert_eq!(domain_size(&Ty::arrow(Ty::int(), Ty::int()), u), None);
    }

    #[test]
    fn polymorphic_types_not_enumerable() {
        let u = SemUniverse::default();
        assert_eq!(enumerate_domain(&Ty::Var(0), u), None);
        assert_eq!(
            enumerate_domain(&Ty::forall(Ty::arrow(Ty::Var(0), Ty::Var(0))), u),
            None
        );
    }

    #[test]
    fn higher_order_domains() {
        let u = SemUniverse {
            n_ints: 2,
            max_list: 1,
            max_dom: 4096,
        };
        // (bool → bool) → bool: dom = 4 fns, cod = 2 → 2^4 = 16
        let t = Ty::arrow(Ty::arrow(Ty::bool(), Ty::bool()), Ty::bool());
        assert_eq!(domain_size(&t, u), Some(16));
    }
}
