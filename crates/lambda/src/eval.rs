//! Call-by-value evaluation with closures and table functions.
//!
//! Types are erased at runtime: `ΛX.e` evaluates its body lazily under a
//! type closure, and `e[τ]` forces it. [`LValue::Table`] represents a
//! *semantic* function by its finite graph — the form produced by
//! [`crate::semantics`] when enumerating function spaces — and is
//! applicable exactly like a closure, which lets the parametricity checker
//! feed enumerated functions to term-level code.

use crate::term::Term;
use std::fmt;
use std::rc::Rc;

/// A runtime value of the λ-calculus fragment.
#[derive(Clone)]
pub enum LValue {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Tuple.
    Tuple(Vec<LValue>),
    /// List.
    List(Vec<LValue>),
    /// A λ-closure.
    Closure {
        /// Captured environment.
        env: Env,
        /// The λ body (binder already peeled).
        body: Rc<Term>,
    },
    /// A suspended type abstraction.
    TyClosure {
        /// Captured environment.
        env: Env,
        /// The Λ body.
        body: Rc<Term>,
    },
    /// A finite function graph (semantic function).
    Table(Rc<Vec<(LValue, LValue)>>),
}

/// Evaluation environments: persistent vector of values, innermost last.
pub type Env = Rc<Vec<LValue>>;

impl fmt::Debug for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LValue::Int(n) => write!(f, "{n}"),
            LValue::Bool(b) => write!(f, "{b}"),
            LValue::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, ")")
            }
            LValue::List(vs) => {
                write!(f, "⟨")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, "⟩")
            }
            LValue::Closure { .. } => write!(f, "<closure>"),
            LValue::TyClosure { .. } => write!(f, "<Λ-closure>"),
            LValue::Table(t) => {
                write!(f, "{{")?;
                for (i, (a, b)) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a:?}↦{b:?}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl PartialEq for LValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (LValue::Int(a), LValue::Int(b)) => a == b,
            (LValue::Bool(a), LValue::Bool(b)) => a == b,
            (LValue::Tuple(a), LValue::Tuple(b)) | (LValue::List(a), LValue::List(b)) => a == b,
            (LValue::Table(a), LValue::Table(b)) => a == b,
            // closures are compared by identity only
            (LValue::Closure { body: a, env: ea }, LValue::Closure { body: b, env: eb }) => {
                Rc::ptr_eq(a, b) && Rc::ptr_eq(ea, eb)
            }
            (LValue::TyClosure { body: a, env: ea }, LValue::TyClosure { body: b, env: eb }) => {
                Rc::ptr_eq(a, b) && Rc::ptr_eq(ea, eb)
            }
            _ => false,
        }
    }
}

impl LValue {
    /// Build a table function.
    pub fn table(pairs: impl IntoIterator<Item = (LValue, LValue)>) -> LValue {
        LValue::Table(Rc::new(pairs.into_iter().collect()))
    }

    /// Extract an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            LValue::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Extract a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            LValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow list items.
    pub fn as_list(&self) -> Option<&[LValue]> {
        match self {
            LValue::List(vs) => Some(vs),
            _ => None,
        }
    }

    /// Borrow tuple components.
    pub fn as_tuple(&self) -> Option<&[LValue]> {
        match self {
            LValue::Tuple(vs) => Some(vs),
            _ => None,
        }
    }

    /// Is this an applicable function value?
    pub fn is_function(&self) -> bool {
        matches!(self, LValue::Closure { .. } | LValue::Table(_))
    }
}

/// A runtime error (ill-typed application, table miss, …). Well-typed
/// closed terms never produce one, except `Table` misses when a table is
/// applied outside its enumerated carrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

fn rt<T>(msg: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError(msg.into()))
}

/// Evaluate a closed term.
pub fn eval_closed(t: &Term) -> Result<LValue, EvalError> {
    eval(t, &Rc::new(Vec::new()))
}

/// Evaluate under an environment.
pub fn eval(t: &Term, env: &Env) -> Result<LValue, EvalError> {
    match t {
        Term::Var(i) => env
            .iter()
            .rev()
            .nth(*i)
            .cloned()
            .ok_or_else(|| EvalError(format!("unbound variable #{i}"))),
        Term::Lam(_, body) => Ok(LValue::Closure {
            env: env.clone(),
            body: Rc::new((**body).clone()),
        }),
        Term::App(f, a) => {
            let fv = eval(f, env)?;
            let av = eval(a, env)?;
            apply(&fv, &av)
        }
        Term::TyLam { body, .. } => Ok(LValue::TyClosure {
            env: env.clone(),
            body: Rc::new((**body).clone()),
        }),
        Term::TyApp(f, _) => match eval(f, env)? {
            LValue::TyClosure { env, body } => eval(&body, &env),
            other => rt(format!("type application of non-Λ value {other:?}")),
        },
        Term::Tuple(ts) => Ok(LValue::Tuple(
            ts.iter()
                .map(|t| eval(t, env))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Term::Proj(i, t) => match eval(t, env)? {
            LValue::Tuple(vs) => vs
                .get(*i)
                .cloned()
                .ok_or_else(|| EvalError(format!("projection .{i} out of range"))),
            other => rt(format!("projection from {other:?}")),
        },
        Term::Nil(_) => Ok(LValue::List(Vec::new())),
        Term::Cons(h, t) => {
            let hv = eval(h, env)?;
            match eval(t, env)? {
                LValue::List(mut vs) => {
                    vs.insert(0, hv);
                    Ok(LValue::List(vs))
                }
                other => rt(format!("cons onto {other:?}")),
            }
        }
        Term::Fold(f, z, xs) => {
            let fv = eval(f, env)?;
            let zv = eval(z, env)?;
            let xsv = match eval(xs, env)? {
                LValue::List(vs) => vs,
                other => return rt(format!("fold over {other:?}")),
            };
            let mut acc = zv;
            for x in xsv.into_iter().rev() {
                let g = apply(&fv, &x)?;
                acc = apply(&g, &acc)?;
            }
            Ok(acc)
        }
        Term::If(c, a, b) => match eval(c, env)? {
            LValue::Bool(true) => eval(a, env),
            LValue::Bool(false) => eval(b, env),
            other => rt(format!("if on {other:?}")),
        },
        Term::Eq(a, b) => {
            let av = eval(a, env)?;
            let bv = eval(b, env)?;
            Ok(LValue::Bool(av == bv))
        }
        Term::Int(n) => Ok(LValue::Int(*n)),
        Term::Bool(b) => Ok(LValue::Bool(*b)),
        Term::Succ(t) => match eval(t, env)? {
            LValue::Int(n) => Ok(LValue::Int(n + 1)),
            other => rt(format!("succ of {other:?}")),
        },
    }
}

/// Apply a function value (closure or table) to an argument.
pub fn apply(f: &LValue, a: &LValue) -> Result<LValue, EvalError> {
    match f {
        LValue::Closure { env, body } => {
            let mut env2 = (**env).clone();
            env2.push(a.clone());
            eval(body, &Rc::new(env2))
        }
        LValue::Table(pairs) => pairs
            .iter()
            .find(|(x, _)| x == a)
            .map(|(_, y)| y.clone())
            .ok_or_else(|| EvalError(format!("table miss on {a:?}"))),
        other => rt(format!("applying non-function {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::Ty;

    #[test]
    fn identity_at_int() {
        let i = Term::tylam(Term::lam(Ty::Var(0), Term::Var(0)));
        let t = Term::app(Term::tyapp(i, Ty::int()), Term::Int(42));
        assert_eq!(eval_closed(&t).unwrap(), LValue::Int(42));
    }

    #[test]
    fn closures_capture_environment() {
        // (λx:int. λy:int. x) 1 2 = 1
        let t = Term::apps(
            Term::lam(Ty::int(), Term::lam(Ty::int(), Term::Var(1))),
            [Term::Int(1), Term::Int(2)],
        );
        assert_eq!(eval_closed(&t).unwrap(), LValue::Int(1));
    }

    #[test]
    fn fold_computes_length() {
        // count via fold: foldr (λx. λacc. succ acc) 0
        let f = Term::lam(
            Ty::int(),
            Term::lam(Ty::int(), Term::Succ(Box::new(Term::Var(0)))),
        );
        let xs = Term::list(Ty::int(), [Term::Int(5), Term::Int(5), Term::Int(5)]);
        assert_eq!(
            eval_closed(&Term::fold(f, Term::Int(0), xs)).unwrap(),
            LValue::Int(3)
        );
    }

    #[test]
    fn fold_is_right_fold() {
        // foldr cons ⟨⟩ = id; also check order with subtraction-like op:
        // foldr (λx. λacc. x ∷ acc) ⟨⟩ ⟨1,2⟩ = ⟨1,2⟩
        let f = Term::lam(
            Ty::int(),
            Term::lam(Ty::list(Ty::int()), Term::cons(Term::Var(1), Term::Var(0))),
        );
        let xs = Term::list(Ty::int(), [Term::Int(1), Term::Int(2)]);
        assert_eq!(
            eval_closed(&Term::fold(f, Term::Nil(Ty::int()), xs)).unwrap(),
            LValue::List(vec![LValue::Int(1), LValue::Int(2)])
        );
    }

    #[test]
    fn if_and_eq() {
        let t = Term::if_(
            Term::eq(Term::Int(2), Term::Int(2)),
            Term::Int(1),
            Term::Int(0),
        );
        assert_eq!(eval_closed(&t).unwrap(), LValue::Int(1));
        let t2 = Term::eq(
            Term::list(Ty::int(), [Term::Int(1)]),
            Term::list(Ty::int(), [Term::Int(2)]),
        );
        assert_eq!(eval_closed(&t2).unwrap(), LValue::Bool(false));
    }

    #[test]
    fn tables_apply_by_lookup() {
        let f = LValue::table([
            (LValue::Int(1), LValue::Int(10)),
            (LValue::Int(2), LValue::Int(20)),
        ]);
        assert_eq!(apply(&f, &LValue::Int(2)).unwrap(), LValue::Int(20));
        assert!(apply(&f, &LValue::Int(3)).is_err());
    }

    #[test]
    fn runtime_shape_errors() {
        assert!(eval_closed(&Term::app(Term::Int(1), Term::Int(2))).is_err());
        assert!(eval_closed(&Term::proj(0, Term::Int(1))).is_err());
        assert!(eval_closed(&Term::Var(3)).is_err());
    }

    #[test]
    fn value_equality_semantics() {
        assert_eq!(LValue::List(vec![]), LValue::List(vec![]));
        assert_ne!(LValue::Int(1), LValue::Bool(true));
        let c1 = eval_closed(&Term::lam(Ty::int(), Term::Var(0))).unwrap();
        let c2 = eval_closed(&Term::lam(Ty::int(), Term::Var(0))).unwrap();
        assert_ne!(c1, c2); // distinct closures compare unequal
        assert_eq!(c1, c1.clone()); // but identical ones are equal
    }
}
