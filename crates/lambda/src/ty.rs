//! System F types with products and lists.

use std::fmt;

/// Base types of the λ-calculus fragment.
///
/// The paper notes "in the 2nd-order λ calculus we can choose base types
/// arbitrarily" (Section 4.2, embedding monomorphic set types as base
/// types); `Int` doubles as the carrier of abstract elements in the
/// finite semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BaseTy {
    /// Booleans (the special type whose mappings are the identity).
    Bool,
    /// Integers.
    Int,
}

impl fmt::Display for BaseTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseTy::Bool => write!(f, "bool"),
            BaseTy::Int => write!(f, "int"),
        }
    }
}

/// A System F type. Type variables use de Bruijn indices: `Var(0)` is the
/// innermost `∀` binder.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// A type variable (de Bruijn index).
    Var(usize),
    /// A base type.
    Base(BaseTy),
    /// Function type `S → T`.
    Arrow(Box<Ty>, Box<Ty>),
    /// Universal quantification `∀X.T` — `eq_bounded` restricts the
    /// variable to equality types (the paper's `∀X⁼`, Section 4.1).
    Forall {
        /// Is this the bounded quantifier `∀X⁼`?
        eq_bounded: bool,
        /// The body (with `Var(0)` bound).
        body: Box<Ty>,
    },
    /// Product type.
    Prod(Vec<Ty>),
    /// List type `⟨T⟩`.
    List(Box<Ty>),
}

impl Ty {
    /// `bool`.
    pub fn bool() -> Ty {
        Ty::Base(BaseTy::Bool)
    }
    /// `int`.
    pub fn int() -> Ty {
        Ty::Base(BaseTy::Int)
    }
    /// `S → T`.
    pub fn arrow(s: Ty, t: Ty) -> Ty {
        Ty::Arrow(Box::new(s), Box::new(t))
    }
    /// Right-nested arrows `t₁ → t₂ → … → r`.
    pub fn arrows(args: impl IntoIterator<Item = Ty>, ret: Ty) -> Ty {
        let args: Vec<Ty> = args.into_iter().collect();
        args.into_iter().rev().fold(ret, |acc, a| Ty::arrow(a, acc))
    }
    /// `∀X.T`.
    pub fn forall(body: Ty) -> Ty {
        Ty::Forall {
            eq_bounded: false,
            body: Box::new(body),
        }
    }
    /// `∀X⁼.T`.
    pub fn forall_eq(body: Ty) -> Ty {
        Ty::Forall {
            eq_bounded: true,
            body: Box::new(body),
        }
    }
    /// `⟨T⟩`.
    pub fn list(t: Ty) -> Ty {
        Ty::List(Box::new(t))
    }
    /// Product.
    pub fn prod(ts: impl IntoIterator<Item = Ty>) -> Ty {
        Ty::Prod(ts.into_iter().collect())
    }
    /// Binary product `S × T`.
    pub fn pair(s: Ty, t: Ty) -> Ty {
        Ty::prod([s, t])
    }

    /// Shift free variables ≥ `cutoff` by `d` (standard de Bruijn shift).
    pub fn shift_above(&self, d: isize, cutoff: usize) -> Ty {
        match self {
            Ty::Var(i) => {
                if *i >= cutoff {
                    Ty::Var((*i as isize + d) as usize)
                } else {
                    Ty::Var(*i)
                }
            }
            Ty::Base(b) => Ty::Base(*b),
            Ty::Arrow(a, b) => Ty::arrow(a.shift_above(d, cutoff), b.shift_above(d, cutoff)),
            Ty::Forall { eq_bounded, body } => Ty::Forall {
                eq_bounded: *eq_bounded,
                body: Box::new(body.shift_above(d, cutoff + 1)),
            },
            Ty::Prod(ts) => Ty::Prod(ts.iter().map(|t| t.shift_above(d, cutoff)).collect()),
            Ty::List(t) => Ty::list(t.shift_above(d, cutoff)),
        }
    }

    /// Shift all free variables by `d`.
    pub fn shift(&self, d: isize) -> Ty {
        self.shift_above(d, 0)
    }

    /// Capture-avoiding substitution `self[j := s]`.
    pub fn subst(&self, j: usize, s: &Ty) -> Ty {
        match self {
            Ty::Var(i) if *i == j => s.clone(),
            Ty::Var(i) => Ty::Var(*i),
            Ty::Base(b) => Ty::Base(*b),
            Ty::Arrow(a, b) => Ty::arrow(a.subst(j, s), b.subst(j, s)),
            Ty::Forall { eq_bounded, body } => Ty::Forall {
                eq_bounded: *eq_bounded,
                body: Box::new(body.subst(j + 1, &s.shift(1))),
            },
            Ty::Prod(ts) => Ty::Prod(ts.iter().map(|t| t.subst(j, s)).collect()),
            Ty::List(t) => Ty::list(t.subst(j, s)),
        }
    }

    /// β-reduction at the type level for `(∀X.body)[arg]`: substitute
    /// `Var(0) := arg` and unshift.
    pub fn instantiate(&self, arg: &Ty) -> Ty {
        // self is the *body* under the binder
        self.subst(0, &arg.shift(1)).shift(-1)
    }

    /// Is the type closed (no free variables)?
    pub fn is_closed(&self) -> bool {
        self.max_free_var().is_none()
    }

    /// The largest free de Bruijn index, if any.
    pub fn max_free_var(&self) -> Option<usize> {
        fn go(t: &Ty, depth: usize) -> Option<usize> {
            match t {
                Ty::Var(i) => (*i >= depth).then(|| i - depth),
                Ty::Base(_) => None,
                Ty::Arrow(a, b) => go(a, depth).into_iter().chain(go(b, depth)).max(),
                Ty::Forall { body, .. } => go(body, depth + 1),
                Ty::Prod(ts) => ts.iter().filter_map(|t| go(t, depth)).max(),
                Ty::List(t) => go(t, depth),
            }
        }
        go(self, 0)
    }

    /// Is the type monomorphic (no `∀` and no free variables)?
    pub fn is_monomorphic(&self) -> bool {
        fn no_forall(t: &Ty) -> bool {
            match t {
                Ty::Var(_) | Ty::Base(_) => true,
                Ty::Arrow(a, b) => no_forall(a) && no_forall(b),
                Ty::Forall { .. } => false,
                Ty::Prod(ts) => ts.iter().all(no_forall),
                Ty::List(t) => no_forall(t),
            }
        }
        self.is_closed() && no_forall(self)
    }

    /// Equality admissibility: can `eq` be used at this type? Base types
    /// and products/lists thereof qualify; variables qualify only when
    /// bound by `∀X⁼` (`eq_vars[i]` true for binder at index `i`).
    pub fn eq_admissible(&self, eq_vars: &[bool]) -> bool {
        match self {
            Ty::Var(i) => eq_vars.get(*i).copied().unwrap_or(false),
            Ty::Base(_) => true,
            Ty::Arrow(..) | Ty::Forall { .. } => false,
            Ty::Prod(ts) => ts.iter().all(|t| t.eq_admissible(eq_vars)),
            Ty::List(t) => t.eq_admissible(eq_vars),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn name(i: usize, depth: usize) -> String {
            // depth = number of binders; variable i refers to binder
            // (depth - 1 - i) counting outermost = 0
            let outer = depth.checked_sub(1 + i);
            match outer {
                Some(0) => "X".into(),
                Some(1) => "Y".into(),
                Some(2) => "Z".into(),
                Some(n) => format!("X{n}"),
                None => format!("?{i}"),
            }
        }
        fn go(t: &Ty, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match t {
                Ty::Var(i) => write!(f, "{}", name(*i, depth)),
                Ty::Base(b) => write!(f, "{b}"),
                Ty::Arrow(a, b) => {
                    let needs_parens = matches!(**a, Ty::Arrow(..) | Ty::Forall { .. });
                    if needs_parens {
                        write!(f, "(")?;
                        go(a, depth, f)?;
                        write!(f, ")")?;
                    } else {
                        go(a, depth, f)?;
                    }
                    write!(f, " → ")?;
                    go(b, depth, f)
                }
                Ty::Forall { eq_bounded, body } => {
                    let v = name(0, depth + 1);
                    write!(f, "∀{v}{}.", if *eq_bounded { "⁼" } else { "" })?;
                    go(body, depth + 1, f)
                }
                Ty::Prod(ts) => {
                    write!(f, "(")?;
                    for (i, t) in ts.iter().enumerate() {
                        if i > 0 {
                            write!(f, " × ")?;
                        }
                        go(t, depth, f)?;
                    }
                    write!(f, ")")
                }
                Ty::List(t) => {
                    write!(f, "⟨")?;
                    go(t, depth, f)?;
                    write!(f, "⟩")
                }
            }
        }
        go(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_type_displays_like_paper() {
        // # : ∀X.⟨X⟩ × ⟨X⟩ → ⟨X⟩
        let t = Ty::forall(Ty::arrow(
            Ty::pair(Ty::list(Ty::Var(0)), Ty::list(Ty::Var(0))),
            Ty::list(Ty::Var(0)),
        ));
        assert_eq!(t.to_string(), "∀X.(⟨X⟩ × ⟨X⟩) → ⟨X⟩");
    }

    #[test]
    fn zip_type_two_binders() {
        // zip : ∀X.∀Y.⟨X⟩ × ⟨Y⟩ → ⟨X × Y⟩
        let t = Ty::forall(Ty::forall(Ty::arrow(
            Ty::pair(Ty::list(Ty::Var(1)), Ty::list(Ty::Var(0))),
            Ty::list(Ty::pair(Ty::Var(1), Ty::Var(0))),
        )));
        assert_eq!(t.to_string(), "∀X.∀Y.(⟨X⟩ × ⟨Y⟩) → ⟨(X × Y)⟩");
    }

    #[test]
    fn instantiate_substitutes_binder() {
        // body of ∀X. X → X  instantiated at int
        let body = Ty::arrow(Ty::Var(0), Ty::Var(0));
        assert_eq!(
            body.instantiate(&Ty::int()),
            Ty::arrow(Ty::int(), Ty::int())
        );
    }

    #[test]
    fn instantiate_under_nested_binder() {
        // ∀X. (∀Y. Y → X)  — instantiate X := int:
        let body = Ty::forall(Ty::arrow(Ty::Var(0), Ty::Var(1)));
        let got = body.instantiate(&Ty::int());
        assert_eq!(got, Ty::forall(Ty::arrow(Ty::Var(0), Ty::int())));
    }

    #[test]
    fn shift_respects_cutoff() {
        let t = Ty::arrow(Ty::Var(0), Ty::Var(2));
        assert_eq!(t.shift_above(3, 1), Ty::arrow(Ty::Var(0), Ty::Var(5)));
    }

    #[test]
    fn closedness_and_monomorphism() {
        let id = Ty::forall(Ty::arrow(Ty::Var(0), Ty::Var(0)));
        assert!(id.is_closed());
        assert!(!id.is_monomorphic());
        assert!(Ty::arrow(Ty::int(), Ty::int()).is_monomorphic());
        assert!(!Ty::Var(0).is_closed());
        assert_eq!(Ty::list(Ty::Var(3)).max_free_var(), Some(3));
        assert_eq!(id.max_free_var(), None);
    }

    #[test]
    fn eq_admissibility() {
        assert!(Ty::int().eq_admissible(&[]));
        assert!(Ty::list(Ty::pair(Ty::int(), Ty::bool())).eq_admissible(&[]));
        assert!(!Ty::arrow(Ty::int(), Ty::int()).eq_admissible(&[]));
        // Var(0) admissible only if its binder is eq-bounded
        assert!(Ty::Var(0).eq_admissible(&[true]));
        assert!(!Ty::Var(0).eq_admissible(&[false]));
        assert!(!Ty::Var(0).eq_admissible(&[]));
    }

    #[test]
    fn arrows_builder_right_nests() {
        let t = Ty::arrows([Ty::int(), Ty::bool()], Ty::int());
        assert_eq!(t, Ty::arrow(Ty::int(), Ty::arrow(Ty::bool(), Ty::int())));
    }
}
