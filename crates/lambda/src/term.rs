//! System F terms (de Bruijn indices for both term and type variables).

use crate::ty::Ty;
use std::fmt;

/// A term of the 2nd-order λ-calculus with products, lists and an
/// equality primitive for `∀X⁼`-bounded polymorphism.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Term variable (de Bruijn index).
    Var(usize),
    /// `λx:T. e`.
    Lam(Ty, Box<Term>),
    /// Application `e₁ e₂`.
    App(Box<Term>, Box<Term>),
    /// Type abstraction `ΛX. e`; `eq_bounded` makes it `ΛX⁼. e`.
    TyLam {
        /// Is the bound variable restricted to equality types?
        eq_bounded: bool,
        /// The body.
        body: Box<Term>,
    },
    /// Type application `e[τ]`.
    TyApp(Box<Term>, Ty),
    /// Tuple formation.
    Tuple(Vec<Term>),
    /// Projection `e.i` (0-based).
    Proj(usize, Box<Term>),
    /// Empty list at element type.
    Nil(Ty),
    /// `cons h t`.
    Cons(Box<Term>, Box<Term>),
    /// `foldr f z xs` — the list eliminator: `foldr f z ⟨⟩ = z`,
    /// `foldr f z (h∷t) = f h (foldr f z t)`.
    Fold(Box<Term>, Box<Term>, Box<Term>),
    /// Conditional.
    If(Box<Term>, Box<Term>, Box<Term>),
    /// Structural equality — type checked only at equality-admissible
    /// types (Section 4.1's `X⁼`).
    Eq(Box<Term>, Box<Term>),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Integer successor (interpreted base function, used by `count`).
    Succ(Box<Term>),
}

impl Term {
    /// `λx:T. e`.
    pub fn lam(ty: Ty, body: Term) -> Term {
        Term::Lam(ty, Box::new(body))
    }
    /// `e₁ e₂`.
    pub fn app(f: Term, a: Term) -> Term {
        Term::App(Box::new(f), Box::new(a))
    }
    /// Left-nested multi-application.
    pub fn apps(f: Term, args: impl IntoIterator<Item = Term>) -> Term {
        args.into_iter().fold(f, Term::app)
    }
    /// `ΛX. e`.
    pub fn tylam(body: Term) -> Term {
        Term::TyLam {
            eq_bounded: false,
            body: Box::new(body),
        }
    }
    /// `ΛX⁼. e`.
    pub fn tylam_eq(body: Term) -> Term {
        Term::TyLam {
            eq_bounded: true,
            body: Box::new(body),
        }
    }
    /// `e[τ]`.
    pub fn tyapp(f: Term, ty: Ty) -> Term {
        Term::TyApp(Box::new(f), ty)
    }
    /// `cons`.
    pub fn cons(h: Term, t: Term) -> Term {
        Term::Cons(Box::new(h), Box::new(t))
    }
    /// Literal list from terms.
    pub fn list(elem_ty: Ty, items: impl IntoIterator<Item = Term>) -> Term {
        let items: Vec<Term> = items.into_iter().collect();
        items
            .into_iter()
            .rev()
            .fold(Term::Nil(elem_ty), |acc, h| Term::cons(h, acc))
    }
    /// `foldr f z xs`.
    pub fn fold(f: Term, z: Term, xs: Term) -> Term {
        Term::Fold(Box::new(f), Box::new(z), Box::new(xs))
    }
    /// Conditional.
    pub fn if_(c: Term, t: Term, e: Term) -> Term {
        Term::If(Box::new(c), Box::new(t), Box::new(e))
    }
    /// Equality test.
    pub fn eq(a: Term, b: Term) -> Term {
        Term::Eq(Box::new(a), Box::new(b))
    }
    /// Projection.
    pub fn proj(i: usize, t: Term) -> Term {
        Term::Proj(i, Box::new(t))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(i) => write!(f, "#{i}"),
            Term::Lam(ty, b) => write!(f, "λ:{ty}. {b}"),
            Term::App(a, b) => write!(f, "({a} {b})"),
            Term::TyLam { eq_bounded, body } => {
                write!(f, "Λ{}. {body}", if *eq_bounded { "X⁼" } else { "X" })
            }
            Term::TyApp(a, ty) => write!(f, "{a}[{ty}]"),
            Term::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Term::Proj(i, t) => write!(f, "{t}.{i}"),
            Term::Nil(ty) => write!(f, "⟨⟩:{ty}"),
            Term::Cons(h, t) => write!(f, "({h} ∷ {t})"),
            Term::Fold(g, z, xs) => write!(f, "foldr {g} {z} {xs}"),
            Term::If(c, t, e) => write!(f, "if {c} then {t} else {e}"),
            Term::Eq(a, b) => write!(f, "({a} = {b})"),
            Term::Int(n) => write!(f, "{n}"),
            Term::Bool(b) => write!(f, "{b}"),
            Term::Succ(t) => write!(f, "succ {t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_shape_terms() {
        let id = Term::tylam(Term::lam(Ty::Var(0), Term::Var(0)));
        assert_eq!(id.to_string(), "ΛX. λ:?0. #0"); // type display is depth-agnostic inside terms
        let l = Term::list(Ty::int(), [Term::Int(1), Term::Int(2)]);
        assert_eq!(l.to_string(), "(1 ∷ (2 ∷ ⟨⟩:int))");
    }

    #[test]
    fn apps_left_nest() {
        let t = Term::apps(Term::Var(0), [Term::Int(1), Term::Int(2)]);
        assert_eq!(t.to_string(), "((#0 1) 2)");
    }
}
