//! Syntax-directed type checking for System F with products and lists.

use crate::term::Term;
use crate::ty::Ty;
use std::fmt;

/// A type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TyckError(pub String);

impl fmt::Display for TyckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TyckError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TyckError> {
    Err(TyckError(msg.into()))
}

/// Typing context.
#[derive(Debug, Clone, Default)]
struct Ctx {
    /// Types of term variables, innermost last; indices count from the
    /// end (`Var(0)` = last).
    terms: Vec<Ty>,
    /// For each type binder (innermost last), whether it is `∀X⁼`.
    ty_eq: Vec<bool>,
}

impl Ctx {
    fn lookup(&self, i: usize) -> Option<&Ty> {
        self.terms.iter().rev().nth(i)
    }
    /// `eq_vars` slice indexed by de Bruijn level: `eq_vars[i]` answers
    /// for type variable `Var(i)` (innermost binder at 0).
    fn eq_vars(&self) -> Vec<bool> {
        self.ty_eq.iter().rev().copied().collect()
    }
}

/// Compute the type of a closed term.
pub fn type_of(t: &Term) -> Result<Ty, TyckError> {
    check(t, &mut Ctx::default())
}

fn check(t: &Term, ctx: &mut Ctx) -> Result<Ty, TyckError> {
    match t {
        Term::Var(i) => ctx
            .lookup(*i)
            .cloned()
            .ok_or_else(|| TyckError(format!("unbound variable #{i}"))),
        Term::Lam(ty, body) => {
            if let Some(max) = ty.max_free_var() {
                if max >= ctx.ty_eq.len() {
                    return err(format!("annotation {ty} mentions unbound type variable"));
                }
            }
            ctx.terms.push(ty.clone());
            let out = check(body, ctx)?;
            ctx.terms.pop();
            Ok(Ty::arrow(ty.clone(), out))
        }
        Term::App(f, a) => {
            let tf = check(f, ctx)?;
            let ta = check(a, ctx)?;
            match tf {
                Ty::Arrow(arg, ret) if *arg == ta => Ok(*ret),
                Ty::Arrow(arg, _) => err(format!("argument type {ta} ≠ expected {arg}")),
                other => err(format!("applying non-function of type {other}")),
            }
        }
        Term::TyLam { eq_bounded, body } => {
            // entering a type binder: free type variables in the term
            // context shift by one
            let saved = ctx.terms.clone();
            for ty in ctx.terms.iter_mut() {
                *ty = ty.shift(1);
            }
            ctx.ty_eq.push(*eq_bounded);
            let out = check(body, ctx);
            ctx.ty_eq.pop();
            ctx.terms = saved;
            Ok(Ty::Forall {
                eq_bounded: *eq_bounded,
                body: Box::new(out?),
            })
        }
        Term::TyApp(f, arg) => {
            if let Some(max) = arg.max_free_var() {
                if max >= ctx.ty_eq.len() {
                    return err(format!(
                        "type argument {arg} mentions unbound type variable"
                    ));
                }
            }
            match check(f, ctx)? {
                Ty::Forall { eq_bounded, body } => {
                    if eq_bounded && !arg.eq_admissible(&ctx.eq_vars()) {
                        return err(format!(
                            "type argument {arg} is not an equality type (∀X⁼ bound)"
                        ));
                    }
                    Ok(body.instantiate(arg))
                }
                other => err(format!("type application of non-polymorphic type {other}")),
            }
        }
        Term::Tuple(ts) => Ok(Ty::Prod(
            ts.iter()
                .map(|t| check(t, ctx))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Term::Proj(i, t) => match check(t, ctx)? {
            Ty::Prod(ts) => ts
                .get(*i)
                .cloned()
                .ok_or_else(|| TyckError(format!("projection .{i} out of range"))),
            other => err(format!("projection from non-product {other}")),
        },
        Term::Nil(ty) => {
            if let Some(max) = ty.max_free_var() {
                if max >= ctx.ty_eq.len() {
                    return err(format!(
                        "nil annotation {ty} mentions unbound type variable"
                    ));
                }
            }
            Ok(Ty::list(ty.clone()))
        }
        Term::Cons(h, t) => {
            let th = check(h, ctx)?;
            match check(t, ctx)? {
                Ty::List(e) if *e == th => Ok(Ty::list(th)),
                Ty::List(e) => err(format!("cons head {th} vs list of {e}")),
                other => err(format!("cons onto non-list {other}")),
            }
        }
        Term::Fold(f, z, xs) => {
            let tf = check(f, ctx)?;
            let tz = check(z, ctx)?;
            let txs = check(xs, ctx)?;
            let elem = match txs {
                Ty::List(e) => *e,
                other => return err(format!("fold over non-list {other}")),
            };
            // f : elem → tz → tz
            let expected = Ty::arrow(elem.clone(), Ty::arrow(tz.clone(), tz.clone()));
            if tf == expected {
                Ok(tz)
            } else {
                err(format!("fold function {tf} ≠ expected {expected}"))
            }
        }
        Term::If(c, a, b) => {
            let tc = check(c, ctx)?;
            if tc != Ty::bool() {
                return err(format!("if condition has type {tc}"));
            }
            let ta = check(a, ctx)?;
            let tb = check(b, ctx)?;
            if ta == tb {
                Ok(ta)
            } else {
                err(format!("if branches disagree: {ta} vs {tb}"))
            }
        }
        Term::Eq(a, b) => {
            let ta = check(a, ctx)?;
            let tb = check(b, ctx)?;
            if ta != tb {
                return err(format!("eq on different types: {ta} vs {tb}"));
            }
            if !ta.eq_admissible(&ctx.eq_vars()) {
                return err(format!(
                    "eq at non-equality type {ta} (needs ∀X⁼ bound or base/product/list)"
                ));
            }
            Ok(Ty::bool())
        }
        Term::Int(_) => Ok(Ty::int()),
        Term::Bool(_) => Ok(Ty::bool()),
        Term::Succ(t) => match check(t, ctx)? {
            ty if ty == Ty::int() => Ok(Ty::int()),
            other => err(format!("succ of non-int {other}")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_forall_type() {
        // I = ΛX. λx:X. x : ∀X. X → X   (Section 4.1's example)
        let i = Term::tylam(Term::lam(Ty::Var(0), Term::Var(0)));
        assert_eq!(
            type_of(&i).unwrap(),
            Ty::forall(Ty::arrow(Ty::Var(0), Ty::Var(0)))
        );
        // I[int] : int → int
        let i_int = Term::tyapp(i, Ty::int());
        assert_eq!(type_of(&i_int).unwrap(), Ty::arrow(Ty::int(), Ty::int()));
    }

    #[test]
    fn unbound_variable_rejected() {
        assert!(type_of(&Term::Var(0)).is_err());
        assert!(type_of(&Term::lam(Ty::int(), Term::Var(1))).is_err());
    }

    #[test]
    fn application_checks_argument() {
        let f = Term::lam(Ty::int(), Term::Var(0));
        assert_eq!(
            type_of(&Term::app(f.clone(), Term::Int(1))).unwrap(),
            Ty::int()
        );
        assert!(type_of(&Term::app(f, Term::Bool(true))).is_err());
        assert!(type_of(&Term::app(Term::Int(1), Term::Int(2))).is_err());
    }

    #[test]
    fn tuples_and_projections() {
        let t = Term::Tuple(vec![Term::Int(1), Term::Bool(true)]);
        assert_eq!(type_of(&t).unwrap(), Ty::pair(Ty::int(), Ty::bool()));
        assert_eq!(type_of(&Term::proj(1, t.clone())).unwrap(), Ty::bool());
        assert!(type_of(&Term::proj(2, t)).is_err());
        assert!(type_of(&Term::proj(0, Term::Int(3))).is_err());
    }

    #[test]
    fn list_constructors() {
        let l = Term::list(Ty::int(), [Term::Int(1), Term::Int(2)]);
        assert_eq!(type_of(&l).unwrap(), Ty::list(Ty::int()));
        assert!(type_of(&Term::cons(Term::Bool(true), l)).is_err());
        assert!(type_of(&Term::cons(Term::Int(1), Term::Int(2))).is_err());
    }

    #[test]
    fn fold_types() {
        // foldr (λx:int. λacc:int. succ acc) 0 ⟨1,2,3⟩ : int
        let f = Term::lam(
            Ty::int(),
            Term::lam(Ty::int(), Term::Succ(Box::new(Term::Var(0)))),
        );
        let xs = Term::list(Ty::int(), [Term::Int(1), Term::Int(2), Term::Int(3)]);
        let t = Term::fold(f, Term::Int(0), xs);
        assert_eq!(type_of(&t).unwrap(), Ty::int());
    }

    #[test]
    fn fold_rejects_mismatched_function() {
        let f = Term::lam(Ty::bool(), Term::lam(Ty::int(), Term::Var(0)));
        let xs = Term::list(Ty::int(), [Term::Int(1)]);
        assert!(type_of(&Term::fold(f, Term::Int(0), xs)).is_err());
    }

    #[test]
    fn if_requires_bool_and_agreeing_branches() {
        assert!(type_of(&Term::if_(Term::Int(1), Term::Int(2), Term::Int(3))).is_err());
        assert!(type_of(&Term::if_(
            Term::Bool(true),
            Term::Int(2),
            Term::Bool(false)
        ))
        .is_err());
        assert_eq!(
            type_of(&Term::if_(Term::Bool(true), Term::Int(2), Term::Int(3))).unwrap(),
            Ty::int()
        );
    }

    #[test]
    fn eq_bounded_quantification() {
        // ΛX⁼. λx:X. λy:X. x = y  : ∀X⁼. X → X → bool
        let t = Term::tylam_eq(Term::lam(
            Ty::Var(0),
            Term::lam(Ty::Var(0), Term::eq(Term::Var(1), Term::Var(0))),
        ));
        let ty = type_of(&t).unwrap();
        assert_eq!(
            ty,
            Ty::forall_eq(Ty::arrow(Ty::Var(0), Ty::arrow(Ty::Var(0), Ty::bool())))
        );
        // instantiating at int is fine; at int→int is rejected
        assert!(type_of(&Term::tyapp(t.clone(), Ty::int())).is_ok());
        assert!(type_of(&Term::tyapp(t, Ty::arrow(Ty::int(), Ty::int()))).is_err());
    }

    #[test]
    fn unbounded_quantifier_rejects_eq() {
        // ΛX. λx:X. x = x  is ill-typed (X not an equality type)
        let t = Term::tylam(Term::lam(Ty::Var(0), Term::eq(Term::Var(0), Term::Var(0))));
        assert!(type_of(&t).is_err());
    }

    #[test]
    fn type_application_instantiates() {
        // append-shaped: ΛX. λp:⟨X⟩×⟨X⟩. p.0  : ∀X.⟨X⟩×⟨X⟩→⟨X⟩
        let t = Term::tylam(Term::lam(
            Ty::pair(Ty::list(Ty::Var(0)), Ty::list(Ty::Var(0))),
            Term::proj(0, Term::Var(0)),
        ));
        let at_int = Term::tyapp(t, Ty::int());
        assert_eq!(
            type_of(&at_int).unwrap(),
            Ty::arrow(
                Ty::pair(Ty::list(Ty::int()), Ty::list(Ty::int())),
                Ty::list(Ty::int())
            )
        );
    }

    #[test]
    fn nested_tylam_shifts_context() {
        // ΛX. λx:X. ΛY. λy:Y. x   : ∀X. X → ∀Y. Y → X
        let t = Term::tylam(Term::lam(
            Ty::Var(0),
            Term::tylam(Term::lam(Ty::Var(0), Term::Var(1))),
        ));
        let ty = type_of(&t).unwrap();
        assert_eq!(
            ty,
            Ty::forall(Ty::arrow(
                Ty::Var(0),
                Ty::forall(Ty::arrow(Ty::Var(0), Ty::Var(1)))
            ))
        );
    }

    #[test]
    fn succ_is_int_only() {
        assert_eq!(
            type_of(&Term::Succ(Box::new(Term::Int(1)))).unwrap(),
            Ty::int()
        );
        assert!(type_of(&Term::Succ(Box::new(Term::Bool(true)))).is_err());
    }
}
